//! Tier-1 replay of the committed regression corpus.
//!
//! Every `.case` file under `tests/corpus/` is a minimized workload that
//! once exposed (or was hand-seeded to guard against) a specific bug
//! class. Each run replays all of them through the full ten-engine
//! matrix of `cure-check`; a regression in any engine fails here with
//! the smallest known repro already in hand.

use cure_check::{check_workload, corpus, CheckOptions};

#[test]
fn corpus_cases_conform_across_all_engines() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let cases = corpus::load_dir(&dir).expect("corpus loads");
    assert!(
        cases.len() >= 5,
        "expected at least 5 committed corpus cases in {}, found {}",
        dir.display(),
        cases.len()
    );
    let scratch = std::env::temp_dir().join(format!("cure-check-corpus-{}", std::process::id()));
    let opts = CheckOptions::default();
    for (name, w) in &cases {
        let outcome = check_workload(w, &scratch, &opts)
            .unwrap_or_else(|e| panic!("case {name}: harness error: {e}"));
        assert!(
            outcome.mismatches.is_empty(),
            "case {name} ({}): {} mismatches:\n{}",
            w.describe(),
            outcome.mismatches.len(),
            outcome.mismatches.iter().map(|m| format!("  {m}")).collect::<Vec<_>>().join("\n")
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
