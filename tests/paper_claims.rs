//! Integration tests asserting the paper's *qualitative claims* — the
//! shapes EXPERIMENTS.md reports, pinned at small scale so regressions in
//! any crate show up as failures here.

use cure::baselines::bubst::BubstMemCube;
use cure::baselines::buc::BucMemCube;
use cure::core::cube::{CubeBuilder, CubeConfig};
use cure::core::partition::select_partition_level;
use cure::core::{MemSink, NodeCoder, PlanSpec, Tuples};
use cure::data::apb::{apb1_dense, apb_schema};
use cure::data::surrogates::{covtype_like, sep85l_like};
use cure::data::synthetic::{block_hierarchy, flat, FlatSpec};

/// §3.1: P3 is the *tallest* extension — its height is the total number of
/// hierarchy levels, while P2 stays at D.
#[test]
fn p3_is_taller_than_p2() {
    let schema = apb_schema();
    let plan = PlanSpec::new(&schema);
    let height = plan.build_tree().height();
    let p2 = cure::core::plan::p2_height(&schema);
    assert_eq!(height, 6 + 2 + 3 + 1); // Σ L_i of APB-1
    assert_eq!(p2, 4);
    assert!(height > p2);
}

/// §4 / Table 1: the selected partitioning level maximizes L subject to
/// both feasibility conditions.
#[test]
fn partition_level_is_maximal_feasible() {
    let product = block_hierarchy("Product", &[10_000, 1_000, 10]);
    let store = block_hierarchy("Store", &[500]);
    let schema = cure::core::CubeSchema::new(vec![product, store], 1).unwrap();
    let gb = 1_000_000_000u64;
    let c = select_partition_level(&schema, 100 * gb, 1, gb as usize).unwrap();
    assert_eq!(c.level, 1);
    // Level 2 must genuinely be infeasible: it allows only 10 partitions
    // but 100 are needed.
    assert_eq!(c.num_partitions, 100);
}

/// §5: on sparse data, trivial tuples dominate the cube, and CURE's
/// TT-subtree sharing stores each exactly once.
#[test]
fn tts_dominate_sparse_cubes() {
    let ds = flat(&FlatSpec { dims: 5, tuples: 2_000, zipf: 0.2, measures: 1, seed: 5 });
    let mut sink = MemSink::new(1);
    let report = CubeBuilder::new(&ds.schema, CubeConfig::default())
        .build_in_memory(&ds.tuples, &mut sink)
        .unwrap();
    assert!(
        report.stats.tt_tuples > report.stats.nt_tuples + report.stats.cat_tuples,
        "TTs should dominate: {:?}",
        report.stats
    );
    // TT storage is one row-id each — 8 bytes — far below a materialized
    // tuple's width.
    assert_eq!(report.stats.tt_bytes, report.stats.tt_tuples * 8);
}

/// Figure 15's headline: the CURE cube is an order of magnitude smaller
/// than BU-BST's, which is itself far below BUC.
#[test]
fn storage_hierarchy_on_covtype_like() {
    let ds = covtype_like(400);
    let cards: Vec<u32> = ds.schema.dims().iter().map(|d| d.leaf_cardinality()).collect();
    let mut buc = BucMemCube::default();
    let buc_stats = cure::baselines::buc::build_buc(&cards, &ds.tuples, 1, &mut buc).unwrap();
    let mut bb = BubstMemCube::default();
    let bb_stats = cure::baselines::bubst::build_bubst(&cards, &ds.tuples, 1, &mut bb).unwrap();
    let mut sink = MemSink::new(1);
    let cure_stats = CubeBuilder::new(&ds.schema, CubeConfig::default())
        .build_in_memory(&ds.tuples, &mut sink)
        .unwrap()
        .stats;
    assert!(
        buc_stats.bytes > 5 * bb_stats.bytes,
        "BUC {} vs BU-BST {}",
        buc_stats.bytes,
        bb_stats.bytes
    );
    assert!(
        bb_stats.bytes > 5 * cure_stats.total_bytes(),
        "BU-BST {} vs CURE {}",
        bb_stats.bytes,
        cure_stats.total_bytes()
    );
}

/// §7: Sep85L's dense areas generate many more non-trivial signatures than
/// CovType — the mechanism behind CURE's small construction-time penalty
/// there.
#[test]
fn sep85l_generates_more_signatures() {
    let cov = covtype_like(400);
    let sep = sep85l_like(400);
    let run = |ds: &cure::data::Dataset| {
        let mut sink = MemSink::new(1);
        CubeBuilder::new(&ds.schema, CubeConfig::default())
            .build_in_memory(&ds.tuples, &mut sink)
            .unwrap()
    };
    let cov_report = run(&cov);
    let sep_report = run(&sep);
    // Normalize per input tuple.
    let cov_rate = cov_report.signatures as f64 / cov.tuples.len() as f64;
    let sep_rate = sep_report.signatures as f64 / sep.tuples.len() as f64;
    assert!(sep_rate > cov_rate, "sep {sep_rate:.2} vs cov {cov_rate:.2} signatures/tuple");
}

/// Figures 26/27: the flat cube over APB-1 is cheaper and smaller than the
/// hierarchical one (the trade-off CURE lets users choose).
#[test]
fn flat_cube_is_smaller_than_hierarchical() {
    let ds = apb1_dense(0.4, 4_000, 3);
    let run = |schema: &cure::core::CubeSchema| {
        let mut sink = MemSink::new(2);
        CubeBuilder::new(schema, CubeConfig::default())
            .build_in_memory(&ds.tuples, &mut sink)
            .unwrap()
            .stats
    };
    let hier = run(&ds.schema);
    let flat = run(&ds.schema.flattened());
    assert!(flat.total_bytes() < hier.total_bytes());
    assert!(flat.total_tuples() < hier.total_tuples());
}

/// The density-40 headline, in miniature: the (CURE+) hierarchical cube of
/// a *dense* APB-1 instance is comparable to — not explosively larger
/// than — its fact table.
#[test]
fn dense_apb_cube_stays_near_fact_size() {
    // Scale 4000 stays within the cardinality-shrink caps (65 × 61), so
    // the density fraction (~0.74) matches the paper's 0.78.
    let ds = apb1_dense(40.0, 4_000, 7);
    let fact_bytes = (ds.tuples.len() * Tuples::fact_schema(4, 2).row_width()) as u64;
    let mut sink = MemSink::new(2);
    let stats = CubeBuilder::new(&ds.schema, CubeConfig::default())
        .build_in_memory(&ds.tuples, &mut sink)
        .unwrap()
        .stats;
    // Paper: 6.86 GB cube vs 12 GB fact table (CURE+). Allow head-room:
    // within 2× of the fact table at our scale.
    assert!(
        stats.total_bytes() < 2 * fact_bytes,
        "cube {} vs fact {}",
        stats.total_bytes(),
        fact_bytes
    );
}

/// The APB-1 base-level cardinalities are all far below the tuple counts —
/// the property that defeats naive partitioning (§4, §7).
#[test]
fn apb_defeats_naive_partitioning() {
    let schema = apb_schema();
    let tuples_d40 = cure::data::apb::tuples_for_density(40.0);
    for d in schema.dims() {
        assert!(
            (d.leaf_cardinality() as u64) < tuples_d40 / 1_000,
            "{} cardinality {} is too low for value-per-partition schemes",
            d.name(),
            d.leaf_cardinality()
        );
    }
    // Naive scheme: partitions bounded by the max base cardinality (6,500)
    // cannot produce the ≥47 memory-sized partitions a 12 GB / 256 MB run
    // needs *sound on the top level* (|Division| = 3).
    let coder = NodeCoder::new(&schema);
    assert_eq!(coder.num_nodes(), 168);
}
