//! Kill-and-resume harness for the crash-safe build driver.
//!
//! A fault-free durable build (under a counting I/O policy) learns the
//! total number of writes `W` the build performs and produces the
//! reference byte image of the finished cube. The sweep then simulates a
//! process death at *every* write index `k < W` — a sticky injected fault
//! fails write `k` and everything after it, exactly like the kernel never
//! seeing those writes — and asserts that `--resume` completes the build
//! to a byte-identical state without re-running partition passes the
//! journal recorded as complete.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cure::core::cube::CubeConfig;
use cure::core::sink::DiskSink;
use cure::core::{
    build_cure_cube_durable, BuildManifest, CubeSchema, Dimension, DurableOptions, DurableReport,
    Tuples,
};
use cure::storage::{Catalog, FaultInjector, FaultKind, IoPolicy};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cure_crashrec_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_schema() -> CubeSchema {
    // A: 16 -> 4 -> 2 (linear), B: 6 -> 2, C: flat 4.
    let a = Dimension::linear(
        "A",
        16,
        &[(0..16).map(|v| v / 4).collect(), (0..4).map(|v| v / 2).collect()],
    )
    .unwrap();
    let b = Dimension::linear("B", 6, &[(0..6).map(|v| v / 3).collect()]).unwrap();
    let c = Dimension::flat("C", 4);
    CubeSchema::new(vec![a, b, c], 2).unwrap()
}

fn store_fact(catalog: &Catalog, schema: &CubeSchema, n: usize, seed: u64) {
    let d = schema.num_dims();
    let y = schema.num_measures();
    let mut t = Tuples::new(d, y);
    let mut x = seed | 1;
    let mut dims = vec![0u32; d];
    let mut aggs = vec![0i64; y];
    for i in 0..n {
        for (j, v) in dims.iter_mut().enumerate() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
        }
        for a in aggs.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *a = (x % 50) as i64;
        }
        t.push_fact(&dims, &aggs, i as u64);
    }
    let mut heap = catalog.create_relation("facts", Tuples::fact_schema(d, y)).unwrap();
    t.store_fact(&mut heap).unwrap();
    heap.sync().unwrap();
}

/// Every file in the catalog directory except the manifest (it records
/// wall-clock timings) — the byte-identity comparison set.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with("manifest.json") || name.ends_with(".tmp") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).unwrap());
    }
    out
}

fn cfg() -> CubeConfig {
    // 44 B/tuple x 250 tuples: a 6 KiB budget forces external partitioning.
    CubeConfig { memory_budget_bytes: 6 << 10, ..CubeConfig::default() }
}

fn durable_build(
    catalog: &Catalog,
    schema: &CubeSchema,
    resume: bool,
) -> cure::core::Result<DurableReport> {
    let mut sink = DiskSink::new(catalog, "cube_", schema, false, false, None)?;
    build_cure_cube_durable(
        catalog,
        "facts",
        schema,
        &cfg(),
        &mut sink,
        "cube_tmp_",
        &DurableOptions { resume, threads: 1 },
    )
}

/// Fault-free reference build. Returns (cube bytes, build writes W).
fn reference() -> (BTreeMap<String, Vec<u8>>, u64, DurableReport) {
    let dir = fresh_dir("reference");
    let schema = test_schema();
    {
        // Store the fact through a plain catalog so the counter below sees
        // only the build's own writes.
        let plain = Catalog::open(&dir).unwrap();
        store_fact(&plain, &schema, 250, 42);
    }
    let counter = Arc::new(FaultInjector::counting());
    let catalog = Catalog::open_with_policy(&dir, counter.clone() as Arc<dyn IoPolicy>).unwrap();
    let report = durable_build(&catalog, &schema, false).unwrap();
    assert!(report.report.partition.is_some(), "budget must force partitioning");
    (snapshot(&dir), counter.writes(), report)
}

/// Set up a catalog with the fact stored fault-free, ready for a faulty
/// build attempt.
fn crash_dir(tag: &str, schema: &CubeSchema) -> PathBuf {
    let dir = fresh_dir(tag);
    let plain = Catalog::open(&dir).unwrap();
    store_fact(&plain, schema, 250, 42);
    dir
}

/// Crash at write `k` with `kind`, then resume; assert byte-identity with
/// the reference and that journaled-complete partitions were skipped.
fn crash_and_resume(
    dir: &Path,
    schema: &CubeSchema,
    k: u64,
    kind: FaultKind,
    want: &BTreeMap<String, Vec<u8>>,
) {
    let inj = Arc::new(FaultInjector::fail_nth_write(k, kind).sticky());
    let faulty = Catalog::open_with_policy(dir, inj.clone() as Arc<dyn IoPolicy>).unwrap();
    let died = durable_build(&faulty, schema, false);
    assert!(inj.fired(), "write {k} must exist in the build");
    assert!(died.is_err(), "sticky fault at write {k} must abort the build");
    drop(faulty);

    // What the journal recorded as complete before the crash…
    let recovered = Catalog::open(dir).unwrap();
    let journaled = BuildManifest::load(&recovered, "cube_")
        .unwrap()
        .map(|m| m.completed_partitions)
        .unwrap_or(0);
    let r = durable_build(&recovered, schema, true).unwrap();
    // …must be exactly what resume skipped: no re-processing.
    assert_eq!(
        r.partitions_skipped, journaled,
        "crash at write {k}: resume re-ran journaled-complete partitions"
    );
    assert_eq!(&snapshot(dir), want, "crash at write {k}: recovery not byte-identical");
}

#[test]
fn kill_and_resume_at_every_write_index() {
    let (want, writes, _) = reference();
    assert!(writes > 20, "workload too small to be a meaningful sweep ({writes} writes)");
    let schema = test_schema();
    let dir = crash_dir("sweep_error", &schema);
    for k in 0..writes {
        // Reuse the directory across crash points: each iteration's resume
        // restored the reference image, and the next fresh (non-resume)
        // faulty build wipes the cube prefix first.
        crash_and_resume(&dir, &schema, k, FaultKind::Error, &want);
    }
}

#[test]
fn kill_and_resume_with_torn_writes() {
    // Torn writes land a prefix of the data before dying — the recovery
    // path must discard the unsealed suffix, not just absent writes.
    let (want, writes, _) = reference();
    let schema = test_schema();
    let dir = crash_dir("sweep_torn", &schema);
    for k in (0..writes).step_by(3) {
        crash_and_resume(&dir, &schema, k, FaultKind::Torn, &want);
    }
}

#[test]
fn kill_and_resume_with_enospc() {
    let (want, writes, _) = reference();
    let schema = test_schema();
    let dir = crash_dir("sweep_enospc", &schema);
    for k in (0..writes).step_by(7) {
        crash_and_resume(&dir, &schema, k, FaultKind::Enospc, &want);
    }
}

#[test]
fn transient_write_faults_are_retried_through() {
    // EINTR-class blips are retried inside the I/O layer: the build
    // succeeds outright and still matches the reference bytes.
    let (want, writes, reference_report) = reference();
    let schema = test_schema();
    for k in [0, writes / 2, writes - 1] {
        let dir = crash_dir(&format!("transient_{k}"), &schema);
        let inj = Arc::new(FaultInjector::fail_nth_write(k, FaultKind::Transient { failures: 2 }));
        let catalog = Catalog::open_with_policy(&dir, inj.clone() as Arc<dyn IoPolicy>).unwrap();
        let r = durable_build(&catalog, &schema, false).unwrap();
        assert!(inj.fired(), "transient fault at write {k} must fire");
        assert_eq!(r.report.stats, reference_report.report.stats);
        assert_eq!(snapshot(&dir), want, "transient fault at write {k}");
    }
}

#[test]
fn resume_of_untouched_complete_build_is_a_no_op() {
    let dir = fresh_dir("noop");
    let schema = test_schema();
    let plain = Catalog::open(&dir).unwrap();
    store_fact(&plain, &schema, 250, 42);
    let first = durable_build(&plain, &schema, false).unwrap();
    let before = snapshot(&dir);
    let again = durable_build(&plain, &schema, true).unwrap();
    assert!(again.already_complete);
    assert_eq!(again.report.stats, first.report.stats);
    assert_eq!(snapshot(&dir), before);
}
