//! Cross-crate integration: the full pipeline through the `cure` facade —
//! generators → storage engine → construction (all variants) → query
//! answering — verified against the naive oracle.

use cure::baselines::bubst::BubstDiskCube;
use cure::baselines::buc::BucDiskCube;
use cure::core::cube::{CubeBuilder, CubeConfig};
use cure::core::meta::CubeMeta;
use cure::core::sink::DiskSink;
use cure::core::{reference, NodeCoder};
use cure::data::apb::apb1_dense;
use cure::data::synthetic::{hierarchical, HierSpec};
use cure::query::{BubstCube, BucCube, CureCube};
use cure::storage::Catalog;

fn fresh_catalog(tag: &str) -> Catalog {
    let dir = std::env::temp_dir().join(format!("cure_root_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Catalog::open(&dir).unwrap()
}

#[test]
fn apb_cube_end_to_end() {
    let catalog = fresh_catalog("apb");
    let ds = apb1_dense(0.4, 2_000, 1);
    ds.store(&catalog, "facts").unwrap();
    let mut sink = DiskSink::new(&catalog, "c_", &ds.schema, false, false, None).unwrap();
    let report = CubeBuilder::new(&ds.schema, CubeConfig::default())
        .build_in_memory(&ds.tuples, &mut sink)
        .unwrap();
    CubeMeta {
        prefix: "c_".into(),
        fact_rel: "facts".into(),
        n_dims: 4,
        n_measures: 2,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    let mut cube = CureCube::open(&catalog, &ds.schema, "c_").unwrap();
    let coder = NodeCoder::new(&ds.schema);
    assert_eq!(coder.num_nodes(), 168, "APB-1 lattice");
    // Check every 7th node (24 nodes) against the oracle — the full sweep
    // lives in cure-query's own tests.
    for id in coder.all_ids().step_by(7) {
        let mut got = cube.node_query(id).unwrap();
        got.sort();
        let levels = coder.decode(id).unwrap();
        let want: Vec<(Vec<u32>, Vec<i64>)> =
            reference::compute_node(&ds.schema, &ds.tuples, &levels)
                .into_iter()
                .map(|r| (r.dims, r.aggs))
                .collect();
        assert_eq!(got, want, "node {}", coder.name(&ds.schema, id));
    }
}

#[test]
fn three_formats_agree_on_hierarchical_data() {
    // BUC, BU-BST and CURE must return identical answers for leaf-level
    // node queries (they materialize the same flat cube content).
    let catalog = fresh_catalog("agree");
    let ds = hierarchical(
        &[
            HierSpec { name: "A".into(), level_cards: vec![30, 6, 2] },
            HierSpec { name: "B".into(), level_cards: vec![15, 3] },
            HierSpec { name: "C".into(), level_cards: vec![8] },
        ],
        1_500,
        0.7,
        1,
        42,
        "agree",
    );
    ds.store(&catalog, "facts").unwrap();
    let cards: Vec<u32> = ds.schema.dims().iter().map(|d| d.leaf_cardinality()).collect();

    let mut buc_sink = BucDiskCube::new(&catalog, "buc_", 1);
    cure::baselines::buc::build_buc(&cards, &ds.tuples, 1, &mut buc_sink).unwrap();
    let mut bb_sink = BubstDiskCube::new(&catalog, "bb_", 3, 1).unwrap();
    cure::baselines::bubst::build_bubst(&cards, &ds.tuples, 1, &mut bb_sink).unwrap();

    let flat = ds.schema.flattened();
    let mut cure_sink = DiskSink::new(&catalog, "fc_", &flat, false, false, None).unwrap();
    let report = CubeBuilder::new(&flat, CubeConfig::default())
        .build_in_memory(&ds.tuples, &mut cure_sink)
        .unwrap();
    CubeMeta {
        prefix: "fc_".into(),
        fact_rel: "facts".into(),
        n_dims: 3,
        n_measures: 1,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();

    let buc = BucCube::open(&catalog, "buc_", 1);
    let bb = BubstCube::open(&catalog, "bb_", "facts", 3, 1).unwrap();
    let mut fcure = CureCube::open(&catalog, &flat, "fc_").unwrap();
    let flat_coder = NodeCoder::new(&flat);
    for mask in 0u64..8 {
        let levels: Vec<usize> = (0..3)
            .map(|d| if mask & (1 << d) != 0 { 0 } else { flat_coder.all_level(d) })
            .collect();
        let mut a = buc.node_query(mask).unwrap();
        let mut b = bb.node_query(mask).unwrap();
        let mut c = fcure.node_query(flat_coder.encode(&levels)).unwrap();
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b, "BUC vs BU-BST node {mask}");
        assert_eq!(a, c, "BUC vs FCURE node {mask}");
    }
}

#[test]
fn storage_ordering_matches_paper() {
    // The Figure 15/27 ordering: BUC ≥ BU-BST ≥ CURE ≥ CURE+ on sparse
    // hierarchical data.
    let catalog = fresh_catalog("ordering");
    let ds = hierarchical(
        &[
            HierSpec { name: "A".into(), level_cards: vec![400, 40, 4] },
            HierSpec { name: "B".into(), level_cards: vec![200, 20] },
            HierSpec { name: "C".into(), level_cards: vec![50] },
        ],
        4_000,
        0.4,
        1,
        9,
        "ordering",
    );
    ds.store(&catalog, "facts").unwrap();
    let cards: Vec<u32> = ds.schema.dims().iter().map(|d| d.leaf_cardinality()).collect();
    let mut buc_sink = BucDiskCube::new(&catalog, "buc_", 1);
    let buc = cure::baselines::buc::build_buc(&cards, &ds.tuples, 1, &mut buc_sink).unwrap();
    let mut bb_sink = BubstDiskCube::new(&catalog, "bb_", 3, 1).unwrap();
    let bb = cure::baselines::bubst::build_bubst(&cards, &ds.tuples, 1, &mut bb_sink).unwrap();
    let mut cure_sink = DiskSink::new(&catalog, "c_", &ds.schema, false, false, None).unwrap();
    let cure_rep = CubeBuilder::new(&ds.schema, CubeConfig::default())
        .build_in_memory(&ds.tuples, &mut cure_sink)
        .unwrap();
    let mut curep_sink = DiskSink::new(&catalog, "cp_", &ds.schema, false, true, None).unwrap();
    let curep_rep = CubeBuilder::new(&ds.schema, CubeConfig::default())
        .build_in_memory(&ds.tuples, &mut curep_sink)
        .unwrap();
    // NOTE: the CURE cubes here are *hierarchical* (a larger lattice)
    // while BUC/BU-BST are flat — and CURE still wins on size. At D = 3
    // the BU-BST monolithic row is wider than BUC's narrow per-node rows,
    // so compare BUC vs BU-BST on stored tuples (condensation) and the
    // CURE variants on bytes; the byte ordering across all four at D ≥ 9
    // is asserted in tests/paper_claims.rs.
    assert!(
        buc.total_rows() > bb.total_rows(),
        "BUC {} rows vs BU-BST {} rows",
        buc.total_rows(),
        bb.total_rows()
    );
    assert!(
        bb.bytes > cure_rep.stats.total_bytes(),
        "BU-BST {} vs CURE {}",
        bb.bytes,
        cure_rep.stats.total_bytes()
    );
    assert!(cure_rep.stats.total_bytes() >= curep_rep.stats.total_bytes());
}

#[test]
fn facade_reexports_compile_and_work() {
    // Small sanity pass touching every re-exported crate.
    let zipf = cure::data::zipf::ZipfSampler::new(10, 1.0);
    assert_eq!(zipf.n(), 10);
    let bm = cure::storage::BitmapIndex::from_sorted(&[1, 2, 3]);
    assert_eq!(bm.count(), 3);
    let dim = cure::core::Dimension::flat("X", 4);
    assert_eq!(dim.leaf_cardinality(), 4);
    assert_eq!(cure::baselines::flatnode::arity(0b101), 2);
}
