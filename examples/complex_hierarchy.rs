//! Complex (DAG) hierarchies: the paper's Figure 5 time dimension.
//!
//! `day` rolls up both into `week` and into `month` (and both into
//! `year`) — a non-linear hierarchy. §3.2's modified Rule 2 turns the DAG
//! into a descent *tree* (day hangs under week, the higher-cardinality
//! parent; the month→day edge is discarded) so the execution plan stays a
//! tree and every level is computed exactly once. The paper defines the
//! rule but "does not study complex hierarchies further"; here the whole
//! pipeline supports them.
//!
//! Run with: `cargo run --release --example complex_hierarchy`

use cure::core::{
    reference, CubeBuilder, CubeConfig, CubeSchema, Dimension, Level, MemCubeReader, MemSink,
    NodeCoder, PlanSpec, Tuples,
};
use cure::query::navigate::{drill_down, roll_up};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() -> cure::core::Result<()> {
    // Two years of days: day → week (106), day → month (24), both → year.
    let days = 730u32;
    let time = Dimension::from_levels(
        "Time",
        vec![
            Level { name: "day".into(), cardinality: days, parents: vec![1, 2], leaf_map: vec![] },
            Level {
                name: "week".into(),
                cardinality: 106, // 53 per year; weeks must nest in years
                parents: vec![3],
                leaf_map: (0..days).map(|d| (d / 365) * 53 + (d % 365) / 7).collect(),
            },
            Level {
                name: "month".into(),
                cardinality: 24,
                parents: vec![3],
                // ~30.4 days per month, kept consistent with years below.
                leaf_map: (0..days).map(|d| (d / 365) * 12 + ((d % 365) / 31).min(11)).collect(),
            },
            Level {
                name: "year".into(),
                cardinality: 2,
                parents: vec![],
                leaf_map: (0..days).map(|d| d / 365).collect(),
            },
        ],
    )?;
    println!("Time descent tree (modified Rule 2):");
    for (l, level) in time.levels().iter().enumerate() {
        let children: Vec<&str> =
            time.descent_children(l).iter().map(|&c| time.levels()[c].name.as_str()).collect();
        println!("  {} (|{}|) → {:?}", level.name, level.cardinality, children);
    }
    let store = Dimension::linear("Store", 40, &[(0..40).map(|v| v / 8).collect()])?;
    let schema = CubeSchema::new(vec![store, time], 1)?;

    // The plan covers every (store level × time level) node exactly once.
    let plan = PlanSpec::new(&schema);
    let tree = plan.build_tree();
    println!(
        "\nP3 plan: {} nodes, height {} (lattice: {})",
        tree.len(),
        tree.height(),
        schema.num_lattice_nodes()
    );

    // Random sales over the two years.
    let mut rng = StdRng::seed_from_u64(2026);
    let mut facts = Tuples::new(2, 1);
    for i in 0..50_000usize {
        facts.push_fact(
            &[rng.gen_range(0..40), rng.gen_range(0..days)],
            &[rng.gen_range(1..500)],
            i as u64,
        );
    }
    let mut sink = MemSink::new(1);
    let report =
        CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&facts, &mut sink)?;
    println!(
        "cube built: {} stored tuples ({} TT / {} NT / {} CAT)",
        report.stats.total_tuples(),
        report.stats.tt_tuples,
        report.stats.nt_tuples,
        report.stats.cat_tuples
    );

    // Navigate: drilling below "year" offers BOTH month and week.
    let coder = NodeCoder::new(&schema);
    let year_node = coder.encode(&[coder.all_level(0), 3]);
    let down = drill_down(&schema, &coder, year_node, 1);
    let names: Vec<String> = down.iter().map(|&n| coder.name(&schema, n)).collect();
    println!("\ndrill-down from {} on Time → {:?}", coder.name(&schema, year_node), names);
    // Day's roll-up goes to week (max-cardinality parent), not month.
    let day_node = coder.encode(&[coder.all_level(0), 0]);
    let up = roll_up(&schema, &coder, day_node, 1).expect("day rolls up");
    println!(
        "roll-up from {} on Time → {}",
        coder.name(&schema, day_node),
        coder.name(&schema, up)
    );
    assert_eq!(coder.name(&schema, up), "Time1"); // week

    // Verify a branch-heavy node against direct computation: month totals.
    let reader = MemCubeReader::new(&schema, &sink, &facts, None)?;
    for levels in [vec![coder.all_level(0), 2], vec![coder.all_level(0), 1], vec![1, 2]] {
        let id = coder.encode(&levels);
        let mut got = reader.node_contents(id)?;
        got.sort();
        let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(&schema, &facts, &levels)
            .into_iter()
            .map(|r| (r.dims, r.aggs))
            .collect();
        assert_eq!(got, want);
        println!("verified node {:<14} ({} rows)", coder.name(&schema, id), got.len());
    }
    println!("\nboth hierarchy branches answer correctly from one cube");
    Ok(())
}
