//! Retail analytics over the APB-1 benchmark schema — the workload the
//! paper's introduction motivates: an analyst rolling up and drilling down
//! through Product / Customer / Time / Channel hierarchies.
//!
//! Builds a (scaled-down) APB-1 cube **on disk**, then answers:
//!   1. total dollar sales per product *division* per *year* (coarse),
//!   2. drill-down into the top division: sales per product *line*,
//!   3. a monthly trend for one retailer.
//!
//! Run with: `cargo run --release --example retail_analytics`

use std::time::Instant;

use cure::core::meta::CubeMeta;
use cure::core::sink::DiskSink;
use cure::core::{CubeBuilder, CubeConfig, NodeCoder, Tuples};
use cure::data::apb::apb1;
use cure::query::CureCube;
use cure::storage::Catalog;

fn main() -> cure::core::Result<()> {
    let dir = std::env::temp_dir().join("cure_example_retail");
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir)?;

    // APB-1 density 0.4, scaled 1:200 → ~25k fact tuples (fast demo).
    let ds = apb1(0.4, 200, 7);
    println!("dataset: {} ({} tuples)", ds.name, ds.tuples.len());
    ds.store(&catalog, "facts")?;

    let start = Instant::now();
    let mut sink = DiskSink::new(&catalog, "cube_", &ds.schema, false, true, None)?;
    let report = CubeBuilder::new(&ds.schema, CubeConfig::default())
        .build_in_memory(&ds.tuples, &mut sink)?;
    CubeMeta {
        prefix: "cube_".into(),
        fact_rel: "facts".into(),
        n_dims: ds.schema.num_dims(),
        n_measures: ds.schema.num_measures(),
        dr: false,
        plus: true, // CURE+: sorted bitmap TTs
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)?;
    println!(
        "cube built in {:.2}s: {} tuples stored in {} relations, {:.1} MB \
         (fact table: {:.1} MB)",
        start.elapsed().as_secs_f64(),
        report.stats.total_tuples(),
        report.stats.relations,
        report.stats.total_bytes() as f64 / 1e6,
        (ds.tuples.len() * Tuples::fact_schema(4, 2).row_width()) as f64 / 1e6,
    );

    let mut cube = CureCube::open(&catalog, &ds.schema, "cube_")?;
    let coder = NodeCoder::new(&ds.schema);
    let all = |d: usize| coder.all_level(d);

    // 1. Division × Year: Product at level 5 (Division), Time at level 2
    //    (Year), Customer/Channel at ALL.
    let node = coder.encode(&[5, all(1), 2, all(3)]);
    let t0 = Instant::now();
    let mut rows = cube.node_query(node)?;
    rows.sort();
    println!("\nDollar sales by Division × Year ({:.1} ms):", t0.elapsed().as_secs_f64() * 1e3);
    for (dims, aggs) in &rows {
        println!(
            "  division {} / year {} → units {:>8}, dollars {:>10}",
            dims[0], dims[1], aggs[0], aggs[1]
        );
    }

    // 2. Drill down: Line (level 4) within the best division, per year.
    let best_division = rows.iter().max_by_key(|(_, a)| a[1]).map(|(d, _)| d[0]).unwrap_or(0);
    let node = coder.encode(&[4, all(1), 2, all(3)]);
    let t0 = Instant::now();
    let line_rows = cube.node_query(node)?;
    let mut drill: Vec<_> = line_rows
        .iter()
        .filter(|(dims, _)| dims[0] as u64 * 3 / 11 == best_division as u64) // line → division
        .collect();
    drill.sort();
    println!(
        "\nDrill-down into division {best_division}: sales by Line × Year ({:.1} ms):",
        t0.elapsed().as_secs_f64() * 1e3
    );
    for (dims, aggs) in drill.iter().take(8) {
        println!("  line {} / year {} → dollars {:>10}", dims[0], dims[1], aggs[1]);
    }

    // 3. Monthly trend for one retailer: Customer at level 1 (Retailer),
    //    Time at level 0 (Month).
    let node = coder.encode(&[all(0), 1, 0, all(3)]);
    let t0 = Instant::now();
    let rows = cube.node_query(node)?;
    let retailer = 3u32;
    let mut trend: Vec<_> = rows.iter().filter(|(d, _)| d[0] == retailer).collect();
    trend.sort();
    println!(
        "\nMonthly dollar trend of retailer {retailer} ({:.1} ms):",
        t0.elapsed().as_secs_f64() * 1e3
    );
    for (dims, aggs) in trend {
        println!("  month {:>2} → {:>9}", dims[1], aggs[1]);
    }

    let s = cube.stats();
    println!(
        "\nquery stats: {} queries, {} rows, {} fact fetches ({} cache hits / {} misses)",
        s.queries, s.rows, s.fact_fetches, s.fact_cache_hits, s.fact_cache_misses
    );
    Ok(())
}
