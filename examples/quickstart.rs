//! Quickstart: build a hierarchical data cube in memory and inspect it.
//!
//! Recreates the paper's running example — dimensions A (3 levels),
//! B (2 levels), C (flat) — over a small generated fact table, builds the
//! complete CURE cube, and prints a few nodes.
//!
//! Run with: `cargo run --release --example quickstart`

use cure::core::{
    CubeBuilder, CubeConfig, CubeSchema, Dimension, MemCubeReader, MemSink, NodeCoder, Tuples,
};

fn main() -> cure::core::Result<()> {
    // --- 1. Define the schema: hierarchies as leaf→parent rollup maps. ---
    // A: 8 leaf values → 4 mid values → 2 top values (like City → Country
    // → Continent); B: 6 → 2; C: flat with 4 values.
    let a = Dimension::linear("A", 8, &[vec![0, 0, 1, 1, 2, 2, 3, 3], vec![0, 0, 1, 1]])?;
    let b = Dimension::linear("B", 6, &[vec![0, 0, 0, 1, 1, 1]])?;
    let c = Dimension::flat("C", 4);
    let schema = CubeSchema::new(vec![a, b, c], 1)?;
    println!("lattice nodes: {} (vs 2^3 = 8 for a flat cube)", schema.num_lattice_nodes());

    // --- 2. A small fact table (dims at leaf level + one measure). -------
    let mut facts = Tuples::new(3, 1);
    let rows: [([u32; 3], i64); 8] = [
        ([0, 0, 0], 10),
        ([0, 0, 1], 20),
        ([1, 3, 2], 40),
        ([5, 3, 0], 45),
        ([5, 5, 2], 45),
        ([7, 1, 3], 12),
        ([2, 2, 1], 33),
        ([2, 2, 1], 7),
    ];
    for (i, (dims, m)) in rows.iter().enumerate() {
        facts.push_fact(dims, &[*m], i as u64);
    }

    // --- 3. Build the complete cube with CURE. ----------------------------
    let builder = CubeBuilder::new(&schema, CubeConfig::default());
    let mut sink = MemSink::new(1);
    let report = builder.build_in_memory(&facts, &mut sink)?;
    println!(
        "built: {} trivial, {} normal, {} common-aggregate tuples ({} bytes)",
        report.stats.tt_tuples,
        report.stats.nt_tuples,
        report.stats.cat_tuples,
        report.stats.total_bytes()
    );

    // --- 4. Read a few nodes back. ----------------------------------------
    let reader = MemCubeReader::new(&schema, &sink, &facts, None)?;
    let coder = NodeCoder::new(&schema);
    for levels in [
        vec![2, coder.all_level(1), coder.all_level(2)], // A at its top level
        vec![1, 1, coder.all_level(2)],                  // A mid × B top
        vec![coder.all_level(0), coder.all_level(1), coder.all_level(2)], // ∅
    ] {
        let id = coder.encode(&levels);
        let mut rows = reader.node_contents(id)?;
        rows.sort();
        println!("node {:<6} → {:?}", coder.name(&schema, id), rows);
    }
    Ok(())
}
