//! Iceberg cubes and count-iceberg queries over weather-like data.
//!
//! Two of the paper's capabilities in one scenario:
//!
//! 1. **Iceberg construction** (BUC heritage, §2): build only the groups
//!    with at least `min_sup` observations — far smaller and faster for
//!    analysts who only care about recurring patterns.
//! 2. **Count-iceberg queries over a complete cube** (§7, last remark):
//!    `HAVING count(*) > k` queries can skip every trivial tuple (count
//!    is always 1) without reading it — a structural win of the NT/TT/CAT
//!    separation.
//!
//! Run with: `cargo run --release --example iceberg_weather`

use std::time::Instant;

use cure::core::meta::CubeMeta;
use cure::core::sink::DiskSink;
use cure::core::{CubeBuilder, CubeConfig, MemSink, NodeCoder, Tuples};
use cure::data::surrogates::sep85l_like;
use cure::query::CureCube;
use cure::storage::Catalog;

fn main() -> cure::core::Result<()> {
    let dir = std::env::temp_dir().join("cure_example_iceberg");
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir)?;

    // Sep85L-like cloud reports, scaled 1:50 → ~20k tuples. Add an extra
    // "count" measure (1 per report) so count-iceberg queries are
    // answerable from the cube.
    let base = sep85l_like(50);
    let d = base.schema.num_dims();
    let schema = {
        // Rebuild the schema with 2 measures (value, count).
        let dims = base.schema.dims().to_vec();
        cure::core::CubeSchema::new(dims, 2)?
    };
    let mut facts = Tuples::with_capacity(d, 2, base.tuples.len());
    for i in 0..base.tuples.len() {
        let mut aggs = base.tuples.aggs_of(i).to_vec();
        aggs.push(1); // count measure
        facts.push_fact(base.tuples.dims_of(i), &aggs, i as u64);
    }
    println!("dataset: {} with an added count measure", base.name);

    // --- 1. Iceberg construction: complete vs min_sup = 5. ---------------
    for min_sup in [1u64, 5] {
        let cfg = CubeConfig { min_support: min_sup, ..CubeConfig::default() };
        let mut sink = MemSink::new(2);
        let t0 = Instant::now();
        let report = CubeBuilder::new(&schema, cfg).build_in_memory(&facts, &mut sink)?;
        println!(
            "min_sup = {min_sup}: {:>9} stored tuples, {:>7.1} KB, {:.2}s",
            report.stats.total_tuples(),
            report.stats.total_bytes() as f64 / 1e3,
            t0.elapsed().as_secs_f64()
        );
    }

    // --- 2. Count-iceberg queries over the complete disk cube. -----------
    let mut heap = catalog.create_or_replace("facts", Tuples::fact_schema(d, 2))?;
    facts.store_fact(&mut heap)?;
    let mut sink = DiskSink::new(&catalog, "w_", &schema, false, false, None)?;
    let report =
        CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&facts, &mut sink)?;
    CubeMeta {
        prefix: "w_".into(),
        fact_rel: "facts".into(),
        n_dims: d,
        n_measures: 2,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)?;

    let mut cube = CureCube::open(&catalog, &schema, "w_")?;
    let coder = NodeCoder::new(&schema);
    // Query the 3 lowest-cardinality dimensions grouped together (a dense
    // node with real recurring groups).
    let mut levels = vec![0; d];
    for (dd, l) in levels.iter_mut().enumerate().take(d - 3) {
        *l = coder.all_level(dd);
    }
    let node = coder.encode(&levels);

    let t0 = Instant::now();
    let full = cube.node_query(node)?;
    let t_full = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let frequent = cube.iceberg_count_query(node, 10, 1)?;
    let t_iceberg = t0.elapsed().as_secs_f64();
    println!(
        "\nnode {}: {} groups total; {} with count > 10",
        coder.name(&schema, node),
        full.len(),
        frequent.len()
    );
    println!(
        "full query {:.1} ms vs count-iceberg {:.1} ms (TTs skipped entirely)",
        t_full * 1e3,
        t_iceberg * 1e3
    );
    let mut top: Vec<_> = frequent.iter().collect();
    top.sort_by_key(|(_, aggs)| std::cmp::Reverse(aggs[1]));
    println!("\nmost frequent combinations:");
    for (dims, aggs) in top.iter().take(5) {
        println!("  {:?} → {} reports", dims, aggs[1]);
    }
    Ok(())
}
