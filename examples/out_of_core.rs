//! Out-of-core cubing: CURE's external partitioning in action (§4).
//!
//! Gives the build a memory budget far below the fact table's size, so the
//! driver must (a) select a partitioning level on the first dimension,
//! (b) write sound partitions + hash-build the small relation *N* in one
//! scan, and (c) assemble the complete cube from both. Prints the
//! selection the way the paper's Table 1 does, then verifies a few node
//! queries against a direct computation.
//!
//! Run with: `cargo run --release --example out_of_core`

use cure::core::meta::CubeMeta;
use cure::core::partition::{build_cure_cube, select_partition_level};
use cure::core::sink::DiskSink;
use cure::core::{reference, CubeConfig, NodeCoder, Tuples};
use cure::data::synthetic::{hierarchical, HierSpec};
use cure::query::CureCube;
use cure::storage::Catalog;

fn main() -> cure::core::Result<()> {
    let dir = std::env::temp_dir().join("cure_example_ooc");
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir)?;

    // A SALES-like table: Product organized as barcode → brand → strength
    // (the §4 example), plus Store and Channel.
    let specs = vec![
        HierSpec { name: "Product".into(), level_cards: vec![2_000, 200, 8] },
        HierSpec { name: "Store".into(), level_cards: vec![120, 12] },
        HierSpec { name: "Channel".into(), level_cards: vec![6] },
    ];
    let ds = hierarchical(&specs, 200_000, 0.4, 1, 99, "SALES");
    ds.store(&catalog, "facts")?;
    let tuple_bytes = Tuples::tuple_bytes(3, 1);
    let table_bytes = ds.tuples.len() * tuple_bytes;
    println!(
        "fact table: {} tuples ≈ {:.1} MB in memory",
        ds.tuples.len(),
        table_bytes as f64 / 1e6
    );

    // Give the build ~1/12 of what the table needs.
    let budget = table_bytes / 12;
    println!("memory budget: {:.2} MB", budget as f64 / 1e6);

    // Show the paper's Table-1-style selection reasoning.
    let choice = select_partition_level(&ds.schema, ds.tuples.len() as u64, tuple_bytes, budget)?;
    println!(
        "\npartition-level selection: L = {} (\"{}\"), {} partitions of ≈{:.2} MB, \
         |N| ≈ {} rows ({:.2} MB)",
        choice.level,
        ds.schema.dims()[0].levels()[choice.level].name,
        choice.num_partitions,
        choice.est_partition_bytes as f64 / 1e6,
        choice.est_n_rows,
        choice.est_n_bytes as f64 / 1e6
    );

    let cfg = CubeConfig { memory_budget_bytes: budget, ..CubeConfig::default() };
    let mut sink = DiskSink::new(&catalog, "cube_", &ds.schema, false, false, None)?;
    let report = build_cure_cube(&catalog, "facts", &ds.schema, &cfg, &mut sink, "tmp_")?;
    let part = report.partition.as_ref().expect("partitioned build");
    println!(
        "\nbuild: {} partitions written in {:.2}s (largest: {} rows), N = {} rows; \
         cube = {} tuples / {:.1} MB",
        part.choice.num_partitions,
        part.partition_secs,
        part.max_partition_rows,
        part.n_rows,
        report.stats.total_tuples(),
        report.stats.total_bytes() as f64 / 1e6
    );
    CubeMeta {
        prefix: "cube_".into(),
        fact_rel: "facts".into(),
        n_dims: 3,
        n_measures: 1,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: Some(part.choice.level),
        min_support: 1,
    }
    .write(&catalog)?;

    // Verify three nodes spanning both plan passes against a direct
    // computation over the in-memory tuples.
    let mut cube = CureCube::open(&catalog, &ds.schema, "cube_")?;
    let coder = NodeCoder::new(&ds.schema);
    let checks = [
        vec![0, coder.all_level(1), coder.all_level(2)], // Product@barcode (partition pass)
        vec![2, 1, coder.all_level(2)],                  // strength × store-region (N pass)
        vec![coder.all_level(0), coder.all_level(1), 0], // Channel only (N pass)
    ];
    for levels in checks {
        let id = coder.encode(&levels);
        let mut got = cube.node_query(id)?;
        got.sort();
        let want: Vec<(Vec<u32>, Vec<i64>)> =
            reference::compute_node(&ds.schema, &ds.tuples, &levels)
                .into_iter()
                .map(|r| (r.dims, r.aggs))
                .collect();
        assert_eq!(got, want, "node {}", coder.name(&ds.schema, id));
        println!("verified node {:<24} ({} rows)", coder.name(&ds.schema, id), got.len());
    }
    println!("\nall checks passed — the partitioned cube matches direct computation");
    Ok(())
}
