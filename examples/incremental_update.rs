//! Incremental cube maintenance — the paper's §8 future work in action.
//!
//! A nightly-ETL scenario: a sales cube exists on disk; a day's batch of
//! new fact tuples arrives; instead of rebuilding from scratch, the cube
//! is merged with the delta in time proportional to the *cube*, not the
//! full fact history. The example verifies the merged cube against a full
//! rebuild and reports the class transitions (TT demotions etc.).
//!
//! Run with: `cargo run --release --example incremental_update`

use std::time::Instant;

use cure::core::cube::{CubeBuilder, CubeConfig};
use cure::core::meta::CubeMeta;
use cure::core::sink::DiskSink;
use cure::core::update::update_cube;
use cure::core::{CubeSink, NodeCoder, Tuples};
use cure::data::synthetic::{hierarchical, HierSpec};
use cure::query::CureCube;
use cure::storage::Catalog;

fn main() -> cure::core::Result<()> {
    let dir = std::env::temp_dir().join("cure_example_update");
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir)?;

    // History: 500k sales tuples over a *dense* schema (few distinct
    // combinations), so the cube is much smaller than the fact history —
    // the regime where incremental maintenance beats rebuilding. Tonight's
    // batch: 5k more tuples.
    let specs = vec![
        HierSpec { name: "Product".into(), level_cards: vec![30, 6, 2] },
        HierSpec { name: "Store".into(), level_cards: vec![20, 4] },
        HierSpec { name: "Day".into(), level_cards: vec![12, 4] },
    ];
    let history = hierarchical(&specs, 500_000, 0.5, 1, 1, "history");
    let batch_src = hierarchical(&specs, 5_000, 0.5, 1, 2, "batch");
    let schema = history.schema;
    let mut batch = Tuples::new(3, 1);
    for i in 0..batch_src.tuples.len() {
        batch.push(
            batch_src.tuples.dims_of(i),
            batch_src.tuples.aggs_of(i),
            1,
            (history.tuples.len() + i) as u64, // row-ids continue
        );
    }

    // Build the original cube.
    let mut heap = catalog.create_or_replace("facts", Tuples::fact_schema(3, 1))?;
    history.tuples.store_fact(&mut heap)?;
    let t0 = Instant::now();
    let mut old_sink = DiskSink::new(&catalog, "v1_", &schema, false, false, None)?;
    let report = CubeBuilder::new(&schema, CubeConfig::default())
        .build_in_memory(&history.tuples, &mut old_sink)?;
    let build_secs = t0.elapsed().as_secs_f64();
    CubeMeta {
        prefix: "v1_".into(),
        fact_rel: "facts".into(),
        n_dims: 3,
        n_measures: 1,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)?;
    println!(
        "initial build: {} tuples → {} cube tuples in {:.2}s",
        history.tuples.len(),
        report.stats.total_tuples(),
        build_secs
    );

    // Append the batch to the fact relation, then merge incrementally.
    batch.store_fact(&mut heap)?;
    drop(heap);
    let t0 = Instant::now();
    let mut new_sink = DiskSink::new(&catalog, "v2_", &schema, false, false, None)?;
    let up = update_cube(&catalog, &schema, "v1_", &batch, &CubeConfig::default(), &mut new_sink)?;
    let update_secs = t0.elapsed().as_secs_f64();
    CubeMeta {
        prefix: "v2_".into(),
        fact_rel: "facts".into(),
        n_dims: 3,
        n_measures: 1,
        dr: false,
        plus: false,
        cat_format: new_sink.cat_format(),
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)?;
    println!(
        "incremental merge of {} tuples: {:.2}s — {} carried, {} merged, {} new groups, \
         {} TT demotions",
        batch.len(),
        update_secs,
        up.carried_groups,
        up.merged_groups,
        up.new_groups,
        up.tt_demotions
    );

    // Compare against a full rebuild on three spot-check nodes.
    let mut combined = Tuples::new(3, 1);
    for src in [&history.tuples, &batch] {
        for i in 0..src.len() {
            combined.push(src.dims_of(i), src.aggs_of(i), 1, src.rowid(i));
        }
    }
    let t0 = Instant::now();
    let mut rebuild_sink = DiskSink::new(&catalog, "rb_", &schema, false, false, None)?;
    CubeBuilder::new(&schema, CubeConfig::default())
        .build_in_memory(&combined, &mut rebuild_sink)?;
    let rebuild_secs = t0.elapsed().as_secs_f64();
    println!(
        "full rebuild: {rebuild_secs:.2}s vs {update_secs:.2}s incremental — the update \
         reads the cube + delta, not the {}-tuple history (it pays off whenever the cube \
         is small relative to the accumulated facts)",
        history.tuples.len()
    );

    let mut v2 = CureCube::open(&catalog, &schema, "v2_")?;
    let coder = NodeCoder::new(&schema);
    for levels in [
        vec![2, coder.all_level(1), coder.all_level(2)],
        vec![1, 1, 1],
        vec![coder.all_level(0), 0, coder.all_level(2)],
    ] {
        let id = coder.encode(&levels);
        let mut got = v2.node_query(id)?;
        got.sort();
        let want: Vec<(Vec<u32>, Vec<i64>)> =
            cure::core::reference::compute_node(&schema, &combined, &levels)
                .into_iter()
                .map(|r| (r.dims, r.aggs))
                .collect();
        assert_eq!(got, want, "node {}", coder.name(&schema, id));
        println!("verified node {:<22} ({} rows)", coder.name(&schema, id), got.len());
    }
    println!("\nmerged cube matches a full rebuild — update is safe to swap in");
    Ok(())
}
