//! The `cure-cli` command-line tool: generate datasets, build CURE cubes
//! and query them from a shell. See `cure::cli::usage()` for commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cure::cli::parse_args(&args) {
        Ok(cmd) => match cure::cli::run(cmd) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
