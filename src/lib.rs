//! # cure — facade crate
//!
//! Re-exports the whole CURE workspace behind one dependency, so examples,
//! integration tests and downstream users can write `use cure::...`.
//!
//! * [`storage`] — the minimal ROLAP storage engine (heap files, catalog,
//!   buffer cache, bitmap indexes, external sort).
//! * [`core`] — the CURE algorithm itself: hierarchies, lattices, execution
//!   plans, the signature pool, NT/TT/CAT storage and external partitioning.
//! * [`data`] — dataset generators (synthetic, APB-1, CovType/Sep85L
//!   surrogates).
//! * [`baselines`] — BUC, BU-BST and FCURE comparison cubing algorithms.
//! * [`query`] — node-query answering over every cube format.

pub mod cli;

pub use cure_baselines as baselines;
pub use cure_core as core;
pub use cure_data as data;
pub use cure_query as query;
pub use cure_storage as storage;
