//! Implementation of the `cure` command-line tool.
//!
//! The binary (`src/bin/cure-cli.rs`) is a thin wrapper over these
//! functions so the argument handling and command logic are unit-testable.
//! Supported commands:
//!
//! ```text
//! cure-cli gen   <dir> --dataset apb|covtype|sep85l --scale N [--density F]
//! cure-cli build <dir> [--variant cure|cure+|dr|dr+] [--budget-mb N] [--min-sup N] [--resume] [--threads N]
//! cure-cli query <dir> --node A2,B1 | --node-id 17 [--iceberg N]
//! cure-cli info  <dir>
//! ```
//!
//! The schema travels with the directory as a small spec blob so `build`,
//! `query` and `info` can run without repeating generator parameters.

use std::fmt::Write as _;

use cure_baselines as _;
use cure_core::cube::CubeConfig;
use cure_core::meta::CubeMeta;
use cure_core::sink::DiskSink;
use cure_core::{CubeError, CubeSchema, NodeCoder, Result};
use cure_data::Dataset;
use cure_query::{CureCube, ReadPath};
use cure_storage::Catalog;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a dataset into a catalog directory.
    Gen { dir: String, dataset: String, scale: u64, density: f64 },
    /// Build a CURE cube over a generated catalog.
    Build {
        dir: String,
        variant: String,
        budget_mb: usize,
        min_sup: u64,
        resume: bool,
        threads: usize,
        /// Write a JSON [`StatsSnapshot`](cure_serve::StatsSnapshot)
        /// (phase timers, pool counters, storage I/O) to this path.
        stats: Option<String>,
    },
    /// Query one node of a built cube.
    Query {
        dir: String,
        node: Option<String>,
        node_id: Option<u64>,
        iceberg: Option<i64>,
        /// Equality predicates like "Product1=3,Time2=1" (needs `index`).
        filter: Option<String>,
    },
    /// Show catalog/cube information.
    Info { dir: String },
    /// Print the P3 execution plan tree for the catalog's schema.
    Plan { dir: String },
    /// Build fact-table value indexes (enables `query --where`).
    Index { dir: String },
    /// Append freshly generated tuples and merge them into the cube
    /// incrementally (no rebuild), then swap the active cube.
    Append { dir: String, tuples: usize, seed: u64 },
    /// Ingest a delta batch file through the durable ingest pipeline
    /// (append → merge → swap → GC); crash-safe and resumable.
    Ingest {
        dir: String,
        /// Batch file: one `dims | measures` line per tuple, `#` comments.
        batch: String,
        /// Keep the previous cube's relations instead of dropping them.
        keep_old: bool,
        /// Write a JSON [`StatsSnapshot`](cure_serve::StatsSnapshot)
        /// (ingest counters, storage I/O) to this path.
        stats: Option<String>,
    },
    /// Measure incremental ingest vs fresh rebuild across delta sizes;
    /// writes `results/ingest.json`.
    IngestBench {
        dir: String,
        /// Output path for the JSON report.
        out: String,
    },
    /// Serve the built cube from a worker pool and measure throughput,
    /// latency quantiles, and shared-cache hit rates at each thread count.
    ServeBench {
        dir: String,
        queries: u64,
        threads: Vec<usize>,
        queue: usize,
        /// Zipf exponent for skewed node popularity; None = uniform.
        zipf: Option<f64>,
        seed: u64,
        /// Write a JSON [`StatsSnapshot`](cure_serve::StatsSnapshot)
        /// (per-run latency histograms, cache hit rates, storage I/O) to
        /// this path.
        stats: Option<String>,
        /// Per-request deadline in milliseconds, enforced at dequeue and
        /// between page fetches (defaults to 5 ms under `--chaos`).
        deadline_ms: Option<u64>,
        /// Serve through the hardened path with a seeded read-fault
        /// schedule underneath: deliberately tiny page caches, transient
        /// and hard I/O errors plus bit flips on reads, load shedding on
        /// a full queue, and a hair-trigger circuit breaker.
        chaos: bool,
        /// Which read path serves the queries: the shared page caches
        /// (default) or the zero-copy mmap path with per-node indexes.
        read_path: ReadPath,
        /// Serve through the scatter-gather [`ShardRouter`]
        /// (`cure_serve::ShardRouter`) over this many partition-scoped
        /// sub-cubes instead of the single active cube; every merged
        /// answer is first verified against the unsharded cube.
        shards: Option<usize>,
        /// Replica directories backing each shard (1 = primary only);
        /// extra replicas are shipped with CRC-verified snapshot
        /// replication before serving starts.
        replicas: usize,
        /// Serve each `(shard, replica)` from its own
        /// `cure-shard-serve` child process over a loopback socket
        /// instead of in-process services; the bench then kills one
        /// replica process mid-run and proves answers stay correct.
        socket: bool,
    },
    /// Serve one shard's sub-cube over a TCP socket (the per-process
    /// worker behind `serve-bench --socket`; also available as the
    /// standalone `cure-shard-serve` binary). Prints `LISTENING <addr>`
    /// and serves until killed.
    ShardServe { dir: String, shard: usize, listen: String, read_path: ReadPath },
    /// Run the differential conformance sweep (`cure-check`): randomized
    /// workloads through every engine configuration, failures shrunk and
    /// written as `.case` repros.
    Check {
        dir: String,
        /// Number of seeds to sweep, starting at `start_seed`.
        seeds: u64,
        /// First seed (lets nightly runs explore fresh regions).
        start_seed: u64,
        /// Wall-clock budget in seconds; None = run all seeds.
        budget_secs: Option<u64>,
        /// Where minimized repros are written (default `<dir>/corpus`).
        corpus: Option<String>,
    },
}

/// Parse `args` (without the program name).
pub fn parse_args(args: &[String]) -> std::result::Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    let dir = it.next().ok_or_else(usage)?.clone();
    let mut opts = std::collections::HashMap::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i].strip_prefix("--").ok_or_else(|| format!("unexpected '{}'", rest[i]))?;
        // Valueless flags.
        if key == "resume" || key == "keep-old" || key == "chaos" || key == "socket" {
            opts.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let val = rest.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), (*val).clone());
        i += 2;
    }
    let get = |k: &str, default: &str| opts.get(k).cloned().unwrap_or_else(|| default.to_string());
    match cmd.as_str() {
        "gen" => Ok(Command::Gen {
            dir,
            dataset: get("dataset", "apb"),
            scale: get("scale", "1000").parse().map_err(|_| "bad --scale".to_string())?,
            density: get("density", "0.4").parse().map_err(|_| "bad --density".to_string())?,
        }),
        "build" => Ok(Command::Build {
            dir,
            variant: get("variant", "cure"),
            budget_mb: get("budget-mb", "256")
                .parse()
                .map_err(|_| "bad --budget-mb".to_string())?,
            min_sup: get("min-sup", "1").parse().map_err(|_| "bad --min-sup".to_string())?,
            resume: opts.contains_key("resume"),
            threads: match get("threads", "1").parse() {
                Ok(t) if t >= 1 => t,
                _ => return Err("bad --threads (want an integer ≥ 1)".to_string()),
            },
            stats: opts.get("stats").cloned(),
        }),
        "query" => Ok(Command::Query {
            dir,
            node: opts.get("node").cloned(),
            node_id: match opts.get("node-id") {
                Some(v) => Some(v.parse().map_err(|_| "bad --node-id".to_string())?),
                None => None,
            },
            iceberg: match opts.get("iceberg") {
                Some(v) => Some(v.parse().map_err(|_| "bad --iceberg".to_string())?),
                None => None,
            },
            filter: opts.get("where").cloned(),
        }),
        "info" => Ok(Command::Info { dir }),
        "plan" => Ok(Command::Plan { dir }),
        "index" => Ok(Command::Index { dir }),
        "append" => Ok(Command::Append {
            dir,
            tuples: get("tuples", "1000").parse().map_err(|_| "bad --tuples".to_string())?,
            seed: get("seed", "1").parse().map_err(|_| "bad --seed".to_string())?,
        }),
        "ingest" => Ok(Command::Ingest {
            dir,
            batch: opts.get("batch").cloned().ok_or_else(|| "--batch is required".to_string())?,
            keep_old: opts.contains_key("keep-old"),
            stats: opts.get("stats").cloned(),
        }),
        "ingest-bench" => Ok(Command::IngestBench { dir, out: get("out", "results/ingest.json") }),
        "serve-bench" => {
            let chaos = opts.contains_key("chaos");
            let socket = opts.contains_key("socket");
            let shards = match opts.get("shards") {
                Some(v) => match v.parse() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => return Err("bad --shards (want an integer ≥ 1)".to_string()),
                },
                None => None,
            };
            // The chaos fault schedule targets one service's read path;
            // the router fans out over many. Keep the modes orthogonal.
            if chaos && shards.is_some() {
                return Err("--shards cannot be combined with --chaos".to_string());
            }
            if socket && shards.is_none() {
                return Err("--socket needs --shards (sharded serving only)".to_string());
            }
            if socket && chaos {
                return Err("--socket cannot be combined with --chaos".to_string());
            }
            Ok(Command::ServeBench {
                dir,
                queries: get("queries", "1000").parse().map_err(|_| "bad --queries".to_string())?,
                threads: {
                    // Same contract as `build --threads`: every count ≥ 1 and
                    // the list non-empty, rejected here rather than deep in the
                    // worker pool.
                    let list = get("threads", "1,2,4,8")
                        .split(',')
                        .map(|t| match t.trim().parse() {
                            Ok(v) if v >= 1 => Ok(v),
                            _ => Err("bad --threads (want an integer ≥ 1)".to_string()),
                        })
                        .collect::<std::result::Result<Vec<usize>, String>>()?;
                    if list.is_empty() {
                        return Err("bad --threads (want an integer ≥ 1)".to_string());
                    }
                    list
                },
                queue: get("queue", "64").parse().map_err(|_| "bad --queue".to_string())?,
                zipf: match opts.get("zipf") {
                    Some(v) => Some(v.parse().map_err(|_| "bad --zipf".to_string())?),
                    None => None,
                },
                seed: get("seed", "1").parse().map_err(|_| "bad --seed".to_string())?,
                stats: opts.get("stats").cloned(),
                deadline_ms: match opts.get("deadline-ms") {
                    Some(v) => Some(v.parse().map_err(|_| "bad --deadline-ms".to_string())?),
                    None => None,
                },
                chaos,
                read_path: match opts.get("read-path") {
                    Some(v) => ReadPath::parse(v)
                        .ok_or_else(|| "bad --read-path (want cache|mmap)".to_string())?,
                    None => ReadPath::Cache,
                },
                shards,
                replicas: match get("replicas", "1").parse() {
                    Ok(r) if r >= 1 => r,
                    _ => return Err("bad --replicas (want an integer ≥ 1)".to_string()),
                },
                socket,
            })
        }
        "shard-serve" => Ok(Command::ShardServe {
            dir,
            shard: get("shard", "0").parse().map_err(|_| "bad --shard".to_string())?,
            listen: opts
                .get("listen")
                .cloned()
                .ok_or_else(|| "--listen is required (e.g. --listen 127.0.0.1:0)".to_string())?,
            read_path: match opts.get("read-path") {
                Some(v) => ReadPath::parse(v)
                    .ok_or_else(|| "bad --read-path (want cache|mmap)".to_string())?,
                None => ReadPath::Cache,
            },
        }),
        "check" => Ok(Command::Check {
            dir,
            seeds: get("seeds", "32").parse().map_err(|_| "bad --seeds".to_string())?,
            start_seed: get("start-seed", "0")
                .parse()
                .map_err(|_| "bad --start-seed".to_string())?,
            budget_secs: match opts.get("budget-secs") {
                Some(v) => Some(v.parse().map_err(|_| "bad --budget-secs".to_string())?),
                None => None,
            },
            corpus: opts.get("corpus").cloned(),
        }),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

/// Usage string.
pub fn usage() -> String {
    "usage:\n  cure-cli gen   <dir> [--dataset apb|covtype|sep85l] [--scale N] [--density F]\n  \
     cure-cli build <dir> [--variant cure|cure+|dr|dr+] [--budget-mb N] [--min-sup N] [--resume] [--threads N] [--stats F.json]\n  \
     cure-cli query <dir> (--node Product2,Time1 | --node-id 17) [--iceberg N] [--where Product1=3]\n  \
     cure-cli index <dir>\n  \
     cure-cli append <dir> [--tuples N] [--seed S]\n  \
     cure-cli ingest <dir> --batch FILE [--keep-old] [--stats F.json]\n  \
     cure-cli ingest-bench <dir> [--out F.json]\n  \
     cure-cli serve-bench <dir> [--queries N] [--threads 1,2,4,8] [--queue N] [--zipf S] [--seed S] [--deadline-ms N] [--chaos] [--read-path cache|mmap] [--shards N] [--replicas M] [--socket] [--stats F.json]\n  \
     cure-cli shard-serve <dir> --listen ADDR [--shard K] [--read-path cache|mmap]\n  \
     cure-cli check <dir> [--seeds N] [--start-seed S] [--budget-secs T] [--corpus DIR]\n  \
     cure-cli info  <dir>\n  \
     cure-cli plan  <dir>"
        .to_string()
}

const SPEC_BLOB: &str = "dataset_spec";

/// The prefix of the currently active cube ("cube_" by default; `append`
/// and `ingest` swap between "cube_" and "cubeB_"). Delegates to the core
/// ingest module so the CLI and the durable ingest pipeline can never
/// disagree about which cube is live.
pub fn active_prefix(catalog: &Catalog) -> String {
    cure_core::active_prefix(catalog)
}

/// Resolve any interrupted ingest before touching the catalog, reporting
/// what recovery did (nothing, rolled back, or completed the swap).
fn report_recovery(out: &mut String, catalog: &Catalog, schema: &CubeSchema) -> Result<()> {
    match cure_core::recover_ingest(catalog, schema, &CubeConfig::default())? {
        None => {}
        Some(cure_core::IngestRecovery::RolledBack { discarded_rows }) => {
            let _ = writeln!(
                out,
                "recovered interrupted ingest: rolled back ({discarded_rows} appended row(s) \
                 discarded)"
            );
        }
        Some(cure_core::IngestRecovery::Completed { new_prefix }) => {
            let _ = writeln!(out, "recovered interrupted ingest: completed swap to {new_prefix}");
        }
    }
    Ok(())
}

/// `ingest-bench`: regenerate the recorded dataset, then for a sweep of
/// delta ratios build a base cube over `|R| - |delta|` rows, ingest the
/// remainder through the durable pipeline, and time a fresh rebuild over
/// all rows for comparison. Scratch catalogs live under `<dir>/` and are
/// removed afterwards.
fn ingest_bench(out: &mut String, dir: &str, out_path: &str) -> Result<()> {
    let catalog = Catalog::open(dir)?;
    let raw = catalog.read_blob(SPEC_BLOB)?;
    let text = String::from_utf8(raw).map_err(|_| CubeError::Schema("bad spec blob".into()))?;
    let mut lines = text.lines();
    let dataset = lines.next().unwrap_or("apb").to_string();
    let scale: u64 = lines.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let density: f64 = lines.next().and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let ds = make_dataset(&dataset, scale, density)?;
    let all = &ds.tuples;
    let n = all.len();
    if n < 4 {
        return Err(CubeError::Config(format!("dataset too small to bench ({n} tuples)")));
    }
    let schema = &ds.schema;
    let (d, y) = (schema.num_dims(), schema.num_measures());
    let slice = |from: usize, to: usize| {
        let mut s = cure_core::Tuples::new(d, y);
        for i in from..to {
            s.push_fact(all.dims_of(i), all.aggs_of(i), (i - from) as u64);
        }
        s
    };
    let build = |catalog: &Catalog, t: &cure_core::Tuples| -> Result<f64> {
        let mut heap = catalog.create_or_replace("facts", cure_core::Tuples::fact_schema(d, y))?;
        t.store_fact(&mut heap)?;
        heap.sync()?;
        drop(heap);
        let cfg = CubeConfig::default();
        let start = std::time::Instant::now();
        let mut sink = DiskSink::new(catalog, "cube_", schema, false, false, None)?;
        let report =
            cure_core::build_cure_cube(catalog, "facts", schema, &cfg, &mut sink, "part_")?;
        let secs = start.elapsed().as_secs_f64();
        CubeMeta {
            prefix: "cube_".into(),
            fact_rel: "facts".into(),
            n_dims: d,
            n_measures: y,
            dr: false,
            plus: false,
            cat_format: report.stats.cat_format,
            partition_level: report.partition.as_ref().map(|p| p.choice.level),
            min_support: 1,
        }
        .write(catalog)?;
        Ok(secs)
    };
    let _ = writeln!(
        out,
        "ingest-bench: {dataset} scale {scale} ({n} tuples); delta ingest vs fresh rebuild:"
    );
    let ratios = [0.01, 0.02, 0.05, 0.10, 0.20, 0.50];
    let mut results = Vec::new();
    for (k, &ratio) in ratios.iter().enumerate() {
        let delta_n = ((n as f64 * ratio) as usize).clamp(1, n - 1);
        let base_n = n - delta_n;
        let scratch = std::path::PathBuf::from(dir).join(format!("ingest_bench_r{k}"));
        let _ = std::fs::remove_dir_all(&scratch);
        // Incremental: base build, then ingest the remainder.
        let inc = Catalog::open(scratch.join("inc"))?;
        build(&inc, &slice(0, base_n))?;
        let report = cure_core::ingest_cube(
            &inc,
            schema,
            &slice(base_n, n),
            &CubeConfig::default(),
            &cure_core::IngestOptions { drop_old: true },
        )?;
        let ingest_secs = report.append_secs + report.merge_secs;
        // Fresh rebuild over all rows.
        let fresh = Catalog::open(scratch.join("fresh"))?;
        let fresh_secs = build(&fresh, all)?;
        let _ = std::fs::remove_dir_all(&scratch);
        let speedup = fresh_secs / ingest_secs.max(1e-9);
        let _ = writeln!(
            out,
            "  |delta|/|R| {:>5.2}: ingest {:>8.3}s (append {:.3}s, merge {:.3}s)  \
             rebuild {:>8.3}s  speedup {:>6.2}x",
            ratio, ingest_secs, report.append_secs, report.merge_secs, fresh_secs, speedup,
        );
        results.push(serde_json::json!(std::collections::BTreeMap::from([
            ("ratio".to_string(), serde_json::json!(ratio)),
            ("base_rows".to_string(), serde_json::json!(base_n as u64)),
            ("delta_rows".to_string(), serde_json::json!(delta_n as u64)),
            ("ingest_secs".to_string(), serde_json::json!(ingest_secs)),
            ("append_secs".to_string(), serde_json::json!(report.append_secs)),
            ("merge_secs".to_string(), serde_json::json!(report.merge_secs)),
            ("rebuild_secs".to_string(), serde_json::json!(fresh_secs)),
            ("speedup".to_string(), serde_json::json!(speedup)),
            ("merged_groups".to_string(), serde_json::json!(report.update.merged_groups)),
            ("carried_groups".to_string(), serde_json::json!(report.update.carried_groups)),
            ("new_groups".to_string(), serde_json::json!(report.update.new_groups)),
            ("tt_demotions".to_string(), serde_json::json!(report.update.tt_demotions)),
        ])));
    }
    let doc = serde_json::json!(std::collections::BTreeMap::from([
        ("dataset".to_string(), serde_json::json!(dataset.clone())),
        ("scale".to_string(), serde_json::json!(scale)),
        ("rows".to_string(), serde_json::json!(n as u64)),
        ("runs".to_string(), serde_json::json!(results)),
    ]));
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                CubeError::Config(format!("cannot create {}: {e}", parent.display()))
            })?;
        }
    }
    let rendered = serde_json::to_string_pretty(&doc)
        .map_err(|e| CubeError::Config(format!("cannot render report: {e}")))?;
    std::fs::write(out_path, rendered)
        .map_err(|e| CubeError::Config(format!("cannot write {out_path}: {e}")))?;
    let _ = writeln!(out, "report → {out_path}");
    Ok(())
}

/// Locate the `cure-shard-serve` binary: the `CURE_SHARD_SERVE_BIN`
/// env override first, then every ancestor of the current executable
/// (which finds `target/{debug,release}/cure-shard-serve` both from an
/// installed `cure-cli` and from a test executable under `deps/`).
fn shard_serve_bin() -> Result<std::path::PathBuf> {
    if let Ok(p) = std::env::var("CURE_SHARD_SERVE_BIN") {
        let p = std::path::PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(CubeError::Config(format!(
            "CURE_SHARD_SERVE_BIN points at '{}', which does not exist",
            p.display()
        )));
    }
    let exe = std::env::current_exe()
        .map_err(|e| CubeError::Config(format!("cannot resolve current executable: {e}")))?;
    for dir in exe.ancestors().skip(1) {
        let cand = dir.join("cure-shard-serve");
        if cand.is_file() {
            return Ok(cand);
        }
    }
    Err(CubeError::Config(
        "cannot find the cure-shard-serve binary next to cure-cli (build it with \
         `cargo build -p cure-serve --bins`, or set CURE_SHARD_SERVE_BIN)"
            .into(),
    ))
}

/// Spawned shard-server children, killed (SIGKILL) and reaped on drop
/// so an error path never leaks processes.
struct ShardProcs(Vec<Option<std::process::Child>>);

impl ShardProcs {
    fn push(&mut self, child: std::process::Child) -> usize {
        self.0.push(Some(child));
        self.0.len() - 1
    }

    /// Hard-kill child `i` mid-run (no shutdown handshake — this is the
    /// process-death drill, not a graceful stop).
    fn kill(&mut self, i: usize) -> Result<u32> {
        let child = self.0[i]
            .as_mut()
            .ok_or_else(|| CubeError::Config(format!("child {i} already killed")))?;
        let pid = child.id();
        child.kill().map_err(|e| CubeError::Config(format!("cannot kill child {i}: {e}")))?;
        let _ = child.wait();
        self.0[i] = None;
        Ok(pid)
    }
}

impl Drop for ShardProcs {
    fn drop(&mut self) {
        for c in self.0.iter_mut().flatten() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Spawn one `cure-shard-serve` child on an OS-assigned loopback port
/// and parse the `LISTENING <addr>` line it prints.
fn spawn_shard_server(
    bin: &std::path::Path,
    dir: &std::path::Path,
    shard: usize,
    read_path: ReadPath,
) -> Result<(std::process::Child, String)> {
    use std::io::BufRead as _;
    let mut child = std::process::Command::new(bin)
        .arg("--dir")
        .arg(dir)
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--read-path")
        .arg(read_path.label())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| CubeError::Config(format!("cannot spawn {}: {e}", bin.display())))?;
    let stdout =
        child.stdout.take().ok_or_else(|| CubeError::Config("child stdout not captured".into()))?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    match lines.next() {
        Some(Ok(line)) if line.starts_with("LISTENING ") => {
            let addr = line["LISTENING ".len()..].trim().to_string();
            Ok((child, addr))
        }
        other => {
            let _ = child.kill();
            let _ = child.wait();
            Err(CubeError::Config(format!(
                "shard {shard} server did not announce its address (got {other:?})"
            )))
        }
    }
}

/// `serve-bench --shards N [--replicas M] [--socket]`: build N
/// partition-scoped sub-cubes over the active fact relation, ship M−1
/// CRC-verified replica directories, verify every merged answer against
/// the unsharded active cube, then drive the scatter-gather
/// [`ShardRouter`](cure_serve::ShardRouter) through the same load
/// harness as the single-service bench. With `--socket` every
/// `(shard, replica)` is its own `cure-shard-serve` child process
/// behind a loopback TCP socket, and the bench SIGKILLs one replica
/// process mid-run to prove the router fails over without ever
/// answering wrong data.
#[allow(clippy::too_many_arguments)]
fn serve_bench_sharded(
    out: &mut String,
    dir: &str,
    queries: u64,
    threads: &[usize],
    queue: usize,
    zipf: Option<f64>,
    seed: u64,
    stats: Option<&str>,
    deadline_ms: Option<u64>,
    read_path: ReadPath,
    shards: usize,
    replicas: usize,
    socket: bool,
) -> Result<()> {
    use cure_serve::{
        replicate_shards, run_load_on, LoadSpec, NodePopularity, RemoteShardBackend,
        RemoteShardConfig, ShardBackend, ShardRouter, ShardRouterConfig, StatsSnapshot,
    };
    let catalog = Catalog::open(dir)?;
    let schema = std::sync::Arc::new(load_schema(&catalog)?);
    let prefix = active_prefix(&catalog);
    let meta = CubeMeta::read(&catalog, &prefix)?;
    if meta.min_support > 1 {
        return Err(CubeError::Config(format!(
            "serve-bench --shards needs a full cube (active cube has min_support {}); iceberg \
             thresholds only apply post-merge — rebuild with --min-sup 1",
            meta.min_support
        )));
    }
    let report = cure_core::build_shard_cubes(
        &catalog,
        &meta.fact_rel,
        &schema,
        &CubeConfig::default(),
        shards,
        1,
    )?;
    let _ = writeln!(
        out,
        "built {} shard sub-cube(s) over {} fact row(s) (rows/shard {:?})",
        report.shards,
        report.rows_per_shard.iter().sum::<u64>(),
        report.rows_per_shard,
    );
    // The primary directory is replica 0; ship the rest through the
    // CRC-verified snapshot-replication path.
    let mut replica_dirs = vec![std::path::PathBuf::from(dir)];
    for j in 1..replicas {
        let dest = std::path::Path::new(dir).join(format!("replica{j}"));
        let _ = std::fs::remove_dir_all(&dest);
        let rep = replicate_shards(&catalog, shards, &dest)?;
        let _ = writeln!(
            out,
            "replica {j}: {} file(s), {} byte(s), {} page CRC(s) verified → {}",
            rep.files,
            rep.bytes,
            rep.pages_verified,
            dest.display(),
        );
        replica_dirs.push(dest);
    }
    // Socket mode: one cure-shard-serve child per (shard, replica),
    // each announcing an OS-assigned loopback port; the router drives
    // them through RemoteShardBackend sockets. Children are killed and
    // reaped when `procs` drops, error paths included.
    let mut procs = ShardProcs(Vec::new());
    let mut remotes: Vec<Vec<(usize, RemoteShardBackend)>> = Vec::new();
    let bin = if socket { Some(shard_serve_bin()?) } else { None };
    let router = if let Some(bin) = &bin {
        let mut backends: Vec<Vec<std::sync::Arc<dyn ShardBackend>>> = Vec::new();
        for k in 0..shards {
            let mut row = Vec::new();
            let mut brow: Vec<std::sync::Arc<dyn ShardBackend>> = Vec::new();
            for rdir in &replica_dirs {
                let (child, addr) = spawn_shard_server(bin, rdir, k, read_path)?;
                let idx = procs.push(child);
                let backend = RemoteShardBackend::connect(&addr, RemoteShardConfig::default())
                    .map_err(|e| {
                        CubeError::Config(format!("cannot connect to shard {k} at {addr}: {e}"))
                    })?;
                row.push((idx, backend.clone()));
                brow.push(std::sync::Arc::new(backend));
            }
            remotes.push(row);
            backends.push(brow);
        }
        let _ = writeln!(
            out,
            "socket shard-serve: spawned {} process(es) ({shards} shard(s) × {replicas} \
             replica(s)) on loopback",
            shards * replicas,
        );
        ShardRouter::from_backends(std::sync::Arc::clone(&schema), backends, read_path)?
    } else {
        ShardRouter::open(
            &replica_dirs,
            std::sync::Arc::clone(&schema),
            &ShardRouterConfig { read_path, ..ShardRouterConfig::default() },
        )?
    };
    // Correctness gate before any throughput numbers: every lattice
    // node's merged answer must equal the unsharded active cube's.
    let mut unsharded = CureCube::open(&catalog, &schema, &prefix)?;
    for id in 0..router.num_nodes() {
        let mut want = unsharded.node_query(id)?;
        want.sort();
        let mut got = router.query(id)?.rows;
        got.sort();
        if got != want {
            return Err(CubeError::Config(format!(
                "sharded answer differs from the unsharded cube on node {id} \
                 ({} vs {} row(s))",
                got.len(),
                want.len()
            )));
        }
    }
    let _ = writeln!(
        out,
        "sharded answers verified identical to unsharded cube ({} node(s), {shards} shard(s), \
         {replicas} replica(s))",
        router.num_nodes(),
    );
    // Process-death drill (socket mode with a replica to spare):
    // SIGKILL one replica's server mid-run, re-sweep every node against
    // the unsharded cube — failover must produce identical answers,
    // never wrong data — then respawn the process and redirect its
    // backend to the new port.
    if socket && replicas >= 2 {
        router.reset_stats();
        let (victim_idx, victim_backend) = remotes[0][1].clone();
        let pid = procs.kill(victim_idx)?;
        let _ = writeln!(out, "killed shard 0 replica 1 (pid {pid}) mid-run");
        for id in 0..router.num_nodes() {
            let mut want = unsharded.node_query(id)?;
            want.sort();
            let mut got = router.query(id)?.rows;
            got.sort();
            if got != want {
                return Err(CubeError::Config(format!(
                    "WRONG DATA after process kill on node {id} ({} vs {} row(s))",
                    got.len(),
                    want.len()
                )));
            }
        }
        let failovers: u64 = router.shard_stats().iter().map(|s| s.failovers).sum();
        let wire = router.wire_totals();
        if failovers == 0 {
            return Err(CubeError::Config(
                "process kill drill routed no traffic through failover (expected > 0)".into(),
            ));
        }
        let _ = writeln!(
            out,
            "survived process kill: {} node answer(s) identical via failover; {failovers} \
             failover(s), {} reconnect(s), {} wire timeout(s)",
            router.num_nodes(),
            wire.reconnects,
            wire.timeouts,
        );
        if let Some(bin) = &bin {
            let (child, addr) = spawn_shard_server(bin, &replica_dirs[1], 0, read_path)?;
            procs.push(child);
            victim_backend.redirect(&addr);
            // Full recovery: the respawned replica serves identical
            // answers through the redirected backend.
            for id in 0..router.num_nodes() {
                let mut want = unsharded.node_query(id)?;
                want.sort();
                let mut got = router.query(id)?.rows;
                got.sort();
                if got != want {
                    return Err(CubeError::Config(format!(
                        "respawned replica answered wrong data on node {id}"
                    )));
                }
            }
            let _ = writeln!(out, "respawned shard 0 replica 1 → {addr}; answers verified again");
        }
    }
    let popularity = match zipf {
        Some(s) => NodePopularity::Zipf(s),
        None => NodePopularity::Uniform,
    };
    let deadline = deadline_ms.map(std::time::Duration::from_millis);
    // Warm every replica's caches so the runs measure steady state.
    run_load_on(
        &router,
        &LoadSpec {
            queries: queries / 4,
            threads: 4,
            queue_depth: queue,
            popularity,
            seed,
            deadline: None,
            shed_on_full: false,
        },
    )?;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(
        out,
        "serving {} nodes over {shards} shard(s) × {replicas} replica(s), {queries} \
         queries/run, {:?} popularity, {} read path ({cores} core(s) available — speedup is \
         bounded by this):",
        router.num_nodes(),
        popularity,
        read_path.label(),
    );
    // Per-run page I/O starts here: exclude build/replication/warm-up.
    catalog.stats().reset();
    let mut snap = StatsSnapshot::new();
    let mut runs = Vec::new();
    let mut base_qps = 0.0;
    for &t in threads {
        let spec = LoadSpec {
            queries,
            threads: t,
            queue_depth: queue,
            popularity,
            seed,
            deadline,
            shed_on_full: false,
        };
        let r = run_load_on(&router, &spec)?;
        snap.push_serve_run(&r, &router.metrics().latency().bucket_counts());
        if base_qps == 0.0 {
            base_qps = r.qps;
        }
        let speedup = if base_qps > 0.0 { r.qps / base_qps } else { 0.0 };
        let _ = writeln!(
            out,
            "  {t} thread(s): {:>8.0} q/s ({:.2}x)  p50 {:>6.0}µs  p95 {:>6.0}µs  \
             p99 {:>6.0}µs  fact cache {:.1}%  agg cache {:.1}%",
            r.qps,
            speedup,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.fact_hit_rate * 100.0,
            r.agg_hit_rate * 100.0,
        );
        runs.push(serde_json::json!(std::collections::BTreeMap::from([
            ("threads".to_string(), serde_json::json!(t as u64)),
            ("shards".to_string(), serde_json::json!(shards as u64)),
            ("replicas".to_string(), serde_json::json!(replicas as u64)),
            ("read_path".to_string(), serde_json::json!(r.read_path)),
            ("queries".to_string(), serde_json::json!(r.queries)),
            ("errors".to_string(), serde_json::json!(r.errors)),
            ("qps".to_string(), serde_json::json!(r.qps)),
            ("speedup".to_string(), serde_json::json!(speedup)),
            ("p50_us".to_string(), serde_json::json!(r.p50_us)),
            ("p95_us".to_string(), serde_json::json!(r.p95_us)),
            ("p99_us".to_string(), serde_json::json!(r.p99_us)),
            ("fact_hit_rate".to_string(), serde_json::json!(r.fact_hit_rate)),
            ("agg_hit_rate".to_string(), serde_json::json!(r.agg_hit_rate)),
            ("fact_shard_hit_rates".to_string(), serde_json::json!(r.fact_shard_hit_rates.clone())),
        ])));
    }
    // Shard-labelled counters for the final run (run_load_on resets
    // them per run so each run's numbers stand alone).
    for s in router.shard_stats() {
        let _ = writeln!(
            out,
            "  shard {}: {} sub-quer(ies), {} error(s), {} failover(s) across {} replica(s)",
            s.shard, s.queries, s.errors, s.failovers, s.replicas,
        );
        if socket {
            let _ = writeln!(
                out,
                "           wire: {} B in, {} B out, {} reconnect(s), {} timeout(s)",
                s.wire.bytes_in, s.wire.bytes_out, s.wire.reconnects, s.wire.timeouts,
            );
        }
    }
    snap.set_shards(&router.shard_stats());
    let _ =
        writeln!(out, "{}", serde_json::to_string(&serde_json::json!(runs)).unwrap_or_default());
    if let Some(path) = stats {
        snap.set_storage(catalog.stats().snapshot());
        std::fs::write(path, snap.to_pretty_bytes())
            .map_err(|e| CubeError::Config(format!("cannot write --stats {path}: {e}")))?;
        let _ = writeln!(out, "stats snapshot → {path}");
    }
    Ok(())
}

fn write_spec(catalog: &Catalog, dataset: &str, scale: u64, density: f64) -> Result<()> {
    catalog.write_blob(SPEC_BLOB, format!("{dataset}\n{scale}\n{density}").as_bytes())?;
    Ok(())
}

/// Recreate the schema recorded by `gen` (generators are deterministic).
pub fn load_schema(catalog: &Catalog) -> Result<CubeSchema> {
    let raw = catalog.read_blob(SPEC_BLOB)?;
    let text = String::from_utf8(raw).map_err(|_| CubeError::Schema("bad spec blob".into()))?;
    let mut lines = text.lines();
    let dataset = lines.next().unwrap_or("apb").to_string();
    let scale: u64 = lines.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let density: f64 = lines.next().and_then(|s| s.parse().ok()).unwrap_or(0.4);
    Ok(make_dataset(&dataset, scale, density)?.schema)
}

fn make_dataset(name: &str, scale: u64, density: f64) -> Result<Dataset> {
    match name {
        "apb" => Ok(cure_data::apb::apb1_dense(density, scale, 0xC11)),
        "covtype" => Ok(cure_data::surrogates::covtype_like(scale as usize)),
        "sep85l" => Ok(cure_data::surrogates::sep85l_like(scale as usize)),
        other => Err(CubeError::Config(format!("unknown dataset '{other}'"))),
    }
}

/// Execute a parsed command; returns the text to print.
pub fn run(cmd: Command) -> Result<String> {
    let mut out = String::new();
    match cmd {
        Command::Gen { dir, dataset, scale, density } => {
            let catalog = Catalog::open(&dir)?;
            let ds = make_dataset(&dataset, scale, density)?;
            ds.store(&catalog, "facts")?;
            write_spec(&catalog, &dataset, scale, density)?;
            let _ = writeln!(
                out,
                "generated {}: {} tuples, {} dimensions → {}/facts",
                ds.name,
                ds.tuples.len(),
                ds.schema.num_dims(),
                dir
            );
        }
        Command::Build { dir, variant, budget_mb, min_sup, resume, threads, stats } => {
            let catalog = Catalog::open(&dir)?;
            let schema = load_schema(&catalog)?;
            // Counters are registry-scoped to this catalog; zero them so
            // the snapshot covers exactly this build.
            catalog.stats().reset();
            let (dr, plus) = match variant.as_str() {
                "cure" => (false, false),
                "cure+" => (false, true),
                "dr" => (true, false),
                "dr+" => (true, true),
                other => return Err(CubeError::Config(format!("unknown variant '{other}'"))),
            };
            if resume && plus {
                return Err(CubeError::Config(
                    "--resume is not supported for CURE+ variants (no durable checkpoints)".into(),
                ));
            }
            let cfg = CubeConfig {
                memory_budget_bytes: budget_mb << 20,
                min_support: min_sup,
                ..CubeConfig::default()
            };
            let resolver: Option<cure_core::sink::RowResolver> = if dr {
                let fact = catalog.open_relation("facts")?;
                let fs = fact.schema().clone();
                let d = schema.num_dims();
                let mut buf = vec![0u8; fs.row_width()];
                Some(Box::new(move |rowid, vals: &mut [u32]| {
                    fact.fetch_into(rowid, &mut buf)?;
                    for (i, o) in vals.iter_mut().enumerate().take(d) {
                        *o = cure_storage::Schema::read_u32_at(&buf, fs.offset(i));
                    }
                    Ok(())
                }))
            } else {
                None
            };
            let start = std::time::Instant::now();
            let mut sink = DiskSink::new(&catalog, "cube_", &schema, dr, plus, resolver)?;
            // CURE and CURE_DR run through the crash-safe driver (the
            // build journals its progress and `--resume` picks up where a
            // crash left off); CURE+ buffers TT bitmaps in memory until
            // `finish`, so it keeps the plain driver.
            let (report, durable_note) = if plus {
                let report = cure_core::build_cure_cube_parallel(
                    &catalog,
                    "facts",
                    &schema,
                    &cfg,
                    &mut sink,
                    "cube_tmp_",
                    threads,
                )?;
                (report, None)
            } else {
                let d = cure_core::build_cure_cube_durable(
                    &catalog,
                    "facts",
                    &schema,
                    &cfg,
                    &mut sink,
                    "cube_tmp_",
                    &cure_core::DurableOptions { resume, threads },
                )?;
                let note = if d.already_complete {
                    Some("already complete (resumed manifest)".to_string())
                } else if d.resumed {
                    Some(format!(
                        "resumed: {} partition pass(es) skipped, {} relation(s) repaired, \
                         {} dropped",
                        d.partitions_skipped, d.relations_repaired, d.relations_dropped
                    ))
                } else {
                    None
                };
                (d.report, note)
            };
            if let Some(note) = durable_note {
                let _ = writeln!(out, "{note}");
            }
            CubeMeta {
                prefix: "cube_".into(),
                fact_rel: "facts".into(),
                n_dims: schema.num_dims(),
                n_measures: schema.num_measures(),
                dr,
                plus,
                cat_format: report.stats.cat_format,
                partition_level: report.partition.as_ref().map(|p| p.choice.level),
                min_support: min_sup,
            }
            .write(&catalog)?;
            if let Some(path) = &stats {
                let mut snap = cure_serve::StatsSnapshot::new();
                snap.set_build(&report);
                snap.set_storage(catalog.stats().snapshot());
                std::fs::write(path, snap.to_pretty_bytes())
                    .map_err(|e| CubeError::Config(format!("cannot write --stats {path}: {e}")))?;
                let _ = writeln!(out, "stats snapshot → {path}");
            }
            let _ = writeln!(
                out,
                "built {variant} cube in {:.2}s: {} tuples ({} TT / {} NT / {} CAT), {} bytes, {}",
                start.elapsed().as_secs_f64(),
                report.stats.total_tuples(),
                report.stats.tt_tuples,
                report.stats.nt_tuples,
                report.stats.cat_tuples,
                report.stats.total_bytes(),
                report
                    .partition
                    .map(|p| format!(
                        "partitioned at L={} ({} parts)",
                        p.choice.level, p.choice.num_partitions
                    ))
                    .unwrap_or_else(|| "in-memory".into()),
            );
        }
        Command::Query { dir, node, node_id, iceberg, filter } => {
            let catalog = Catalog::open(&dir)?;
            let schema = load_schema(&catalog)?;
            let coder = NodeCoder::new(&schema);
            let id = match (node, node_id) {
                (_, Some(id)) => id,
                (Some(spec), None) => parse_node(&schema, &coder, &spec)?,
                (None, None) => {
                    return Err(CubeError::Config("query needs --node or --node-id".into()))
                }
            };
            let mut cube = CureCube::open(&catalog, &schema, &active_prefix(&catalog))?;
            let rows = match (&filter, iceberg) {
                (Some(spec), None) => {
                    let preds = parse_predicates(&schema, spec)?;
                    cube.selective_query(id, &preds)?
                }
                (Some(_), Some(_)) => {
                    return Err(CubeError::Config(
                        "--where and --iceberg cannot be combined".into(),
                    ))
                }
                (None, Some(min)) => {
                    cube.iceberg_count_query(id, min, schema.num_measures() - 1)?
                }
                (None, None) => cube.node_query(id)?,
            };
            let _ = writeln!(out, "node {} ({} rows):", coder.name(&schema, id), rows.len());
            let mut sorted = rows;
            sorted.sort();
            for (dims, aggs) in sorted.iter().take(20) {
                let _ = writeln!(out, "  {dims:?} → {aggs:?}");
            }
            if sorted.len() > 20 {
                let _ = writeln!(out, "  … {} more", sorted.len() - 20);
            }
        }
        Command::Info { dir } => {
            let catalog = Catalog::open(&dir)?;
            let schema = load_schema(&catalog)?;
            let _ = writeln!(out, "catalog {dir}:");
            for d in schema.dims() {
                let levels: Vec<String> =
                    d.levels().iter().map(|l| format!("{} ({})", l.name, l.cardinality)).collect();
                let _ = writeln!(out, "  dimension {}: {}", d.name(), levels.join(" → "));
            }
            let _ = writeln!(out, "  lattice nodes: {}", schema.num_lattice_nodes());
            if let Ok(meta) = CubeMeta::read(&catalog, &active_prefix(&catalog)) {
                let _ = writeln!(
                    out,
                    "  cube: variant dr={} plus={}, cat format {:?}, partition level {:?}, min_sup {}",
                    meta.dr, meta.plus, meta.cat_format, meta.partition_level, meta.min_support
                );
            } else {
                let _ = writeln!(out, "  cube: not built (run `cure-cli build {dir}`)");
            }
            let rels = catalog.list()?;
            let _ = writeln!(out, "  relations: {}", rels.len());
        }
        Command::Index { dir } => {
            let catalog = Catalog::open(&dir)?;
            let schema = load_schema(&catalog)?;
            let bytes = cure_query::index::ValueIndex::build_all(&catalog, "facts", &schema)?;
            let _ = writeln!(
                out,
                "built value indexes for {} dimensions ({} bytes) — `query --where` enabled",
                schema.num_dims(),
                bytes
            );
        }
        Command::Append { dir, tuples, seed } => {
            let catalog = Catalog::open(&dir)?;
            let schema = load_schema(&catalog)?;
            report_recovery(&mut out, &catalog, &schema)?;
            // Generate a delta batch from the recorded dataset spec with a
            // fresh seed; the ingest pipeline appends and re-rowids it.
            let raw = catalog.read_blob(SPEC_BLOB)?;
            let text =
                String::from_utf8(raw).map_err(|_| CubeError::Schema("bad spec blob".into()))?;
            let mut lines = text.lines();
            let dataset = lines.next().unwrap_or("apb").to_string();
            let scale: u64 = lines.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
            let density: f64 = lines.next().and_then(|s| s.parse().ok()).unwrap_or(0.4);
            let src = match dataset.as_str() {
                "apb" => cure_data::apb::apb1_dense(density, scale, seed ^ 0xDE17A),
                "covtype" => cure_data::surrogates::covtype_like(scale as usize),
                "sep85l" => cure_data::surrogates::sep85l_like(scale as usize),
                other => return Err(CubeError::Config(format!("unknown dataset '{other}'"))),
            };
            let take = tuples.min(src.tuples.len());
            let mut delta = cure_core::Tuples::new(schema.num_dims(), schema.num_measures());
            for i in 0..take {
                delta.push_fact(src.tuples.dims_of(i), src.tuples.aggs_of(i), i as u64);
            }
            let report = cure_core::ingest_cube(
                &catalog,
                &schema,
                &delta,
                &CubeConfig::default(),
                &cure_core::IngestOptions { drop_old: true },
            )?;
            // Refresh value indexes if they existed.
            if catalog.blob_exists(&cure_query::index::vidx_blob_name("facts", 0)) {
                cure_query::index::ValueIndex::build_all(&catalog, "facts", &schema)?;
            }
            let _ = writeln!(
                out,
                "appended {take} tuples and merged incrementally in {:.2}s \
                 ({} carried, {} merged, {} new groups, {} TT demotions); \
                 active cube → {} ({} old objects dropped)",
                report.append_secs + report.merge_secs,
                report.update.carried_groups,
                report.update.merged_groups,
                report.update.new_groups,
                report.update.tt_demotions,
                report.new_prefix,
                report.dropped_objects,
            );
        }
        Command::Ingest { dir, batch, keep_old, stats } => {
            let catalog = Catalog::open(&dir)?;
            let schema = load_schema(&catalog)?;
            report_recovery(&mut out, &catalog, &schema)?;
            let text = std::fs::read_to_string(&batch)
                .map_err(|e| CubeError::Config(format!("cannot read --batch {batch}: {e}")))?;
            let delta = cure_core::parse_batch(&schema, &text)?;
            catalog.stats().reset();
            let report = cure_core::ingest_cube(
                &catalog,
                &schema,
                &delta,
                &CubeConfig::default(),
                &cure_core::IngestOptions { drop_old: !keep_old },
            )?;
            if catalog.blob_exists(&cure_query::index::vidx_blob_name("facts", 0)) {
                cure_query::index::ValueIndex::build_all(&catalog, "facts", &schema)?;
            }
            let _ = writeln!(
                out,
                "ingested {} tuple(s) in {:.3}s (append {:.3}s, merge {:.3}s): \
                 {} merged, {} carried, {} new groups, {} TT demotions; \
                 active cube → {} ({} old objects dropped)",
                report.delta_rows,
                report.append_secs + report.merge_secs,
                report.append_secs,
                report.merge_secs,
                report.update.merged_groups,
                report.update.carried_groups,
                report.update.new_groups,
                report.update.tt_demotions,
                report.new_prefix,
                report.dropped_objects,
            );
            if let Some(path) = &stats {
                use cure_serve::{IngestTotals, StatsSnapshot};
                let mut snap = StatsSnapshot::new();
                snap.set_ingest(&IngestTotals::from_report(&report));
                snap.set_storage(catalog.stats().snapshot());
                std::fs::write(path, snap.to_pretty_bytes())
                    .map_err(|e| CubeError::Config(format!("cannot write --stats {path}: {e}")))?;
                let _ = writeln!(out, "stats snapshot → {path}");
            }
        }
        Command::IngestBench { dir, out: out_path } => {
            ingest_bench(&mut out, &dir, &out_path)?;
        }
        Command::ServeBench {
            shards: Some(shards),
            dir,
            queries,
            threads,
            queue,
            zipf,
            seed,
            stats,
            deadline_ms,
            chaos: _,
            read_path,
            replicas,
            socket,
        } => {
            serve_bench_sharded(
                &mut out,
                &dir,
                queries,
                &threads,
                queue,
                zipf,
                seed,
                stats.as_deref(),
                deadline_ms,
                read_path,
                shards,
                replicas,
                socket,
            )?;
        }
        Command::ServeBench {
            dir,
            queries,
            threads,
            queue,
            zipf,
            seed,
            stats,
            deadline_ms,
            chaos,
            read_path,
            shards: _,
            replicas: _,
            socket: _,
        } => {
            use cure_serve::{
                run_load, BreakerState, CubeService, LoadSpec, NodePopularity, QueryOptions,
                ResilienceConfig, StatsSnapshot,
            };
            let plain = std::sync::Arc::new(Catalog::open(&dir)?);
            let schema = std::sync::Arc::new(load_schema(&plain)?);
            let prefix = active_prefix(&plain);
            let popularity = match zipf {
                Some(s) => NodePopularity::Zipf(s),
                None => NodePopularity::Uniform,
            };
            // A deadline default kicks in under chaos so shedding and
            // timeouts have something to cut against.
            let deadline = deadline_ms
                .or(if chaos { Some(5) } else { None })
                .map(std::time::Duration::from_millis);
            let (catalog, service, queue, fault_schedule) = if chaos {
                // Tiny caches force queries back to disk, where the fault
                // schedule lives; the schedule starts after the reads the
                // service issues at startup (measured by a counting
                // probe), so the service always opens cleanly.
                let caches = cure_query::CacheConfig { fact_pages: 8, agg_pages: 4, shards: 2 };
                let counter = std::sync::Arc::new(cure_storage::FaultInjector::counting());
                {
                    let probe = std::sync::Arc::new(Catalog::open_with_policy(
                        &dir,
                        std::sync::Arc::clone(&counter)
                            as std::sync::Arc<dyn cure_storage::IoPolicy>,
                    )?);
                    cure_query::ConcurrentCube::open_with_read_path(
                        probe,
                        std::sync::Arc::clone(&schema),
                        &prefix,
                        caches,
                        read_path,
                    )?;
                }
                // A small bounded budget: enough to exercise retry (the
                // transient ordinals), the breaker (the hard ordinals) and
                // quarantine (the flip ordinals), small enough that the
                // service drains it and heals between runs.
                let fault_budget = (queries / 25).clamp(2, 12);
                let policy = std::sync::Arc::new(cure_storage::FaultInjector::chaos_reads(
                    counter.reads(),
                    2,
                    fault_budget,
                    cure_storage::ReadFaultKind::Chaos,
                ));
                let catalog = std::sync::Arc::new(Catalog::open_with_policy(
                    &dir,
                    std::sync::Arc::clone(&policy) as std::sync::Arc<dyn cure_storage::IoPolicy>,
                )?);
                let cube = cure_query::ConcurrentCube::open_with_read_path(
                    std::sync::Arc::clone(&catalog),
                    std::sync::Arc::clone(&schema),
                    &prefix,
                    caches,
                    read_path,
                )?;
                let service = CubeService::from_cube_with_resilience(
                    std::sync::Arc::new(cube),
                    ResilienceConfig {
                        breaker_threshold: 1,
                        breaker_cooldown: std::time::Duration::from_millis(5),
                        ..ResilienceConfig::default()
                    },
                );
                (catalog, service, queue.min(4), Some((policy, fault_budget)))
            } else {
                let service = CubeService::open_with_read_path(
                    std::sync::Arc::clone(&plain),
                    std::sync::Arc::clone(&schema),
                    &prefix,
                    cure_query::CacheConfig::default(),
                    read_path,
                )?;
                (plain, service, queue, None)
            };
            if !chaos {
                // Warm the shared caches so every thread count measures
                // steady-state serving, not compulsory misses. (Chaos runs
                // stay cold: compulsory misses are the attack surface.)
                run_load(
                    &service,
                    &LoadSpec {
                        queries: queries / 4,
                        threads: 4,
                        queue_depth: queue,
                        popularity,
                        seed,
                        deadline: None,
                        shed_on_full: false,
                    },
                )?;
            }
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            let _ = writeln!(
                out,
                "serving {} nodes, {queries} queries/run, {:?} popularity, {} read path \
                 ({cores} core(s) available — speedup is bounded by this):",
                service.num_nodes(),
                popularity,
                read_path.label(),
            );
            if chaos {
                let _ = writeln!(
                    out,
                    "chaos mode: seeded read faults under live traffic; a query returns \
                     correct rows or a typed error, never wrong data"
                );
            }
            // Per-run page I/O starts here: exclude warm-up traffic.
            catalog.stats().reset();
            let mut snap = StatsSnapshot::new();
            let mut runs = Vec::new();
            let mut base_qps = 0.0;
            for &t in &threads {
                let spec = LoadSpec {
                    queries,
                    threads: t,
                    queue_depth: queue,
                    popularity,
                    seed,
                    deadline,
                    shed_on_full: chaos,
                };
                let r = run_load(&service, &spec)?;
                // Metrics were reset by run_load, so the histogram holds
                // exactly this run's latencies.
                snap.push_serve_run(&r, &service.metrics().latency().bucket_counts());
                if base_qps == 0.0 {
                    base_qps = r.qps;
                }
                let speedup = if base_qps > 0.0 { r.qps / base_qps } else { 0.0 };
                let _ = writeln!(
                    out,
                    "  {t} thread(s): {:>8.0} q/s ({:.2}x)  p50 {:>6.0}µs  p95 {:>6.0}µs  \
                     p99 {:>6.0}µs  fact cache {:.1}%  agg cache {:.1}%",
                    r.qps,
                    speedup,
                    r.p50_us,
                    r.p95_us,
                    r.p99_us,
                    r.fact_hit_rate * 100.0,
                    r.agg_hit_rate * 100.0,
                );
                if chaos || deadline.is_some() {
                    let _ = writeln!(
                        out,
                        "             shed {}  timeouts {}  io {}  corrupt {}  degraded {}  \
                         breaker-trips {}  quarantined {}",
                        r.shed,
                        r.timeouts,
                        r.io_errors,
                        r.corrupt_errors,
                        r.degraded,
                        r.breaker_trips,
                        service.quarantine_len(),
                    );
                }
                runs.push(serde_json::json!(std::collections::BTreeMap::from([
                    ("threads".to_string(), serde_json::json!(t as u64)),
                    ("read_path".to_string(), serde_json::json!(r.read_path)),
                    ("queries".to_string(), serde_json::json!(r.queries)),
                    ("errors".to_string(), serde_json::json!(r.errors)),
                    ("qps".to_string(), serde_json::json!(r.qps)),
                    ("speedup".to_string(), serde_json::json!(speedup)),
                    ("shed".to_string(), serde_json::json!(r.shed)),
                    ("timeouts".to_string(), serde_json::json!(r.timeouts)),
                    ("io_errors".to_string(), serde_json::json!(r.io_errors)),
                    ("corrupt_errors".to_string(), serde_json::json!(r.corrupt_errors)),
                    ("degraded".to_string(), serde_json::json!(r.degraded)),
                    ("breaker_trips".to_string(), serde_json::json!(r.breaker_trips)),
                    ("p50_us".to_string(), serde_json::json!(r.p50_us)),
                    ("p95_us".to_string(), serde_json::json!(r.p95_us)),
                    ("p99_us".to_string(), serde_json::json!(r.p99_us)),
                    ("fact_hit_rate".to_string(), serde_json::json!(r.fact_hit_rate)),
                    ("agg_hit_rate".to_string(), serde_json::json!(r.agg_hit_rate)),
                    (
                        "fact_shard_hit_rates".to_string(),
                        serde_json::json!(r.fact_shard_hit_rates.clone())
                    ),
                ])));
                if let Some((policy, budget)) = &fault_schedule {
                    // Between chaos runs: spend what is left of the fault
                    // schedule (sweeping nodes forces fresh reads past the
                    // tiny caches) and let the service heal — release
                    // quarantined pages and close the breaker — so the
                    // next run measures a recovered service, not the tail
                    // of the previous run's faults.
                    let mut streak = 0;
                    let mut probes: u64 = 0;
                    while probes < 400 && (streak < 5 || policy.read_faults_fired() < *budget) {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        let _ = service.repair_all();
                        let node = probes % service.num_nodes().max(1);
                        // Query first: an open breaker only transitions to
                        // half-open (and then closed) by admitting probe
                        // traffic, so the probe must run unconditionally.
                        let ok = service.query_with_options(node, &QueryOptions::default()).is_ok();
                        let healthy = ok
                            && service.breaker_state() == BreakerState::Closed
                            && service.quarantine_len() == 0;
                        streak = if healthy { streak + 1 } else { 0 };
                        probes += 1;
                    }
                }
            }
            if chaos {
                // Overload demonstration: rerun the load with a deadline
                // shorter than one cold query, so admission control must
                // shed — the deterministic path through queue-expiry.
                let spec = LoadSpec {
                    queries,
                    threads: 1,
                    queue_depth: queue,
                    popularity,
                    seed,
                    deadline: Some(std::time::Duration::from_micros(100)),
                    shed_on_full: true,
                };
                let r = run_load(&service, &spec)?;
                snap.push_serve_run(&r, &service.metrics().latency().bucket_counts());
                let _ = writeln!(
                    out,
                    "overload run (100µs deadline): shed {}  timeouts {}  served {}",
                    r.shed, r.timeouts, r.queries,
                );
                runs.push(serde_json::json!(std::collections::BTreeMap::from([
                    ("overload".to_string(), serde_json::json!(true)),
                    ("threads".to_string(), serde_json::json!(1u64)),
                    ("queries".to_string(), serde_json::json!(r.queries)),
                    ("errors".to_string(), serde_json::json!(r.errors)),
                    ("shed".to_string(), serde_json::json!(r.shed)),
                    ("timeouts".to_string(), serde_json::json!(r.timeouts)),
                    ("io_errors".to_string(), serde_json::json!(r.io_errors)),
                    ("corrupt_errors".to_string(), serde_json::json!(r.corrupt_errors)),
                    ("degraded".to_string(), serde_json::json!(r.degraded)),
                    ("breaker_trips".to_string(), serde_json::json!(r.breaker_trips)),
                ])));
            }
            if chaos {
                // The fault budget is bounded, so once traffic stops the
                // service must be repairable: re-verify quarantined pages
                // from disk and report what is left.
                std::thread::sleep(std::time::Duration::from_millis(60));
                let released = service.repair_all();
                // The breaker only closes by admitting a half-open probe,
                // so send a few live queries until it does (bounded: the
                // fault budget is spent, but don't spin if disk is gone).
                let mut probes = 0;
                while service.breaker_state() != BreakerState::Closed && probes < 50 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    let _ = service.query_with_options(0, &QueryOptions::default());
                    probes += 1;
                }
                let _ = writeln!(
                    out,
                    "chaos recovery: released {released} quarantined page(s), {} still \
                     quarantined; fact breaker {}",
                    service.quarantine_len(),
                    service.breaker_state().label(),
                );
            }
            let _ = writeln!(
                out,
                "{}",
                serde_json::to_string(&serde_json::json!(runs)).unwrap_or_default()
            );
            if let Some(path) = &stats {
                snap.set_storage(catalog.stats().snapshot());
                std::fs::write(path, snap.to_pretty_bytes())
                    .map_err(|e| CubeError::Config(format!("cannot write --stats {path}: {e}")))?;
                let _ = writeln!(out, "stats snapshot → {path}");
            }
        }
        Command::ShardServe { dir, shard, listen, read_path } => {
            // This command never returns: it prints the bound address
            // directly (parents parse it) and serves until killed.
            use cure_serve::{CubeService, ResilienceConfig, ShardServer, ShardServerConfig};
            let catalog = std::sync::Arc::new(Catalog::open(&dir)?);
            let shards = cure_core::read_shard_count(&catalog)?.ok_or_else(|| {
                CubeError::Config(format!("'{dir}' is not a sharded catalog (no topology blob)"))
            })?;
            if shard >= shards {
                return Err(CubeError::Config(format!(
                    "--shard {shard} out of range (catalog has {shards} shard(s))"
                )));
            }
            let schema = cure_core::read_schema_blob(&catalog)?.ok_or_else(|| {
                CubeError::Config(format!("'{dir}' has no schema blob (rebuild the shards)"))
            })?;
            let cube = cure_query::ConcurrentCube::open_with_read_path(
                std::sync::Arc::clone(&catalog),
                std::sync::Arc::new(schema),
                &cure_core::shard_cube_prefix(shard),
                cure_query::CacheConfig::default(),
                read_path,
            )?;
            let service = CubeService::from_cube_with_resilience(
                std::sync::Arc::new(cube),
                ResilienceConfig::default(),
            );
            let server =
                ShardServer::spawn(service, shard as u32, &listen, ShardServerConfig::default())
                    .map_err(|e| CubeError::Config(format!("cannot bind {listen}: {e}")))?;
            println!("LISTENING {}", server.local_addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Command::Plan { dir } => {
            let catalog = Catalog::open(&dir)?;
            let schema = load_schema(&catalog)?;
            let plan = cure_core::PlanSpec::new(&schema);
            let tree = plan.build_tree();
            let _ = writeln!(
                out,
                "P3 execution plan ({} nodes, height {}; ── solid / ╌╌ dashed):",
                tree.len(),
                tree.height()
            );
            out.push_str(&tree.render(&schema, plan.coder()));
        }
        Command::Check { dir, seeds, start_seed, budget_secs, corpus } => {
            use cure_check::{run_suite, SuiteConfig};
            let base = std::path::PathBuf::from(&dir);
            let corpus_dir =
                corpus.map(std::path::PathBuf::from).unwrap_or_else(|| base.join("corpus"));
            let cfg = SuiteConfig {
                seeds: (start_seed..start_seed + seeds).collect(),
                budget: budget_secs.map(std::time::Duration::from_secs),
                corpus_dir: Some(corpus_dir.clone()),
                scratch: base.join("scratch"),
            };
            let start = std::time::Instant::now();
            let report = run_suite(&cfg)
                .map_err(|e| CubeError::Config(format!("conformance sweep failed: {e}")))?;
            let _ = writeln!(
                out,
                "checked {} seed(s) in {:.1}s: {} conformant, {} failing",
                report.seeds_run,
                start.elapsed().as_secs_f64(),
                report.seeds_run - report.failures.len(),
                report.failures.len(),
            );
            for f in &report.failures {
                let _ = writeln!(
                    out,
                    "  seed {}: {} mismatch(es), minimized to {} tuple(s){}",
                    f.seed,
                    f.mismatches.len(),
                    f.minimized_tuples,
                    match &f.case_path {
                        Some(p) => format!(" → {}", p.display()),
                        None => String::new(),
                    },
                );
                for m in f.mismatches.iter().take(3) {
                    let _ = writeln!(out, "    {m}");
                }
            }
            if !report.failures.is_empty() {
                return Err(CubeError::Config(format!(
                    "{} failing seed(s); repros under {}",
                    report.failures.len(),
                    corpus_dir.display()
                )));
            }
        }
    }
    Ok(out)
}

/// Parse a predicate spec like "Product1=3,Time2=1" into
/// [`Predicate`](cure_query::index::Predicate)s.
pub fn parse_predicates(
    schema: &CubeSchema,
    spec: &str,
) -> Result<Vec<cure_query::index::Predicate>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let (lhs, rhs) = part.split_once('=').ok_or_else(|| {
            CubeError::Config(format!("bad predicate '{part}' (want Dim2=value)"))
        })?;
        let (d, dim) = schema
            .dims()
            .iter()
            .enumerate()
            .filter(|(_, dim)| lhs.trim().starts_with(dim.name()))
            .max_by_key(|(_, dim)| dim.name().len())
            .ok_or_else(|| CubeError::Config(format!("no dimension matches '{lhs}'")))?;
        let level: usize = lhs.trim()[dim.name().len()..]
            .parse()
            .map_err(|_| CubeError::Config(format!("bad level in '{lhs}'")))?;
        let value: u32 =
            rhs.trim().parse().map_err(|_| CubeError::Config(format!("bad value in '{part}'")))?;
        out.push(cure_query::index::Predicate { dim: d, level, value });
    }
    Ok(out)
}

/// Parse a node spec like "Product2,Time1" (dimension name + level index;
/// omitted dimensions are at ALL).
pub fn parse_node(schema: &CubeSchema, coder: &NodeCoder, spec: &str) -> Result<u64> {
    let mut levels: Vec<usize> = (0..schema.num_dims()).map(|d| coder.all_level(d)).collect();
    if spec != "ALL" && !spec.is_empty() {
        for part in spec.split(',') {
            let part = part.trim();
            let (d, dim) = schema
                .dims()
                .iter()
                .enumerate()
                .filter(|(_, dim)| part.starts_with(dim.name()))
                .max_by_key(|(_, dim)| dim.name().len())
                .ok_or_else(|| CubeError::Config(format!("no dimension matches '{part}'")))?;
            let lvl_str = &part[dim.name().len()..];
            let level: usize =
                lvl_str.parse().map_err(|_| CubeError::Config(format!("bad level in '{part}'")))?;
            if level >= dim.num_levels() {
                return Err(CubeError::Config(format!(
                    "dimension {} has levels 0..{}, got {level}",
                    dim.name(),
                    dim.num_levels() - 1
                )));
            }
            levels[d] = level;
        }
    }
    Ok(coder.encode(&levels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_gen_defaults() {
        let cmd = parse_args(&s(&["gen", "/tmp/x"])).unwrap();
        assert_eq!(
            cmd,
            Command::Gen { dir: "/tmp/x".into(), dataset: "apb".into(), scale: 1000, density: 0.4 }
        );
    }

    #[test]
    fn parse_build_options() {
        let cmd = parse_args(&s(&[
            "build",
            "/tmp/x",
            "--variant",
            "cure+",
            "--budget-mb",
            "64",
            "--min-sup",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                dir: "/tmp/x".into(),
                variant: "cure+".into(),
                budget_mb: 64,
                min_sup: 5,
                resume: false,
                threads: 1,
                stats: None,
            }
        );
    }

    #[test]
    fn parse_check_defaults() {
        let cmd = parse_args(&s(&["check", "/tmp/x"])).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                dir: "/tmp/x".into(),
                seeds: 32,
                start_seed: 0,
                budget_secs: None,
                corpus: None,
            }
        );
    }

    #[test]
    fn parse_check_options() {
        let cmd = parse_args(&s(&[
            "check",
            "/tmp/x",
            "--seeds",
            "500",
            "--start-seed",
            "1000",
            "--budget-secs",
            "600",
            "--corpus",
            "/tmp/repros",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                dir: "/tmp/x".into(),
                seeds: 500,
                start_seed: 1000,
                budget_secs: Some(600),
                corpus: Some("/tmp/repros".into()),
            }
        );
        assert!(parse_args(&s(&["check", "/tmp/x", "--seeds", "abc"])).is_err());
    }

    #[test]
    fn check_command_sweeps_and_reports() {
        let dir = std::env::temp_dir().join(format!("cure-cli-check-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = run(Command::Check {
            dir: dir.to_string_lossy().into_owned(),
            seeds: 2,
            start_seed: 0,
            budget_secs: None,
            corpus: None,
        })
        .unwrap();
        assert!(out.contains("checked 2 seed(s)"), "unexpected output: {out}");
        assert!(out.contains("2 conformant"), "unexpected output: {out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_build_threads() {
        let cmd = parse_args(&s(&["build", "/tmp/x", "--threads", "4"])).unwrap();
        assert!(matches!(cmd, Command::Build { threads: 4, .. }));
        assert!(parse_args(&s(&["build", "/tmp/x", "--threads", "0"])).is_err());
        assert!(parse_args(&s(&["build", "/tmp/x", "--threads", "many"])).is_err());
    }

    #[test]
    fn parse_build_resume_flag() {
        // `--resume` is valueless and composes with valued options on
        // either side.
        let cmd = parse_args(&s(&["build", "/tmp/x", "--resume", "--min-sup", "2"])).unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                dir: "/tmp/x".into(),
                variant: "cure".into(),
                budget_mb: 256,
                min_sup: 2,
                resume: true,
                threads: 1,
                stats: None,
            }
        );
        let cmd = parse_args(&s(&["build", "/tmp/x", "--min-sup", "2", "--resume"])).unwrap();
        assert!(matches!(cmd, Command::Build { resume: true, min_sup: 2, .. }));
    }

    #[test]
    fn resume_rejected_for_cure_plus() {
        let dir = std::env::temp_dir().join(format!("cure_cli_resplus_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen { dir: dir_s.clone(), dataset: "apb".into(), scale: 200, density: 0.4 })
            .unwrap();
        let err = run(Command::Build {
            dir: dir_s,
            variant: "cure+".into(),
            budget_mb: 256,
            min_sup: 1,
            resume: true,
            threads: 1,
            stats: None,
        })
        .unwrap_err();
        assert!(matches!(err, CubeError::Config(_)));
    }

    #[test]
    fn build_then_resume_reports_already_complete() {
        let dir = std::env::temp_dir().join(format!("cure_cli_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen { dir: dir_s.clone(), dataset: "apb".into(), scale: 500, density: 0.4 })
            .unwrap();
        let build = |resume| {
            run(Command::Build {
                dir: dir_s.clone(),
                variant: "cure".into(),
                budget_mb: 256,
                min_sup: 1,
                resume,
                threads: 1,
                stats: None,
            })
        };
        let first = build(false).unwrap();
        assert!(first.contains("built cure cube"), "{first}");
        let second = build(true).unwrap();
        assert!(second.contains("already complete"), "{second}");
    }

    #[test]
    fn parse_serve_bench_options() {
        let cmd = parse_args(&s(&["serve-bench", "/tmp/x"])).unwrap();
        assert_eq!(
            cmd,
            Command::ServeBench {
                dir: "/tmp/x".into(),
                queries: 1000,
                threads: vec![1, 2, 4, 8],
                queue: 64,
                zipf: None,
                seed: 1,
                stats: None,
                deadline_ms: None,
                chaos: false,
                read_path: ReadPath::Cache,
                shards: None,
                replicas: 1,
                socket: false,
            }
        );
        let cmd = parse_args(&s(&[
            "serve-bench",
            "/tmp/x",
            "--queries",
            "200",
            "--threads",
            "2,4",
            "--zipf",
            "1.1",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::ServeBench {
                dir: "/tmp/x".into(),
                queries: 200,
                threads: vec![2, 4],
                queue: 64,
                zipf: Some(1.1),
                seed: 1,
                stats: None,
                deadline_ms: None,
                chaos: false,
                read_path: ReadPath::Cache,
                shards: None,
                replicas: 1,
                socket: false,
            }
        );
        assert!(parse_args(&s(&["serve-bench", "/tmp/x", "--threads", "two"])).is_err());
        // Robustness flags: --chaos is valueless, --deadline-ms takes ms.
        let cmd =
            parse_args(&s(&["serve-bench", "/tmp/x", "--chaos", "--deadline-ms", "8"])).unwrap();
        assert!(
            matches!(cmd, Command::ServeBench { chaos: true, deadline_ms: Some(8), .. }),
            "{cmd:?}"
        );
        assert!(parse_args(&s(&["serve-bench", "/tmp/x", "--deadline-ms", "soon"])).is_err());
        // `--read-path` takes a value and defaults to the page caches.
        let cmd = parse_args(&s(&["serve-bench", "/tmp/x", "--read-path", "mmap"])).unwrap();
        assert!(matches!(cmd, Command::ServeBench { read_path: ReadPath::Mmap, .. }), "{cmd:?}");
        let cmd =
            parse_args(&s(&["serve-bench", "/tmp/x", "--read-path", "cache", "--chaos"])).unwrap();
        assert!(
            matches!(cmd, Command::ServeBench { read_path: ReadPath::Cache, chaos: true, .. }),
            "{cmd:?}"
        );
        assert_eq!(
            parse_args(&s(&["serve-bench", "/tmp/x", "--read-path", "pread"])).unwrap_err(),
            "bad --read-path (want cache|mmap)"
        );
    }

    #[test]
    fn parse_serve_bench_shard_options() {
        let cmd =
            parse_args(&s(&["serve-bench", "/tmp/x", "--shards", "4", "--replicas", "2"])).unwrap();
        assert!(matches!(cmd, Command::ServeBench { shards: Some(4), replicas: 2, .. }), "{cmd:?}");
        // Defaults: unsharded, one replica (the primary).
        let cmd = parse_args(&s(&["serve-bench", "/tmp/x"])).unwrap();
        assert!(matches!(cmd, Command::ServeBench { shards: None, replicas: 1, .. }), "{cmd:?}");
        assert_eq!(
            parse_args(&s(&["serve-bench", "/tmp/x", "--shards", "0"])).unwrap_err(),
            "bad --shards (want an integer ≥ 1)"
        );
        assert_eq!(
            parse_args(&s(&["serve-bench", "/tmp/x", "--replicas", "0"])).unwrap_err(),
            "bad --replicas (want an integer ≥ 1)"
        );
        // Chaos targets one service's read path; the router fans out.
        assert_eq!(
            parse_args(&s(&["serve-bench", "/tmp/x", "--shards", "2", "--chaos"])).unwrap_err(),
            "--shards cannot be combined with --chaos"
        );
    }

    #[test]
    fn parse_serve_bench_socket_options() {
        // `--socket` is valueless and rides on sharded serving.
        let cmd = parse_args(&s(&[
            "serve-bench",
            "/tmp/x",
            "--socket",
            "--shards",
            "2",
            "--replicas",
            "2",
        ]))
        .unwrap();
        assert!(
            matches!(cmd, Command::ServeBench { socket: true, shards: Some(2), replicas: 2, .. }),
            "{cmd:?}"
        );
        // Default stays in-process.
        let cmd = parse_args(&s(&["serve-bench", "/tmp/x", "--shards", "2"])).unwrap();
        assert!(matches!(cmd, Command::ServeBench { socket: false, .. }), "{cmd:?}");
        assert_eq!(
            parse_args(&s(&["serve-bench", "/tmp/x", "--socket"])).unwrap_err(),
            "--socket needs --shards (sharded serving only)"
        );
        assert_eq!(
            parse_args(&s(&["serve-bench", "/tmp/x", "--socket", "--shards", "2", "--chaos"]))
                .unwrap_err(),
            "--shards cannot be combined with --chaos"
        );
    }

    #[test]
    fn parse_shard_serve_options() {
        let cmd = parse_args(&s(&["shard-serve", "/tmp/x", "--listen", "127.0.0.1:0"])).unwrap();
        assert_eq!(
            cmd,
            Command::ShardServe {
                dir: "/tmp/x".into(),
                shard: 0,
                listen: "127.0.0.1:0".into(),
                read_path: ReadPath::Cache,
            }
        );
        let cmd = parse_args(&s(&[
            "shard-serve",
            "/tmp/x",
            "--shard",
            "3",
            "--listen",
            "127.0.0.1:4810",
            "--read-path",
            "mmap",
        ]))
        .unwrap();
        assert!(
            matches!(cmd, Command::ShardServe { shard: 3, read_path: ReadPath::Mmap, .. }),
            "{cmd:?}"
        );
        let err = parse_args(&s(&["shard-serve", "/tmp/x"])).unwrap_err();
        assert!(err.contains("--listen is required"), "{err}");
        assert!(parse_args(&s(&["shard-serve", "/tmp/x", "--shard", "x"])).is_err());
    }

    #[test]
    fn parse_serve_bench_rejects_zero_and_empty_threads() {
        // Same contract as `build --threads`: caught at parse time, never
        // reaching the worker pool.
        for bad in ["0", "1,0,4", "", " ", ","] {
            let err = parse_args(&s(&["serve-bench", "/tmp/x", "--threads", bad])).unwrap_err();
            assert_eq!(err, "bad --threads (want an integer ≥ 1)", "input {bad:?}");
        }
        assert!(parse_args(&s(&["serve-bench", "/tmp/x", "--threads", "1, 2"])).is_ok());
    }

    #[test]
    fn parse_stats_option() {
        let cmd = parse_args(&s(&["build", "/tmp/x", "--stats", "out.json"])).unwrap();
        assert!(matches!(cmd, Command::Build { stats: Some(p), .. } if p == "out.json"));
        let cmd = parse_args(&s(&["serve-bench", "/tmp/x", "--stats", "out.json"])).unwrap();
        assert!(matches!(cmd, Command::ServeBench { stats: Some(p), .. } if p == "out.json"));
    }

    #[test]
    fn build_stats_snapshot_has_every_layer() {
        let dir = std::env::temp_dir().join(format!("cure_cli_stats_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen { dir: dir_s.clone(), dataset: "apb".into(), scale: 4000, density: 0.4 })
            .unwrap();
        let snap_path = dir.join("stats.json").to_string_lossy().to_string();
        let out = run(Command::Build {
            dir: dir_s,
            variant: "cure".into(),
            budget_mb: 256,
            min_sup: 1,
            resume: false,
            threads: 1,
            stats: Some(snap_path.clone()),
        })
        .unwrap();
        assert!(out.contains("stats snapshot →"), "{out}");
        let text = std::fs::read_to_string(&snap_path).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        // Build layer: sink totals, pool counters, phase timers.
        let build = v.get("build").expect("build section");
        assert!(
            build.get("sink").and_then(|x| x.get("nt_tuples")).and_then(|x| x.as_u64()).unwrap()
                > 0
        );
        assert!(
            build.get("pool").and_then(|x| x.get("tt_prunes")).and_then(|x| x.as_u64()).unwrap()
                > 0
        );
        assert!(
            build.get("phases_secs").and_then(|x| x.get("pass")).and_then(|x| x.as_f64()).unwrap()
                > 0.0
        );
        // Storage layer: the build must have written pages and fsynced.
        let storage = v.get("storage").expect("storage section");
        assert!(storage.get("pages_written").and_then(|x| x.as_u64()).unwrap() > 0);
        assert!(storage.get("fsyncs").and_then(|x| x.as_u64()).unwrap() > 0);
        assert!(storage.get("sort_spill_bytes").and_then(|x| x.as_u64()).is_some());
        // No serving happened, so no serve section.
        assert!(v.get("serve").is_none());
    }

    #[test]
    fn serve_bench_reports_every_thread_count() {
        let dir = std::env::temp_dir().join(format!("cure_cli_serve_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen { dir: dir_s.clone(), dataset: "apb".into(), scale: 8_000, density: 0.4 })
            .unwrap();
        run(Command::Build {
            dir: dir_s.clone(),
            variant: "cure".into(),
            budget_mb: 256,
            min_sup: 1,
            resume: false,
            threads: 1,
            stats: None,
        })
        .unwrap();
        let snap_path = dir.join("serve_stats.json").to_string_lossy().to_string();
        let out = run(Command::ServeBench {
            dir: dir_s,
            queries: 120,
            threads: vec![1, 4],
            queue: 16,
            zipf: Some(1.0),
            seed: 3,
            stats: Some(snap_path.clone()),
            deadline_ms: None,
            chaos: false,
            read_path: ReadPath::Mmap,
            shards: None,
            replicas: 1,
            socket: false,
        })
        .unwrap();
        assert!(out.contains("1 thread(s):"), "{out}");
        assert!(out.contains("4 thread(s):"), "{out}");
        assert!(out.contains("mmap read path"), "{out}");
        // The JSON summary line carries the quantiles and hit rates.
        assert!(out.contains("\"p99_us\""), "{out}");
        assert!(out.contains("\"fact_shard_hit_rates\""), "{out}");
        assert!(out.contains("\"read_path\":\"mmap\""), "{out}");
        assert!(out.contains("\"errors\":0"), "{out}");
        // The snapshot has one serve entry per thread count, each with a
        // latency histogram that accounts for every query.
        let text = std::fs::read_to_string(&snap_path).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        let serve = v.get("serve").and_then(|x| x.as_array()).expect("serve array");
        assert_eq!(serve.len(), 2);
        for r in serve {
            let queries = r.get("queries").and_then(|x| x.as_u64()).unwrap();
            let buckets = r.get("latency_buckets").and_then(|x| x.as_array()).unwrap();
            let recorded: u64 = buckets.iter().filter_map(|b| b.as_u64()).sum();
            assert_eq!(recorded, queries);
            assert!(r.get("fact_hit_rate").and_then(|x| x.as_f64()).is_some());
            assert_eq!(r.get("read_path").and_then(|x| x.as_str()), Some("mmap"));
        }
        assert!(v.get("storage").is_some());
    }

    #[test]
    fn serve_bench_sharded_verifies_and_reports_shard_stats() {
        let dir = std::env::temp_dir().join(format!("cure_cli_shardsrv_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen { dir: dir_s.clone(), dataset: "apb".into(), scale: 4000, density: 0.4 })
            .unwrap();
        run(Command::Build {
            dir: dir_s.clone(),
            variant: "cure".into(),
            budget_mb: 256,
            min_sup: 1,
            resume: false,
            threads: 1,
            stats: None,
        })
        .unwrap();
        let snap_path = dir.join("shard_stats.json").to_string_lossy().to_string();
        let out = run(Command::ServeBench {
            dir: dir_s,
            queries: 80,
            threads: vec![1, 2],
            queue: 16,
            zipf: None,
            seed: 7,
            stats: Some(snap_path.clone()),
            deadline_ms: None,
            chaos: false,
            read_path: ReadPath::Cache,
            shards: Some(3),
            replicas: 2,
            socket: false,
        })
        .unwrap();
        // The correctness gate ran and passed before any load.
        assert!(out.contains("sharded answers verified identical to unsharded cube"), "{out}");
        assert!(out.contains("built 3 shard sub-cube(s)"), "{out}");
        assert!(out.contains("replica 1:"), "{out}");
        assert!(out.contains("1 thread(s):"), "{out}");
        assert!(out.contains("2 thread(s):"), "{out}");
        assert!(out.contains("shard 0:"), "{out}");
        assert!(out.contains("\"errors\":0"), "{out}");
        // The snapshot carries the shard-labelled section.
        let text = std::fs::read_to_string(&snap_path).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        let shards = v.get("shards").and_then(|x| x.as_array()).expect("shards array");
        assert_eq!(shards.len(), 3);
        for (k, s) in shards.iter().enumerate() {
            assert_eq!(s.get("shard").and_then(|x| x.as_u64()), Some(k as u64));
            assert_eq!(s.get("replicas").and_then(|x| x.as_u64()), Some(2));
            assert!(s.get("queries").and_then(|x| x.as_u64()).unwrap() > 0);
            assert_eq!(s.get("errors").and_then(|x| x.as_u64()), Some(0));
        }
        assert!(v.get("serve").is_some());
        assert!(v.get("storage").is_some());
    }

    #[test]
    fn serve_bench_socket_survives_replica_process_kill() {
        // Needs the cure-shard-serve binary; workspace `cargo test`
        // builds it, but a bare `cargo test -p cure` may not have.
        if shard_serve_bin().is_err() {
            eprintln!("skipping: cure-shard-serve not built (run `cargo build --workspace`)");
            return;
        }
        let dir = std::env::temp_dir().join(format!("cure_cli_socksrv_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen { dir: dir_s.clone(), dataset: "apb".into(), scale: 3000, density: 0.4 })
            .unwrap();
        run(Command::Build {
            dir: dir_s.clone(),
            variant: "cure".into(),
            budget_mb: 256,
            min_sup: 1,
            resume: false,
            threads: 1,
            stats: None,
        })
        .unwrap();
        let out = run(Command::ServeBench {
            dir: dir_s,
            queries: 60,
            threads: vec![1, 2],
            queue: 16,
            zipf: None,
            seed: 5,
            stats: None,
            deadline_ms: None,
            chaos: false,
            read_path: ReadPath::Cache,
            shards: Some(2),
            replicas: 2,
            socket: true,
        })
        .unwrap();
        // Pre-measure verification gate over sockets.
        assert!(out.contains("sharded answers verified identical to unsharded cube"), "{out}");
        assert!(out.contains("socket shard-serve: spawned 4 process(es)"), "{out}");
        // The process-death drill: kill, failover with identical
        // answers, respawn + redirect, verified again.
        assert!(out.contains("killed shard 0 replica 1"), "{out}");
        assert!(out.contains("survived process kill"), "{out}");
        assert!(out.contains("answers verified again"), "{out}");
        // Socket counters moved.
        assert!(out.contains("wire:"), "{out}");
        assert!(out.contains("reconnect(s)"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_args(&s(&["frobnicate", "/tmp/x"])).is_err());
        assert!(parse_args(&s(&["gen"])).is_err());
        assert!(parse_args(&s(&["gen", "/tmp/x", "--scale"])).is_err());
        assert!(parse_args(&s(&["gen", "/tmp/x", "stray"])).is_err());
    }

    #[test]
    fn node_spec_parsing() {
        let schema = cure_data::apb::apb_schema();
        let coder = NodeCoder::new(&schema);
        // ALL node.
        let all = parse_node(&schema, &coder, "ALL").unwrap();
        assert_eq!(all, coder.empty_node());
        // Product at Division (level 5), Time at Year (level 2).
        let id = parse_node(&schema, &coder, "Product5,Time2").unwrap();
        let levels = coder.decode(id).unwrap();
        assert_eq!(levels[0], 5);
        assert_eq!(levels[2], 2);
        assert!(coder.is_all(&levels, 1));
        assert!(coder.is_all(&levels, 3));
        // Errors.
        assert!(parse_node(&schema, &coder, "Bogus1").is_err());
        assert!(parse_node(&schema, &coder, "Product9").is_err());
        assert!(parse_node(&schema, &coder, "Productx").is_err());
    }

    #[test]
    fn append_merges_and_swaps_active_cube() {
        let dir = std::env::temp_dir().join(format!("cure_cli_append_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen { dir: dir_s.clone(), dataset: "apb".into(), scale: 8_000, density: 0.4 })
            .unwrap();
        run(Command::Build {
            dir: dir_s.clone(),
            variant: "cure".into(),
            budget_mb: 256,
            min_sup: 1,
            resume: false,
            threads: 1,
            stats: None,
        })
        .unwrap();
        let catalog = Catalog::open(&dir).unwrap();
        let schema = load_schema(&catalog).unwrap();
        let coder = NodeCoder::new(&schema);
        // Total before.
        let all_node = coder.empty_node();
        let mut cube = CureCube::open(&catalog, &schema, &active_prefix(&catalog)).unwrap();
        let before = cube.node_query(all_node).unwrap();
        drop(cube);
        let out = run(Command::Append { dir: dir_s.clone(), tuples: 200, seed: 9 }).unwrap();
        assert!(out.contains("appended 200 tuples"), "{out}");
        assert_eq!(active_prefix(&catalog), "cubeB_");
        // The merged total covers the extra tuples; the fact relation grew.
        let fact = catalog.open_relation("facts").unwrap();
        let n_after = fact.num_rows();
        drop(fact);
        let mut cube = CureCube::open(&catalog, &schema, "cubeB_").unwrap();
        let after = cube.node_query(all_node).unwrap();
        assert_eq!(after.len(), 1);
        assert!(after[0].1[0] > before[0].1[0], "ALL-node sum must grow");
        // Verify the merged ∅ equals a direct recompute over the fact file.
        let t = cure_core::Tuples::load_fact(
            &catalog.open_relation("facts").unwrap(),
            schema.num_dims(),
            schema.num_measures(),
        )
        .unwrap();
        assert_eq!(t.len() as u64, n_after);
        let want = cure_core::reference::compute_node(
            &schema,
            &t,
            &(0..schema.num_dims()).map(|d| coder.all_level(d)).collect::<Vec<_>>(),
        );
        assert_eq!(after[0].1, want[0].aggs);
        // Old cube objects gone.
        assert!(!catalog.exists("cube_aggregates") || active_prefix(&catalog) != "cubeB_");
        // Second append swaps back.
        let out = run(Command::Append { dir: dir_s, tuples: 50, seed: 11 }).unwrap();
        assert!(out.contains("active cube → cube_"), "{out}");
    }

    #[test]
    fn parse_ingest_options() {
        let cmd = parse_args(&s(&["ingest", "/tmp/x", "--batch", "b.txt"])).unwrap();
        assert_eq!(
            cmd,
            Command::Ingest {
                dir: "/tmp/x".into(),
                batch: "b.txt".into(),
                keep_old: false,
                stats: None,
            }
        );
        let cmd = parse_args(&s(&[
            "ingest",
            "/tmp/x",
            "--batch",
            "b.txt",
            "--keep-old",
            "--stats",
            "s.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Ingest {
                dir: "/tmp/x".into(),
                batch: "b.txt".into(),
                keep_old: true,
                stats: Some("s.json".into()),
            }
        );
        // `--keep-old` is valueless and composes on either side of `--batch`.
        let cmd = parse_args(&s(&["ingest", "/tmp/x", "--keep-old", "--batch", "b.txt"])).unwrap();
        assert!(matches!(cmd, Command::Ingest { keep_old: true, .. }));
        let err = parse_args(&s(&["ingest", "/tmp/x"])).unwrap_err();
        assert!(err.contains("--batch is required"), "{err}");
    }

    #[test]
    fn parse_ingest_bench_options() {
        let cmd = parse_args(&s(&["ingest-bench", "/tmp/x"])).unwrap();
        assert_eq!(
            cmd,
            Command::IngestBench { dir: "/tmp/x".into(), out: "results/ingest.json".into() }
        );
        let cmd = parse_args(&s(&["ingest-bench", "/tmp/x", "--out", "other.json"])).unwrap();
        assert!(matches!(cmd, Command::IngestBench { out, .. } if out == "other.json"));
    }

    #[test]
    fn ingest_applies_batch_and_swaps_active_cube() {
        let dir = std::env::temp_dir().join(format!("cure_cli_ingest_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen { dir: dir_s.clone(), dataset: "apb".into(), scale: 8_000, density: 0.4 })
            .unwrap();
        run(Command::Build {
            dir: dir_s.clone(),
            variant: "cure".into(),
            budget_mb: 256,
            min_sup: 1,
            resume: false,
            threads: 1,
            stats: None,
        })
        .unwrap();
        let catalog = Catalog::open(&dir).unwrap();
        let schema = load_schema(&catalog).unwrap();
        let coder = NodeCoder::new(&schema);
        let all_node = coder.empty_node();
        let rows_before = catalog.open_relation("facts").unwrap().num_rows();
        // Three tuples in the "dims | measures" format, plus noise the
        // parser must skip (comments, blank lines).
        let batch = dir.join("batch.txt");
        std::fs::write(
            &batch,
            "# product customer time channel | units dollars\n\
             \n\
             10 3 2 1 | 5 100   # trailing comment\n\
             10 3 2 1 | 7 200\n\
             9 2 1 0 | 1 1\n",
        )
        .unwrap();
        let stats_path = dir.join("ingest_stats.json").to_string_lossy().to_string();
        let out = run(Command::Ingest {
            dir: dir_s.clone(),
            batch: batch.to_string_lossy().to_string(),
            keep_old: false,
            stats: Some(stats_path.clone()),
        })
        .unwrap();
        assert!(out.contains("ingested 3 tuple(s)"), "{out}");
        assert!(out.contains("active cube → cubeB_"), "{out}");
        assert_eq!(active_prefix(&catalog), "cubeB_");
        assert_eq!(catalog.open_relation("facts").unwrap().num_rows(), rows_before + 3);
        // The merged ALL node equals a direct recompute over the grown facts.
        let t = cure_core::Tuples::load_fact(
            &catalog.open_relation("facts").unwrap(),
            schema.num_dims(),
            schema.num_measures(),
        )
        .unwrap();
        let want = cure_core::reference::compute_node(
            &schema,
            &t,
            &(0..schema.num_dims()).map(|d| coder.all_level(d)).collect::<Vec<_>>(),
        );
        let mut cube = CureCube::open(&catalog, &schema, "cubeB_").unwrap();
        let got = cube.node_query(all_node).unwrap();
        assert_eq!(got[0].1, want[0].aggs);
        drop(cube);
        // The stats snapshot carries the ingest and storage sections.
        let text = std::fs::read_to_string(&stats_path).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        let ing = v.get("ingest").expect("ingest section");
        assert_eq!(ing.get("delta_rows").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(ing.get("batches").and_then(|x| x.as_u64()), Some(1));
        assert!(v.get("storage").and_then(|x| x.get("pages_written")).is_some());
        // A malformed batch is rejected before touching the cube.
        std::fs::write(&batch, "1 2 3 | 4 5\n").unwrap();
        let err = run(Command::Ingest {
            dir: dir_s,
            batch: batch.to_string_lossy().to_string(),
            keep_old: false,
            stats: None,
        })
        .unwrap_err();
        assert!(format!("{err}").contains("batch line 1"), "{err}");
        assert_eq!(active_prefix(&catalog), "cubeB_");
    }

    #[test]
    fn ingest_bench_writes_report() {
        let dir = std::env::temp_dir().join(format!("cure_cli_ibench_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen {
            dir: dir_s.clone(),
            dataset: "apb".into(),
            scale: 20_000,
            density: 0.4,
        })
        .unwrap();
        let out_path = dir.join("results").join("ingest.json").to_string_lossy().to_string();
        let out = run(Command::IngestBench { dir: dir_s, out: out_path.clone() }).unwrap();
        assert!(out.contains("ingest-bench: apb scale 20000"), "{out}");
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains(&format!("report → {out_path}")), "{out}");
        let text = std::fs::read_to_string(&out_path).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get("dataset").and_then(|x| x.as_str()), Some("apb"));
        let runs = v.get("runs").and_then(|x| x.as_array()).expect("runs array");
        assert_eq!(runs.len(), 6);
        for r in runs {
            assert!(r.get("ratio").and_then(|x| x.as_f64()).is_some());
            assert!(r.get("delta_rows").and_then(|x| x.as_u64()).unwrap() >= 1);
            assert!(r.get("ingest_secs").and_then(|x| x.as_f64()).unwrap() > 0.0);
            assert!(r.get("rebuild_secs").and_then(|x| x.as_f64()).unwrap() > 0.0);
            assert!(r.get("speedup").and_then(|x| x.as_f64()).is_some());
        }
        // Scratch catalogs are cleaned up; only the report remains.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().to_string();
            assert!(!name.starts_with("ingest_bench_r"), "scratch dir {name} survived");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_command_renders_tree() {
        let dir = std::env::temp_dir().join(format!("cure_cli_plan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        run(Command::Gen {
            dir: dir_s.clone(),
            dataset: "apb".into(),
            scale: 50_000,
            density: 0.4,
        })
        .unwrap();
        let out = run(Command::Plan { dir: dir_s }).unwrap();
        assert!(out.contains("168 nodes"), "{out}");
        assert!(out.contains("height 12"), "{out}");
        assert!(out.lines().count() > 168);
    }

    #[test]
    fn gen_build_query_info_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cure_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().to_string();
        let out = run(Command::Gen {
            dir: dir_s.clone(),
            dataset: "apb".into(),
            scale: 4000,
            density: 0.4,
        })
        .unwrap();
        assert!(out.contains("generated"), "{out}");
        let out = run(Command::Build {
            dir: dir_s.clone(),
            variant: "cure+".into(),
            budget_mb: 256,
            min_sup: 1,
            resume: false,
            threads: 1,
            stats: None,
        })
        .unwrap();
        assert!(out.contains("built cure+"), "{out}");
        let out = run(Command::Query {
            dir: dir_s.clone(),
            node: Some("Product5".into()),
            node_id: None,
            iceberg: None,
            filter: None,
        })
        .unwrap();
        assert!(out.contains("node Product5"), "{out}");
        // Build indexes, then a filtered query at a coarser level.
        let out_idx = run(Command::Index { dir: dir_s.clone() }).unwrap();
        assert!(out_idx.contains("built value indexes"), "{out_idx}");
        // Predicate at a coarser Time level over a Time0 query.
        let out = run(Command::Query {
            dir: dir_s.clone(),
            node: Some("Time0".into()),
            node_id: None,
            iceberg: None,
            filter: Some("Time2=1".into()),
        })
        .unwrap();
        assert!(out.contains("node Time0"), "{out}");
        assert!(!out.contains("(0 rows)"), "filter should match rows: {out}");
        let out = run(Command::Info { dir: dir_s }).unwrap();
        assert!(out.contains("lattice nodes: 168"), "{out}");
        assert!(out.contains("cube: variant"), "{out}");
    }
}
