//! Property-based tests for the storage engine's invariants.

use std::cmp::Ordering;

use cure_storage::sort::{ExternalSorter, RowCmp};
use cure_storage::{BitmapIndex, Catalog, ColType, Column, HeapFile, Page, Schema, Value};
use proptest::prelude::*;

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cure_prop_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitmap: build → serialize → deserialize → iterate is the identity
    /// on any sorted, deduped row-id set.
    #[test]
    fn bitmap_roundtrip(ids in proptest::collection::btree_set(0u64..1_000_000, 0..300)) {
        let sorted: Vec<u64> = ids.into_iter().collect();
        let bm = BitmapIndex::from_sorted(&sorted);
        prop_assert_eq!(bm.count(), sorted.len() as u64);
        let rt = BitmapIndex::from_bytes(&bm.to_bytes()).unwrap();
        let decoded: Vec<u64> = rt.iter().collect();
        prop_assert_eq!(&decoded, &sorted);
        // Membership agrees with the set for probes around the members.
        for &id in sorted.iter().take(20) {
            prop_assert!(rt.contains(id));
            if id > 0 && !sorted.contains(&(id - 1)) {
                prop_assert!(!rt.contains(id - 1));
            }
        }
    }

    /// Bitmap compression never exceeds ~10 bytes per run and beats the
    /// raw 8-byte-per-id encoding on dense runs.
    #[test]
    fn bitmap_dense_compresses(start in 0u64..1000, len in 64u64..4096) {
        let ids: Vec<u64> = (start..start + len).collect();
        let bm = BitmapIndex::from_sorted(&ids);
        prop_assert!(bm.size_bytes() < 16, "one run should stay tiny, got {}", bm.size_bytes());
        prop_assert!(bm.size_bytes() < ids.len() * 8);
    }

    /// Heap files: whatever sequence of rows is appended comes back
    /// identically via scan and via random fetch.
    #[test]
    fn heap_append_fetch(rows in proptest::collection::vec((any::<u32>(), any::<i64>()), 1..400)) {
        let path = tmp("heap").join(format!("t{}.heap", rows.len()));
        let schema = Schema::new(vec![
            Column::new("k", ColType::U32),
            Column::new("v", ColType::I64),
        ]);
        let mut hf = HeapFile::create(&path, schema).unwrap();
        for &(k, v) in &rows {
            hf.append(&[Value::U32(k), Value::I64(v)]).unwrap();
        }
        prop_assert_eq!(hf.num_rows(), rows.len() as u64);
        // Sequential scan order.
        let mut i = 0usize;
        hf.for_each_row(|rowid, raw| {
            assert_eq!(rowid as usize, i);
            assert_eq!(Schema::read_u32_at(raw, 0), rows[i].0);
            assert_eq!(Schema::read_i64_at(raw, 4), rows[i].1);
            i += 1;
        }).unwrap();
        prop_assert_eq!(i, rows.len());
        // Random fetches.
        for probe in [0, rows.len() / 2, rows.len() - 1] {
            let vals = hf.fetch_values(probe as u64).unwrap();
            prop_assert_eq!(vals[0], Value::U32(rows[probe].0));
            prop_assert_eq!(vals[1], Value::I64(rows[probe].1));
        }
    }

    /// External sorter output equals std sort for any input and any
    /// (possibly tiny, spill-forcing) memory budget.
    #[test]
    fn external_sort_matches_std(
        mut vals in proptest::collection::vec(any::<u64>(), 0..500),
        budget in 8usize..4096,
    ) {
        let cmp: &RowCmp = &|a: &[u8], b: &[u8]| -> Ordering {
            u64::from_le_bytes(a.try_into().unwrap()).cmp(&u64::from_le_bytes(b.try_into().unwrap()))
        };
        let dir = tmp("sorter").join(format!("s{}_{budget}", vals.len()));
        let mut sorter = ExternalSorter::new(8, budget, dir, cmp).unwrap();
        for v in &vals {
            sorter.push(&v.to_le_bytes()).unwrap();
        }
        let got: Vec<u64> = sorter
            .finish().unwrap()
            .collect_all().unwrap()
            .into_iter()
            .map(|r| u64::from_le_bytes(r[..8].try_into().unwrap()))
            .collect();
        vals.sort_unstable();
        prop_assert_eq!(got, vals);
    }

    /// Pages hold exactly `capacity(w)` rows of width `w` and return them
    /// verbatim.
    #[test]
    fn page_roundtrip(w in 1usize..512, fill in 0usize..64) {
        let cap = Page::capacity(w);
        let n = fill.min(cap);
        let mut p = Page::new();
        for i in 0..n {
            let row = vec![(i % 251) as u8; w];
            prop_assert!(p.push_row(&row));
        }
        prop_assert_eq!(p.nrows(), n);
        for i in 0..n {
            prop_assert_eq!(p.row(w, i)[0], (i % 251) as u8);
        }
    }

    /// Catalog metadata roundtrips arbitrary schemas.
    #[test]
    fn catalog_schema_roundtrip(cols in proptest::collection::vec(0u8..4, 1..12)) {
        let dir = tmp("catalog").join(format!("c{}", cols.len()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(&dir).unwrap();
        let schema = Schema::new(
            cols.iter()
                .enumerate()
                .map(|(i, &t)| {
                    let ty = match t {
                        0 => ColType::U32,
                        1 => ColType::U64,
                        2 => ColType::I64,
                        _ => ColType::F64,
                    };
                    Column::new(format!("c{i}"), ty)
                })
                .collect(),
        );
        catalog.create_relation("r", schema.clone()).unwrap();
        let opened = catalog.open_relation("r").unwrap();
        prop_assert_eq!(opened.schema(), &schema);
    }
}

/// Fault-injection property tests: run with
/// `cargo test -p cure-storage --features fault-injection`.
///
/// The durability contract under test: rows acknowledged by a successful
/// `flush` + `sync` pair survive a crash at *any* later write, in the
/// exact bytes they were written, after recovery with
/// [`HeapFile::repair_to_rows`]. A plain re-`open` must also always
/// succeed (auto-repairing the torn tail) and never resurrect rows that
/// were never appended.
#[cfg(feature = "fault-injection")]
mod fault_injection {
    use std::sync::Arc;

    use cure_storage::io::{FaultInjector, FaultKind, IoPolicy, NoFaults};
    use cure_storage::{ColType, Column, HeapFile, Schema};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("k", ColType::U32), Column::new("v", ColType::I64)])
    }

    fn row_bytes(i: u64) -> Vec<u8> {
        let mut row = vec![0u8; 12];
        row[..4].copy_from_slice(&(i as u32).to_le_bytes());
        row[4..].copy_from_slice(&((i as i64).wrapping_mul(31) - 7).to_le_bytes());
        row
    }

    fn fresh_path(tag: &str) -> std::path::PathBuf {
        super::tmp("faults").join(format!("{tag}.heap"))
    }

    fn kind_from(sel: u8) -> FaultKind {
        match sel % 3 {
            0 => FaultKind::Error,
            1 => FaultKind::Enospc,
            _ => FaultKind::Torn,
        }
    }

    /// Run `batches` of appends, flush+sync after each batch, under the
    /// given injector. Returns (rows durably acknowledged — i.e. the count
    /// at the last fully successful flush+sync — , rows appended).
    fn run_schedule(
        path: &std::path::Path,
        batches: &[u16],
        injector: Arc<FaultInjector>,
    ) -> (u64, u64) {
        let mut heap = match HeapFile::create_with_policy(
            path,
            schema(),
            injector.clone() as Arc<dyn IoPolicy>,
        ) {
            Ok(h) => h,
            Err(_) => return (0, 0),
        };
        let mut appended = 0u64;
        let mut durable = 0u64;
        for &n in batches {
            for _ in 0..n {
                heap.append_raw(&row_bytes(appended)).unwrap();
                appended += 1;
            }
            if heap.flush().is_err() || heap.sync().is_err() {
                return (durable, appended);
            }
            durable = appended;
        }
        (durable, appended)
    }

    fn assert_rows_intact(heap: &HeapFile, rows: u64) {
        assert_eq!(heap.num_rows(), rows);
        let mut seen = 0u64;
        heap.for_each_row(|rowid, bytes| {
            assert_eq!(rowid, seen);
            assert_eq!(bytes, &row_bytes(seen)[..], "row {seen} corrupted");
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, rows);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Crash at a random write under a random fault kind: every row
        /// acknowledged durable before the crash survives
        /// `repair_to_rows` byte-for-byte, and the repaired file opens
        /// clean (no tail repair).
        #[test]
        fn durable_rows_survive_any_crash(
            batches in proptest::collection::vec(1u16..120, 1..8),
            k in 0u64..40,
            kind_sel in 0u8..3,
            torn_keep in 0usize..8192,
        ) {
            let path = fresh_path(&format!("crash_{k}_{kind_sel}_{torn_keep}"));
            let kind = kind_from(kind_sel);
            let mut inj = FaultInjector::fail_nth_write(k, kind).sticky();
            if matches!(kind, FaultKind::Torn) {
                inj = inj.torn_keep(torn_keep);
            }
            let inj = Arc::new(inj);
            let (durable, _) = run_schedule(&path, &batches, inj.clone());
            if !inj.fired() { return Ok(()); } // k past the schedule's writes: nothing to test

            HeapFile::repair_to_rows(&path, &schema(), durable, &NoFaults).unwrap();
            let (heap, repair) = HeapFile::open_report(&path, schema()).unwrap();
            prop_assert!(repair.is_none(), "repair_to_rows left a torn tail: {:?}", repair);
            assert_rows_intact(&heap, durable);
        }

        /// A plain re-open after a crash must succeed on its own
        /// (auto-repairing the tail) and must never invent rows past what
        /// was appended; every surviving row holds the bytes written for
        /// it.
        #[test]
        fn reopen_after_crash_never_resurrects_rows(
            batches in proptest::collection::vec(1u16..120, 1..8),
            k in 0u64..40,
            kind_sel in 0u8..3,
            torn_keep in 0usize..8192,
        ) {
            let path = fresh_path(&format!("reopen_{k}_{kind_sel}_{torn_keep}"));
            let kind = kind_from(kind_sel);
            let mut inj = FaultInjector::fail_nth_write(k, kind).sticky();
            if matches!(kind, FaultKind::Torn) {
                inj = inj.torn_keep(torn_keep);
            }
            let inj = Arc::new(inj);
            let (_, appended) = run_schedule(&path, &batches, inj.clone());
            if !inj.fired() { return Ok(()); } // k past the schedule's writes: nothing to test

            let (heap, _) = HeapFile::open_report(&path, schema()).unwrap();
            let survived = heap.num_rows();
            prop_assert!(survived <= appended, "{} rows from {} appended", survived, appended);
            assert_rows_intact(&heap, survived);
        }

        /// Transient (EINTR-class) faults are absorbed by the bounded
        /// retry layer: the schedule completes exactly as if fault-free.
        #[test]
        fn transient_faults_are_invisible(
            batches in proptest::collection::vec(1u16..120, 1..8),
            k in 0u64..40,
            failures in 1u32..3,
        ) {
            let path = fresh_path(&format!("transient_{k}_{failures}"));
            let inj = Arc::new(FaultInjector::fail_nth_write(
                k,
                FaultKind::Transient { failures },
            ));
            let (durable, appended) = run_schedule(&path, &batches, inj.clone());
            prop_assert_eq!(durable, appended);
            let (heap, repair) = HeapFile::open_report(&path, schema()).unwrap();
            prop_assert!(repair.is_none());
            assert_rows_intact(&heap, appended);
        }
    }
}
