//! Property-based tests for the storage engine's invariants.

use std::cmp::Ordering;

use cure_storage::sort::{ExternalSorter, RowCmp};
use cure_storage::{BitmapIndex, Catalog, ColType, Column, HeapFile, Page, Schema, Value};
use proptest::prelude::*;

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cure_prop_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitmap: build → serialize → deserialize → iterate is the identity
    /// on any sorted, deduped row-id set.
    #[test]
    fn bitmap_roundtrip(ids in proptest::collection::btree_set(0u64..1_000_000, 0..300)) {
        let sorted: Vec<u64> = ids.into_iter().collect();
        let bm = BitmapIndex::from_sorted(&sorted);
        prop_assert_eq!(bm.count(), sorted.len() as u64);
        let rt = BitmapIndex::from_bytes(&bm.to_bytes()).unwrap();
        let decoded: Vec<u64> = rt.iter().collect();
        prop_assert_eq!(&decoded, &sorted);
        // Membership agrees with the set for probes around the members.
        for &id in sorted.iter().take(20) {
            prop_assert!(rt.contains(id));
            if id > 0 && !sorted.contains(&(id - 1)) {
                prop_assert!(!rt.contains(id - 1));
            }
        }
    }

    /// Bitmap compression never exceeds ~10 bytes per run and beats the
    /// raw 8-byte-per-id encoding on dense runs.
    #[test]
    fn bitmap_dense_compresses(start in 0u64..1000, len in 64u64..4096) {
        let ids: Vec<u64> = (start..start + len).collect();
        let bm = BitmapIndex::from_sorted(&ids);
        prop_assert!(bm.size_bytes() < 16, "one run should stay tiny, got {}", bm.size_bytes());
        prop_assert!(bm.size_bytes() < ids.len() * 8);
    }

    /// Heap files: whatever sequence of rows is appended comes back
    /// identically via scan and via random fetch.
    #[test]
    fn heap_append_fetch(rows in proptest::collection::vec((any::<u32>(), any::<i64>()), 1..400)) {
        let path = tmp("heap").join(format!("t{}.heap", rows.len()));
        let schema = Schema::new(vec![
            Column::new("k", ColType::U32),
            Column::new("v", ColType::I64),
        ]);
        let mut hf = HeapFile::create(&path, schema).unwrap();
        for &(k, v) in &rows {
            hf.append(&[Value::U32(k), Value::I64(v)]).unwrap();
        }
        prop_assert_eq!(hf.num_rows(), rows.len() as u64);
        // Sequential scan order.
        let mut i = 0usize;
        hf.for_each_row(|rowid, raw| {
            assert_eq!(rowid as usize, i);
            assert_eq!(Schema::read_u32_at(raw, 0), rows[i].0);
            assert_eq!(Schema::read_i64_at(raw, 4), rows[i].1);
            i += 1;
        }).unwrap();
        prop_assert_eq!(i, rows.len());
        // Random fetches.
        for probe in [0, rows.len() / 2, rows.len() - 1] {
            let vals = hf.fetch_values(probe as u64).unwrap();
            prop_assert_eq!(vals[0], Value::U32(rows[probe].0));
            prop_assert_eq!(vals[1], Value::I64(rows[probe].1));
        }
    }

    /// External sorter output equals std sort for any input and any
    /// (possibly tiny, spill-forcing) memory budget.
    #[test]
    fn external_sort_matches_std(
        mut vals in proptest::collection::vec(any::<u64>(), 0..500),
        budget in 8usize..4096,
    ) {
        let cmp: &RowCmp = &|a: &[u8], b: &[u8]| -> Ordering {
            u64::from_le_bytes(a.try_into().unwrap()).cmp(&u64::from_le_bytes(b.try_into().unwrap()))
        };
        let dir = tmp("sorter").join(format!("s{}_{budget}", vals.len()));
        let mut sorter = ExternalSorter::new(8, budget, dir, cmp).unwrap();
        for v in &vals {
            sorter.push(&v.to_le_bytes()).unwrap();
        }
        let got: Vec<u64> = sorter
            .finish().unwrap()
            .collect_all().unwrap()
            .into_iter()
            .map(|r| u64::from_le_bytes(r[..8].try_into().unwrap()))
            .collect();
        vals.sort_unstable();
        prop_assert_eq!(got, vals);
    }

    /// Pages hold exactly `capacity(w)` rows of width `w` and return them
    /// verbatim.
    #[test]
    fn page_roundtrip(w in 1usize..512, fill in 0usize..64) {
        let cap = Page::capacity(w);
        let n = fill.min(cap);
        let mut p = Page::new();
        for i in 0..n {
            let row = vec![(i % 251) as u8; w];
            prop_assert!(p.push_row(&row));
        }
        prop_assert_eq!(p.nrows(), n);
        for i in 0..n {
            prop_assert_eq!(p.row(w, i)[0], (i % 251) as u8);
        }
    }

    /// Catalog metadata roundtrips arbitrary schemas.
    #[test]
    fn catalog_schema_roundtrip(cols in proptest::collection::vec(0u8..4, 1..12)) {
        let dir = tmp("catalog").join(format!("c{}", cols.len()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(&dir).unwrap();
        let schema = Schema::new(
            cols.iter()
                .enumerate()
                .map(|(i, &t)| {
                    let ty = match t {
                        0 => ColType::U32,
                        1 => ColType::U64,
                        2 => ColType::I64,
                        _ => ColType::F64,
                    };
                    Column::new(format!("c{i}"), ty)
                })
                .collect(),
        );
        catalog.create_relation("r", schema.clone()).unwrap();
        let opened = catalog.open_relation("r").unwrap();
        prop_assert_eq!(opened.schema(), &schema);
    }
}
