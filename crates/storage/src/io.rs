//! Pluggable I/O fault layer and durable-write helpers.
//!
//! Crash safety is only as good as its tests, and real disks fail in ways
//! unit tests never exercise: torn page writes, `ENOSPC` mid-build,
//! transient `EINTR`-class hiccups, outright device errors. This module
//! makes those failures injectable and *deterministic*:
//!
//! * [`IoPolicy`] — a hook consulted before every heap-page write, blob
//!   write, fsync, **and page read**. Production code uses [`NoFaults`];
//!   tests install a [`FaultInjector`].
//! * [`FaultInjector`] — fails the N-th write (counted globally across all
//!   files opened with the policy) with a chosen [`FaultKind`]; optionally
//!   *sticky*, failing everything after the fault point to simulate process
//!   death at that exact write. On the read side it injects
//!   [`ReadFault`]s — hard `EIO`, transient-then-succeed errors, bit flips
//!   and torn tails — either at one index
//!   ([`FaultInjector::fail_nth_read`]) or on a periodic, bounded schedule
//!   ([`FaultInjector::chaos_reads`]) so a service provably recovers once
//!   the fault budget is spent.
//! * [`with_write_retries`] — bounded retry with exponential backoff for
//!   transient error kinds (`Interrupted`, `WouldBlock`, `TimedOut`);
//!   anything else propagates immediately.
//! * [`atomic_write`] — temp file + fsync + rename + directory fsync, the
//!   standard publish protocol for small metadata files (catalog schemas,
//!   the build manifest). Readers see either the old or the new content,
//!   never a torn mixture.

use std::fmt;
use std::fs::File;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a policy tells a writer to do with one write operation.
pub enum WriteFault {
    /// Perform the write normally.
    Proceed,
    /// Write only the first `keep` bytes, then report failure — a torn
    /// write, as after power loss mid-sector-stream.
    Torn {
        /// Number of leading bytes that reach the disk.
        keep: usize,
    },
    /// Perform no write; report this error.
    Fail(io::Error),
}

/// What a policy tells a reader to do with one page read.
pub enum ReadFault {
    /// Perform the read normally.
    Proceed,
    /// Perform no read; report this error. Transient kinds
    /// (see [`is_transient`]) are retried by the heap layer.
    Fail(io::Error),
    /// Read normally, then flip one bit of the returned buffer — silent
    /// media corruption, caught only by the page checksum.
    FlipBit {
        /// Byte offset of the flipped bit within the read buffer.
        offset: usize,
        /// Bit mask XOR-ed into that byte (nonzero).
        mask: u8,
    },
    /// Read normally, then zero everything past `keep` bytes — a torn
    /// page surfacing on the *read* side (e.g. a partially written
    /// sector stream on a crashed-then-restarted device).
    Torn {
        /// Number of leading bytes left intact.
        keep: usize,
    },
}

/// Decision hook consulted before writes, fsyncs and page reads.
///
/// Implementations must be deterministic given the sequence of calls —
/// the kill-and-resume harness replays identical write schedules and
/// expects identical fault points.
pub trait IoPolicy: Send + Sync + fmt::Debug {
    /// Called before writing `len` bytes at `offset` of `path`.
    fn on_write(&self, _path: &Path, _offset: u64, _len: usize) -> WriteFault {
        WriteFault::Proceed
    }

    /// Called before fsyncing `path` (a file or a directory). `Some(e)`
    /// suppresses the fsync and surfaces `e`.
    fn on_fsync(&self, _path: &Path) -> Option<io::Error> {
        None
    }

    /// Called before reading `len` bytes at `offset` of `path`.
    fn on_read(&self, _path: &Path, _offset: u64, _len: usize) -> ReadFault {
        ReadFault::Proceed
    }
}

/// The production policy: every operation proceeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl IoPolicy for NoFaults {}

/// A shared handle to the no-fault policy.
pub fn no_faults() -> Arc<dyn IoPolicy> {
    Arc::new(NoFaults)
}

/// The failure injected at the target write index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Hard device error (`EIO`); nothing reaches the disk.
    Error,
    /// Disk full (`ENOSPC`); nothing reaches the disk.
    Enospc,
    /// Torn write: a prefix of the data reaches the disk, then an error.
    Torn,
    /// Transient error (`EINTR`-class) for `failures` consecutive write
    /// attempts starting at the target index, then writes succeed again.
    Transient {
        /// How many attempts fail before the fault clears.
        failures: u32,
    },
}

/// The failure injected at a scheduled read index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFaultKind {
    /// Hard device error (`EIO`); nothing is read.
    Error,
    /// Transient error (`EINTR`-class) for `failures` consecutive read
    /// attempts starting at the target index, then reads succeed again.
    /// The heap layer's bounded retry absorbs these.
    Transient {
        /// How many attempts fail before the fault clears.
        failures: u32,
    },
    /// Silent single-bit corruption in the returned page image.
    FlipBit,
    /// The tail of the page image reads back as zeros.
    Torn,
    /// Cycle deterministically through transient / hard-error / bit-flip
    /// by fault ordinal, so one schedule exercises retry, breaker, and
    /// checksum paths at once.
    Chaos,
}

/// Deterministic fault injector: fires at the N-th write (or fsync) seen
/// through this policy, counting from 0 across every file.
///
/// With [`sticky`](Self::sticky), every write and fsync after the fault
/// point also fails — the closest a live process gets to "the machine died
/// at write k": nothing after k reaches the disk, and the builder's error
/// return stands in for process death.
#[derive(Debug)]
pub struct FaultInjector {
    fail_write: Option<u64>,
    fail_fsync: Option<u64>,
    kind: FaultKind,
    sticky: bool,
    /// Bytes a torn write keeps; `None` → half of the request.
    torn_keep: Option<usize>,
    /// First read index that faults; `None` → reads never fault.
    fail_read: Option<u64>,
    /// Fault every `period`-th read from `fail_read` on; `None` → once.
    read_every: Option<u64>,
    read_kind: ReadFaultKind,
    /// Total read faults to inject before going quiet; `None` → unbounded.
    read_limit: Option<u64>,
    writes: AtomicU64,
    fsyncs: AtomicU64,
    reads: AtomicU64,
    fired: AtomicBool,
    transient_left: AtomicU64,
    read_transient_left: AtomicU64,
    read_faults_fired: AtomicU64,
}

impl FaultInjector {
    /// A policy that never fires — counts operations for harnesses that
    /// need to know a build's write schedule length.
    pub fn counting() -> Self {
        Self::new(None, None, FaultKind::Error)
    }

    /// Fail the `n`-th write (0-based, global across files) with `kind`.
    pub fn fail_nth_write(n: u64, kind: FaultKind) -> Self {
        Self::new(Some(n), None, kind)
    }

    /// Fail the `n`-th fsync (0-based, global across files) with `EIO`.
    pub fn fail_nth_fsync(n: u64) -> Self {
        Self::new(None, Some(n), FaultKind::Error)
    }

    /// Fail the `n`-th page read (0-based, global across files) with
    /// `kind`. [`ReadFaultKind::Transient`] fails `failures` consecutive
    /// read attempts starting at `n`, then clears.
    pub fn fail_nth_read(n: u64, kind: ReadFaultKind) -> Self {
        let mut p = Self::new(None, None, FaultKind::Error);
        p.fail_read = Some(n);
        p.read_kind = kind;
        if let ReadFaultKind::Transient { failures } = kind {
            p.read_transient_left = AtomicU64::new(failures as u64);
        }
        p
    }

    /// Inject `count` read faults of `kind`, one at read index `start`
    /// and then every `period`-th read after it; once the budget is
    /// spent, reads proceed normally forever — the schedule a recovery
    /// assertion ("service returns to 100% success") needs.
    ///
    /// Use `period ≥ 2` with transient kinds so the retried read (which
    /// advances the global index) lands off-schedule and succeeds.
    pub fn chaos_reads(start: u64, period: u64, count: u64, kind: ReadFaultKind) -> Self {
        let mut p = Self::fail_nth_read(start, kind);
        p.read_every = Some(period.max(1));
        p.read_limit = Some(count);
        p
    }

    fn new(fail_write: Option<u64>, fail_fsync: Option<u64>, kind: FaultKind) -> Self {
        let transient =
            if let FaultKind::Transient { failures } = kind { failures as u64 } else { 0 };
        FaultInjector {
            fail_write,
            fail_fsync,
            kind,
            sticky: false,
            torn_keep: None,
            fail_read: None,
            read_every: None,
            read_kind: ReadFaultKind::Error,
            read_limit: None,
            writes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            transient_left: AtomicU64::new(transient),
            read_transient_left: AtomicU64::new(0),
            read_faults_fired: AtomicU64::new(0),
        }
    }

    /// After the fault fires, fail every subsequent write and fsync too
    /// (simulated process death). No effect for transient faults.
    pub fn sticky(mut self) -> Self {
        self.sticky = true;
        self
    }

    /// For torn writes: keep exactly `keep` leading bytes instead of half.
    pub fn torn_keep(mut self, keep: usize) -> Self {
        self.torn_keep = Some(keep);
        self
    }

    /// Writes observed so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Fsyncs observed so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::SeqCst)
    }

    /// Page reads observed so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    /// Read faults injected so far (≤ the `chaos_reads` budget).
    pub fn read_faults_fired(&self) -> u64 {
        self.read_faults_fired.load(Ordering::SeqCst)
    }

    /// Whether the fault point was reached.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    fn crashed_error() -> io::Error {
        io::Error::other("injected fault: I/O after crash point")
    }

    /// Materialize one scheduled read fault. `ordinal` is the count of
    /// faults fired before this one (drives the [`ReadFaultKind::Chaos`]
    /// cycle); `idx`/`len` derive a deterministic bit-flip position
    /// inside the page payload (past the 8-byte header, so the checksum
    /// always covers it).
    fn concrete_read_fault(&self, ordinal: u64, idx: u64, len: usize) -> ReadFault {
        let kind = match self.read_kind {
            ReadFaultKind::Chaos => match ordinal % 3 {
                0 => ReadFaultKind::Transient { failures: 1 },
                1 => ReadFaultKind::Error,
                _ => ReadFaultKind::FlipBit,
            },
            k => k,
        };
        match kind {
            ReadFaultKind::Error => {
                self.fired.store(true, Ordering::SeqCst);
                ReadFault::Fail(io::Error::other("injected read I/O error"))
            }
            ReadFaultKind::Transient { .. } => ReadFault::Fail(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient read error",
            )),
            ReadFaultKind::FlipBit | ReadFaultKind::Chaos => {
                let span = len.saturating_sub(8);
                let offset =
                    if span > 0 { 8 + (idx as usize % span) } else { idx as usize % len.max(1) };
                ReadFault::FlipBit { offset, mask: 1 << (idx % 8) }
            }
            ReadFaultKind::Torn => ReadFault::Torn { keep: len / 2 },
        }
    }
}

impl IoPolicy for FaultInjector {
    fn on_write(&self, _path: &Path, _offset: u64, len: usize) -> WriteFault {
        let idx = self.writes.fetch_add(1, Ordering::SeqCst);
        if self.sticky
            && self.fired.load(Ordering::SeqCst)
            && !matches!(self.kind, FaultKind::Transient { .. })
        {
            return WriteFault::Fail(Self::crashed_error());
        }
        let Some(target) = self.fail_write else {
            return WriteFault::Proceed;
        };
        match self.kind {
            FaultKind::Error if idx == target => {
                self.fired.store(true, Ordering::SeqCst);
                WriteFault::Fail(io::Error::other("injected I/O error"))
            }
            FaultKind::Enospc if idx == target => {
                self.fired.store(true, Ordering::SeqCst);
                // ENOSPC, portably.
                WriteFault::Fail(io::Error::from_raw_os_error(28))
            }
            FaultKind::Torn if idx == target => {
                self.fired.store(true, Ordering::SeqCst);
                let keep = self.torn_keep.unwrap_or(len / 2).min(len.saturating_sub(1));
                WriteFault::Torn { keep }
            }
            FaultKind::Transient { .. } if idx >= target => {
                // Burn down the configured failure count, then succeed.
                let left = self.transient_left.load(Ordering::SeqCst);
                if left > 0 {
                    self.fired.store(true, Ordering::SeqCst);
                    self.transient_left.store(left - 1, Ordering::SeqCst);
                    WriteFault::Fail(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected transient error",
                    ))
                } else {
                    WriteFault::Proceed
                }
            }
            _ => WriteFault::Proceed,
        }
    }

    fn on_fsync(&self, _path: &Path) -> Option<io::Error> {
        let idx = self.fsyncs.fetch_add(1, Ordering::SeqCst);
        if self.sticky
            && self.fired.load(Ordering::SeqCst)
            && !matches!(self.kind, FaultKind::Transient { .. })
        {
            return Some(Self::crashed_error());
        }
        if self.fail_fsync == Some(idx) {
            self.fired.store(true, Ordering::SeqCst);
            return Some(io::Error::other("injected fsync error"));
        }
        None
    }

    fn on_read(&self, _path: &Path, _offset: u64, len: usize) -> ReadFault {
        let idx = self.reads.fetch_add(1, Ordering::SeqCst);
        let Some(start) = self.fail_read else {
            return ReadFault::Proceed;
        };
        if let Some(limit) = self.read_limit {
            if self.read_faults_fired.load(Ordering::SeqCst) >= limit {
                return ReadFault::Proceed;
            }
        }
        // One-shot transient mirrors the write semantics: burn the
        // configured failure count on consecutive attempts from the
        // target index, then succeed.
        if self.read_every.is_none() {
            if let ReadFaultKind::Transient { .. } = self.read_kind {
                if idx >= start && self.read_transient_left.load(Ordering::SeqCst) > 0 {
                    self.read_transient_left.fetch_sub(1, Ordering::SeqCst);
                    self.read_faults_fired.fetch_add(1, Ordering::SeqCst);
                    return ReadFault::Fail(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected transient read error",
                    ));
                }
                return ReadFault::Proceed;
            }
        }
        let scheduled = match self.read_every {
            None => idx == start,
            Some(period) => idx >= start && (idx - start).is_multiple_of(period),
        };
        if !scheduled {
            return ReadFault::Proceed;
        }
        let ordinal = self.read_faults_fired.fetch_add(1, Ordering::SeqCst);
        self.concrete_read_fault(ordinal, idx, len)
    }
}

/// Total attempts made for a transient error before giving up.
pub const MAX_WRITE_ATTEMPTS: u32 = 5;

/// Whether an I/O error is worth retrying.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Run `op`, retrying transient errors with exponential backoff (bounded
/// by [`MAX_WRITE_ATTEMPTS`]). Non-transient errors propagate immediately.
pub fn with_write_retries<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut delay = Duration::from_micros(50);
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt < MAX_WRITE_ATTEMPTS => {
                attempt += 1;
                std::thread::sleep(delay);
                delay = delay.saturating_mul(4).min(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Fsync `file`, first consulting `policy` (keyed by `path`).
pub fn fsync_file(policy: &dyn IoPolicy, file: &File, path: &Path) -> io::Result<()> {
    if let Some(e) = policy.on_fsync(path) {
        return Err(e);
    }
    file.sync_all()
}

/// Fsync a directory so renames and file creations within it are durable.
pub fn sync_dir(policy: &dyn IoPolicy, dir: &Path) -> io::Result<()> {
    if let Some(e) = policy.on_fsync(dir) {
        return Err(e);
    }
    File::open(dir)?.sync_all()
}

/// The temp-file path `atomic_write` stages through.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Durably replace the contents of `path` with `bytes`.
///
/// Protocol: write a sibling temp file, fsync it, rename over `path`,
/// fsync the directory. A crash at any step leaves either the old content
/// or the new content at `path` — never a prefix. Transient write errors
/// are retried; a stale temp file from an earlier crash is simply
/// overwritten.
pub fn atomic_write(policy: &dyn IoPolicy, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    with_write_retries(|| match policy.on_write(&tmp, 0, bytes.len()) {
        WriteFault::Proceed => {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            fsync_file(policy, &f, &tmp)
        }
        WriteFault::Torn { keep } => {
            // Simulate the crash leaving a prefix of the temp file behind;
            // the rename never happens, so `path` is untouched.
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes[..keep.min(bytes.len())])?;
            let _ = f.sync_all();
            Err(io::Error::other("injected torn write"))
        }
        WriteFault::Fail(e) => Err(e),
    })?;
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        sync_dir(policy, parent)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cure_io_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn counting_policy_never_fires() {
        let p = FaultInjector::counting();
        for _ in 0..100 {
            assert!(matches!(p.on_write(Path::new("x"), 0, 10), WriteFault::Proceed));
        }
        assert!(p.on_fsync(Path::new("x")).is_none());
        assert_eq!(p.writes(), 100);
        assert_eq!(p.fsyncs(), 1);
        assert!(!p.fired());
    }

    #[test]
    fn nth_write_fails_once_or_sticky() {
        let p = FaultInjector::fail_nth_write(2, FaultKind::Error);
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        // Non-sticky: later writes proceed.
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));

        let p = FaultInjector::fail_nth_write(0, FaultKind::Error).sticky();
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        assert!(p.on_fsync(Path::new("x")).is_some());
        assert!(p.fired());
    }

    #[test]
    fn enospc_has_real_errno() {
        let p = FaultInjector::fail_nth_write(0, FaultKind::Enospc);
        match p.on_write(Path::new("x"), 0, 1) {
            WriteFault::Fail(e) => assert_eq!(e.raw_os_error(), Some(28)),
            _ => panic!("expected failure"),
        }
    }

    #[test]
    fn torn_keeps_a_strict_prefix() {
        let p = FaultInjector::fail_nth_write(0, FaultKind::Torn);
        match p.on_write(Path::new("x"), 0, 100) {
            WriteFault::Torn { keep } => assert_eq!(keep, 50),
            _ => panic!("expected torn"),
        }
        let p = FaultInjector::fail_nth_write(0, FaultKind::Torn).torn_keep(1_000);
        match p.on_write(Path::new("x"), 0, 100) {
            WriteFault::Torn { keep } => assert_eq!(keep, 99, "clamped below len"),
            _ => panic!("expected torn"),
        }
    }

    #[test]
    fn transient_clears_after_failures() {
        let p = FaultInjector::fail_nth_write(1, FaultKind::Transient { failures: 2 });
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));
    }

    #[test]
    fn retries_absorb_transient_errors() {
        let p = FaultInjector::fail_nth_write(0, FaultKind::Transient { failures: 3 });
        let path = Path::new("x");
        let result = with_write_retries(|| match p.on_write(path, 0, 1) {
            WriteFault::Proceed => Ok(42),
            WriteFault::Fail(e) => Err(e),
            WriteFault::Torn { .. } => unreachable!(),
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(p.writes(), 4, "three failures then one success");
    }

    #[test]
    fn retries_give_up_on_hard_errors() {
        let p = FaultInjector::fail_nth_write(0, FaultKind::Error).sticky();
        let path = Path::new("x");
        let result: io::Result<()> = with_write_retries(|| match p.on_write(path, 0, 1) {
            WriteFault::Proceed => Ok(()),
            WriteFault::Fail(e) => Err(e),
            WriteFault::Torn { .. } => unreachable!(),
        });
        assert!(result.is_err());
        assert_eq!(p.writes(), 1, "no retries for non-transient errors");
    }

    #[test]
    fn atomic_write_replaces_or_preserves() {
        let dir = tmpdir("atomic");
        let path = dir.join("target.json");
        std::fs::write(&path, b"old").unwrap();

        // Failure: old content intact, no rename.
        let p = FaultInjector::fail_nth_write(0, FaultKind::Torn);
        assert!(atomic_write(&p, &path, b"new-content").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"old");

        // Success (overwrites the stale temp file from the failed attempt).
        atomic_write(&NoFaults, &path, b"new-content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new-content");
        assert!(!tmp_path(&path).exists(), "temp file renamed away");
    }

    #[test]
    fn atomic_write_rides_out_transients() {
        let dir = tmpdir("transient");
        let path = dir.join("t.json");
        let p = FaultInjector::fail_nth_write(0, FaultKind::Transient { failures: 2 });
        atomic_write(&p, &path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
    }

    #[test]
    fn nth_read_fails_once() {
        let p = FaultInjector::fail_nth_read(1, ReadFaultKind::Error);
        assert!(matches!(p.on_read(Path::new("x"), 0, 8192), ReadFault::Proceed));
        assert!(matches!(p.on_read(Path::new("x"), 0, 8192), ReadFault::Fail(_)));
        assert!(matches!(p.on_read(Path::new("x"), 0, 8192), ReadFault::Proceed));
        assert_eq!(p.reads(), 3);
        assert_eq!(p.read_faults_fired(), 1);
        // Writes are unaffected by a read-only schedule.
        assert!(matches!(p.on_write(Path::new("x"), 0, 10), WriteFault::Proceed));
    }

    #[test]
    fn transient_read_clears_after_failures() {
        let p = FaultInjector::fail_nth_read(0, ReadFaultKind::Transient { failures: 2 });
        assert!(matches!(p.on_read(Path::new("x"), 0, 8192), ReadFault::Fail(_)));
        assert!(matches!(p.on_read(Path::new("x"), 0, 8192), ReadFault::Fail(_)));
        assert!(matches!(p.on_read(Path::new("x"), 0, 8192), ReadFault::Proceed));
        let retried = with_write_retries(|| match p.on_read(Path::new("x"), 0, 8192) {
            ReadFault::Proceed => Ok(7),
            ReadFault::Fail(e) => Err(e),
            _ => unreachable!(),
        });
        assert_eq!(retried.unwrap(), 7);
    }

    #[test]
    fn flip_bit_lands_in_the_payload() {
        let p = FaultInjector::fail_nth_read(0, ReadFaultKind::FlipBit);
        match p.on_read(Path::new("x"), 0, 8192) {
            ReadFault::FlipBit { offset, mask } => {
                assert!((8..8192).contains(&offset), "offset {offset} outside payload");
                assert_ne!(mask, 0);
            }
            _ => panic!("expected a bit flip"),
        }
    }

    #[test]
    fn torn_read_keeps_half() {
        let p = FaultInjector::fail_nth_read(0, ReadFaultKind::Torn);
        match p.on_read(Path::new("x"), 0, 8192) {
            ReadFault::Torn { keep } => assert_eq!(keep, 4096),
            _ => panic!("expected a torn read"),
        }
    }

    #[test]
    fn chaos_schedule_cycles_kinds_and_respects_budget() {
        let p = FaultInjector::chaos_reads(0, 2, 3, ReadFaultKind::Chaos);
        let mut kinds = Vec::new();
        for _ in 0..10 {
            match p.on_read(Path::new("x"), 0, 8192) {
                ReadFault::Proceed => {}
                ReadFault::Fail(e) if is_transient(&e) => kinds.push("transient"),
                ReadFault::Fail(_) => kinds.push("hard"),
                ReadFault::FlipBit { .. } => kinds.push("flip"),
                ReadFault::Torn { .. } => kinds.push("torn"),
            }
        }
        assert_eq!(kinds, vec!["transient", "hard", "flip"], "cycle then budget exhausted");
        assert_eq!(p.read_faults_fired(), 3);
        // Budget spent: everything proceeds from here on.
        for _ in 0..20 {
            assert!(matches!(p.on_read(Path::new("x"), 0, 8192), ReadFault::Proceed));
        }
    }
}
