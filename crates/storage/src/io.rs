//! Pluggable I/O fault layer and durable-write helpers.
//!
//! Crash safety is only as good as its tests, and real disks fail in ways
//! unit tests never exercise: torn page writes, `ENOSPC` mid-build,
//! transient `EINTR`-class hiccups, outright device errors. This module
//! makes those failures injectable and *deterministic*:
//!
//! * [`IoPolicy`] — a hook consulted before every heap-page write, blob
//!   write, and fsync. Production code uses [`NoFaults`]; tests install a
//!   [`FaultInjector`].
//! * [`FaultInjector`] — fails the N-th write (counted globally across all
//!   files opened with the policy) with a chosen [`FaultKind`]; optionally
//!   *sticky*, failing everything after the fault point to simulate process
//!   death at that exact write.
//! * [`with_write_retries`] — bounded retry with exponential backoff for
//!   transient error kinds (`Interrupted`, `WouldBlock`, `TimedOut`);
//!   anything else propagates immediately.
//! * [`atomic_write`] — temp file + fsync + rename + directory fsync, the
//!   standard publish protocol for small metadata files (catalog schemas,
//!   the build manifest). Readers see either the old or the new content,
//!   never a torn mixture.

use std::fmt;
use std::fs::File;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a policy tells a writer to do with one write operation.
pub enum WriteFault {
    /// Perform the write normally.
    Proceed,
    /// Write only the first `keep` bytes, then report failure — a torn
    /// write, as after power loss mid-sector-stream.
    Torn {
        /// Number of leading bytes that reach the disk.
        keep: usize,
    },
    /// Perform no write; report this error.
    Fail(io::Error),
}

/// Decision hook consulted before writes and fsyncs.
///
/// Implementations must be deterministic given the sequence of calls —
/// the kill-and-resume harness replays identical write schedules and
/// expects identical fault points.
pub trait IoPolicy: Send + Sync + fmt::Debug {
    /// Called before writing `len` bytes at `offset` of `path`.
    fn on_write(&self, _path: &Path, _offset: u64, _len: usize) -> WriteFault {
        WriteFault::Proceed
    }

    /// Called before fsyncing `path` (a file or a directory). `Some(e)`
    /// suppresses the fsync and surfaces `e`.
    fn on_fsync(&self, _path: &Path) -> Option<io::Error> {
        None
    }
}

/// The production policy: every operation proceeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl IoPolicy for NoFaults {}

/// A shared handle to the no-fault policy.
pub fn no_faults() -> Arc<dyn IoPolicy> {
    Arc::new(NoFaults)
}

/// The failure injected at the target write index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Hard device error (`EIO`); nothing reaches the disk.
    Error,
    /// Disk full (`ENOSPC`); nothing reaches the disk.
    Enospc,
    /// Torn write: a prefix of the data reaches the disk, then an error.
    Torn,
    /// Transient error (`EINTR`-class) for `failures` consecutive write
    /// attempts starting at the target index, then writes succeed again.
    Transient {
        /// How many attempts fail before the fault clears.
        failures: u32,
    },
}

/// Deterministic fault injector: fires at the N-th write (or fsync) seen
/// through this policy, counting from 0 across every file.
///
/// With [`sticky`](Self::sticky), every write and fsync after the fault
/// point also fails — the closest a live process gets to "the machine died
/// at write k": nothing after k reaches the disk, and the builder's error
/// return stands in for process death.
#[derive(Debug)]
pub struct FaultInjector {
    fail_write: Option<u64>,
    fail_fsync: Option<u64>,
    kind: FaultKind,
    sticky: bool,
    /// Bytes a torn write keeps; `None` → half of the request.
    torn_keep: Option<usize>,
    writes: AtomicU64,
    fsyncs: AtomicU64,
    fired: AtomicBool,
    transient_left: AtomicU64,
}

impl FaultInjector {
    /// A policy that never fires — counts operations for harnesses that
    /// need to know a build's write schedule length.
    pub fn counting() -> Self {
        Self::new(None, None, FaultKind::Error)
    }

    /// Fail the `n`-th write (0-based, global across files) with `kind`.
    pub fn fail_nth_write(n: u64, kind: FaultKind) -> Self {
        Self::new(Some(n), None, kind)
    }

    /// Fail the `n`-th fsync (0-based, global across files) with `EIO`.
    pub fn fail_nth_fsync(n: u64) -> Self {
        Self::new(None, Some(n), FaultKind::Error)
    }

    fn new(fail_write: Option<u64>, fail_fsync: Option<u64>, kind: FaultKind) -> Self {
        let transient =
            if let FaultKind::Transient { failures } = kind { failures as u64 } else { 0 };
        FaultInjector {
            fail_write,
            fail_fsync,
            kind,
            sticky: false,
            torn_keep: None,
            writes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            transient_left: AtomicU64::new(transient),
        }
    }

    /// After the fault fires, fail every subsequent write and fsync too
    /// (simulated process death). No effect for transient faults.
    pub fn sticky(mut self) -> Self {
        self.sticky = true;
        self
    }

    /// For torn writes: keep exactly `keep` leading bytes instead of half.
    pub fn torn_keep(mut self, keep: usize) -> Self {
        self.torn_keep = Some(keep);
        self
    }

    /// Writes observed so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Fsyncs observed so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::SeqCst)
    }

    /// Whether the fault point was reached.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    fn crashed_error() -> io::Error {
        io::Error::other("injected fault: I/O after crash point")
    }
}

impl IoPolicy for FaultInjector {
    fn on_write(&self, _path: &Path, _offset: u64, len: usize) -> WriteFault {
        let idx = self.writes.fetch_add(1, Ordering::SeqCst);
        if self.sticky
            && self.fired.load(Ordering::SeqCst)
            && !matches!(self.kind, FaultKind::Transient { .. })
        {
            return WriteFault::Fail(Self::crashed_error());
        }
        let Some(target) = self.fail_write else {
            return WriteFault::Proceed;
        };
        match self.kind {
            FaultKind::Error if idx == target => {
                self.fired.store(true, Ordering::SeqCst);
                WriteFault::Fail(io::Error::other("injected I/O error"))
            }
            FaultKind::Enospc if idx == target => {
                self.fired.store(true, Ordering::SeqCst);
                // ENOSPC, portably.
                WriteFault::Fail(io::Error::from_raw_os_error(28))
            }
            FaultKind::Torn if idx == target => {
                self.fired.store(true, Ordering::SeqCst);
                let keep = self.torn_keep.unwrap_or(len / 2).min(len.saturating_sub(1));
                WriteFault::Torn { keep }
            }
            FaultKind::Transient { .. } if idx >= target => {
                // Burn down the configured failure count, then succeed.
                let left = self.transient_left.load(Ordering::SeqCst);
                if left > 0 {
                    self.fired.store(true, Ordering::SeqCst);
                    self.transient_left.store(left - 1, Ordering::SeqCst);
                    WriteFault::Fail(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected transient error",
                    ))
                } else {
                    WriteFault::Proceed
                }
            }
            _ => WriteFault::Proceed,
        }
    }

    fn on_fsync(&self, _path: &Path) -> Option<io::Error> {
        let idx = self.fsyncs.fetch_add(1, Ordering::SeqCst);
        if self.sticky
            && self.fired.load(Ordering::SeqCst)
            && !matches!(self.kind, FaultKind::Transient { .. })
        {
            return Some(Self::crashed_error());
        }
        if self.fail_fsync == Some(idx) {
            self.fired.store(true, Ordering::SeqCst);
            return Some(io::Error::other("injected fsync error"));
        }
        None
    }
}

/// Total attempts made for a transient error before giving up.
pub const MAX_WRITE_ATTEMPTS: u32 = 5;

/// Whether an I/O error is worth retrying.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Run `op`, retrying transient errors with exponential backoff (bounded
/// by [`MAX_WRITE_ATTEMPTS`]). Non-transient errors propagate immediately.
pub fn with_write_retries<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut delay = Duration::from_micros(50);
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt < MAX_WRITE_ATTEMPTS => {
                attempt += 1;
                std::thread::sleep(delay);
                delay = delay.saturating_mul(4).min(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Fsync `file`, first consulting `policy` (keyed by `path`).
pub fn fsync_file(policy: &dyn IoPolicy, file: &File, path: &Path) -> io::Result<()> {
    if let Some(e) = policy.on_fsync(path) {
        return Err(e);
    }
    file.sync_all()
}

/// Fsync a directory so renames and file creations within it are durable.
pub fn sync_dir(policy: &dyn IoPolicy, dir: &Path) -> io::Result<()> {
    if let Some(e) = policy.on_fsync(dir) {
        return Err(e);
    }
    File::open(dir)?.sync_all()
}

/// The temp-file path `atomic_write` stages through.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Durably replace the contents of `path` with `bytes`.
///
/// Protocol: write a sibling temp file, fsync it, rename over `path`,
/// fsync the directory. A crash at any step leaves either the old content
/// or the new content at `path` — never a prefix. Transient write errors
/// are retried; a stale temp file from an earlier crash is simply
/// overwritten.
pub fn atomic_write(policy: &dyn IoPolicy, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    with_write_retries(|| match policy.on_write(&tmp, 0, bytes.len()) {
        WriteFault::Proceed => {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            fsync_file(policy, &f, &tmp)
        }
        WriteFault::Torn { keep } => {
            // Simulate the crash leaving a prefix of the temp file behind;
            // the rename never happens, so `path` is untouched.
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes[..keep.min(bytes.len())])?;
            let _ = f.sync_all();
            Err(io::Error::other("injected torn write"))
        }
        WriteFault::Fail(e) => Err(e),
    })?;
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        sync_dir(policy, parent)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cure_io_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn counting_policy_never_fires() {
        let p = FaultInjector::counting();
        for _ in 0..100 {
            assert!(matches!(p.on_write(Path::new("x"), 0, 10), WriteFault::Proceed));
        }
        assert!(p.on_fsync(Path::new("x")).is_none());
        assert_eq!(p.writes(), 100);
        assert_eq!(p.fsyncs(), 1);
        assert!(!p.fired());
    }

    #[test]
    fn nth_write_fails_once_or_sticky() {
        let p = FaultInjector::fail_nth_write(2, FaultKind::Error);
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        // Non-sticky: later writes proceed.
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));

        let p = FaultInjector::fail_nth_write(0, FaultKind::Error).sticky();
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        assert!(p.on_fsync(Path::new("x")).is_some());
        assert!(p.fired());
    }

    #[test]
    fn enospc_has_real_errno() {
        let p = FaultInjector::fail_nth_write(0, FaultKind::Enospc);
        match p.on_write(Path::new("x"), 0, 1) {
            WriteFault::Fail(e) => assert_eq!(e.raw_os_error(), Some(28)),
            _ => panic!("expected failure"),
        }
    }

    #[test]
    fn torn_keeps_a_strict_prefix() {
        let p = FaultInjector::fail_nth_write(0, FaultKind::Torn);
        match p.on_write(Path::new("x"), 0, 100) {
            WriteFault::Torn { keep } => assert_eq!(keep, 50),
            _ => panic!("expected torn"),
        }
        let p = FaultInjector::fail_nth_write(0, FaultKind::Torn).torn_keep(1_000);
        match p.on_write(Path::new("x"), 0, 100) {
            WriteFault::Torn { keep } => assert_eq!(keep, 99, "clamped below len"),
            _ => panic!("expected torn"),
        }
    }

    #[test]
    fn transient_clears_after_failures() {
        let p = FaultInjector::fail_nth_write(1, FaultKind::Transient { failures: 2 });
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Fail(_)));
        assert!(matches!(p.on_write(Path::new("x"), 0, 1), WriteFault::Proceed));
    }

    #[test]
    fn retries_absorb_transient_errors() {
        let p = FaultInjector::fail_nth_write(0, FaultKind::Transient { failures: 3 });
        let path = Path::new("x");
        let result = with_write_retries(|| match p.on_write(path, 0, 1) {
            WriteFault::Proceed => Ok(42),
            WriteFault::Fail(e) => Err(e),
            WriteFault::Torn { .. } => unreachable!(),
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(p.writes(), 4, "three failures then one success");
    }

    #[test]
    fn retries_give_up_on_hard_errors() {
        let p = FaultInjector::fail_nth_write(0, FaultKind::Error).sticky();
        let path = Path::new("x");
        let result: io::Result<()> = with_write_retries(|| match p.on_write(path, 0, 1) {
            WriteFault::Proceed => Ok(()),
            WriteFault::Fail(e) => Err(e),
            WriteFault::Torn { .. } => unreachable!(),
        });
        assert!(result.is_err());
        assert_eq!(p.writes(), 1, "no retries for non-transient errors");
    }

    #[test]
    fn atomic_write_replaces_or_preserves() {
        let dir = tmpdir("atomic");
        let path = dir.join("target.json");
        std::fs::write(&path, b"old").unwrap();

        // Failure: old content intact, no rename.
        let p = FaultInjector::fail_nth_write(0, FaultKind::Torn);
        assert!(atomic_write(&p, &path, b"new-content").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"old");

        // Success (overwrites the stale temp file from the failed attempt).
        atomic_write(&NoFaults, &path, b"new-content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new-content");
        assert!(!tmp_path(&path).exists(), "temp file renamed away");
    }

    #[test]
    fn atomic_write_rides_out_transients() {
        let dir = tmpdir("transient");
        let path = dir.join("t.json");
        let p = FaultInjector::fail_nth_write(0, FaultKind::Transient { failures: 2 });
        atomic_write(&p, &path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
    }
}
