//! # cure-storage — a minimal relational (ROLAP) storage engine
//!
//! CURE ("Cubing Using a ROLAP Engine", Morfonios & Ioannidis, VLDB 2006) is
//! deliberately *relational*: every artifact it produces — cube nodes, the
//! shared `AGGREGATES` relation, trivial-tuple row-id lists, spill partitions
//! — is an ordinary relation of fixed-width tuples addressed by row-ids.
//! This crate provides that substrate from scratch:
//!
//! * [`schema`] — column types and fixed-width row layouts,
//! * [`heap`] — append-only page-structured heap files with sequential scan
//!   and random row fetch,
//! * [`catalog`] — a named-relation directory (the "database"),
//! * [`cache`] — an LRU page cache with hit/miss accounting (drives the
//!   paper's Figure 17 caching experiment),
//! * [`shared_cache`] — a thread-safe sharded wrapper over [`cache`] for
//!   the concurrent serving path (`cure-serve`),
//! * [`bitmap`] — RLE-compressed bitmap indexes over row-ids (the CURE+
//!   variant of §5.3),
//! * [`sort`] — an external merge sorter for relations larger than memory,
//! * [`hash`] — a fast FxHash-style hasher for integer-keyed hot paths.
//!
//! * [`io`] — a pluggable I/O fault layer ([`io::IoPolicy`]) with a
//!   deterministic [`io::FaultInjector`], retry-with-backoff for transient
//!   errors, and the [`io::atomic_write`] publish protocol backing
//!   crash-safe cube construction,
//!
//! Cube *construction* is synchronous and single-threaded by design: the
//! paper's algorithms are single-threaded, and keeping the engine simple
//! makes the measured construction costs attributable to the cubing
//! algorithms rather than to engine concurrency artifacts. Query *serving*
//! is concurrent: heap files are readable through `&self`
//! ([`heap::HeapFile::fetch_shared`]) and pages are shared across worker
//! threads via the sharded [`shared_cache::SharedBufferCache`].

pub mod bitmap;
pub mod cache;
pub mod catalog;
pub mod checksum;
pub mod error;
pub mod hash;
pub mod heap;
pub mod io;
pub mod mmap;
pub mod page;
pub mod schema;
pub mod shared_cache;
pub mod snapshot;
pub mod sort;
pub mod stats;

pub use bitmap::BitmapIndex;
pub use cache::BufferCache;
pub use catalog::Catalog;
pub use error::{Result, StorageError};
pub use heap::{HeapFile, RowId, TailRepair};
pub use io::{
    atomic_write, FaultInjector, FaultKind, IoPolicy, NoFaults, ReadFault, ReadFaultKind,
    WriteFault,
};
pub use mmap::MmapRelation;
pub use page::{Page, PAGE_SIZE};
pub use schema::{ColType, Column, Schema, Value};
pub use shared_cache::{ShardStats, SharedBufferCache};
pub use snapshot::{export_snapshot, verify_snapshot, SnapshotReport};
pub use stats::{StorageCounters, StorageStats};
