//! Append-only heap files: page-structured relations on disk.
//!
//! A [`HeapFile`] stores fixed-width rows (described by a [`Schema`]) in
//! [`Page`]s. It supports the three access paths the cubing algorithms need:
//!
//! 1. **Append** — cube construction is write-mostly; appends are buffered
//!    in a tail page and flushed when the page fills.
//! 2. **Sequential scan** — partitioning and monolithic-format query
//!    answering scan entire relations.
//! 3. **Random fetch by row-id** — CURE's NT/TT/CAT formats replace data
//!    with R-rowid/A-rowid references that are resolved at query time,
//!    optionally through a [`BufferCache`](crate::cache::BufferCache).
//!
//! Row-ids are dense `0..num_rows`, so `rowid ↔ (page, slot)` is pure
//! arithmetic. The file also keeps I/O counters (`pages_read` /
//! `pages_written`) used by the experiment harness to report I/O volumes.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::io::{fsync_file, no_faults, with_write_retries, IoPolicy, ReadFault, WriteFault};
use crate::page::{Page, PAGE_HEADER, PAGE_SIZE};
use crate::schema::{Schema, Value};
use crate::stats::StorageStats;

/// Identifies a row within a heap file: dense, starting at 0.
pub type RowId = u64;

static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// The concurrent serving path shares immutable heap files across worker
/// threads (`Arc<HeapFile>` + [`fetch_shared`](HeapFile::fetch_shared)).
const _: () = {
    const fn assert_sync<T: Sync + Send>() {}
    assert_sync::<HeapFile>();
};

/// What [`HeapFile::open_report`] had to discard to recover a clean tail
/// after a crash left a torn final page.
#[derive(Debug, Clone)]
pub struct TailRepair {
    /// Trailing bytes removed because the file length was not a page
    /// multiple (a page write cut short while extending the file).
    pub truncated_bytes: u64,
    /// Whether a whole final page was dropped (header/checksum damage from
    /// a torn in-place rewrite of the tail page).
    pub dropped_page: bool,
    /// Human-readable description of what was found.
    pub reason: String,
}

/// An append-only relation stored as a sequence of pages.
pub struct HeapFile {
    file: File,
    path: PathBuf,
    schema: Schema,
    /// Process-unique id used as the buffer-cache key namespace.
    file_id: u64,
    rows_per_page: usize,
    /// Number of *full* pages already written to disk.
    full_pages: u64,
    /// The partially filled tail page (rows not yet on disk unless flushed).
    tail: Page,
    /// Fault-injection hook consulted before every page write and fsync.
    policy: Arc<dyn IoPolicy>,
    /// Catalog-wide counter registry, attached by [`Catalog`](crate::Catalog);
    /// `None` for standalone files (counting then stays per-file only).
    stats: Option<Arc<StorageStats>>,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    /// Checksum-verification memo: bit set ⇔ the page passed verification
    /// once through this handle (pages are immutable once full, so one
    /// check per handle suffices; re-reads skip the CRC).
    verified: Mutex<Vec<u64>>,
}

impl HeapFile {
    /// Create a new, empty heap file at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>, schema: Schema) -> Result<Self> {
        Self::create_with_policy(path, schema, no_faults())
    }

    /// [`create`](Self::create) with an explicit I/O policy (fault injection).
    pub fn create_with_policy(
        path: impl AsRef<Path>,
        schema: Schema,
        policy: Arc<dyn IoPolicy>,
    ) -> Result<Self> {
        let rows_per_page = Page::capacity(schema.row_width());
        if rows_per_page == 0 {
            return Err(StorageError::Layout(format!(
                "row width {} exceeds page capacity",
                schema.row_width()
            )));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        Ok(HeapFile {
            file,
            path: path.as_ref().to_path_buf(),
            schema,
            file_id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
            rows_per_page,
            full_pages: 0,
            tail: Page::new(),
            policy,
            stats: None,
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
            verified: Mutex::new(Vec::new()),
        })
    }

    /// Open an existing heap file created with the same schema.
    ///
    /// The last page on disk, if partially filled, becomes the in-memory
    /// tail so appends can resume. A torn tail left by a crash (partial
    /// trailing page, or a final page failing its checksum) is truncated
    /// back to the last sealed page with a warning on stderr; use
    /// [`open_report`](Self::open_report) to observe the repair.
    pub fn open(path: impl AsRef<Path>, schema: Schema) -> Result<Self> {
        Self::open_with_policy(path, schema, no_faults())
    }

    /// [`open`](Self::open) with an explicit I/O policy (fault injection).
    pub fn open_with_policy(
        path: impl AsRef<Path>,
        schema: Schema,
        policy: Arc<dyn IoPolicy>,
    ) -> Result<Self> {
        let (hf, repair) = Self::open_report_with_policy(path, schema, policy)?;
        if let Some(r) = &repair {
            eprintln!("cure-storage: warning: {}: {}", hf.path.display(), r.reason);
        }
        Ok(hf)
    }

    /// Open, additionally reporting any torn-tail repair that was applied.
    pub fn open_report(
        path: impl AsRef<Path>,
        schema: Schema,
    ) -> Result<(Self, Option<TailRepair>)> {
        Self::open_report_with_policy(path, schema, no_faults())
    }

    /// [`open_report`](Self::open_report) with an explicit I/O policy.
    ///
    /// Tail recovery distinguishes two torn-write shapes: a file length
    /// that is not a page multiple (the crash interrupted a write that was
    /// extending the file) and a final page whose checksum or row count is
    /// invalid (the crash interrupted an in-place rewrite of the tail
    /// page). Both are repaired by truncating to the last sealed page.
    /// Because truncation is destructive, a checksum-invalid tail is
    /// confirmed by a second read first: corruption that a re-read does
    /// not reproduce was a transient read-side fault, and the page is
    /// kept. Corruption *before* the final page is not repaired — it cannot have
    /// been produced by a single torn tail write — and surfaces as
    /// [`StorageError::Corrupt`] on first read of the damaged page.
    pub fn open_report_with_policy(
        path: impl AsRef<Path>,
        schema: Schema,
        policy: Arc<dyn IoPolicy>,
    ) -> Result<(Self, Option<TailRepair>)> {
        Self::open_report_with_policy_stats(path, schema, policy, None)
    }

    /// [`open_report_with_policy`](Self::open_report_with_policy) with a
    /// [`StorageStats`] block attached *before* the open-time tail reads,
    /// so retries and checksum verifications spent while opening are
    /// counted too (relations open lazily under live traffic, where those
    /// reads are part of serving).
    pub fn open_report_with_policy_stats(
        path: impl AsRef<Path>,
        schema: Schema,
        policy: Arc<dyn IoPolicy>,
        stats: Option<Arc<StorageStats>>,
    ) -> Result<(Self, Option<TailRepair>)> {
        let rows_per_page = Page::capacity(schema.row_width());
        if rows_per_page == 0 {
            return Err(StorageError::Layout(format!(
                "row width {} exceeds page capacity",
                schema.row_width()
            )));
        }
        let file = OpenOptions::new().read(true).write(true).open(path.as_ref())?;
        let len = file.metadata()?.len();
        let mut repair: Option<TailRepair> = None;
        let excess = len % PAGE_SIZE as u64;
        if excess != 0 {
            file.set_len(len - excess)?;
            fsync_file(policy.as_ref(), &file, path.as_ref()).map_err(StorageError::Io)?;
            repair = Some(TailRepair {
                truncated_bytes: excess,
                dropped_page: false,
                reason: format!(
                    "torn tail: length {len} is not a page multiple; \
                     truncated {excess} trailing bytes"
                ),
            });
        }
        let pages = (len - excess) / PAGE_SIZE as u64;
        let mut hf = HeapFile {
            file,
            path: path.as_ref().to_path_buf(),
            schema,
            file_id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
            rows_per_page,
            full_pages: pages,
            tail: Page::new(),
            policy,
            stats,
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
            verified: Mutex::new(Vec::new()),
        };
        if hf.full_pages > 0 {
            match hf.read_page(hf.full_pages - 1) {
                Ok(last) => {
                    if last.nrows() < rows_per_page {
                        hf.full_pages -= 1;
                        hf.tail = last;
                    }
                }
                Err(StorageError::Corrupt(_) | StorageError::CorruptPage { .. }) => {
                    // Truncation is destructive, so distinguish persistent
                    // on-media damage (a torn tail write — drop the page)
                    // from a transient read-side fault (keep it) by
                    // re-reading before acting.
                    match hf.read_page(hf.full_pages - 1) {
                        Ok(last) => {
                            if last.nrows() < rows_per_page {
                                hf.full_pages -= 1;
                                hf.tail = last;
                            }
                        }
                        Err(
                            StorageError::Corrupt(detail)
                            | StorageError::CorruptPage { detail, .. },
                        ) => {
                            // One torn write damages at most the final
                            // page; drop it.
                            hf.full_pages -= 1;
                            hf.file.set_len(hf.full_pages * PAGE_SIZE as u64)?;
                            fsync_file(hf.policy.as_ref(), &hf.file, &hf.path)
                                .map_err(StorageError::Io)?;
                            repair = Some(TailRepair {
                                truncated_bytes: PAGE_SIZE as u64
                                    + repair.as_ref().map_or(0, |r| r.truncated_bytes),
                                dropped_page: true,
                                reason: format!("torn tail: dropped invalid final page ({detail})"),
                            });
                            if hf.full_pages > 0 {
                                // The preceding page must be sound: verify
                                // it now and adopt it as the tail if
                                // partially filled.
                                let last = hf.read_page(hf.full_pages - 1)?;
                                if last.nrows() < rows_per_page {
                                    hf.full_pages -= 1;
                                    hf.tail = last;
                                }
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok((hf, repair))
    }

    /// The schema this file was created with.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Filesystem path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Process-unique id, namespacing this file's pages in a buffer cache.
    pub fn file_id(&self) -> u64 {
        self.file_id
    }

    /// Total number of rows (including unflushed tail rows).
    pub fn num_rows(&self) -> u64 {
        self.full_pages * self.rows_per_page as u64 + self.tail.nrows() as u64
    }

    /// Logical size in bytes: rows × row width (the paper reports cube sizes
    /// as data volume, not file-system allocation).
    pub fn data_bytes(&self) -> u64 {
        self.num_rows() * self.schema.row_width() as u64
    }

    /// Attach a catalog-wide [`StorageStats`] registry: subsequent page
    /// reads/writes, fsyncs and write retries are mirrored into it in
    /// addition to the per-file counters.
    pub fn attach_stats(&mut self, stats: Arc<StorageStats>) {
        self.stats = Some(stats);
    }

    /// Pages read from disk since creation (cache hits do not count).
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Pages written to disk since creation.
    pub fn pages_written(&self) -> u64 {
        self.pages_written.load(Ordering::Relaxed)
    }

    /// Append a raw, already-encoded row. Returns its [`RowId`].
    pub fn append_raw(&mut self, row: &[u8]) -> Result<RowId> {
        if row.len() != self.schema.row_width() {
            return Err(StorageError::Layout(format!(
                "append_raw: row {} bytes, schema width {}",
                row.len(),
                self.schema.row_width()
            )));
        }
        let rowid = self.num_rows();
        if !self.tail.push_row(row) {
            self.write_page_at(self.full_pages, &self.tail.clone())?;
            self.full_pages += 1;
            self.tail.reset();
            assert!(self.tail.push_row(row), "fresh page rejected a row");
        }
        Ok(rowid)
    }

    /// Append a row of [`Value`]s (convenience path; hot loops pre-encode).
    pub fn append(&mut self, values: &[Value]) -> Result<RowId> {
        let encoded = self.schema.encode_row_vec(values)?;
        self.append_raw(&encoded)
    }

    /// Persist the tail page so every appended row is durable on disk.
    ///
    /// Safe to call repeatedly; appends may continue afterwards. Does not
    /// fsync — pair with [`sync`](Self::sync) for durability.
    pub fn flush(&mut self) -> Result<()> {
        if self.tail.nrows() > 0 {
            let tail = self.tail.clone();
            self.write_page_at(self.full_pages, &tail)?;
        }
        Ok(())
    }

    /// Fsync the backing file, making previously flushed pages durable.
    pub fn sync(&self) -> Result<()> {
        fsync_file(self.policy.as_ref(), &self.file, &self.path).map_err(StorageError::Io)?;
        if let Some(stats) = &self.stats {
            stats.count_fsync();
        }
        Ok(())
    }

    fn write_page_at(&self, page_no: u64, page: &Page) -> Result<()> {
        let mut stamped = page.clone();
        stamped.zero_padding(self.schema.row_width());
        stamped.stamp_checksum();
        let offset = page_no * PAGE_SIZE as u64;
        let mut attempts = 0u64;
        let result = with_write_retries(|| {
            attempts += 1;
            match self.policy.on_write(&self.path, offset, PAGE_SIZE) {
                WriteFault::Proceed => self.file.write_all_at(stamped.as_bytes(), offset),
                WriteFault::Torn { keep } => {
                    // Land a prefix of the page (as a crashed kernel would),
                    // then report the write as failed.
                    let keep = keep.min(PAGE_SIZE);
                    self.file.write_all_at(&stamped.as_bytes()[..keep], offset)?;
                    let _ = self.file.sync_data();
                    Err(io::Error::other("injected torn page write"))
                }
                WriteFault::Fail(e) => Err(e),
            }
        });
        if let Some(stats) = &self.stats {
            // Retries are counted even when the write ultimately fails.
            stats.count_write_retries(attempts.saturating_sub(1));
        }
        result?;
        self.pages_written.fetch_add(1, Ordering::Relaxed);
        if let Some(stats) = &self.stats {
            stats.count_page_written();
        }
        Ok(())
    }

    fn read_page(&self, page_no: u64) -> Result<Page> {
        let offset = page_no * PAGE_SIZE as u64;
        let mut attempts = 0u64;
        // Whether the policy tampered with the returned bytes (bit flip /
        // torn tail): such a read must always be checksum-verified and must
        // never update the verification memo.
        let mut tampered = false;
        let result = with_write_retries(|| {
            attempts += 1;
            let mut buf = vec![0u8; PAGE_SIZE];
            match self.policy.on_read(&self.path, offset, PAGE_SIZE) {
                ReadFault::Proceed => {
                    self.file.read_exact_at(&mut buf, offset)?;
                    Ok(buf)
                }
                ReadFault::Fail(e) => Err(e),
                ReadFault::FlipBit { offset: byte, mask } => {
                    tampered = true;
                    self.file.read_exact_at(&mut buf, offset)?;
                    buf[byte % PAGE_SIZE] ^= mask.max(1);
                    Ok(buf)
                }
                ReadFault::Torn { keep } => {
                    tampered = true;
                    self.file.read_exact_at(&mut buf, offset)?;
                    buf[keep.min(PAGE_SIZE)..].fill(0);
                    Ok(buf)
                }
            }
        });
        if let Some(stats) = &self.stats {
            // Retries are counted even when the read ultimately fails.
            stats.count_read_retries(attempts.saturating_sub(1));
        }
        let buf = result?;
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        if let Some(stats) = &self.stats {
            stats.count_page_read();
        }
        let page = Page::from_bytes(buf.into_boxed_slice())?;
        // A row count beyond capacity can only come from a damaged header
        // (e.g. a torn header-only write); the checksum may not catch it
        // when the stored checksum is the legacy "never stamped" zero.
        if page.nrows() > self.rows_per_page {
            return Err(StorageError::CorruptPage {
                relation: self.relation_name(),
                page: page_no,
                detail: format!(
                    "row count {} exceeds capacity {}",
                    page.nrows(),
                    self.rows_per_page
                ),
            });
        }
        // Verify the checksum the first time this handle sees the page;
        // full pages are immutable, so later clean re-reads skip the CRC
        // work. Policy-tampered reads always verify and never memoize —
        // otherwise injected corruption on a re-read would pass silently.
        let (word, bit) = ((page_no / 64) as usize, page_no % 64);
        let mut verified = self.verified.lock();
        if verified.len() <= word {
            verified.resize(word + 1, 0);
        }
        let already = verified[word] & (1 << bit) != 0;
        if tampered || !already {
            if let Some(stats) = &self.stats {
                stats.count_checksum_verification();
            }
            if let Err(e) = page.verify_checksum() {
                if let Some(stats) = &self.stats {
                    stats.count_checksum_failure();
                }
                // A page seen corrupt must be re-verified on its next read.
                verified[word] &= !(1 << bit);
                let detail = match e {
                    StorageError::Corrupt(msg) => msg,
                    other => other.to_string(),
                };
                return Err(StorageError::CorruptPage {
                    relation: self.relation_name(),
                    page: page_no,
                    detail,
                });
            }
            if !tampered {
                verified[word] |= 1 << bit;
            }
        }
        Ok(page)
    }

    /// The relation name this heap file stores (its file stem) — the
    /// identity [`StorageError::CorruptPage`] and the serving layer's
    /// quarantine key by.
    pub fn relation_name(&self) -> String {
        self.path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default()
    }

    /// Rows per full page for this file's row width (so callers can map a
    /// row-id to the page that holds it).
    pub fn rows_per_page(&self) -> usize {
        self.rows_per_page
    }

    /// Drop the checksum memo for `page_no` and re-read the page from
    /// disk, verifying its checksum: the repair probe behind the serving
    /// layer's quarantine. `Ok` means the on-disk bytes are sound again.
    pub fn reverify_page(&self, page_no: u64) -> Result<()> {
        {
            let (word, bit) = ((page_no / 64) as usize, page_no % 64);
            let mut verified = self.verified.lock();
            if let Some(w) = verified.get_mut(word) {
                *w &= !(1 << bit);
            }
        }
        if page_no >= self.full_pages {
            // The tail page lives in memory and has no on-disk checksum.
            return Ok(());
        }
        self.read_page(page_no).map(|_| ())
    }

    /// Truncate the heap file at `path` to exactly `rows` rows, rebuilding
    /// a possibly-torn tail page from its intact row prefix.
    ///
    /// This is the crash-recovery primitive: `rows` comes from a durable
    /// manifest, and every journaled row was flushed and fsynced before the
    /// manifest recorded it. Because pages are append-only, every on-disk
    /// image of the tail page — including a torn rewrite from a later,
    /// unjournaled append — agrees byte-for-byte on the first `rows`
    /// journaled row slots, so the sealed prefix can always be
    /// reconstructed even when the page header and checksum are garbage.
    /// The rebuilt file is byte-identical to one that stopped at `rows`.
    pub fn repair_to_rows(
        path: impl AsRef<Path>,
        schema: &Schema,
        rows: u64,
        policy: &dyn IoPolicy,
    ) -> Result<()> {
        let path = path.as_ref();
        let w = schema.row_width();
        let rows_per_page = Page::capacity(w);
        if rows_per_page == 0 {
            return Err(StorageError::Layout(format!("row width {w} exceeds page capacity")));
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let full = rows / rows_per_page as u64;
        let rem = (rows % rows_per_page as u64) as usize;
        let needed_pages = full + u64::from(rem > 0);
        let needed_len = needed_pages * PAGE_SIZE as u64;
        if len < needed_len {
            return Err(StorageError::Corrupt(format!(
                "{}: {len} bytes on disk, but {needed_len} are journaled as sealed",
                path.display()
            )));
        }
        if rem > 0 {
            // Rebuild the tail page from the raw row bytes; do not trust
            // its header or checksum (a torn rewrite may have wrecked both).
            let mut raw = vec![0u8; PAGE_SIZE];
            file.read_exact_at(&mut raw, full * PAGE_SIZE as u64)?;
            let mut page = Page::new();
            for i in 0..rem {
                let off = PAGE_HEADER + i * w;
                if !page.push_row(&raw[off..off + w]) {
                    return Err(StorageError::Corrupt(format!(
                        "{}: tail rebuild overflowed a page",
                        path.display()
                    )));
                }
            }
            page.zero_padding(w);
            page.stamp_checksum();
            let offset = full * PAGE_SIZE as u64;
            with_write_retries(|| match policy.on_write(path, offset, PAGE_SIZE) {
                WriteFault::Proceed => file.write_all_at(page.as_bytes(), offset),
                WriteFault::Torn { keep } => {
                    let keep = keep.min(PAGE_SIZE);
                    file.write_all_at(&page.as_bytes()[..keep], offset)?;
                    let _ = file.sync_data();
                    Err(io::Error::other("injected torn page write"))
                }
                WriteFault::Fail(e) => Err(e),
            })?;
        }
        file.set_len(needed_len)?;
        fsync_file(policy, &file, path).map_err(StorageError::Io)?;
        Ok(())
    }

    /// Fetch row `rowid`, copying its bytes into `out`.
    ///
    /// Rows in the in-memory tail are served without I/O. Disk pages are
    /// read directly; see [`fetch_cached`](Self::fetch_cached) for the
    /// cache-mediated path used during query answering.
    pub fn fetch_into(&self, rowid: RowId, out: &mut [u8]) -> Result<()> {
        let w = self.schema.row_width();
        if out.len() != w {
            return Err(StorageError::Layout(format!(
                "fetch_into: buffer {} bytes, row width {w}",
                out.len()
            )));
        }
        if rowid >= self.num_rows() {
            return Err(StorageError::RowOutOfBounds { rowid, num_rows: self.num_rows() });
        }
        let page_no = rowid / self.rows_per_page as u64;
        let slot = (rowid % self.rows_per_page as u64) as usize;
        if page_no == self.full_pages {
            out.copy_from_slice(self.tail.row(w, slot));
            return Ok(());
        }
        let page = self.read_page(page_no)?;
        out.copy_from_slice(page.row(w, slot));
        Ok(())
    }

    /// Fetch row `rowid` through a [`BufferCache`](crate::cache::BufferCache).
    ///
    /// On a cache hit no I/O is performed; on a miss the page is read and
    /// inserted. This is the access path whose behaviour the paper studies
    /// in Figure 17 (caching the original fact table and `AGGREGATES`).
    pub fn fetch_cached(
        &self,
        rowid: RowId,
        cache: &mut crate::cache::BufferCache,
        out: &mut [u8],
    ) -> Result<()> {
        let w = self.schema.row_width();
        if out.len() != w {
            return Err(StorageError::Layout(format!(
                "fetch_cached: buffer {} bytes, row width {w}",
                out.len()
            )));
        }
        if rowid >= self.num_rows() {
            return Err(StorageError::RowOutOfBounds { rowid, num_rows: self.num_rows() });
        }
        let page_no = rowid / self.rows_per_page as u64;
        let slot = (rowid % self.rows_per_page as u64) as usize;
        if page_no == self.full_pages {
            out.copy_from_slice(self.tail.row(w, slot));
            return Ok(());
        }
        let page = cache.get_or_load(self.file_id, page_no, || self.read_page(page_no))?;
        out.copy_from_slice(page.row(w, slot));
        Ok(())
    }

    /// Fetch row `rowid` through a [`SharedBufferCache`](crate::shared_cache::SharedBufferCache).
    ///
    /// The `&self` counterpart of [`fetch_cached`](Self::fetch_cached):
    /// reads go through pread-style positioned I/O and the shared sharded
    /// cache, so an immutable (fully flushed) heap file can be fetched
    /// from many threads concurrently. Rows in the in-memory tail are
    /// served without I/O, exactly as in the exclusive path.
    pub fn fetch_shared(
        &self,
        rowid: RowId,
        cache: &crate::shared_cache::SharedBufferCache,
        out: &mut [u8],
    ) -> Result<()> {
        let w = self.schema.row_width();
        if out.len() != w {
            return Err(StorageError::Layout(format!(
                "fetch_shared: buffer {} bytes, row width {w}",
                out.len()
            )));
        }
        if rowid >= self.num_rows() {
            return Err(StorageError::RowOutOfBounds { rowid, num_rows: self.num_rows() });
        }
        let page_no = rowid / self.rows_per_page as u64;
        let slot = (rowid % self.rows_per_page as u64) as usize;
        if page_no == self.full_pages {
            out.copy_from_slice(self.tail.row(w, slot));
            return Ok(());
        }
        cache.with_page_or_load(
            self.file_id,
            page_no,
            || self.read_page(page_no),
            |page| {
                out.copy_from_slice(page.row(w, slot));
            },
        )
    }

    /// Decoded convenience fetch (tests and examples).
    pub fn fetch_values(&self, rowid: RowId) -> Result<Vec<Value>> {
        let mut buf = vec![0u8; self.schema.row_width()];
        self.fetch_into(rowid, &mut buf)?;
        self.schema.decode_row(&buf)
    }

    /// Streaming sequential scan over all rows (disk pages + tail).
    pub fn scan(&self) -> RowScan<'_> {
        RowScan { hf: self, page_no: 0, slot: 0, current: None }
    }

    /// Run `f` over every row, in row-id order. Returns the number of rows
    /// visited. Prefer this over [`scan`](Self::scan) in hot loops — the
    /// closure receives a borrow of the page buffer with no per-row copy.
    pub fn for_each_row(&self, mut f: impl FnMut(RowId, &[u8])) -> Result<u64> {
        self.try_for_each_row(|rowid, row| {
            f(rowid, row);
            Ok(())
        })
    }

    /// Fallible variant of [`for_each_row`](Self::for_each_row): the
    /// closure's first error aborts the scan and propagates. Use this when
    /// the per-row work itself performs I/O (e.g. partitioning appends rows
    /// to spill relations) so an injected fault surfaces as an error
    /// instead of a panic inside an infallible closure.
    pub fn try_for_each_row(&self, mut f: impl FnMut(RowId, &[u8]) -> Result<()>) -> Result<u64> {
        let w = self.schema.row_width();
        let mut rowid: RowId = 0;
        for page_no in 0..self.full_pages {
            let page = self.read_page(page_no)?;
            for row in page.rows(w) {
                f(rowid, row)?;
                rowid += 1;
            }
        }
        for row in self.tail.rows(w) {
            f(rowid, row)?;
            rowid += 1;
        }
        Ok(rowid)
    }
}

/// Streaming cursor over a heap file. Not a std `Iterator` because each row
/// borrows the cursor's internal page buffer (a lending iterator).
pub struct RowScan<'a> {
    hf: &'a HeapFile,
    page_no: u64,
    slot: usize,
    current: Option<Page>,
}

impl<'a> RowScan<'a> {
    /// Advance and return the next row, or `None` at end of file.
    pub fn next_row(&mut self) -> Result<Option<&[u8]>> {
        let w = self.hf.schema.row_width();
        loop {
            if self.page_no > self.hf.full_pages {
                return Ok(None);
            }
            let is_tail = self.page_no == self.hf.full_pages;
            if !is_tail && self.current.is_none() {
                self.current = Some(self.hf.read_page(self.page_no)?);
            }
            let nrows =
                if is_tail { self.hf.tail.nrows() } else { self.current.as_ref().unwrap().nrows() };
            if self.slot < nrows {
                let slot = self.slot;
                self.slot += 1;
                // Borrow from tail or from the cached page.
                let row = if is_tail {
                    self.hf.tail.row(w, slot)
                } else {
                    // Reborrow through raw pointer is unnecessary: we can
                    // return a borrow tied to `self` lifetime safely because
                    // `current` is not mutated until the next call.
                    let page: *const Page = self.current.as_ref().unwrap();
                    // SAFETY: the page lives in `self.current` and is only
                    // replaced by a later `next_row` call; the returned
                    // borrow's lifetime is tied to `&mut self`, so the
                    // caller cannot hold it across that replacement.
                    unsafe { (*page).row(w, slot) }
                };
                return Ok(Some(row));
            }
            self.page_no += 1;
            self.slot = 0;
            self.current = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::BufferCache;
    use crate::schema::{ColType, Column};

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cure_heap_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn small_schema() -> Schema {
        Schema::new(vec![Column::new("k", ColType::U32), Column::new("v", ColType::I64)])
    }

    #[test]
    fn append_fetch_roundtrip() {
        let path = tmpdir().join("roundtrip.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        for i in 0..10_000u32 {
            let rid = hf.append(&[Value::U32(i), Value::I64(-(i as i64))]).unwrap();
            assert_eq!(rid, i as u64);
        }
        assert_eq!(hf.num_rows(), 10_000);
        let vals = hf.fetch_values(9_999).unwrap();
        assert_eq!(vals[0], Value::U32(9_999));
        assert_eq!(vals[1], Value::I64(-9_999));
        let vals = hf.fetch_values(0).unwrap();
        assert_eq!(vals[0], Value::U32(0));
    }

    #[test]
    fn out_of_bounds_fetch_errors() {
        let path = tmpdir().join("oob.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        hf.append(&[Value::U32(1), Value::I64(2)]).unwrap();
        assert!(matches!(
            hf.fetch_values(1).unwrap_err(),
            StorageError::RowOutOfBounds { rowid: 1, num_rows: 1 }
        ));
    }

    #[test]
    fn scan_sees_all_rows_in_order() {
        let path = tmpdir().join("scan.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        let n = 5_000u32;
        for i in 0..n {
            hf.append(&[Value::U32(i), Value::I64(i as i64)]).unwrap();
        }
        let mut scan = hf.scan();
        let mut count = 0u32;
        while let Some(row) = scan.next_row().unwrap() {
            assert_eq!(Schema::read_u32_at(row, 0), count);
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn for_each_row_matches_scan() {
        let path = tmpdir().join("foreach.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        for i in 0..3_000u32 {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        let mut seen = Vec::new();
        let visited = hf
            .for_each_row(|rid, row| {
                assert_eq!(rid as u32, Schema::read_u32_at(row, 0));
                seen.push(rid);
            })
            .unwrap();
        assert_eq!(visited, 3_000);
        assert_eq!(seen.len(), 3_000);
    }

    #[test]
    fn reopen_resumes_appends() {
        let path = tmpdir().join("reopen.heap");
        {
            let mut hf = HeapFile::create(&path, small_schema()).unwrap();
            for i in 0..1_234u32 {
                hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
            }
            hf.flush().unwrap();
        }
        let mut hf = HeapFile::open(&path, small_schema()).unwrap();
        assert_eq!(hf.num_rows(), 1_234);
        let rid = hf.append(&[Value::U32(9_999), Value::I64(1)]).unwrap();
        assert_eq!(rid, 1_234);
        assert_eq!(hf.fetch_values(1_234).unwrap()[0], Value::U32(9_999));
        // Earlier rows still intact.
        assert_eq!(hf.fetch_values(100).unwrap()[0], Value::U32(100));
    }

    #[test]
    fn cached_fetch_counts_hits() {
        let path = tmpdir().join("cached.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        for i in 0..50_000u32 {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        hf.flush().unwrap();
        let mut cache = BufferCache::new(64);
        let mut buf = vec![0u8; hf.schema().row_width()];
        hf.fetch_cached(0, &mut cache, &mut buf).unwrap();
        hf.fetch_cached(1, &mut cache, &mut buf).unwrap(); // same page → hit
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(Schema::read_u32_at(&buf, 0), 1);
    }

    #[test]
    fn data_bytes_reports_logical_volume() {
        let path = tmpdir().join("bytes.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        for i in 0..10u32 {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        assert_eq!(hf.data_bytes(), 10 * 12);
    }

    #[test]
    fn corrupted_page_detected() {
        use std::io::{Read, Seek, SeekFrom, Write};
        let path = tmpdir().join("corrupt.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        let rows_per_page = Page::capacity(hf.schema().row_width());
        for i in 0..(rows_per_page as u32 + 10) {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        hf.flush().unwrap();
        drop(hf);
        // Flip one payload byte in the first page on disk.
        let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(100)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(100)).unwrap();
        f.write_all(&[b[0] ^ 0x55]).unwrap();
        drop(f);
        let hf = HeapFile::open(&path, small_schema()).unwrap();
        let err = hf.fetch_values(0).unwrap_err();
        match err {
            StorageError::CorruptPage { relation, page, .. } => {
                assert_eq!(relation, "corrupt");
                assert_eq!(page, 0);
            }
            other => panic!("expected CorruptPage, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_partial_page_truncated_on_open() {
        // A crash mid-write while extending the file leaves a length that
        // is not a page multiple; reopen must truncate back to the last
        // sealed page instead of erroring (old behaviour) or silently
        // adopting garbage.
        use std::io::Write;
        let path = tmpdir().join("torn_partial.heap");
        let rows_per_page = Page::capacity(12);
        let sealed = rows_per_page as u32 * 2;
        {
            let mut hf = HeapFile::create(&path, small_schema()).unwrap();
            for i in 0..sealed {
                hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
            }
            hf.flush().unwrap();
        }
        // Append 100 torn bytes, as if a third page write died early.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAAu8; 100]).unwrap();
        drop(f);
        let (hf, repair) = HeapFile::open_report(&path, small_schema()).unwrap();
        let repair = repair.expect("torn tail must be reported");
        assert_eq!(repair.truncated_bytes, 100);
        assert!(!repair.dropped_page);
        assert_eq!(hf.num_rows(), sealed as u64);
        assert_eq!(hf.fetch_values(sealed as u64 - 1).unwrap()[0], Value::U32(sealed - 1));
    }

    #[test]
    fn torn_tail_checksum_failing_last_page_dropped_on_open() {
        // A torn in-place rewrite of the tail page leaves a full-length
        // file whose last page fails its checksum; reopen must drop that
        // page and resume from the sealed prefix.
        use std::io::{Seek, SeekFrom, Write};
        let path = tmpdir().join("torn_rewrite.heap");
        let rows_per_page = Page::capacity(12);
        let total = rows_per_page as u32 + 10; // one sealed page + tail
        {
            let mut hf = HeapFile::create(&path, small_schema()).unwrap();
            for i in 0..total {
                hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
            }
            hf.flush().unwrap();
        }
        // Corrupt the *last* page's payload without restamping.
        let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 20)).unwrap();
        f.write_all(&[0xFF; 8]).unwrap();
        drop(f);
        let (mut hf, repair) = HeapFile::open_report(&path, small_schema()).unwrap();
        let repair = repair.expect("dropped page must be reported");
        assert!(repair.dropped_page);
        assert_eq!(hf.num_rows(), rows_per_page as u64, "sealed page survives");
        // The file is usable again: appends resume at the sealed boundary.
        let rid = hf.append(&[Value::U32(7), Value::I64(7)]).unwrap();
        assert_eq!(rid, rows_per_page as u64);
    }

    #[test]
    fn garbage_row_count_detected_on_open() {
        // Header-only damage with a zeroed (legacy "never stamped")
        // checksum: the row-count sanity check must reject it rather than
        // let row() index out of the page.
        use std::io::{Seek, SeekFrom, Write};
        let path = tmpdir().join("garbage_nrows.heap");
        {
            let mut hf = HeapFile::create(&path, small_schema()).unwrap();
            hf.append(&[Value::U32(1), Value::I64(1)]).unwrap();
            hf.flush().unwrap();
        }
        let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        // nrows = u16::MAX, checksum field zeroed.
        f.write_all(&[0xFF, 0xFF, 0, 0, 0, 0, 0, 0]).unwrap();
        drop(f);
        let (hf, repair) = HeapFile::open_report(&path, small_schema()).unwrap();
        assert!(repair.expect("reported").dropped_page);
        assert_eq!(hf.num_rows(), 0);
    }

    fn write_rows(path: &std::path::Path, n: u32) {
        let mut hf = HeapFile::create(path, small_schema()).unwrap();
        for i in 0..n {
            hf.append(&[Value::U32(i), Value::I64(i as i64)]).unwrap();
        }
        hf.flush().unwrap();
    }

    #[test]
    fn repair_to_rows_discards_unsealed_suffix() {
        use crate::io::NoFaults;
        let path = tmpdir().join("repair.heap");
        let reference = tmpdir().join("repair_ref.heap");
        let rows_per_page = Page::capacity(12) as u32;
        let sealed = rows_per_page + 7; // one full page + 7 sealed tail rows
                                        // The crashed build wrote well past the seal point before dying.
        write_rows(&path, sealed + 40);
        HeapFile::repair_to_rows(&path, &small_schema(), sealed as u64, &NoFaults).unwrap();
        write_rows(&reference, sealed);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&reference).unwrap(),
            "repaired file is byte-identical to a build that stopped at the seal"
        );
        let hf = HeapFile::open(&path, small_schema()).unwrap();
        assert_eq!(hf.num_rows(), sealed as u64);
        assert_eq!(hf.fetch_values(sealed as u64 - 1).unwrap()[0], Value::U32(sealed - 1));
    }

    #[test]
    fn repair_to_rows_survives_wrecked_tail_header() {
        // A torn rewrite of the tail page can destroy its header and
        // checksum, but the journaled row slots are append-only and thus
        // intact; repair must rebuild the canonical page from them.
        use crate::io::NoFaults;
        use std::io::{Seek, SeekFrom, Write};
        let path = tmpdir().join("repair_torn.heap");
        let reference = tmpdir().join("repair_torn_ref.heap");
        let rows_per_page = Page::capacity(12) as u32;
        let sealed = rows_per_page + 7;
        write_rows(&path, sealed + 3);
        // Wreck the tail page's header in place (rows untouched).
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(PAGE_SIZE as u64)).unwrap();
        f.write_all(&[0xEE; PAGE_HEADER]).unwrap();
        drop(f);
        HeapFile::repair_to_rows(&path, &small_schema(), sealed as u64, &NoFaults).unwrap();
        write_rows(&reference, sealed);
        assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&reference).unwrap());
    }

    #[test]
    fn repair_to_rows_rejects_short_file() {
        use crate::io::NoFaults;
        let path = tmpdir().join("repair_short.heap");
        write_rows(&path, 10);
        // Claiming more sealed rows than the file can hold is unrepairable.
        let err = HeapFile::repair_to_rows(
            &path,
            &small_schema(),
            Page::capacity(12) as u64 * 5,
            &NoFaults,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn injected_fault_surfaces_as_error_and_counts() {
        use crate::io::{FaultInjector, FaultKind};
        use std::sync::Arc;
        let path = tmpdir().join("injected.heap");
        let policy = Arc::new(FaultInjector::fail_nth_write(1, FaultKind::Enospc));
        let mut hf = HeapFile::create_with_policy(&path, small_schema(), policy.clone()).unwrap();
        let rows_per_page = Page::capacity(12) as u32;
        let mut result = Ok(0);
        for i in 0..rows_per_page * 3 {
            result = hf.append(&[Value::U32(i), Value::I64(0)]);
            if result.is_err() {
                break;
            }
        }
        let err = result.expect_err("second page write must fail with ENOSPC");
        match err {
            StorageError::Io(e) => assert_eq!(e.raw_os_error(), Some(28)),
            other => panic!("expected Io(ENOSPC), got {other:?}"),
        }
        assert!(policy.fired());
    }

    #[test]
    fn transient_fault_retried_transparently() {
        use crate::io::{FaultInjector, FaultKind};
        use std::sync::Arc;
        let path = tmpdir().join("transient.heap");
        let policy =
            Arc::new(FaultInjector::fail_nth_write(0, FaultKind::Transient { failures: 2 }));
        let mut hf = HeapFile::create_with_policy(&path, small_schema(), policy).unwrap();
        for i in 0..(Page::capacity(12) as u32 + 1) {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        hf.flush().unwrap();
        hf.sync().unwrap();
        let hf = HeapFile::open(&path, small_schema()).unwrap();
        assert_eq!(hf.num_rows(), Page::capacity(12) as u64 + 1);
    }

    #[test]
    fn attached_stats_mirror_file_io() {
        let path = tmpdir().join("stats.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        let stats = Arc::new(StorageStats::new());
        hf.attach_stats(Arc::clone(&stats));
        let rows_per_page = Page::capacity(hf.schema().row_width());
        for i in 0..(rows_per_page as u32 * 2 + 5) {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        hf.flush().unwrap();
        hf.sync().unwrap();
        hf.fetch_values(0).unwrap();
        assert_eq!(stats.pages_written(), hf.pages_written());
        assert_eq!(stats.pages_read(), hf.pages_read());
        assert_eq!(stats.fsyncs(), 1);
        assert_eq!(stats.write_retries(), 0);
    }

    #[test]
    fn attached_stats_count_transient_retries() {
        use crate::io::{FaultInjector, FaultKind};
        let path = tmpdir().join("stats_retry.heap");
        let policy =
            Arc::new(FaultInjector::fail_nth_write(0, FaultKind::Transient { failures: 2 }));
        let mut hf = HeapFile::create_with_policy(&path, small_schema(), policy).unwrap();
        let stats = Arc::new(StorageStats::new());
        hf.attach_stats(Arc::clone(&stats));
        for i in 0..(Page::capacity(12) as u32 + 1) {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        assert_eq!(stats.write_retries(), 2, "two injected transient failures were retried");
        assert_eq!(stats.pages_written(), 1);
    }

    #[test]
    fn hard_read_fault_during_open_surfaces_as_io_error() {
        use crate::io::{FaultInjector, ReadFaultKind};
        let path = tmpdir().join("read_fault_open.heap");
        write_rows(&path, 10);
        // Opening reads the partial tail page back; a hard fault there is
        // not a torn tail and must surface, not be repaired away.
        let policy = Arc::new(FaultInjector::fail_nth_read(0, ReadFaultKind::Error));
        let err = match HeapFile::open_with_policy(&path, small_schema(), policy) {
            Ok(_) => panic!("open must fail on a hard read fault"),
            Err(e) => e,
        };
        assert!(matches!(err, StorageError::Io(_)), "got {err:?}");
    }

    #[test]
    fn hard_read_fault_on_sealed_page_errors() {
        use crate::io::{FaultInjector, ReadFaultKind};
        let path = tmpdir().join("read_fault_sealed.heap");
        let rows_per_page = Page::capacity(12) as u32;
        write_rows(&path, rows_per_page * 2 + 3);
        let policy = Arc::new(FaultInjector::counting());
        let hf = HeapFile::open_with_policy(&path, small_schema(), policy.clone()).unwrap();
        let reads_at_open = policy.reads();
        drop(hf);
        // Re-open with a fault scheduled at the first post-open read.
        let policy = Arc::new(FaultInjector::fail_nth_read(reads_at_open, ReadFaultKind::Error));
        let hf = HeapFile::open_with_policy(&path, small_schema(), policy).unwrap();
        let err = hf.fetch_values(0).unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "got {err:?}");
        // The failed load is not cached anywhere: the next read succeeds.
        assert_eq!(hf.fetch_values(0).unwrap()[0], Value::U32(0));
    }

    #[test]
    fn transient_read_fault_retried_and_counted() {
        use crate::io::{FaultInjector, ReadFaultKind};
        let path = tmpdir().join("read_transient.heap");
        let rows_per_page = Page::capacity(12) as u32;
        write_rows(&path, rows_per_page + 3);
        let policy = Arc::new(FaultInjector::counting());
        let hf = HeapFile::open_with_policy(&path, small_schema(), policy.clone()).unwrap();
        let reads_at_open = policy.reads();
        drop(hf);
        let policy = Arc::new(FaultInjector::fail_nth_read(
            reads_at_open,
            ReadFaultKind::Transient { failures: 2 },
        ));
        let mut hf = HeapFile::open_with_policy(&path, small_schema(), policy).unwrap();
        let stats = Arc::new(StorageStats::new());
        hf.attach_stats(Arc::clone(&stats));
        assert_eq!(hf.fetch_values(0).unwrap()[0], Value::U32(0), "retries absorb the fault");
        assert_eq!(stats.read_retries(), 2, "two extra attempts recorded");
        assert_eq!(stats.pages_read(), 1);
    }

    #[test]
    fn chaos_schedule_transient_read_counts_a_retry() {
        use crate::io::{FaultInjector, ReadFaultKind};
        let path = tmpdir().join("read_chaos_retry.heap");
        let rows_per_page = Page::capacity(12) as u32;
        write_rows(&path, rows_per_page + 3);
        let policy = Arc::new(FaultInjector::counting());
        let hf = HeapFile::open_with_policy(&path, small_schema(), policy.clone()).unwrap();
        let reads_at_open = policy.reads();
        drop(hf);
        // Chaos ordinal 0 is a one-shot transient: the bounded retry
        // must absorb it and the retry must land in the stats.
        let policy =
            Arc::new(FaultInjector::chaos_reads(reads_at_open, 2, 1, ReadFaultKind::Chaos));
        let mut hf = HeapFile::open_with_policy(&path, small_schema(), policy.clone()).unwrap();
        let stats = Arc::new(StorageStats::new());
        hf.attach_stats(Arc::clone(&stats));
        assert_eq!(hf.fetch_values(0).unwrap()[0], Value::U32(0), "retry absorbs the fault");
        assert_eq!(policy.read_faults_fired(), 1);
        assert_eq!(stats.read_retries(), 1, "the extra attempt is recorded");
    }

    #[test]
    fn flipped_bit_on_reread_is_detected_despite_memo() {
        use crate::io::{FaultInjector, ReadFaultKind};
        let path = tmpdir().join("read_flip.heap");
        let rows_per_page = Page::capacity(12) as u32;
        write_rows(&path, rows_per_page + 3);
        let policy = Arc::new(FaultInjector::counting());
        let hf = HeapFile::open_with_policy(&path, small_schema(), policy.clone()).unwrap();
        let reads_at_open = policy.reads();
        drop(hf);
        // Clean first read memoizes the page; the *second* read is
        // corrupted in flight and must still fail the checksum.
        let policy =
            Arc::new(FaultInjector::fail_nth_read(reads_at_open + 1, ReadFaultKind::FlipBit));
        let mut hf = HeapFile::open_with_policy(&path, small_schema(), policy).unwrap();
        let stats = Arc::new(StorageStats::new());
        hf.attach_stats(Arc::clone(&stats));
        assert!(hf.fetch_values(0).is_ok(), "clean read verifies and memoizes");
        let err = hf.fetch_values(0).unwrap_err();
        assert!(matches!(err, StorageError::CorruptPage { page: 0, .. }), "got {err:?}");
        assert_eq!(stats.checksum_failures(), 1);
        // The disk itself is sound: repair re-verifies and reads recover.
        hf.reverify_page(0).unwrap();
        assert_eq!(hf.fetch_values(0).unwrap()[0], Value::U32(0));
        assert!(stats.checksum_verifications() >= 3);
    }

    #[test]
    fn torn_read_of_tail_page_repairs_through_open_report() {
        use crate::io::{FaultInjector, ReadFaultKind};
        let path = tmpdir().join("read_torn_open.heap");
        let rows_per_page = Page::capacity(12) as u32;
        // The tail must hold enough rows that zeroing the back half of the
        // page destroys CRC-covered data (a near-empty tail stores nothing
        // past the midpoint, so a torn read of it would verify clean).
        write_rows(&path, rows_per_page + 400);
        // Every read of the final page comes back torn (period 1, budget
        // 2 covers the read and the confirmation re-read) — that is what
        // persistent on-media damage looks like, so open must drop the
        // page and resume from the sealed one.
        let policy = Arc::new(FaultInjector::chaos_reads(0, 1, 2, ReadFaultKind::Torn));
        let (hf, repair) =
            HeapFile::open_report_with_policy(&path, small_schema(), policy).unwrap();
        let repair = repair.expect("torn read of the tail page must be reported");
        assert!(repair.dropped_page);
        assert_eq!(hf.num_rows(), rows_per_page as u64, "sealed page survives");
    }

    #[test]
    fn transient_torn_read_at_open_does_not_drop_the_tail_page() {
        use crate::io::{FaultInjector, ReadFaultKind};
        let path = tmpdir().join("read_torn_once_open.heap");
        let rows_per_page = Page::capacity(12) as u32;
        let total = rows_per_page + 400;
        write_rows(&path, total);
        // Only the *first* read is torn; the confirmation re-read comes
        // back clean, proving the media is fine — truncating would lose
        // real data, so open must keep every row.
        let policy = Arc::new(FaultInjector::fail_nth_read(0, ReadFaultKind::Torn));
        let (hf, repair) =
            HeapFile::open_report_with_policy(&path, small_schema(), policy).unwrap();
        assert!(repair.is_none(), "transient read fault must not trigger a repair: {repair:?}");
        assert_eq!(hf.num_rows(), total as u64, "no rows may be dropped");
    }

    #[test]
    fn io_counters_advance() {
        let path = tmpdir().join("io.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        let rows_per_page = Page::capacity(hf.schema().row_width());
        for i in 0..(rows_per_page as u32 * 3) {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        // Three pages filled → at least two full-page writes happened
        // (the third fills exactly and is written when a fourth row arrives;
        // here it stays as a full tail until flush).
        assert!(hf.pages_written() >= 2);
        let before = hf.pages_read();
        hf.fetch_values(0).unwrap();
        assert_eq!(hf.pages_read(), before + 1);
    }
}
