//! Append-only heap files: page-structured relations on disk.
//!
//! A [`HeapFile`] stores fixed-width rows (described by a [`Schema`]) in
//! [`Page`]s. It supports the three access paths the cubing algorithms need:
//!
//! 1. **Append** — cube construction is write-mostly; appends are buffered
//!    in a tail page and flushed when the page fills.
//! 2. **Sequential scan** — partitioning and monolithic-format query
//!    answering scan entire relations.
//! 3. **Random fetch by row-id** — CURE's NT/TT/CAT formats replace data
//!    with R-rowid/A-rowid references that are resolved at query time,
//!    optionally through a [`BufferCache`](crate::cache::BufferCache).
//!
//! Row-ids are dense `0..num_rows`, so `rowid ↔ (page, slot)` is pure
//! arithmetic. The file also keeps I/O counters (`pages_read` /
//! `pages_written`) used by the experiment harness to report I/O volumes.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::page::{Page, PAGE_SIZE};
use crate::schema::{Schema, Value};

/// Identifies a row within a heap file: dense, starting at 0.
pub type RowId = u64;

static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// The concurrent serving path shares immutable heap files across worker
/// threads (`Arc<HeapFile>` + [`fetch_shared`](HeapFile::fetch_shared)).
const _: () = {
    const fn assert_sync<T: Sync + Send>() {}
    assert_sync::<HeapFile>();
};

/// An append-only relation stored as a sequence of pages.
pub struct HeapFile {
    file: File,
    path: PathBuf,
    schema: Schema,
    /// Process-unique id used as the buffer-cache key namespace.
    file_id: u64,
    rows_per_page: usize,
    /// Number of *full* pages already written to disk.
    full_pages: u64,
    /// The partially filled tail page (rows not yet on disk unless flushed).
    tail: Page,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    /// Checksum-verification memo: bit set ⇔ the page passed verification
    /// once through this handle (pages are immutable once full, so one
    /// check per handle suffices; re-reads skip the CRC).
    verified: Mutex<Vec<u64>>,
}

impl HeapFile {
    /// Create a new, empty heap file at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>, schema: Schema) -> Result<Self> {
        let rows_per_page = Page::capacity(schema.row_width());
        if rows_per_page == 0 {
            return Err(StorageError::Layout(format!(
                "row width {} exceeds page capacity",
                schema.row_width()
            )));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        Ok(HeapFile {
            file,
            path: path.as_ref().to_path_buf(),
            schema,
            file_id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
            rows_per_page,
            full_pages: 0,
            tail: Page::new(),
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
            verified: Mutex::new(Vec::new()),
        })
    }

    /// Open an existing heap file created with the same schema.
    ///
    /// The last page on disk, if partially filled, becomes the in-memory
    /// tail so appends can resume.
    pub fn open(path: impl AsRef<Path>, schema: Schema) -> Result<Self> {
        let rows_per_page = Page::capacity(schema.row_width());
        if rows_per_page == 0 {
            return Err(StorageError::Layout(format!(
                "row width {} exceeds page capacity",
                schema.row_width()
            )));
        }
        let file = OpenOptions::new().read(true).write(true).open(path.as_ref())?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        let pages = len / PAGE_SIZE as u64;
        let mut hf = HeapFile {
            file,
            path: path.as_ref().to_path_buf(),
            schema,
            file_id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
            rows_per_page,
            full_pages: pages,
            tail: Page::new(),
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
            verified: Mutex::new(Vec::new()),
        };
        if pages > 0 {
            let last = hf.read_page(pages - 1)?;
            if last.nrows() < rows_per_page {
                hf.tail = last;
                hf.full_pages = pages - 1;
            }
        }
        Ok(hf)
    }

    /// The schema this file was created with.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Filesystem path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Process-unique id, namespacing this file's pages in a buffer cache.
    pub fn file_id(&self) -> u64 {
        self.file_id
    }

    /// Total number of rows (including unflushed tail rows).
    pub fn num_rows(&self) -> u64 {
        self.full_pages * self.rows_per_page as u64 + self.tail.nrows() as u64
    }

    /// Logical size in bytes: rows × row width (the paper reports cube sizes
    /// as data volume, not file-system allocation).
    pub fn data_bytes(&self) -> u64 {
        self.num_rows() * self.schema.row_width() as u64
    }

    /// Pages read from disk since creation (cache hits do not count).
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Pages written to disk since creation.
    pub fn pages_written(&self) -> u64 {
        self.pages_written.load(Ordering::Relaxed)
    }

    /// Append a raw, already-encoded row. Returns its [`RowId`].
    pub fn append_raw(&mut self, row: &[u8]) -> Result<RowId> {
        if row.len() != self.schema.row_width() {
            return Err(StorageError::Layout(format!(
                "append_raw: row {} bytes, schema width {}",
                row.len(),
                self.schema.row_width()
            )));
        }
        let rowid = self.num_rows();
        if !self.tail.push_row(row) {
            self.write_page_at(self.full_pages, &self.tail.clone())?;
            self.full_pages += 1;
            self.tail.reset();
            assert!(self.tail.push_row(row), "fresh page rejected a row");
        }
        Ok(rowid)
    }

    /// Append a row of [`Value`]s (convenience path; hot loops pre-encode).
    pub fn append(&mut self, values: &[Value]) -> Result<RowId> {
        let encoded = self.schema.encode_row_vec(values)?;
        self.append_raw(&encoded)
    }

    /// Persist the tail page so every appended row is durable on disk.
    ///
    /// Safe to call repeatedly; appends may continue afterwards.
    pub fn flush(&mut self) -> Result<()> {
        if self.tail.nrows() > 0 {
            let tail = self.tail.clone();
            self.write_page_at(self.full_pages, &tail)?;
        }
        Ok(())
    }

    fn write_page_at(&self, page_no: u64, page: &Page) -> Result<()> {
        let mut stamped = page.clone();
        stamped.stamp_checksum();
        self.file.write_all_at(stamped.as_bytes(), page_no * PAGE_SIZE as u64)?;
        self.pages_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn read_page(&self, page_no: u64) -> Result<Page> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact_at(&mut buf, page_no * PAGE_SIZE as u64)?;
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        let page = Page::from_bytes(buf.into_boxed_slice())?;
        // Verify the checksum the first time this handle sees the page;
        // full pages are immutable, so later re-reads skip the CRC work.
        let (word, bit) = ((page_no / 64) as usize, page_no % 64);
        let mut verified = self.verified.lock();
        if verified.len() <= word {
            verified.resize(word + 1, 0);
        }
        if verified[word] & (1 << bit) == 0 {
            page.verify_checksum()?;
            verified[word] |= 1 << bit;
        }
        Ok(page)
    }

    /// Fetch row `rowid`, copying its bytes into `out`.
    ///
    /// Rows in the in-memory tail are served without I/O. Disk pages are
    /// read directly; see [`fetch_cached`](Self::fetch_cached) for the
    /// cache-mediated path used during query answering.
    pub fn fetch_into(&self, rowid: RowId, out: &mut [u8]) -> Result<()> {
        let w = self.schema.row_width();
        if out.len() != w {
            return Err(StorageError::Layout(format!(
                "fetch_into: buffer {} bytes, row width {w}",
                out.len()
            )));
        }
        if rowid >= self.num_rows() {
            return Err(StorageError::RowOutOfBounds { rowid, num_rows: self.num_rows() });
        }
        let page_no = rowid / self.rows_per_page as u64;
        let slot = (rowid % self.rows_per_page as u64) as usize;
        if page_no == self.full_pages {
            out.copy_from_slice(self.tail.row(w, slot));
            return Ok(());
        }
        let page = self.read_page(page_no)?;
        out.copy_from_slice(page.row(w, slot));
        Ok(())
    }

    /// Fetch row `rowid` through a [`BufferCache`](crate::cache::BufferCache).
    ///
    /// On a cache hit no I/O is performed; on a miss the page is read and
    /// inserted. This is the access path whose behaviour the paper studies
    /// in Figure 17 (caching the original fact table and `AGGREGATES`).
    pub fn fetch_cached(
        &self,
        rowid: RowId,
        cache: &mut crate::cache::BufferCache,
        out: &mut [u8],
    ) -> Result<()> {
        let w = self.schema.row_width();
        if out.len() != w {
            return Err(StorageError::Layout(format!(
                "fetch_cached: buffer {} bytes, row width {w}",
                out.len()
            )));
        }
        if rowid >= self.num_rows() {
            return Err(StorageError::RowOutOfBounds { rowid, num_rows: self.num_rows() });
        }
        let page_no = rowid / self.rows_per_page as u64;
        let slot = (rowid % self.rows_per_page as u64) as usize;
        if page_no == self.full_pages {
            out.copy_from_slice(self.tail.row(w, slot));
            return Ok(());
        }
        let page = cache.get_or_load(self.file_id, page_no, || self.read_page(page_no))?;
        out.copy_from_slice(page.row(w, slot));
        Ok(())
    }

    /// Fetch row `rowid` through a [`SharedBufferCache`](crate::shared_cache::SharedBufferCache).
    ///
    /// The `&self` counterpart of [`fetch_cached`](Self::fetch_cached):
    /// reads go through pread-style positioned I/O and the shared sharded
    /// cache, so an immutable (fully flushed) heap file can be fetched
    /// from many threads concurrently. Rows in the in-memory tail are
    /// served without I/O, exactly as in the exclusive path.
    pub fn fetch_shared(
        &self,
        rowid: RowId,
        cache: &crate::shared_cache::SharedBufferCache,
        out: &mut [u8],
    ) -> Result<()> {
        let w = self.schema.row_width();
        if out.len() != w {
            return Err(StorageError::Layout(format!(
                "fetch_shared: buffer {} bytes, row width {w}",
                out.len()
            )));
        }
        if rowid >= self.num_rows() {
            return Err(StorageError::RowOutOfBounds { rowid, num_rows: self.num_rows() });
        }
        let page_no = rowid / self.rows_per_page as u64;
        let slot = (rowid % self.rows_per_page as u64) as usize;
        if page_no == self.full_pages {
            out.copy_from_slice(self.tail.row(w, slot));
            return Ok(());
        }
        cache.with_page_or_load(
            self.file_id,
            page_no,
            || self.read_page(page_no),
            |page| {
                out.copy_from_slice(page.row(w, slot));
            },
        )
    }

    /// Decoded convenience fetch (tests and examples).
    pub fn fetch_values(&self, rowid: RowId) -> Result<Vec<Value>> {
        let mut buf = vec![0u8; self.schema.row_width()];
        self.fetch_into(rowid, &mut buf)?;
        self.schema.decode_row(&buf)
    }

    /// Streaming sequential scan over all rows (disk pages + tail).
    pub fn scan(&self) -> RowScan<'_> {
        RowScan { hf: self, page_no: 0, slot: 0, current: None }
    }

    /// Run `f` over every row, in row-id order. Returns the number of rows
    /// visited. Prefer this over [`scan`](Self::scan) in hot loops — the
    /// closure receives a borrow of the page buffer with no per-row copy.
    pub fn for_each_row(&self, mut f: impl FnMut(RowId, &[u8])) -> Result<u64> {
        let w = self.schema.row_width();
        let mut rowid: RowId = 0;
        for page_no in 0..self.full_pages {
            let page = self.read_page(page_no)?;
            for row in page.rows(w) {
                f(rowid, row);
                rowid += 1;
            }
        }
        for row in self.tail.rows(w) {
            f(rowid, row);
            rowid += 1;
        }
        Ok(rowid)
    }
}

/// Streaming cursor over a heap file. Not a std `Iterator` because each row
/// borrows the cursor's internal page buffer (a lending iterator).
pub struct RowScan<'a> {
    hf: &'a HeapFile,
    page_no: u64,
    slot: usize,
    current: Option<Page>,
}

impl<'a> RowScan<'a> {
    /// Advance and return the next row, or `None` at end of file.
    pub fn next_row(&mut self) -> Result<Option<&[u8]>> {
        let w = self.hf.schema.row_width();
        loop {
            if self.page_no > self.hf.full_pages {
                return Ok(None);
            }
            let is_tail = self.page_no == self.hf.full_pages;
            if !is_tail && self.current.is_none() {
                self.current = Some(self.hf.read_page(self.page_no)?);
            }
            let nrows =
                if is_tail { self.hf.tail.nrows() } else { self.current.as_ref().unwrap().nrows() };
            if self.slot < nrows {
                let slot = self.slot;
                self.slot += 1;
                // Borrow from tail or from the cached page.
                let row = if is_tail {
                    self.hf.tail.row(w, slot)
                } else {
                    // Reborrow through raw pointer is unnecessary: we can
                    // return a borrow tied to `self` lifetime safely because
                    // `current` is not mutated until the next call.
                    let page: *const Page = self.current.as_ref().unwrap();
                    // SAFETY: the page lives in `self.current` and is only
                    // replaced by a later `next_row` call; the returned
                    // borrow's lifetime is tied to `&mut self`, so the
                    // caller cannot hold it across that replacement.
                    unsafe { (*page).row(w, slot) }
                };
                return Ok(Some(row));
            }
            self.page_no += 1;
            self.slot = 0;
            self.current = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::BufferCache;
    use crate::schema::{ColType, Column};

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cure_heap_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn small_schema() -> Schema {
        Schema::new(vec![Column::new("k", ColType::U32), Column::new("v", ColType::I64)])
    }

    #[test]
    fn append_fetch_roundtrip() {
        let path = tmpdir().join("roundtrip.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        for i in 0..10_000u32 {
            let rid = hf.append(&[Value::U32(i), Value::I64(-(i as i64))]).unwrap();
            assert_eq!(rid, i as u64);
        }
        assert_eq!(hf.num_rows(), 10_000);
        let vals = hf.fetch_values(9_999).unwrap();
        assert_eq!(vals[0], Value::U32(9_999));
        assert_eq!(vals[1], Value::I64(-9_999));
        let vals = hf.fetch_values(0).unwrap();
        assert_eq!(vals[0], Value::U32(0));
    }

    #[test]
    fn out_of_bounds_fetch_errors() {
        let path = tmpdir().join("oob.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        hf.append(&[Value::U32(1), Value::I64(2)]).unwrap();
        assert!(matches!(
            hf.fetch_values(1).unwrap_err(),
            StorageError::RowOutOfBounds { rowid: 1, num_rows: 1 }
        ));
    }

    #[test]
    fn scan_sees_all_rows_in_order() {
        let path = tmpdir().join("scan.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        let n = 5_000u32;
        for i in 0..n {
            hf.append(&[Value::U32(i), Value::I64(i as i64)]).unwrap();
        }
        let mut scan = hf.scan();
        let mut count = 0u32;
        while let Some(row) = scan.next_row().unwrap() {
            assert_eq!(Schema::read_u32_at(row, 0), count);
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn for_each_row_matches_scan() {
        let path = tmpdir().join("foreach.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        for i in 0..3_000u32 {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        let mut seen = Vec::new();
        let visited = hf
            .for_each_row(|rid, row| {
                assert_eq!(rid as u32, Schema::read_u32_at(row, 0));
                seen.push(rid);
            })
            .unwrap();
        assert_eq!(visited, 3_000);
        assert_eq!(seen.len(), 3_000);
    }

    #[test]
    fn reopen_resumes_appends() {
        let path = tmpdir().join("reopen.heap");
        {
            let mut hf = HeapFile::create(&path, small_schema()).unwrap();
            for i in 0..1_234u32 {
                hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
            }
            hf.flush().unwrap();
        }
        let mut hf = HeapFile::open(&path, small_schema()).unwrap();
        assert_eq!(hf.num_rows(), 1_234);
        let rid = hf.append(&[Value::U32(9_999), Value::I64(1)]).unwrap();
        assert_eq!(rid, 1_234);
        assert_eq!(hf.fetch_values(1_234).unwrap()[0], Value::U32(9_999));
        // Earlier rows still intact.
        assert_eq!(hf.fetch_values(100).unwrap()[0], Value::U32(100));
    }

    #[test]
    fn cached_fetch_counts_hits() {
        let path = tmpdir().join("cached.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        for i in 0..50_000u32 {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        hf.flush().unwrap();
        let mut cache = BufferCache::new(64);
        let mut buf = vec![0u8; hf.schema().row_width()];
        hf.fetch_cached(0, &mut cache, &mut buf).unwrap();
        hf.fetch_cached(1, &mut cache, &mut buf).unwrap(); // same page → hit
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(Schema::read_u32_at(&buf, 0), 1);
    }

    #[test]
    fn data_bytes_reports_logical_volume() {
        let path = tmpdir().join("bytes.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        for i in 0..10u32 {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        assert_eq!(hf.data_bytes(), 10 * 12);
    }

    #[test]
    fn corrupted_page_detected() {
        use std::io::{Read, Seek, SeekFrom, Write};
        let path = tmpdir().join("corrupt.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        let rows_per_page = Page::capacity(hf.schema().row_width());
        for i in 0..(rows_per_page as u32 + 10) {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        hf.flush().unwrap();
        drop(hf);
        // Flip one payload byte in the first page on disk.
        let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(100)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(100)).unwrap();
        f.write_all(&[b[0] ^ 0x55]).unwrap();
        drop(f);
        let hf = HeapFile::open(&path, small_schema()).unwrap();
        let err = hf.fetch_values(0).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn io_counters_advance() {
        let path = tmpdir().join("io.heap");
        let mut hf = HeapFile::create(&path, small_schema()).unwrap();
        let rows_per_page = Page::capacity(hf.schema().row_width());
        for i in 0..(rows_per_page as u32 * 3) {
            hf.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        // Three pages filled → at least two full-page writes happened
        // (the third fills exactly and is written when a fourth row arrives;
        // here it stays as a full tail until flush).
        assert!(hf.pages_written() >= 2);
        let before = hf.pages_read();
        hf.fetch_values(0).unwrap();
        assert_eq!(hf.pages_read(), before + 1);
    }
}
