//! Column types, schemas and fixed-width row encoding.
//!
//! Every relation the engine stores — fact tables, cube-node NT/TT/CAT
//! relations, the shared `AGGREGATES` relation, spill partitions — uses a
//! *fixed-width* row layout: each column occupies a constant number of bytes
//! at a constant offset, little-endian. Fixed widths keep row-id ↔ byte
//! offset arithmetic trivial (`rowid * row_width`), which is exactly the
//! property the paper's R-rowid / A-rowid references rely on.

use crate::error::{Result, StorageError};

/// The primitive column types supported by the engine.
///
/// Dimension ids are `U32` (the paper's datasets never exceed 2³² distinct
/// values per level), row-ids are `U64`, and measures/aggregates are `I64`
/// (integer measures keep common-aggregate detection exact) or `F64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 32-bit unsigned integer (dimension ids at any hierarchy level).
    U32,
    /// 64-bit unsigned integer (row-ids, counts).
    U64,
    /// 64-bit signed integer (measures and distributive aggregates).
    I64,
    /// 64-bit IEEE float (ratio-style measures; not used for CAT matching).
    F64,
}

impl ColType {
    /// Width of the encoded value in bytes.
    #[inline]
    pub const fn width(self) -> usize {
        match self {
            ColType::U32 => 4,
            ColType::U64 | ColType::I64 | ColType::F64 => 8,
        }
    }

    /// Human-readable type name (for errors and catalog metadata).
    pub const fn name(self) -> &'static str {
        match self {
            ColType::U32 => "u32",
            ColType::U64 => "u64",
            ColType::I64 => "i64",
            ColType::F64 => "f64",
        }
    }

    /// Parse a type name produced by [`ColType::name`].
    pub fn parse(s: &str) -> Option<ColType> {
        match s {
            "u32" => Some(ColType::U32),
            "u64" => Some(ColType::U64),
            "i64" => Some(ColType::I64),
            "f64" => Some(ColType::F64),
            _ => None,
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema by convention, not enforced).
    pub name: String,
    /// Column type.
    pub ty: ColType,
}

impl Column {
    /// Create a column.
    pub fn new(name: impl Into<String>, ty: ColType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// A dynamically typed value; the boundary type for row encoding.
///
/// Hot paths (the cubing inner loops) never materialize `Value`s — they read
/// and write raw little-endian bytes via [`Schema::read_u32_at`] and friends.
/// `Value` exists for the convenience API, tests and examples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// See [`ColType::U32`].
    U32(u32),
    /// See [`ColType::U64`].
    U64(u64),
    /// See [`ColType::I64`].
    I64(i64),
    /// See [`ColType::F64`].
    F64(f64),
}

impl Value {
    /// The [`ColType`] this value encodes as.
    pub const fn col_type(self) -> ColType {
        match self {
            Value::U32(_) => ColType::U32,
            Value::U64(_) => ColType::U64,
            Value::I64(_) => ColType::I64,
            Value::F64(_) => ColType::F64,
        }
    }

    /// Extract a `u32`, panicking on type mismatch (test/example helper).
    pub fn as_u32(self) -> u32 {
        match self {
            Value::U32(v) => v,
            other => panic!("expected U32, got {other:?}"),
        }
    }

    /// Extract a `u64`, panicking on type mismatch (test/example helper).
    pub fn as_u64(self) -> u64 {
        match self {
            Value::U64(v) => v,
            other => panic!("expected U64, got {other:?}"),
        }
    }

    /// Extract an `i64`, panicking on type mismatch (test/example helper).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            other => panic!("expected I64, got {other:?}"),
        }
    }
}

/// An ordered list of columns with a precomputed fixed-width layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    cols: Vec<Column>,
    offsets: Vec<usize>,
    row_width: usize,
}

impl Schema {
    /// Build a schema from columns, computing offsets and total row width.
    pub fn new(cols: Vec<Column>) -> Self {
        let mut offsets = Vec::with_capacity(cols.len());
        let mut off = 0usize;
        for c in &cols {
            offsets.push(off);
            off += c.ty.width();
        }
        Schema { cols, offsets, row_width: off }
    }

    /// Shorthand: a schema of `n_dims` `U32` dimension columns named
    /// `d0..d{n-1}` followed by `n_measures` `I64` measure columns named
    /// `m0..` — the standard fact-table layout in this codebase.
    pub fn fact(n_dims: usize, n_measures: usize) -> Self {
        let mut cols = Vec::with_capacity(n_dims + n_measures);
        for i in 0..n_dims {
            cols.push(Column::new(format!("d{i}"), ColType::U32));
        }
        for i in 0..n_measures {
            cols.push(Column::new(format!("m{i}"), ColType::I64));
        }
        Schema::new(cols)
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Total encoded row width in bytes.
    #[inline]
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Byte offset of column `i` within a row.
    #[inline]
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Encode `values` into `out` (which must be exactly `row_width` long).
    pub fn encode_row(&self, values: &[Value], out: &mut [u8]) -> Result<()> {
        if values.len() != self.cols.len() {
            return Err(StorageError::Layout(format!(
                "encode_row: {} values for {}-column schema",
                values.len(),
                self.cols.len()
            )));
        }
        if out.len() != self.row_width {
            return Err(StorageError::Layout(format!(
                "encode_row: buffer {} bytes, row width {}",
                out.len(),
                self.row_width
            )));
        }
        for (i, v) in values.iter().enumerate() {
            if v.col_type() != self.cols[i].ty {
                return Err(StorageError::TypeMismatch {
                    column: i,
                    expected: self.cols[i].ty.name(),
                });
            }
            let off = self.offsets[i];
            match *v {
                Value::U32(x) => out[off..off + 4].copy_from_slice(&x.to_le_bytes()),
                Value::U64(x) => out[off..off + 8].copy_from_slice(&x.to_le_bytes()),
                Value::I64(x) => out[off..off + 8].copy_from_slice(&x.to_le_bytes()),
                Value::F64(x) => out[off..off + 8].copy_from_slice(&x.to_le_bytes()),
            }
        }
        Ok(())
    }

    /// Encode `values` into a fresh buffer.
    pub fn encode_row_vec(&self, values: &[Value]) -> Result<Vec<u8>> {
        let mut out = vec![0u8; self.row_width];
        self.encode_row(values, &mut out)?;
        Ok(out)
    }

    /// Decode a raw row into `Value`s.
    pub fn decode_row(&self, row: &[u8]) -> Result<Vec<Value>> {
        if row.len() != self.row_width {
            return Err(StorageError::Corrupt(format!(
                "decode_row: row {} bytes, expected {}",
                row.len(),
                self.row_width
            )));
        }
        let mut out = Vec::with_capacity(self.cols.len());
        for (i, c) in self.cols.iter().enumerate() {
            let off = self.offsets[i];
            let v = match c.ty {
                ColType::U32 => {
                    Value::U32(u32::from_le_bytes(row[off..off + 4].try_into().unwrap()))
                }
                ColType::U64 => {
                    Value::U64(u64::from_le_bytes(row[off..off + 8].try_into().unwrap()))
                }
                ColType::I64 => {
                    Value::I64(i64::from_le_bytes(row[off..off + 8].try_into().unwrap()))
                }
                ColType::F64 => {
                    Value::F64(f64::from_le_bytes(row[off..off + 8].try_into().unwrap()))
                }
            };
            out.push(v);
        }
        Ok(out)
    }

    /// Read the `U32` column at byte offset `off` directly from a raw row.
    #[inline]
    pub fn read_u32_at(row: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(row[off..off + 4].try_into().unwrap())
    }

    /// Read a `U64` column at byte offset `off` directly from a raw row.
    #[inline]
    pub fn read_u64_at(row: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(row[off..off + 8].try_into().unwrap())
    }

    /// Read an `I64` column at byte offset `off` directly from a raw row.
    #[inline]
    pub fn read_i64_at(row: &[u8], off: usize) -> i64 {
        i64::from_le_bytes(row[off..off + 8].try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Column::new("a", ColType::U32),
            Column::new("b", ColType::U64),
            Column::new("c", ColType::I64),
            Column::new("d", ColType::F64),
        ])
    }

    #[test]
    fn widths_and_offsets() {
        let s = sample_schema();
        assert_eq!(s.row_width(), 4 + 8 + 8 + 8);
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 4);
        assert_eq!(s.offset(2), 12);
        assert_eq!(s.offset(3), 20);
    }

    #[test]
    fn roundtrip() {
        let s = sample_schema();
        let vals = [Value::U32(7), Value::U64(1 << 40), Value::I64(-5), Value::F64(2.5)];
        let enc = s.encode_row_vec(&vals).unwrap();
        let dec = s.decode_row(&enc).unwrap();
        assert_eq!(dec.as_slice(), &vals);
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = sample_schema();
        let vals = [Value::U64(7), Value::U64(0), Value::I64(0), Value::F64(0.0)];
        let err = s.encode_row_vec(&vals).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { column: 0, .. }));
    }

    #[test]
    fn wrong_arity_rejected() {
        let s = sample_schema();
        assert!(s.encode_row_vec(&[Value::U32(1)]).is_err());
    }

    #[test]
    fn wrong_row_len_rejected() {
        let s = sample_schema();
        assert!(s.decode_row(&[0u8; 3]).is_err());
    }

    #[test]
    fn fact_schema_layout() {
        let s = Schema::fact(3, 2);
        assert_eq!(s.arity(), 5);
        assert_eq!(s.row_width(), 3 * 4 + 2 * 8);
        assert_eq!(s.columns()[0].name, "d0");
        assert_eq!(s.columns()[4].name, "m1");
        assert_eq!(s.columns()[3].ty, ColType::I64);
    }

    #[test]
    fn raw_readers_match_decode() {
        let s = sample_schema();
        let vals = [Value::U32(9), Value::U64(11), Value::I64(-13), Value::F64(0.0)];
        let enc = s.encode_row_vec(&vals).unwrap();
        assert_eq!(Schema::read_u32_at(&enc, s.offset(0)), 9);
        assert_eq!(Schema::read_u64_at(&enc, s.offset(1)), 11);
        assert_eq!(Schema::read_i64_at(&enc, s.offset(2)), -13);
    }

    #[test]
    fn coltype_name_parse_roundtrip() {
        for t in [ColType::U32, ColType::U64, ColType::I64, ColType::F64] {
            assert_eq!(ColType::parse(t.name()), Some(t));
        }
        assert_eq!(ColType::parse("bogus"), None);
    }
}
