//! Fixed-size pages holding fixed-width rows.
//!
//! A page is the unit of disk I/O and of buffer caching. Layout:
//!
//! ```text
//! +----------------+---------------------------------------------+
//! | nrows: u16 LE  | row 0 | row 1 | ... | row nrows-1 | padding  |
//! +----------------+---------------------------------------------+
//! ```
//!
//! Rows are fixed-width, so slot arithmetic is `HEADER + i * width`. Pages
//! never contain partial rows: the number of rows per page for a relation of
//! row width `w` is `(PAGE_SIZE - HEADER) / w`.
//!
//! The header also carries a CRC-32 over the payload region (see
//! [`crate::checksum`]); the heap layer stamps it on every write and
//! verifies it on every read, so torn or corrupted pages fail loudly.

use crate::checksum::Crc32;
use crate::error::{Result, StorageError};

/// Page size in bytes. 8 KiB, a common RDBMS default.
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved for the page header: `nrows: u16`, 2 bytes padding,
/// `crc32: u32` over the payload.
pub const PAGE_HEADER: usize = 8;

/// An in-memory page image.
///
/// `Page` owns a `PAGE_SIZE` buffer; the heap file reads/writes these images
/// verbatim. Helper methods interpret the header and row slots for a given
/// row width.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// Create an empty page (zero rows).
    pub fn new() -> Self {
        Page { buf: vec![0u8; PAGE_SIZE].into_boxed_slice() }
    }

    /// Wrap an existing `PAGE_SIZE` buffer read from disk.
    pub fn from_bytes(bytes: Box<[u8]>) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page image is {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        Ok(Page { buf: bytes })
    }

    /// Maximum number of rows of width `row_width` a page can hold.
    #[inline]
    pub fn capacity(row_width: usize) -> usize {
        (PAGE_SIZE - PAGE_HEADER) / row_width
    }

    /// Number of rows currently stored.
    #[inline]
    pub fn nrows(&self) -> usize {
        u16::from_le_bytes([self.buf[0], self.buf[1]]) as usize
    }

    #[inline]
    fn set_nrows(&mut self, n: usize) {
        let n = n as u16;
        self.buf[0..2].copy_from_slice(&n.to_le_bytes());
    }

    /// Borrow row `i` (of width `row_width`).
    ///
    /// # Panics
    /// Panics if `i >= nrows()` in debug builds; in release the slice is
    /// still bounds-checked against the page buffer.
    #[inline]
    pub fn row(&self, row_width: usize, i: usize) -> &[u8] {
        debug_assert!(i < self.nrows(), "row index {i} out of page bounds");
        let off = PAGE_HEADER + i * row_width;
        &self.buf[off..off + row_width]
    }

    /// Append a row; returns `false` (without modifying the page) when full.
    #[inline]
    pub fn push_row(&mut self, row: &[u8]) -> bool {
        let n = self.nrows();
        if n >= Self::capacity(row.len()) {
            return false;
        }
        let off = PAGE_HEADER + n * row.len();
        self.buf[off..off + row.len()].copy_from_slice(row);
        self.set_nrows(n + 1);
        true
    }

    /// Clear the page back to zero rows (buffer contents are left stale).
    #[inline]
    pub fn reset(&mut self) {
        self.set_nrows(0);
    }

    /// The raw page image (for writing to disk).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Zero the unused payload region beyond the last row.
    ///
    /// The heap layer calls this before every disk write so a page image is
    /// a pure function of its row contents — crash recovery compares and
    /// reconstructs sealed pages byte-for-byte, which stale padding (left
    /// behind by [`reset`](Self::reset)) would break.
    pub fn zero_padding(&mut self, row_width: usize) {
        let end = PAGE_HEADER + self.nrows() * row_width;
        if end < PAGE_SIZE {
            self.buf[end..].fill(0);
        }
    }

    /// Checksum over the row count *and* the payload (but not the checksum
    /// field itself). Covering `nrows` matters for torn-write detection: a
    /// write cut short after the header would otherwise pair a new row
    /// count with old row bytes and verify clean.
    fn content_crc(&self) -> u32 {
        let mut c = Crc32::new();
        c.update(&self.buf[0..2]);
        c.update(&self.buf[PAGE_HEADER..]);
        c.finish()
    }

    /// Stamp the content checksum into the header (done by the heap layer
    /// immediately before a disk write).
    pub fn stamp_checksum(&mut self) {
        let c = self.content_crc();
        self.buf[4..8].copy_from_slice(&c.to_le_bytes());
    }

    /// Verify the stored checksum against the page content.
    ///
    /// A zero stored checksum is accepted as "never stamped" so pages
    /// written by older builds (and fresh all-zero pages) stay readable.
    pub fn verify_checksum(&self) -> Result<()> {
        let stored = u32::from_le_bytes(self.buf[4..8].try_into().unwrap());
        if stored == 0 {
            return Ok(());
        }
        let actual = self.content_crc();
        if actual != stored {
            return Err(StorageError::Corrupt(format!(
                "page checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        Ok(())
    }

    /// Iterate over the rows of this page.
    pub fn rows(&self, row_width: usize) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.nrows()).map(move |i| self.row(row_width, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        assert_eq!(Page::capacity(20), (PAGE_SIZE - PAGE_HEADER) / 20);
        assert!(Page::capacity(PAGE_SIZE) == 0);
    }

    #[test]
    fn push_and_read() {
        let mut p = Page::new();
        assert_eq!(p.nrows(), 0);
        assert!(p.push_row(&[1, 2, 3, 4]));
        assert!(p.push_row(&[5, 6, 7, 8]));
        assert_eq!(p.nrows(), 2);
        assert_eq!(p.row(4, 0), &[1, 2, 3, 4]);
        assert_eq!(p.row(4, 1), &[5, 6, 7, 8]);
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let w = 512;
        let mut p = Page::new();
        let row = vec![0xabu8; w];
        let cap = Page::capacity(w);
        for _ in 0..cap {
            assert!(p.push_row(&row));
        }
        assert!(!p.push_row(&row));
        assert_eq!(p.nrows(), cap);
    }

    #[test]
    fn reset_empties() {
        let mut p = Page::new();
        p.push_row(&[0u8; 8]);
        p.reset();
        assert_eq!(p.nrows(), 0);
        assert!(p.push_row(&[1u8; 8]));
        assert_eq!(p.row(8, 0), &[1u8; 8]);
    }

    #[test]
    fn from_bytes_validates_len() {
        assert!(Page::from_bytes(vec![0u8; 10].into_boxed_slice()).is_err());
        let ok = Page::from_bytes(vec![0u8; PAGE_SIZE].into_boxed_slice()).unwrap();
        assert_eq!(ok.nrows(), 0);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::new();
        p.push_row(&[9u8; 16]);
        let img = p.as_bytes().to_vec().into_boxed_slice();
        let q = Page::from_bytes(img).unwrap();
        assert_eq!(q.nrows(), 1);
        assert_eq!(q.row(16, 0), &[9u8; 16]);
    }

    #[test]
    fn checksum_covers_row_count() {
        let mut p = Page::new();
        p.push_row(&[7u8; 8]);
        p.stamp_checksum();
        p.verify_checksum().unwrap();
        // A torn write that lands a new row count over old payload must not
        // verify: simulate by bumping nrows without restamping.
        let mut torn = p.clone();
        torn.set_nrows(2);
        assert!(torn.verify_checksum().is_err());
    }

    #[test]
    fn zero_stored_checksum_means_never_stamped() {
        // Pages written before checksums existed (and fresh all-zero
        // pages) carry a zero checksum field and must stay readable even
        // though their content CRC is nonzero.
        let mut p = Page::new();
        p.push_row(&[3u8; 8]);
        // never stamped: stored field is still zero, content is not
        assert_eq!(p.as_bytes()[4..8], [0, 0, 0, 0]);
        p.verify_checksum().unwrap();
    }

    #[test]
    fn stamped_then_flipped_bit_is_rejected() {
        let mut p = Page::new();
        p.push_row(&[0x5Au8; 8]);
        p.stamp_checksum();
        p.verify_checksum().unwrap();
        // Flip one payload bit in the on-disk image: verification must
        // fail no matter which covered byte was hit.
        for &off in &[PAGE_HEADER, PAGE_HEADER + 7, PAGE_SIZE - 1] {
            let mut img = p.as_bytes().to_vec();
            img[off] ^= 0x10;
            let bad = Page::from_bytes(img.into_boxed_slice()).unwrap();
            let err = bad.verify_checksum().unwrap_err();
            assert!(err.to_string().contains("checksum mismatch"), "offset {off}: {err}");
        }
        // Flipping a row-count bit (covered via the header prefix) also fails.
        let mut img = p.as_bytes().to_vec();
        img[0] ^= 0x01;
        let bad = Page::from_bytes(img.into_boxed_slice()).unwrap();
        assert!(bad.verify_checksum().is_err());
    }

    #[test]
    fn zero_padding_canonicalizes() {
        let mut a = Page::new();
        a.push_row(&[1u8; 8]);
        a.push_row(&[2u8; 8]);
        a.reset(); // leaves stale row bytes in the buffer
        a.push_row(&[1u8; 8]);
        a.zero_padding(8);
        a.stamp_checksum();
        let mut b = Page::new();
        b.push_row(&[1u8; 8]);
        b.zero_padding(8);
        b.stamp_checksum();
        assert_eq!(a.as_bytes(), b.as_bytes(), "image depends only on live rows");
    }

    #[test]
    fn rows_iterator() {
        let mut p = Page::new();
        for i in 0..5u8 {
            p.push_row(&[i; 4]);
        }
        let collected: Vec<Vec<u8>> = p.rows(4).map(|r| r.to_vec()).collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[3], vec![3u8; 4]);
    }
}
