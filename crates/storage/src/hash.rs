//! A fast, non-cryptographic hasher for integer-keyed hot paths.
//!
//! The cubing algorithms hash dimension-value tuples billions of times
//! (e.g. the single-pass construction of node *N* during external
//! partitioning, §4 of the paper). The standard library's SipHash is
//! collision-resistant but slow for short integer keys; following the Rust
//! Performance Book we ship an FxHash-style multiply-rotate hasher. HashDoS
//! is not a concern: all keys are internally generated dimension ids.

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit "Fx" multiplication constant (golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8-byte words, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash an arbitrary byte slice with [`FxHasher`] in one call.
///
/// Used to hash dimension-id key prefixes of raw fixed-width rows without
/// materializing a key struct.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"hello world"), hash_bytes(b"hello world"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"b"));
        assert_ne!(hash_bytes(&7u64.to_le_bytes()), hash_bytes(&8u64.to_le_bytes()));
    }

    #[test]
    fn tail_bytes_affect_hash() {
        // 9 bytes: one full word plus a 1-byte tail.
        let mut a = [0u8; 9];
        let mut b = [0u8; 9];
        a[8] = 1;
        b[8] = 2;
        assert_ne!(hash_bytes(&a), hash_bytes(&b));
    }

    #[test]
    fn write_u32_matches_word_path() {
        let mut h1 = FxHasher::default();
        h1.write_u32(42);
        let mut h2 = FxHasher::default();
        h2.write_u64(42);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn usable_in_hashmap() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn distribution_sanity() {
        // Hash 10k consecutive integers into 64 buckets; no bucket should be
        // empty and none should hold more than 4x the average.
        let mut buckets = [0u32; 64];
        for i in 0..10_000u64 {
            let h = {
                let mut hasher = FxHasher::default();
                hasher.write_u64(i);
                hasher.finish()
            };
            buckets[(h % 64) as usize] += 1;
        }
        let avg = 10_000 / 64;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b > 0, "bucket {i} empty");
            assert!(b < 4 * avg, "bucket {i} overloaded: {b}");
        }
    }
}
