//! CRC-32 (IEEE 802.3) checksums for page integrity.
//!
//! Every page written by the heap layer carries a checksum over its
//! payload; reads verify it and surface torn or corrupted pages as
//! [`StorageError::Corrupt`](crate::error::StorageError::Corrupt) instead
//! of silently decoding garbage — cube relations are written once and
//! read many times, so cheap write-time protection pays for itself.
//!
//! Table-driven implementation of the standard reflected CRC-32
//! (polynomial `0xEDB88320`), no external dependencies.

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// Streaming CRC-32, for checksums over non-contiguous regions (the page
/// layer covers the row-count header and the payload but not the checksum
/// field between them).
#[derive(Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (no bytes consumed).
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.0;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
        assert_eq!(Crc32::new().finish(), crc32(b""));
    }

    #[test]
    fn long_input() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let c1 = crc32(&data);
        let mut mutated = data.clone();
        mutated[50_000] ^= 0x40;
        assert_ne!(c1, crc32(&mutated));
        assert_eq!(c1, crc32(&data), "deterministic");
    }
}
