//! Zero-copy serving over sealed heap files: [`MmapRelation`].
//!
//! Cube relations are immutable once construction (or an ingest epoch)
//! finishes, so the serving layer does not need a user-space page cache
//! at all: the kernel page cache already holds the hot pages, and a
//! read-only memory map exposes them to every worker thread with no
//! locking and no copying. An [`MmapRelation`]:
//!
//! * maps the whole heap file `MAP_SHARED`/`PROT_READ` at open,
//! * verifies every page checksum **once** at open, recording failures
//!   in an atomic bad-page bitset (open degrades per page instead of
//!   failing — the serving layer quarantines and repairs),
//! * serves rows as borrowed `&[u8]` slices of the mapping (zero-copy;
//!   `Cow::Owned` only appears when the I/O fault policy tampers with a
//!   read),
//! * consults the catalog's [`IoPolicy`] on every page access, so the
//!   deterministic chaos fault schedules that drive the cache path's
//!   conformance engine work unchanged against the mmap path: a bit
//!   flip or torn read surfaces as a typed
//!   [`StorageError::CorruptPage`], never as wrong rows,
//! * re-verifies pages in place via [`reverify_page`]
//!   (`MAP_SHARED` means an on-disk repair is visible through the
//!   mapping), the hook behind the serve layer's quarantine repair.
//!
//! The map is only valid for *sealed* relations — every row on disk,
//! no in-memory tail. Cube files are flushed at the end of every build
//! and ingest epoch, so the serving layer can always use this path; the
//! shared-cache path remains the fallback for relations still being
//! written.
//!
//! [`reverify_page`]: MmapRelation::reverify_page

use std::borrow::Cow;
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::catalog::Catalog;
use crate::checksum::Crc32;
use crate::error::{Result, StorageError};
use crate::heap::RowId;
use crate::io::{with_write_retries, IoPolicy, ReadFault};
use crate::page::{Page, PAGE_HEADER, PAGE_SIZE};
use crate::schema::Schema;
use crate::stats::StorageStats;

/// Minimal raw bindings: the toolchain vendors no libc crate, and the
/// storage engine is already unix-only (positioned I/O via
/// `std::os::unix::fs::FileExt`), so declare the two syscalls we need.
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_SHARED: i32 = 0x01;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// Row count stored in a raw page image's header.
fn page_nrows(bytes: &[u8]) -> usize {
    u16::from_le_bytes([bytes[0], bytes[1]]) as usize
}

/// [`Page::verify_checksum`] over a raw page image: CRC of the row count
/// plus the payload, checked against the stored header field (zero is
/// accepted as "never stamped").
fn verify_page_bytes(bytes: &[u8]) -> std::result::Result<(), String> {
    let stored = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if stored == 0 {
        return Ok(());
    }
    let mut c = Crc32::new();
    c.update(&bytes[0..2]);
    c.update(&bytes[PAGE_HEADER..]);
    let actual = c.finish();
    if actual != stored {
        return Err(format!(
            "page checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        ));
    }
    Ok(())
}

/// A sealed heap relation served zero-copy through a read-only memory
/// map (see module docs).
pub struct MmapRelation {
    /// Base of the mapping; null for an empty (zero-length) file.
    ptr: *const u8,
    map_len: usize,
    path: PathBuf,
    name: String,
    schema: Schema,
    rows_per_page: usize,
    disk_pages: u64,
    num_rows: u64,
    policy: Arc<dyn IoPolicy>,
    stats: Option<Arc<StorageStats>>,
    /// Bitset over disk pages: a set bit marks a page that failed
    /// verification (at open or at a repair probe) and is served as a
    /// typed [`StorageError::CorruptPage`] until re-verified clean.
    bad: Vec<AtomicU64>,
    /// Keeps the fd alive for the mapping's lifetime (not required by
    /// the kernel, but it keeps repair tooling able to reopen by path
    /// while we serve).
    _file: File,
}

// SAFETY: the mapping is PROT_READ and never remapped after open; all
// interior mutability goes through atomics (`bad`). Raw-pointer reads of
// immutable, process-lifetime-stable memory are safe to share.
unsafe impl Send for MmapRelation {}
unsafe impl Sync for MmapRelation {}

impl std::fmt::Debug for MmapRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRelation")
            .field("name", &self.name)
            .field("pages", &self.disk_pages)
            .field("rows", &self.num_rows)
            .finish()
    }
}

impl Drop for MmapRelation {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: ptr/map_len came from a successful mmap of exactly
            // this length and are unmapped exactly once.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.map_len);
            }
        }
    }
}

impl MmapRelation {
    /// Map the relation `name` from `catalog`, inheriting the catalog's
    /// I/O fault policy and storage counters. Every page is
    /// checksum-verified once here; pages that fail are recorded (and
    /// later served as typed corrupt errors) rather than failing the
    /// open, so one bad page degrades one page, not the whole cube.
    pub fn open(catalog: &Catalog, name: &str) -> Result<Self> {
        let schema = catalog.relation_schema(name)?;
        let path = catalog.relation_heap_path(name);
        Self::open_at(
            &path,
            schema,
            Arc::clone(catalog.policy()),
            Some(Arc::clone(catalog.stats())),
        )
    }

    /// [`open`](Self::open) from an explicit path, policy, and stats
    /// sink.
    pub fn open_at(
        path: &Path,
        schema: Schema,
        policy: Arc<dyn IoPolicy>,
        stats: Option<Arc<StorageStats>>,
    ) -> Result<Self> {
        let row_width = schema.row_width();
        let rows_per_page = Page::capacity(row_width);
        if rows_per_page == 0 {
            return Err(StorageError::Layout(format!(
                "row width {row_width} exceeds page capacity"
            )));
        }
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "{}: {len} bytes is not a whole number of pages",
                path.display()
            )));
        }
        let disk_pages = len / PAGE_SIZE as u64;
        let ptr = if len == 0 {
            std::ptr::null()
        } else {
            // SAFETY: fd is a freshly opened readable file of `len`
            // bytes; a PROT_READ/MAP_SHARED mapping of it has no aliasing
            // hazards (we never write through it).
            let p = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len as usize,
                    sys::PROT_READ,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if p as usize == usize::MAX {
                return Err(StorageError::Io(io::Error::last_os_error()));
            }
            p as *const u8
        };
        let name = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let bad = (0..disk_pages.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        let mut rel = MmapRelation {
            ptr,
            map_len: len as usize,
            path: path.to_path_buf(),
            name,
            schema,
            rows_per_page,
            disk_pages,
            num_rows: 0,
            policy,
            stats,
            bad,
            _file: file,
        };
        rel.verify_all_pages()?;
        Ok(rel)
    }

    /// Raw mapped bytes of `page_no` (no policy, no verification).
    fn raw_page(&self, page_no: u64) -> &[u8] {
        debug_assert!(page_no < self.disk_pages);
        // SAFETY: page_no is within the mapping (disk_pages * PAGE_SIZE
        // == map_len) and the mapping lives as long as &self.
        unsafe { std::slice::from_raw_parts(self.ptr.add(page_no as usize * PAGE_SIZE), PAGE_SIZE) }
    }

    fn bad_bit(&self, page_no: u64) -> bool {
        let (word, bit) = ((page_no / 64) as usize, page_no % 64);
        self.bad.get(word).is_some_and(|w| w.load(Ordering::Acquire) & (1 << bit) != 0)
    }

    fn set_bad(&self, page_no: u64, bad: bool) {
        let (word, bit) = ((page_no / 64) as usize, page_no % 64);
        if let Some(w) = self.bad.get(word) {
            if bad {
                w.fetch_or(1 << bit, Ordering::AcqRel);
            } else {
                w.fetch_and(!(1 << bit), Ordering::AcqRel);
            }
        }
    }

    /// Consult the I/O policy for one page access, mirroring the heap
    /// layer's read semantics: transient failures are retried with
    /// backoff (and counted), hard failures surface as I/O errors, and
    /// tampering faults (bit flip / torn read) are applied to a private
    /// copy of the mapped page. Returns the page image to serve from.
    fn policy_page(&self, page_no: u64) -> Result<Cow<'_, [u8]>> {
        let offset = page_no * PAGE_SIZE as u64;
        let mut attempts = 0u64;
        let result = with_write_retries(|| {
            attempts += 1;
            match self.policy.on_read(&self.path, offset, PAGE_SIZE) {
                ReadFault::Proceed => Ok(None),
                ReadFault::Fail(e) => Err(e),
                ReadFault::FlipBit { offset: byte, mask } => {
                    let mut copy = self.raw_page(page_no).to_vec();
                    copy[byte % PAGE_SIZE] ^= mask.max(1);
                    Ok(Some(copy))
                }
                ReadFault::Torn { keep } => {
                    let mut copy = self.raw_page(page_no).to_vec();
                    copy[keep.min(PAGE_SIZE)..].fill(0);
                    Ok(Some(copy))
                }
            }
        });
        if let Some(stats) = &self.stats {
            stats.count_read_retries(attempts.saturating_sub(1));
        }
        match result? {
            None => Ok(Cow::Borrowed(self.raw_page(page_no))),
            Some(copy) => Ok(Cow::Owned(copy)),
        }
    }

    fn corrupt(&self, page_no: u64, detail: impl Into<String>) -> StorageError {
        StorageError::CorruptPage {
            relation: self.name.clone(),
            page: page_no,
            detail: detail.into(),
        }
    }

    /// Verify a page image (header sanity + checksum), counting into the
    /// storage stats. Used at open and by [`reverify_page`](Self::reverify_page).
    fn verify_bytes(&self, page_no: u64, bytes: &[u8]) -> Result<()> {
        if let Some(stats) = &self.stats {
            stats.count_checksum_verification();
        }
        let fail = |detail: String| {
            if let Some(stats) = &self.stats {
                stats.count_checksum_failure();
            }
            Err(self.corrupt(page_no, detail))
        };
        let nrows = page_nrows(bytes);
        if nrows > self.rows_per_page {
            return fail(format!("row count {nrows} exceeds capacity {}", self.rows_per_page));
        }
        if let Err(detail) = verify_page_bytes(bytes) {
            return fail(detail);
        }
        Ok(())
    }

    /// Open-time pass: policy-consult and verify every page once,
    /// recording failures in the bad-page bitset, and derive the row
    /// count (all pages but the last are full in a sealed heap).
    fn verify_all_pages(&mut self) -> Result<()> {
        for p in 0..self.disk_pages {
            let sound = match self.policy_page(p) {
                Ok(bytes) => self.verify_bytes(p, &bytes).is_ok(),
                // A hard read fault at open degrades the page, not the
                // open; the repair probe re-verifies it later.
                Err(_) => false,
            };
            if !sound {
                self.set_bad(p, true);
            }
            // Every page except the last must be full, or row-id
            // arithmetic is impossible. A clean short middle page means
            // this is not a sealed heap file — refuse the mapping.
            if sound
                && p + 1 < self.disk_pages
                && page_nrows(self.raw_page(p)) != self.rows_per_page
            {
                return Err(StorageError::Corrupt(format!(
                    "{}: page {p} holds {} rows but only the last page may be partial — \
                     relation is not sealed",
                    self.path.display(),
                    page_nrows(self.raw_page(p)),
                )));
            }
        }
        self.num_rows = if self.disk_pages == 0 {
            0
        } else {
            let tail = page_nrows(self.raw_page(self.disk_pages - 1)).min(self.rows_per_page);
            (self.disk_pages - 1) * self.rows_per_page as u64 + tail as u64
        };
        Ok(())
    }

    /// The relation name (file stem) — the identity corrupt errors and
    /// the serving layer's quarantine key by.
    pub fn relation_name(&self) -> &str {
        &self.name
    }

    /// The relation's row schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows on disk.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Rows per full page (for row-id ↔ page arithmetic).
    pub fn rows_per_page(&self) -> usize {
        self.rows_per_page
    }

    /// Pages on disk (the last may be partial).
    pub fn num_pages(&self) -> u64 {
        self.disk_pages
    }

    /// Pages currently marked bad (failed verification, pending repair).
    pub fn bad_pages(&self) -> u64 {
        self.bad.iter().map(|w| w.load(Ordering::Acquire).count_ones() as u64).sum()
    }

    /// One page image, policy-consulted and gated on the bad-page set.
    /// Borrowed from the mapping on the clean path (zero-copy); owned
    /// only when the fault policy tampered with the access, in which
    /// case the tampered image is re-verified and surfaces as a typed
    /// corrupt error on mismatch — a corrupt mapped page can produce an
    /// error, never wrong rows.
    pub fn page(&self, page_no: u64) -> Result<Cow<'_, [u8]>> {
        if page_no >= self.disk_pages {
            return Err(
                self.corrupt(page_no, format!("page beyond file ({} pages)", self.disk_pages))
            );
        }
        if self.bad_bit(page_no) {
            return Err(self.corrupt(page_no, "page failed verification (pending repair)"));
        }
        let bytes = self.policy_page(page_no)?;
        if let Cow::Owned(_) = bytes {
            // Tampered access: always verify, never trust. (The clean
            // borrowed path was verified once at open.)
            self.verify_bytes(page_no, &bytes)?;
        }
        Ok(bytes)
    }

    /// Row count of one page (via [`page`](Self::page), so gated and
    /// policy-consulted like any other access).
    pub fn page_rows(&self, page_no: u64) -> Result<(Cow<'_, [u8]>, usize)> {
        let bytes = self.page(page_no)?;
        let n = page_nrows(&bytes);
        Ok((bytes, n))
    }

    /// Fetch row `rowid` as a byte slice — borrowed straight from the
    /// mapping on the clean path.
    pub fn row(&self, rowid: RowId) -> Result<Cow<'_, [u8]>> {
        if rowid >= self.num_rows {
            return Err(StorageError::RowOutOfBounds { rowid, num_rows: self.num_rows });
        }
        let w = self.schema.row_width();
        let page_no = rowid / self.rows_per_page as u64;
        let slot = (rowid % self.rows_per_page as u64) as usize;
        let off = PAGE_HEADER + slot * w;
        match self.page(page_no)? {
            Cow::Borrowed(bytes) => Ok(Cow::Borrowed(&bytes[off..off + w])),
            Cow::Owned(bytes) => Ok(Cow::Owned(bytes[off..off + w].to_vec())),
        }
    }

    /// Copying fetch with the same signature shape as
    /// [`HeapFile::fetch_into`](crate::heap::HeapFile::fetch_into), for
    /// differential testing against the cache path.
    pub fn fetch_into(&self, rowid: RowId, out: &mut [u8]) -> Result<()> {
        let w = self.schema.row_width();
        if out.len() != w {
            return Err(StorageError::Layout(format!(
                "fetch_into: buffer {} bytes, row width {w}",
                out.len()
            )));
        }
        out.copy_from_slice(&self.row(rowid)?);
        Ok(())
    }

    /// Iterate every row (page at a time, policy-consulted per page) —
    /// the zero-copy scan behind NT/CAT resolution on the mmap path.
    pub fn try_for_each_row(&self, mut f: impl FnMut(RowId, &[u8]) -> Result<()>) -> Result<()> {
        let w = self.schema.row_width();
        let mut rowid: RowId = 0;
        for p in 0..self.disk_pages {
            let (bytes, nrows) = self.page_rows(p)?;
            for i in 0..nrows {
                let off = PAGE_HEADER + i * w;
                f(rowid, &bytes[off..off + w])?;
                rowid += 1;
            }
        }
        Ok(())
    }

    /// Repair probe: re-verify `page_no` against the live mapping
    /// (`MAP_SHARED`, so an on-disk rewrite is visible here) and update
    /// the bad-page set to match. `Ok` means the page now serves clean.
    pub fn reverify_page(&self, page_no: u64) -> Result<()> {
        if page_no >= self.disk_pages {
            // Parity with the heap layer's in-memory tail: nothing on
            // disk to verify.
            return Ok(());
        }
        let bytes = self.policy_page(page_no)?;
        match self.verify_bytes(page_no, &bytes) {
            Ok(()) => {
                // Only a clean *untampered* image clears the bad bit —
                // a faulted probe proves nothing about the mapping.
                if matches!(bytes, Cow::Borrowed(_)) {
                    self.set_bad(page_no, false);
                }
                Ok(())
            }
            Err(e) => {
                self.set_bad(page_no, true);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::os::unix::fs::FileExt;

    use super::*;
    use crate::io::{no_faults, FaultInjector, ReadFaultKind};
    use crate::schema::{ColType, Column, Value};
    use crate::Catalog;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cure_mmap_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn test_schema() -> Schema {
        Schema::new(vec![Column::new("k", ColType::U64), Column::new("v", ColType::I64)])
    }

    fn build_relation(catalog: &Catalog, name: &str, rows: u64) {
        let mut heap = catalog.create_or_replace(name, test_schema()).unwrap();
        for i in 0..rows {
            heap.append(&[Value::U64(i), Value::I64(i as i64 * 3 - 7)]).unwrap();
        }
        heap.flush().unwrap();
        heap.sync().unwrap();
    }

    #[test]
    fn rows_match_heap_file_byte_for_byte() {
        let dir = tmpdir("diff");
        let catalog = Catalog::open(&dir).unwrap();
        // 2000 rows of 16 bytes: several full pages plus a partial tail.
        build_relation(&catalog, "rel", 2000);
        let heap = catalog.open_relation("rel").unwrap();
        let map = MmapRelation::open(&catalog, "rel").unwrap();
        assert_eq!(map.num_rows(), heap.num_rows());
        assert_eq!(map.rows_per_page(), heap.rows_per_page());
        assert_eq!(map.relation_name(), "rel");
        let w = heap.schema().row_width();
        let mut buf = vec![0u8; w];
        for rowid in 0..heap.num_rows() {
            heap.fetch_into(rowid, &mut buf).unwrap();
            assert_eq!(&*map.row(rowid).unwrap(), &buf[..], "row {rowid} diverged");
        }
        assert!(map.row(heap.num_rows()).is_err(), "out of bounds accepted");
        // The scan sees the same bytes in row order.
        let mut seen = 0u64;
        map.try_for_each_row(|rowid, row| {
            assert_eq!(rowid, seen);
            heap.fetch_into(rowid, &mut buf).unwrap();
            assert_eq!(row, &buf[..]);
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, heap.num_rows());
    }

    #[test]
    fn empty_relation_maps_to_zero_rows() {
        let dir = tmpdir("empty");
        let catalog = Catalog::open(&dir).unwrap();
        build_relation(&catalog, "rel", 0);
        let map = MmapRelation::open(&catalog, "rel").unwrap();
        assert_eq!(map.num_rows(), 0);
        assert!(map.row(0).is_err());
        map.try_for_each_row(|_, _| panic!("no rows expected")).unwrap();
    }

    #[test]
    fn disk_corruption_is_caught_at_open_and_repairable() {
        let dir = tmpdir("corrupt");
        let catalog = Catalog::open(&dir).unwrap();
        build_relation(&catalog, "rel", 1500);
        let path = catalog.relation_heap_path("rel");
        // Save page 1, then flip a payload byte on disk.
        let file = std::fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
        let mut good = vec![0u8; PAGE_SIZE];
        file.read_exact_at(&mut good, PAGE_SIZE as u64).unwrap();
        let mut evil = good.clone();
        evil[PAGE_HEADER + 11] ^= 0x40;
        file.write_all_at(&evil, PAGE_SIZE as u64).unwrap();
        file.sync_all().unwrap();

        let map = MmapRelation::open(&catalog, "rel").unwrap();
        assert_eq!(map.bad_pages(), 1, "exactly the tampered page is bad");
        // Rows on the bad page fail typed; other pages serve fine.
        let rpp = map.rows_per_page() as u64;
        assert!(map.row(0).is_ok());
        match map.row(rpp) {
            Err(StorageError::CorruptPage { relation, page, .. }) => {
                assert_eq!(relation, "rel");
                assert_eq!(page, 1);
            }
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        assert!(map.reverify_page(1).is_err(), "still corrupt on disk");
        // Repair on disk; MAP_SHARED makes the fix visible in place.
        file.write_all_at(&good, PAGE_SIZE as u64).unwrap();
        file.sync_all().unwrap();
        map.reverify_page(1).unwrap();
        assert_eq!(map.bad_pages(), 0);
        assert!(map.row(rpp).is_ok(), "repaired page serves again");
    }

    #[test]
    fn policy_faults_surface_typed_never_wrong_rows() {
        let dir = tmpdir("faults");
        let catalog = Catalog::open(&dir).unwrap();
        build_relation(&catalog, "rel", 1000);
        let schema = catalog.relation_schema("rel").unwrap();
        let path = catalog.relation_heap_path("rel");
        let pages = (std::fs::metadata(&path).unwrap().len() / PAGE_SIZE as u64) as u64;

        // Bit flip on the first post-open access → typed corrupt.
        let policy = Arc::new(FaultInjector::fail_nth_read(pages, ReadFaultKind::FlipBit));
        let map = MmapRelation::open_at(&path, schema.clone(), policy, None).unwrap();
        assert_eq!(map.bad_pages(), 0, "open consumed exactly {pages} policy reads");
        match map.row(0) {
            Err(StorageError::CorruptPage { page: 0, .. }) => {}
            other => panic!("expected CorruptPage on page 0, got {other:?}"),
        }
        // The fault budget is spent: the same row now serves clean (the
        // mapping itself was never damaged).
        assert!(map.row(0).is_ok());

        // Hard read error → typed I/O error, and transient → absorbed.
        let policy = Arc::new(FaultInjector::fail_nth_read(pages, ReadFaultKind::Error));
        let map = MmapRelation::open_at(&path, schema.clone(), policy, None).unwrap();
        assert!(matches!(map.row(0), Err(StorageError::Io(_))));
        assert!(map.row(0).is_ok());

        let policy =
            Arc::new(FaultInjector::fail_nth_read(pages, ReadFaultKind::Transient { failures: 2 }));
        let map = MmapRelation::open_at(&path, schema, policy, None).unwrap();
        assert!(map.row(0).is_ok(), "bounded retry absorbs transient faults");
    }

    #[test]
    fn open_survives_faults_during_verification() {
        let dir = tmpdir("openfault");
        let catalog = Catalog::open(&dir).unwrap();
        build_relation(&catalog, "rel", 1500);
        let schema = catalog.relation_schema("rel").unwrap();
        let path = catalog.relation_heap_path("rel");
        // A bit flip during the open-time verify pass marks that page bad
        // without failing the open; a later repair probe clears it.
        let policy = Arc::new(FaultInjector::fail_nth_read(1, ReadFaultKind::FlipBit));
        let map = MmapRelation::open_at(&path, schema, policy, None).unwrap();
        assert_eq!(map.bad_pages(), 1);
        map.reverify_page(1).unwrap();
        assert_eq!(map.bad_pages(), 0);
        let _ = no_faults();
    }
}
