//! RLE-compressed bitmap indexes over row-ids.
//!
//! §5.3 of the paper proposes storing each cube node's trivial-tuple (TT)
//! row-id list as a bitmap over the original fact table "if the underlying
//! ROLAP engine supports bitmap indexing". The CURE+ variant measured in
//! the evaluation uses exactly this. A bitmap also sorts row-ids implicitly,
//! which the paper notes produces sequential scans at query time.
//!
//! Encoding: the sorted set of row-ids is stored as alternating
//! `(gap, run)` pairs of LEB128 varints — `gap` zero bits skipped, then
//! `run` consecutive one bits. This is compact both for sparse sets (large
//! gaps) and for dense sets (long runs), the two regimes TT lists occupy.

use crate::error::{Result, StorageError};
use crate::heap::RowId;

/// A compressed, immutable set of row-ids.
///
/// ```
/// use cure_storage::BitmapIndex;
/// let bm = BitmapIndex::from_sorted(&[3, 4, 5, 100]);
/// assert_eq!(bm.count(), 4);
/// assert!(bm.contains(4) && !bm.contains(6));
/// let rt = BitmapIndex::from_bytes(&bm.to_bytes()).unwrap();
/// assert_eq!(rt.iter().collect::<Vec<_>>(), vec![3, 4, 5, 100]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmapIndex {
    /// (gap, run) varint pairs.
    bytes: Vec<u8>,
    count: u64,
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| StorageError::Corrupt("truncated varint in bitmap".into()))?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflow in bitmap".into()));
        }
    }
}

impl BitmapIndex {
    /// Build from a **strictly increasing** slice of row-ids.
    ///
    /// # Panics
    /// Debug-asserts strict monotonicity; callers sort & dedup first (the
    /// CURE+ post-processing step is precisely that sort).
    pub fn from_sorted(rowids: &[RowId]) -> Self {
        let mut bytes = Vec::new();
        let mut i = 0usize;
        let mut next_expected: u64 = 0;
        while i < rowids.len() {
            let start = rowids[i];
            debug_assert!(start >= next_expected, "row-ids must be strictly increasing");
            let mut run = 1u64;
            while i + (run as usize) < rowids.len() && rowids[i + run as usize] == start + run {
                run += 1;
            }
            push_varint(&mut bytes, start - next_expected);
            push_varint(&mut bytes, run);
            next_expected = start + run;
            i += run as usize;
        }
        BitmapIndex { bytes, count: rowids.len() as u64 }
    }

    /// Build from an unsorted list (sorts and dedups a copy).
    pub fn from_unsorted(rowids: &[RowId]) -> Self {
        let mut sorted = rowids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Self::from_sorted(&sorted)
    }

    /// Number of row-ids in the set.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Compressed size in bytes (what the storage-space figures charge).
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Iterate the row-ids in increasing order.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter { bytes: &self.bytes, pos: 0, current: 0, remaining_run: 0 }
    }

    /// Membership test (linear in the number of runs).
    pub fn contains(&self, rowid: RowId) -> bool {
        let mut pos = 0usize;
        let mut next = 0u64;
        while pos < self.bytes.len() {
            let gap = read_varint(&self.bytes, &mut pos).expect("validated at build");
            let run = read_varint(&self.bytes, &mut pos).expect("validated at build");
            let start = next + gap;
            if rowid < start {
                return false;
            }
            if rowid < start + run {
                return true;
            }
            next = start + run;
        }
        false
    }

    /// Intersect with another bitmap (both iterate in sorted order; the
    /// result is re-encoded). Used by selective queries to combine a
    /// node's TT list with a value-index bitmap.
    pub fn intersect(&self, other: &BitmapIndex) -> BitmapIndex {
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        let mut out = Vec::new();
        while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    out.push(x);
                    a.next();
                    b.next();
                }
            }
        }
        BitmapIndex::from_sorted(&out)
    }

    /// Union with another bitmap.
    pub fn union(&self, other: &BitmapIndex) -> BitmapIndex {
        let mut out: Vec<u64> = self.iter().chain(other.iter()).collect();
        out.sort_unstable();
        out.dedup();
        BitmapIndex::from_sorted(&out)
    }

    /// Serialize: `count` varint followed by the run bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bytes.len() + 10);
        push_varint(&mut out, self.count);
        out.extend_from_slice(&self.bytes);
        out
    }

    /// Deserialize a buffer produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let count = read_varint(bytes, &mut pos)?;
        let body = bytes[pos..].to_vec();
        // Validate: decode all runs and check the total matches `count`.
        let mut check_pos = 0usize;
        let mut total = 0u64;
        while check_pos < body.len() {
            let _gap = read_varint(&body, &mut check_pos)?;
            let run = read_varint(&body, &mut check_pos)?;
            total += run;
        }
        if total != count {
            return Err(StorageError::Corrupt(format!(
                "bitmap count {count} disagrees with decoded runs total {total}"
            )));
        }
        Ok(BitmapIndex { bytes: body, count })
    }
}

/// Iterator over the row-ids of a [`BitmapIndex`].
pub struct BitmapIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    current: u64,
    remaining_run: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = RowId;

    fn next(&mut self) -> Option<RowId> {
        if self.remaining_run == 0 {
            if self.pos >= self.bytes.len() {
                return None;
            }
            let gap = read_varint(self.bytes, &mut self.pos).ok()?;
            let run = read_varint(self.bytes, &mut self.pos).ok()?;
            self.current += gap;
            self.remaining_run = run;
        }
        let id = self.current;
        self.current += 1;
        self.remaining_run -= 1;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sparse() {
        let ids = vec![0, 5, 100, 1_000_000, 1_000_001];
        let bm = BitmapIndex::from_sorted(&ids);
        assert_eq!(bm.count(), 5);
        assert_eq!(bm.iter().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn roundtrip_dense_run() {
        let ids: Vec<u64> = (10..10_000).collect();
        let bm = BitmapIndex::from_sorted(&ids);
        assert_eq!(bm.count(), ids.len() as u64);
        assert_eq!(bm.iter().collect::<Vec<_>>(), ids);
        // One gap varint + one run varint: tiny.
        assert!(bm.size_bytes() < 8, "dense run should compress to a few bytes");
    }

    #[test]
    fn empty_bitmap() {
        let bm = BitmapIndex::from_sorted(&[]);
        assert!(bm.is_empty());
        assert_eq!(bm.iter().count(), 0);
        assert!(!bm.contains(0));
        let rt = BitmapIndex::from_bytes(&bm.to_bytes()).unwrap();
        assert!(rt.is_empty());
    }

    #[test]
    fn contains_matches_iter() {
        let ids = vec![3, 4, 5, 9, 20, 21];
        let bm = BitmapIndex::from_sorted(&ids);
        for i in 0..30u64 {
            assert_eq!(bm.contains(i), ids.contains(&i), "id {i}");
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let ids = vec![1, 2, 3, 50, 51, 52, 53, 1000];
        let bm = BitmapIndex::from_sorted(&ids);
        let rt = BitmapIndex::from_bytes(&bm.to_bytes()).unwrap();
        assert_eq!(rt, bm);
        assert_eq!(rt.iter().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn corrupt_count_rejected() {
        // Body encodes {1,2,3} (gap 1, run 3) but the count claims 5.
        let mut bytes = Vec::new();
        push_varint(&mut bytes, 5); // wrong count
        push_varint(&mut bytes, 1); // gap
        push_varint(&mut bytes, 3); // run
        assert!(BitmapIndex::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_varint_rejected() {
        // A lone continuation byte is an unterminated varint.
        assert!(BitmapIndex::from_bytes(&[0x80]).is_err());
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let bm = BitmapIndex::from_unsorted(&[9, 1, 9, 4, 1]);
        assert_eq!(bm.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
        assert_eq!(bm.count(), 3);
    }

    #[test]
    fn varint_boundaries() {
        // Values straddling 1- and 2-byte varint encodings.
        let ids = vec![126, 127, 128, 129, 16_383, 16_384];
        let bm = BitmapIndex::from_sorted(&ids);
        assert_eq!(bm.iter().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn intersect_and_union() {
        let a = BitmapIndex::from_sorted(&[1, 2, 3, 10, 11, 50]);
        let b = BitmapIndex::from_sorted(&[2, 3, 4, 11, 49, 50]);
        assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), vec![2, 3, 11, 50]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 10, 11, 49, 50]);
        let empty = BitmapIndex::from_sorted(&[]);
        assert!(a.intersect(&empty).is_empty());
        assert_eq!(a.union(&empty), a);
    }

    #[test]
    fn intersect_disjoint_runs() {
        let a = BitmapIndex::from_sorted(&(0..100).collect::<Vec<u64>>());
        let b = BitmapIndex::from_sorted(&(100..200).collect::<Vec<u64>>());
        assert!(a.intersect(&b).is_empty());
        assert_eq!(a.union(&b).count(), 200);
    }

    #[test]
    fn large_gap_and_u32_max_plus() {
        let ids = vec![0, u32::MAX as u64 + 5];
        let bm = BitmapIndex::from_sorted(&ids);
        assert_eq!(bm.iter().collect::<Vec<_>>(), ids);
        assert!(bm.contains(u32::MAX as u64 + 5));
        assert!(!bm.contains(u32::MAX as u64 + 4));
    }
}
