//! Storage-level I/O counters: the bottom layer of the observability
//! spine.
//!
//! The paper's evaluation (§7) argues CURE's advantage in terms of I/O
//! behaviour — pages moved, spill volume, external-sort passes — so the
//! reproduction counts exactly those quantities. One [`StorageStats`]
//! registry hangs off each [`Catalog`](crate::Catalog) and is shared (via
//! `Arc`) by every [`HeapFile`](crate::HeapFile) the catalog opens and by
//! any [`ExternalSorter`](crate::sort::ExternalSorter) attached to it.
//!
//! Hot paths touch nothing but relaxed atomics — no locks, no branches
//! beyond the increment — so the counters are *always on*: a build with
//! `--stats` and one without execute the same instructions apart from the
//! final snapshot serialization, which happens outside any timed region.
//! Counters are registry-scoped, not process-global, so concurrent tests
//! (and concurrent cubes) never observe each other's traffic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic I/O counters for one catalog's storage traffic.
#[derive(Debug, Default)]
pub struct StorageStats {
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    fsyncs: AtomicU64,
    write_retries: AtomicU64,
    read_retries: AtomicU64,
    checksum_verifications: AtomicU64,
    checksum_failures: AtomicU64,
    sort_runs: AtomicU64,
    sort_spill_bytes: AtomicU64,
}

/// A plain point-in-time copy of a [`StorageStats`] registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageCounters {
    /// Heap pages read from disk (cache misses included, cache hits not).
    pub pages_read: u64,
    /// Heap pages written to disk.
    pub pages_written: u64,
    /// fsync calls issued on heap files.
    pub fsyncs: u64,
    /// Extra write attempts consumed retrying transient I/O faults.
    pub write_retries: u64,
    /// Extra read attempts consumed retrying transient I/O faults.
    pub read_retries: u64,
    /// Page checksum verifications performed on read.
    pub checksum_verifications: u64,
    /// Page checksum verifications that failed (corrupt pages detected).
    pub checksum_failures: u64,
    /// Sorted runs spilled by external sorters.
    pub sort_runs: u64,
    /// Bytes spilled to external-sort run files.
    pub sort_spill_bytes: u64,
}

impl StorageStats {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one heap page read from disk.
    #[inline]
    pub fn count_page_read(&self) {
        self.pages_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one heap page written to disk.
    #[inline]
    pub fn count_page_written(&self) {
        self.pages_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one fsync.
    #[inline]
    pub fn count_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` extra write attempts spent on transient-fault retries.
    #[inline]
    pub fn count_write_retries(&self, n: u64) {
        if n > 0 {
            self.write_retries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count `n` extra read attempts spent on transient-fault retries.
    #[inline]
    pub fn count_read_retries(&self, n: u64) {
        if n > 0 {
            self.read_retries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Count one page checksum verification.
    #[inline]
    pub fn count_checksum_verification(&self) {
        self.checksum_verifications.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one failed page checksum verification.
    #[inline]
    pub fn count_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one spilled external-sort run of `bytes` bytes.
    #[inline]
    pub fn count_sort_spill(&self, bytes: u64) {
        self.sort_runs.fetch_add(1, Ordering::Relaxed);
        self.sort_spill_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Heap pages read from disk.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Heap pages written to disk.
    pub fn pages_written(&self) -> u64 {
        self.pages_written.load(Ordering::Relaxed)
    }

    /// fsync calls issued.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Extra write attempts consumed by transient-fault retries.
    pub fn write_retries(&self) -> u64 {
        self.write_retries.load(Ordering::Relaxed)
    }

    /// Extra read attempts consumed by transient-fault retries.
    pub fn read_retries(&self) -> u64 {
        self.read_retries.load(Ordering::Relaxed)
    }

    /// Page checksum verifications performed.
    pub fn checksum_verifications(&self) -> u64 {
        self.checksum_verifications.load(Ordering::Relaxed)
    }

    /// Failed page checksum verifications.
    pub fn checksum_failures(&self) -> u64 {
        self.checksum_failures.load(Ordering::Relaxed)
    }

    /// Sorted runs spilled by external sorters.
    pub fn sort_runs(&self) -> u64 {
        self.sort_runs.load(Ordering::Relaxed)
    }

    /// Bytes spilled to external-sort run files.
    pub fn sort_spill_bytes(&self) -> u64 {
        self.sort_spill_bytes.load(Ordering::Relaxed)
    }

    /// A plain copy of every counter.
    pub fn snapshot(&self) -> StorageCounters {
        StorageCounters {
            pages_read: self.pages_read(),
            pages_written: self.pages_written(),
            fsyncs: self.fsyncs(),
            write_retries: self.write_retries(),
            read_retries: self.read_retries(),
            checksum_verifications: self.checksum_verifications(),
            checksum_failures: self.checksum_failures(),
            sort_runs: self.sort_runs(),
            sort_spill_bytes: self.sort_spill_bytes(),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
        self.fsyncs.store(0, Ordering::Relaxed);
        self.write_retries.store(0, Ordering::Relaxed);
        self.read_retries.store(0, Ordering::Relaxed);
        self.checksum_verifications.store(0, Ordering::Relaxed);
        self.checksum_failures.store(0, Ordering::Relaxed);
        self.sort_runs.store(0, Ordering::Relaxed);
        self.sort_spill_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = StorageStats::new();
        s.count_page_read();
        s.count_page_read();
        s.count_page_written();
        s.count_fsync();
        s.count_write_retries(3);
        s.count_write_retries(0); // no-op
        s.count_read_retries(2);
        s.count_read_retries(0); // no-op
        s.count_checksum_verification();
        s.count_checksum_verification();
        s.count_checksum_failure();
        s.count_sort_spill(4096);
        s.count_sort_spill(1024);
        let snap = s.snapshot();
        assert_eq!(
            snap,
            StorageCounters {
                pages_read: 2,
                pages_written: 1,
                fsyncs: 1,
                write_retries: 3,
                read_retries: 2,
                checksum_verifications: 2,
                checksum_failures: 1,
                sort_runs: 2,
                sort_spill_bytes: 5120,
            }
        );
        s.reset();
        assert_eq!(s.snapshot(), StorageCounters::default());
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let s = Arc::new(StorageStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        s.count_page_read();
                        s.count_page_written();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.pages_read(), 8_000);
        assert_eq!(s.pages_written(), 8_000);
    }
}
