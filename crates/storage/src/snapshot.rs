//! Snapshot export and CRC verification: the replication primitive.
//!
//! A sealed cube is a closed family of catalog files under one name
//! prefix — `<rel>.heap` + `<rel>.meta` pairs, `<name>.blob` metadata
//! blobs, and the durable `<prefix>manifest.json` journal. Shipping a
//! replica is therefore a *file-level* copy of that family into another
//! catalog directory ([`export_snapshot`]), followed by an end-to-end
//! integrity check on the receiving side ([`verify_snapshot`]): every
//! page of every replicated relation is re-read from disk and its CRC32
//! verified, so a replica that passes verification serves byte-identical
//! rows or it is rejected before it ever serves a query.
//!
//! The export deliberately skips `.tmp` files (in-flight atomic writes)
//! and fsyncs the destination directory once at the end, so a crash
//! mid-export leaves a partial replica that simply fails verification.

use std::fs;
use std::path::Path;

use crate::catalog::{sanitize, Catalog};
use crate::error::{Result, StorageError};

/// What a snapshot export or verification covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Files copied (export) or relations opened (verify).
    pub files: usize,
    /// Relations in the prefix family (`.meta` count on export, opened
    /// relations on verify).
    pub relations: usize,
    /// Bytes copied (export) or pages CRC-verified (verify).
    pub bytes: u64,
    /// Pages whose checksum was verified (verify only).
    pub pages_verified: u64,
}

/// Copy every sealed catalog file whose name starts with `prefix` from
/// `src` into `dest_dir` (created if needed). Covers heap files, schema
/// metadata, blobs, and the build manifest uniformly; skips `.tmp`
/// leftovers of in-flight atomic writes. The destination directory is
/// fsynced once after the last copy.
pub fn export_snapshot(src: &Catalog, prefix: &str, dest_dir: &Path) -> Result<SnapshotReport> {
    let fs_prefix = sanitize(prefix);
    fs::create_dir_all(dest_dir)?;
    let mut report = SnapshotReport::default();
    for entry in fs::read_dir(src.dir())? {
        let entry = entry?;
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()).map(str::to_string) else {
            continue;
        };
        if !name.starts_with(&fs_prefix) || name.ends_with(".tmp") {
            continue;
        }
        let copied = fs::copy(&path, dest_dir.join(&name))?;
        report.files += 1;
        report.bytes += copied;
        if name.ends_with(".meta") {
            report.relations += 1;
        }
    }
    if report.files == 0 {
        return Err(StorageError::Catalog(format!(
            "snapshot export found no files under prefix '{prefix}'"
        )));
    }
    crate::io::sync_dir(src.policy().as_ref(), dest_dir)?;
    Ok(report)
}

/// Verify a shipped snapshot end to end: re-read every page of every
/// `.heap` file under `prefix` in `dir` straight from disk and check its
/// CRC32, and parse every `.meta` schema. This deliberately bypasses the
/// relation-open path — its torn-tail repair would silently *truncate* a
/// corrupt tail page, and a replica is either bit-faithful or rejected.
/// Returns the verified page/byte counts, or the first corruption as a
/// typed [`StorageError`].
pub fn verify_snapshot(dir: &Path, prefix: &str) -> Result<SnapshotReport> {
    let catalog = Catalog::open(dir)?;
    let mut report = SnapshotReport::default();
    for name in catalog.list()? {
        if !name.starts_with(prefix) {
            continue;
        }
        // Schema metadata must parse.
        catalog.relation_schema(&name)?;
        let bytes = fs::read(catalog.relation_heap_path(&name))?;
        if !bytes.len().is_multiple_of(crate::page::PAGE_SIZE) {
            return Err(StorageError::Corrupt(format!(
                "replica relation '{name}': {} bytes is not a whole number of pages",
                bytes.len()
            )));
        }
        for (page_no, chunk) in bytes.chunks(crate::page::PAGE_SIZE).enumerate() {
            let page = crate::page::Page::from_bytes(chunk.to_vec().into_boxed_slice())
                .map_err(|e| corrupt_page(&name, page_no as u64, e))?;
            page.verify_checksum().map_err(|e| corrupt_page(&name, page_no as u64, e))?;
            report.pages_verified += 1;
        }
        report.bytes += bytes.len() as u64;
        report.files += 1;
        report.relations += 1;
    }
    if report.relations == 0 {
        return Err(StorageError::Catalog(format!(
            "snapshot verification found no relations under prefix '{prefix}'"
        )));
    }
    Ok(report)
}

/// Attribute a raw page failure to its relation and page number.
fn corrupt_page(relation: &str, page: u64, e: StorageError) -> StorageError {
    StorageError::CorruptPage { relation: relation.to_string(), page, detail: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Column, Schema, Value};

    fn fresh_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cure_snapshot_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn two_col_schema() -> Schema {
        Schema::new(vec![
            Column { name: "d".into(), ty: ColType::U32 },
            Column { name: "m".into(), ty: ColType::I64 },
        ])
    }

    fn seed_catalog(dir: &Path) -> Catalog {
        let catalog = Catalog::open(dir).unwrap();
        let mut rel = catalog.create_relation("shard0_facts", two_col_schema()).unwrap();
        for i in 0..500u32 {
            rel.append(&[Value::U32(i), Value::I64(i as i64 * 3)]).unwrap();
        }
        rel.flush().unwrap();
        rel.sync().unwrap();
        catalog.write_blob("shard0_cube_meta", b"fact_rel=shard0_facts\n").unwrap();
        // An unrelated relation that must not be exported.
        let mut other = catalog.create_relation("other", two_col_schema()).unwrap();
        other.append(&[Value::U32(1), Value::I64(1)]).unwrap();
        other.flush().unwrap();
        catalog
    }

    #[test]
    fn export_copies_only_the_prefix_family() {
        let src_dir = fresh_dir("exp_src");
        let dst_dir = fresh_dir("exp_dst");
        seed_catalog(&src_dir);
        let report =
            export_snapshot(&Catalog::open(&src_dir).unwrap(), "shard0_", &dst_dir).unwrap();
        // facts heap + facts meta + meta blob.
        assert_eq!(report.files, 3);
        assert_eq!(report.relations, 1);
        let names: Vec<String> = fs::read_dir(&dst_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().all(|n| n.starts_with("shard0_")), "stray files: {names:?}");
    }

    #[test]
    fn verify_accepts_a_clean_replica() {
        let src_dir = fresh_dir("ok_src");
        let dst_dir = fresh_dir("ok_dst");
        seed_catalog(&src_dir);
        export_snapshot(&Catalog::open(&src_dir).unwrap(), "shard0_", &dst_dir).unwrap();
        let report = verify_snapshot(&dst_dir, "shard0_").unwrap();
        assert_eq!(report.relations, 1);
        assert!(report.pages_verified > 0);
        // Replica bytes are bit-identical to the source.
        let src_bytes = fs::read(src_dir.join("shard0_facts.heap")).unwrap();
        let dst_bytes = fs::read(dst_dir.join("shard0_facts.heap")).unwrap();
        assert_eq!(src_bytes, dst_bytes);
    }

    #[test]
    fn verify_rejects_a_flipped_bit() {
        let src_dir = fresh_dir("bad_src");
        let dst_dir = fresh_dir("bad_dst");
        seed_catalog(&src_dir);
        export_snapshot(&Catalog::open(&src_dir).unwrap(), "shard0_", &dst_dir).unwrap();
        let heap = dst_dir.join("shard0_facts.heap");
        let mut bytes = fs::read(&heap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&heap, bytes).unwrap();
        let err = verify_snapshot(&dst_dir, "shard0_").unwrap_err();
        assert!(
            matches!(err, StorageError::CorruptPage { .. } | StorageError::Corrupt(_)),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn export_of_missing_prefix_errors() {
        let src_dir = fresh_dir("missing_src");
        let dst_dir = fresh_dir("missing_dst");
        seed_catalog(&src_dir);
        assert!(export_snapshot(&Catalog::open(&src_dir).unwrap(), "nope_", &dst_dir).is_err());
    }

    #[test]
    fn export_skips_tmp_files() {
        let src_dir = fresh_dir("tmp_src");
        let dst_dir = fresh_dir("tmp_dst");
        seed_catalog(&src_dir);
        fs::write(src_dir.join("shard0_facts.heap.tmp"), b"torn").unwrap();
        export_snapshot(&Catalog::open(&src_dir).unwrap(), "shard0_", &dst_dir).unwrap();
        assert!(!dst_dir.join("shard0_facts.heap.tmp").exists());
    }
}
