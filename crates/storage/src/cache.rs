//! LRU page buffer cache.
//!
//! The paper (§5.3, Figure 17) observes that CURE query answering
//! concentrates its random I/O on two relations — the original fact table
//! and `AGGREGATES` — making them uniquely worthwhile to cache. The
//! [`BufferCache`] implements classic LRU over `(file_id, page_no)` keys
//! with hit/miss counters so experiments can report cache effectiveness.
//!
//! The LRU list is intrusive over a slab of nodes (indices instead of
//! pointers), giving O(1) touch/insert/evict without unsafe code.

use crate::error::Result;
use crate::hash::FxHashMap;
use crate::page::Page;

/// Cache key: a page of a particular heap file.
pub type PageKey = (u64, u64);

const NIL: usize = usize::MAX;

struct Node {
    key: PageKey,
    page: Page,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU cache of pages.
pub struct BufferCache {
    map: FxHashMap<PageKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Create a cache holding at most `capacity` pages.
    ///
    /// A zero capacity is allowed and produces a cache that never stores
    /// anything (every access is a miss) — the "no caching" end of the
    /// Figure 17 sweep.
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            map: FxHashMap::default(),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits since creation (or the last [`reset_stats`](Self::reset_stats)).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation (or the last [`reset_stats`](Self::reset_stats)).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Zero the hit/miss counters (content is kept).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Fraction of accesses served from the cache since the last
    /// [`reset_stats`](Self::reset_stats); 0.0 when nothing was accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop all cached pages and zero the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.reset_stats();
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up a page, counting a hit or miss, and promote it to MRU.
    pub fn get(&mut self, key: PageKey) -> Option<&Page> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(&self.nodes[idx].page)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or overwrite) a page, evicting the LRU entry if full.
    pub fn insert(&mut self, key: PageKey, page: Page) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].page = page;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            self.map.remove(&self.nodes[victim].key);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node { key, page, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node { key, page, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    /// Remove a page from the cache, if present. Returns whether an entry
    /// was removed. Quarantine/repair paths use this to make sure a page
    /// found corrupt on disk is not still being served from memory.
    pub fn remove(&mut self, key: PageKey) -> bool {
        match self.map.remove(&key) {
            Some(idx) => {
                self.detach(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Get the page for `key`, loading and inserting it on a miss.
    ///
    /// The common fetch path of
    /// [`HeapFile::fetch_cached`](crate::heap::HeapFile::fetch_cached):
    /// hit → no I/O, miss → `load()`
    /// runs (typically one page read) and the result is cached.
    pub fn get_or_load(
        &mut self,
        file_id: u64,
        page_no: u64,
        load: impl FnOnce() -> Result<Page>,
    ) -> Result<&Page> {
        let key = (file_id, page_no);
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            self.detach(idx);
            self.attach_front(idx);
            return Ok(&self.nodes[idx].page);
        }
        self.misses += 1;
        let page = load()?;
        if self.capacity == 0 {
            // Capacity-0 caches cannot retain the page; stash it in a
            // single throwaway slot so a reference can still be returned.
            self.nodes.clear();
            self.free.clear();
            self.head = NIL;
            self.tail = NIL;
            self.nodes.push(Node { key, page, prev: NIL, next: NIL });
            return Ok(&self.nodes[0].page);
        }
        self.insert(key, page);
        let idx = self.map[&key];
        Ok(&self.nodes[idx].page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with_marker(marker: u8) -> Page {
        let mut p = Page::new();
        p.push_row(&[marker; 8]);
        p
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = BufferCache::new(4);
        assert!(c.get((1, 0)).is_none());
        c.insert((1, 0), page_with_marker(7));
        assert!(c.get((1, 0)).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BufferCache::new(2);
        c.insert((1, 0), page_with_marker(0));
        c.insert((1, 1), page_with_marker(1));
        // Touch (1,0) so (1,1) becomes LRU.
        assert!(c.get((1, 0)).is_some());
        c.insert((1, 2), page_with_marker(2));
        assert!(c.get((1, 1)).is_none(), "LRU page should be evicted");
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((1, 2)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = BufferCache::new(0);
        c.insert((1, 0), page_with_marker(0));
        assert!(c.get((1, 0)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn zero_capacity_get_or_load_still_serves() {
        let mut c = BufferCache::new(0);
        let p = c.get_or_load(1, 0, || Ok(page_with_marker(9))).unwrap();
        assert_eq!(p.row(8, 0), &[9u8; 8]);
        assert_eq!(c.misses(), 1);
        // Second access: still a miss (nothing retained).
        let _ = c.get_or_load(1, 0, || Ok(page_with_marker(9))).unwrap();
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn get_or_load_loads_once() {
        let mut c = BufferCache::new(4);
        let mut loads = 0;
        for _ in 0..3 {
            let _ = c
                .get_or_load(2, 5, || {
                    loads += 1;
                    Ok(page_with_marker(5))
                })
                .unwrap();
        }
        assert_eq!(loads, 1);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn insert_overwrites_existing_key() {
        let mut c = BufferCache::new(2);
        c.insert((1, 0), page_with_marker(1));
        c.insert((1, 0), page_with_marker(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get((1, 0)).unwrap().row(8, 0), &[2u8; 8]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = BufferCache::new(2);
        c.insert((1, 0), page_with_marker(1));
        let _ = c.get((1, 0));
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.hits(), 0);
        assert!(c.get((1, 0)).is_none());
    }

    #[test]
    fn remove_drops_entry_and_reuses_slot() {
        let mut c = BufferCache::new(2);
        c.insert((1, 0), page_with_marker(1));
        c.insert((1, 1), page_with_marker(2));
        assert!(c.remove((1, 0)));
        assert!(!c.remove((1, 0)), "second remove is a no-op");
        assert!(c.get((1, 0)).is_none());
        assert!(c.get((1, 1)).is_some());
        // The freed slot is reusable without growing the slab.
        c.insert((1, 2), page_with_marker(3));
        c.insert((1, 3), page_with_marker(4));
        assert_eq!(c.len(), 2);
        assert!(c.get((1, 3)).is_some());
    }

    #[test]
    fn many_files_no_key_collisions() {
        let mut c = BufferCache::new(100);
        for f in 0..10u64 {
            for p in 0..10u64 {
                c.insert((f, p), page_with_marker((f * 10 + p) as u8));
            }
        }
        for f in 0..10u64 {
            for p in 0..10u64 {
                let page = c.get((f, p)).expect("page present");
                assert_eq!(page.row(8, 0)[0], (f * 10 + p) as u8);
            }
        }
    }

    #[test]
    fn eviction_churn_stays_consistent() {
        let mut c = BufferCache::new(8);
        for i in 0..1000u64 {
            c.insert((1, i), page_with_marker((i % 251) as u8));
            assert!(c.len() <= 8);
        }
        // The last 8 inserted should all be present.
        for i in 992..1000u64 {
            assert!(c.get((1, i)).is_some(), "page {i} missing");
        }
    }
}
