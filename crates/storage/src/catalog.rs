//! The catalog: a directory of named relations.
//!
//! A [`Catalog`] is the "database" the ROLAP engine exposes: a filesystem
//! directory in which every relation `R` is a pair of files — `R.heap`
//! (pages of rows) and `R.meta` (a one-line-per-column schema description).
//! CURE creates large numbers of relations (up to three per cube node, plus
//! `AGGREGATES`, plus spill partitions), so creation and lookup are kept
//! cheap and names are sanitized into filenames deterministically.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::heap::HeapFile;
use crate::io::{atomic_write, no_faults, sync_dir, IoPolicy};
use crate::schema::{ColType, Column, Schema};
use crate::stats::StorageStats;

/// A directory of named heap-file relations.
pub struct Catalog {
    dir: PathBuf,
    /// Fault-injection hook inherited by every relation this catalog
    /// creates or opens, and consulted for metadata/blob writes.
    policy: Arc<dyn IoPolicy>,
    /// Counter registry inherited by every relation this catalog creates
    /// or opens, so one snapshot covers the catalog's whole I/O traffic.
    stats: Arc<StorageStats>,
}

impl Catalog {
    /// Open (creating if necessary) a catalog rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_policy(dir, no_faults())
    }

    /// [`open`](Self::open) with an explicit I/O policy: every relation
    /// created or opened through this catalog inherits it, so a single
    /// [`FaultInjector`](crate::io::FaultInjector) observes the build's
    /// complete write schedule.
    pub fn open_with_policy(dir: impl AsRef<Path>, policy: Arc<dyn IoPolicy>) -> Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Catalog {
            dir: dir.as_ref().to_path_buf(),
            policy,
            stats: Arc::new(StorageStats::new()),
        })
    }

    /// Root directory of this catalog.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The I/O policy relations and metadata writes go through.
    pub fn policy(&self) -> &Arc<dyn IoPolicy> {
        &self.policy
    }

    /// The counter registry shared by every relation this catalog created
    /// or opened. Snapshot it with [`StorageStats::snapshot`].
    pub fn stats(&self) -> &Arc<StorageStats> {
        &self.stats
    }

    /// Fsync the catalog directory, making file creations, removals and
    /// renames within it durable.
    pub fn sync_dir(&self) -> Result<()> {
        sync_dir(self.policy.as_ref(), &self.dir).map_err(StorageError::Io)
    }

    fn heap_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{}.heap", sanitize(name)))
    }

    fn meta_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{}.meta", sanitize(name)))
    }

    /// Whether a relation named `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.meta_path(name).exists()
    }

    /// Create a new relation; errors if one with this name already exists.
    pub fn create_relation(&self, name: &str, schema: Schema) -> Result<HeapFile> {
        if self.exists(name) {
            return Err(StorageError::Catalog(format!("relation '{name}' already exists")));
        }
        write_meta(self.policy.as_ref(), &self.meta_path(name), &schema)?;
        let mut hf =
            HeapFile::create_with_policy(self.heap_path(name), schema, self.policy.clone())?;
        hf.attach_stats(Arc::clone(&self.stats));
        Ok(hf)
    }

    /// Create a relation, replacing any existing one with the same name.
    pub fn create_or_replace(&self, name: &str, schema: Schema) -> Result<HeapFile> {
        write_meta(self.policy.as_ref(), &self.meta_path(name), &schema)?;
        let mut hf =
            HeapFile::create_with_policy(self.heap_path(name), schema, self.policy.clone())?;
        hf.attach_stats(Arc::clone(&self.stats));
        Ok(hf)
    }

    /// Open an existing relation, reading its schema from the catalog.
    pub fn open_relation(&self, name: &str) -> Result<HeapFile> {
        let schema = read_meta(&self.meta_path(name))
            .map_err(|_| StorageError::Catalog(format!("relation '{name}' not found")))?;
        // Stats ride along from the start so open-time reads (tail page,
        // torn-tail checks) count retries and verifications too.
        let (hf, repair) = HeapFile::open_report_with_policy_stats(
            self.heap_path(name),
            schema,
            self.policy.clone(),
            Some(Arc::clone(&self.stats)),
        )?;
        if let Some(r) = &repair {
            eprintln!("cure-storage: warning: {}: {}", self.heap_path(name).display(), r.reason);
        }
        Ok(hf)
    }

    /// [`open_relation`](Self::open_relation), additionally reporting any
    /// torn-tail repair applied while opening the heap file.
    pub fn open_relation_report(
        &self,
        name: &str,
    ) -> Result<(HeapFile, Option<crate::heap::TailRepair>)> {
        let schema = read_meta(&self.meta_path(name))
            .map_err(|_| StorageError::Catalog(format!("relation '{name}' not found")))?;
        let (hf, repair) = HeapFile::open_report_with_policy_stats(
            self.heap_path(name),
            schema,
            self.policy.clone(),
            Some(Arc::clone(&self.stats)),
        )?;
        Ok((hf, repair))
    }

    /// Filesystem path of a relation's heap file (recovery tooling).
    pub fn relation_heap_path(&self, name: &str) -> PathBuf {
        self.heap_path(name)
    }

    /// Read a relation's schema without opening its heap file.
    pub fn relation_schema(&self, name: &str) -> Result<Schema> {
        read_meta(&self.meta_path(name))
            .map_err(|_| StorageError::Catalog(format!("relation '{name}' not found")))
    }

    /// Remove a relation and its metadata. Missing relations are an error.
    pub fn drop_relation(&self, name: &str) -> Result<()> {
        if !self.exists(name) {
            return Err(StorageError::Catalog(format!("relation '{name}' not found")));
        }
        fs::remove_file(self.meta_path(name))?;
        let heap = self.heap_path(name);
        if heap.exists() {
            fs::remove_file(heap)?;
        }
        Ok(())
    }

    /// All relation names in this catalog, sorted.
    pub fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("meta") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn blob_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{}.blob", sanitize(name)))
    }

    /// Store an opaque byte blob under `name` (used for bitmap indexes and
    /// cube metadata). Overwrites any existing blob of the same name.
    /// The write is atomic (temp + fsync + rename + dir fsync): readers
    /// never observe a torn blob, even across a crash.
    pub fn write_blob(&self, name: &str, bytes: &[u8]) -> Result<()> {
        atomic_write(self.policy.as_ref(), &self.blob_path(name), bytes)?;
        Ok(())
    }

    /// Read a blob written by [`write_blob`](Self::write_blob).
    pub fn read_blob(&self, name: &str) -> Result<Vec<u8>> {
        fs::read(self.blob_path(name))
            .map_err(|_| StorageError::Catalog(format!("blob '{name}' not found")))
    }

    /// Whether a blob named `name` exists.
    pub fn blob_exists(&self, name: &str) -> bool {
        self.blob_path(name).exists()
    }

    /// All blob names in this catalog, sorted.
    pub fn list_blobs(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("blob") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Drop every relation and blob whose name starts with `prefix` —
    /// the cleanup primitive for replacing a cube (e.g. after an
    /// incremental update wrote its successor under a new prefix).
    /// Returns how many objects were removed.
    pub fn drop_prefix(&self, prefix: &str) -> Result<usize> {
        let mut dropped = 0usize;
        for name in self.list()? {
            if name.starts_with(prefix) {
                self.drop_relation(&name)?;
                dropped += 1;
            }
        }
        for name in self.list_blobs()? {
            if name.starts_with(prefix) {
                fs::remove_file(self.blob_path(&name))?;
                dropped += 1;
            }
        }
        Ok(dropped)
    }

    /// Total logical data volume (bytes of rows) across relations whose name
    /// starts with `prefix` — the measure used for the paper's "storage
    /// space" figures.
    pub fn data_bytes_with_prefix(&self, prefix: &str) -> Result<u64> {
        let mut total = 0u64;
        for name in self.list()? {
            if name.starts_with(prefix) {
                let rel = self.open_relation(&name)?;
                total += rel.data_bytes();
            }
        }
        Ok(total)
    }
}

/// Replace filesystem-hostile characters so any node name is a valid stem.
pub(crate) fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect()
}

fn write_meta(policy: &dyn IoPolicy, path: &Path, schema: &Schema) -> Result<()> {
    let mut s = String::new();
    for col in schema.columns() {
        s.push_str(&col.name);
        s.push(' ');
        s.push_str(col.ty.name());
        s.push('\n');
    }
    // Atomic so a crash during relation creation can't leave a torn schema
    // file (which would make the relation unopenable rather than absent).
    atomic_write(policy, path, s.as_bytes())?;
    Ok(())
}

fn read_meta(path: &Path) -> Result<Schema> {
    let text = fs::read_to_string(path)?;
    let mut cols = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (name, ty_str) = line
            .rsplit_once(' ')
            .ok_or_else(|| StorageError::Corrupt(format!("meta line {lineno}: '{line}'")))?;
        let ty = ColType::parse(ty_str).ok_or_else(|| {
            StorageError::Corrupt(format!("meta line {lineno}: bad type '{ty_str}'"))
        })?;
        cols.push(Column::new(name, ty));
    }
    Ok(Schema::new(cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Value;

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_catalog_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    #[test]
    fn create_open_roundtrip() {
        let cat = fresh_catalog("roundtrip");
        let schema = Schema::fact(2, 1);
        {
            let mut rel = cat.create_relation("facts", schema.clone()).unwrap();
            rel.append(&[Value::U32(1), Value::U32(2), Value::I64(3)]).unwrap();
            rel.flush().unwrap();
        }
        let rel = cat.open_relation("facts").unwrap();
        assert_eq!(rel.schema(), &schema);
        assert_eq!(rel.num_rows(), 1);
        assert_eq!(rel.fetch_values(0).unwrap()[2], Value::I64(3));
    }

    #[test]
    fn duplicate_create_rejected() {
        let cat = fresh_catalog("dup");
        cat.create_relation("r", Schema::fact(1, 1)).unwrap();
        assert!(cat.create_relation("r", Schema::fact(1, 1)).is_err());
        // create_or_replace succeeds and truncates.
        let rel = cat.create_or_replace("r", Schema::fact(1, 1)).unwrap();
        assert_eq!(rel.num_rows(), 0);
    }

    #[test]
    fn open_missing_fails() {
        let cat = fresh_catalog("missing");
        assert!(cat.open_relation("nope").is_err());
    }

    #[test]
    fn drop_removes() {
        let cat = fresh_catalog("drop");
        cat.create_relation("r", Schema::fact(1, 1)).unwrap();
        assert!(cat.exists("r"));
        cat.drop_relation("r").unwrap();
        assert!(!cat.exists("r"));
        assert!(cat.drop_relation("r").is_err());
    }

    #[test]
    fn list_is_sorted() {
        let cat = fresh_catalog("list");
        for n in ["zeta", "alpha", "mid"] {
            cat.create_relation(n, Schema::fact(1, 1)).unwrap();
        }
        assert_eq!(cat.list().unwrap(), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn sanitize_handles_node_names() {
        let cat = fresh_catalog("sanitize");
        // Node names like "node:12/NT" must become valid file stems.
        let mut rel = cat.create_relation("node:12/NT", Schema::fact(1, 1)).unwrap();
        rel.append(&[Value::U32(1), Value::I64(1)]).unwrap();
        rel.flush().unwrap();
        let rel = cat.open_relation("node:12/NT").unwrap();
        assert_eq!(rel.num_rows(), 1);
    }

    #[test]
    fn blob_roundtrip() {
        let cat = fresh_catalog("blob");
        assert!(!cat.blob_exists("bm"));
        cat.write_blob("bm", &[1, 2, 3]).unwrap();
        assert!(cat.blob_exists("bm"));
        assert_eq!(cat.read_blob("bm").unwrap(), vec![1, 2, 3]);
        cat.write_blob("bm", &[9]).unwrap(); // overwrite
        assert_eq!(cat.read_blob("bm").unwrap(), vec![9]);
        assert!(cat.read_blob("missing").is_err());
        // Blobs do not pollute the relation listing.
        assert!(cat.list().unwrap().is_empty());
    }

    #[test]
    fn drop_prefix_removes_relations_and_blobs() {
        let cat = fresh_catalog("dropprefix");
        cat.create_relation("old_n1_nt", Schema::fact(1, 1)).unwrap();
        cat.create_relation("old_n2_tt", Schema::fact(1, 1)).unwrap();
        cat.create_relation("keep_me", Schema::fact(1, 1)).unwrap();
        cat.write_blob("old_meta", b"x").unwrap();
        cat.write_blob("other", b"y").unwrap();
        let dropped = cat.drop_prefix("old_").unwrap();
        assert_eq!(dropped, 3);
        assert!(!cat.exists("old_n1_nt"));
        assert!(cat.exists("keep_me"));
        assert!(!cat.blob_exists("old_meta"));
        assert!(cat.blob_exists("other"));
        assert_eq!(cat.drop_prefix("old_").unwrap(), 0);
    }

    #[test]
    fn stats_aggregate_across_relations() {
        let cat = fresh_catalog("stats");
        let mut a = cat.create_relation("a", Schema::fact(1, 1)).unwrap();
        let mut b = cat.create_relation("b", Schema::fact(1, 1)).unwrap();
        // Two full pages each, so a reopened file serves row 0 from disk
        // (not the in-memory tail) and the read below is observable.
        let rows = crate::page::Page::capacity(12) as u32 * 2;
        for i in 0..rows {
            a.append(&[Value::U32(i), Value::I64(0)]).unwrap();
            b.append(&[Value::U32(i), Value::I64(0)]).unwrap();
        }
        a.flush().unwrap();
        b.flush().unwrap();
        a.sync().unwrap();
        let snap = cat.stats().snapshot();
        assert_eq!(snap.pages_written, a.pages_written() + b.pages_written());
        assert_eq!(snap.fsyncs, 1);
        // Reopening through the catalog keeps feeding the same registry.
        drop(a);
        let a = cat.open_relation("a").unwrap();
        let before = cat.stats().pages_read();
        a.fetch_values(0).unwrap();
        assert_eq!(cat.stats().pages_read(), before + 1);
    }

    #[test]
    fn policy_observes_all_catalog_writes() {
        use crate::io::FaultInjector;
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("cure_catalog_policy_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let policy = Arc::new(FaultInjector::counting());
        let cat = Catalog::open_with_policy(&dir, policy.clone()).unwrap();
        let mut rel = cat.create_relation("r", Schema::fact(1, 1)).unwrap();
        rel.append(&[Value::U32(1), Value::I64(1)]).unwrap();
        rel.flush().unwrap();
        rel.sync().unwrap();
        cat.write_blob("b", b"payload").unwrap();
        // meta write + page write + blob write at minimum, plus fsyncs.
        assert!(policy.writes() >= 3, "writes seen: {}", policy.writes());
        assert!(policy.fsyncs() >= 3, "fsyncs seen: {}", policy.fsyncs());
    }

    #[test]
    fn faulted_blob_write_leaves_old_content() {
        use crate::io::{FaultInjector, FaultKind};
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("cure_catalog_fault_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let clean = Catalog::open(&dir).unwrap();
        clean.write_blob("meta", b"v1").unwrap();
        let policy = Arc::new(FaultInjector::fail_nth_write(0, FaultKind::Torn));
        let faulty = Catalog::open_with_policy(&dir, policy).unwrap();
        assert!(faulty.write_blob("meta", b"v2-much-longer-content").is_err());
        assert_eq!(clean.read_blob("meta").unwrap(), b"v1", "old blob intact after torn write");
    }

    #[test]
    fn prefix_volume_accounting() {
        let cat = fresh_catalog("prefix");
        let mut a = cat.create_relation("cube_n1_NT", Schema::fact(0, 1)).unwrap();
        a.append(&[Value::I64(5)]).unwrap();
        a.flush().unwrap();
        let mut b = cat.create_relation("cube_n2_NT", Schema::fact(0, 1)).unwrap();
        b.append(&[Value::I64(5)]).unwrap();
        b.append(&[Value::I64(6)]).unwrap();
        b.flush().unwrap();
        let mut other = cat.create_relation("facts", Schema::fact(0, 1)).unwrap();
        other.append(&[Value::I64(1)]).unwrap();
        other.flush().unwrap();
        assert_eq!(cat.data_bytes_with_prefix("cube_").unwrap(), 3 * 8);
    }
}
