//! Thread-safe sharded LRU page cache.
//!
//! The serving subsystem (`cure-serve`) answers queries from a pool of
//! worker threads, all resolving R-rowid/A-rowid references against the
//! same two hot relations (§5.3: the original fact table and
//! `AGGREGATES`). A single mutex around one [`BufferCache`] would
//! serialize every page access; instead the [`SharedBufferCache`] splits
//! capacity across N independently locked shards, selected by a hash of
//! `(file_id, page_no)`. Shard locks are only held for the duration of a
//! page lookup plus a row copy, so threads touching different shards
//! proceed in parallel.
//!
//! Hit/miss counters are additionally mirrored into lock-free atomics so
//! aggregate rates can be read without taking any shard lock (the
//! per-shard counters behind each lock feed the shard-level breakdown in
//! serve metrics).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::cache::BufferCache;
use crate::error::Result;
use crate::page::Page;

/// A fixed-capacity, thread-safe page cache: N mutex-protected
/// [`BufferCache`] shards plus global atomic hit/miss counters.
pub struct SharedBufferCache {
    shards: Vec<Mutex<BufferCache>>,
    /// Bit mask selecting a shard (shard count is a power of two).
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Point-in-time counters for one shard of a [`SharedBufferCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Cache hits recorded by this shard.
    pub hits: u64,
    /// Cache misses recorded by this shard.
    pub misses: u64,
    /// Pages currently resident in this shard.
    pub len: usize,
}

impl SharedBufferCache {
    /// Create a cache of `total_capacity` pages spread over `shards`
    /// shards. The shard count is rounded up to a power of two (minimum
    /// 1). The page budget is distributed *exactly*: every shard gets
    /// `total_capacity / n` pages and the remainder is spread one page
    /// each across the leading shards, so the summed capacity always
    /// equals `total_capacity` — never rounded up (which would overrun
    /// the memory budget) and never truncated (which would silently
    /// shrink the cache under test).
    pub fn new(total_capacity: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let (base, rem) = (total_capacity / n, total_capacity % n);
        SharedBufferCache {
            shards: (0..n)
                .map(|i| Mutex::new(BufferCache::new(base + usize::from(i < rem))))
                .collect(),
            mask: n as u64 - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total configured capacity in pages (sum over shards).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    fn shard_for(&self, file_id: u64, page_no: u64) -> &Mutex<BufferCache> {
        // Fibonacci-style mix of both key halves so consecutive pages of
        // one file spread across shards instead of hammering one lock.
        let h = (file_id ^ page_no.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[((h >> 32) & self.mask) as usize]
    }

    /// Run `f` on the page `(file_id, page_no)`, loading it via `load` on
    /// a miss. The owning shard's lock is held while `f` runs, so keep
    /// `f` to a row copy.
    pub fn with_page_or_load<T>(
        &self,
        file_id: u64,
        page_no: u64,
        load: impl FnOnce() -> Result<Page>,
        f: impl FnOnce(&Page) -> T,
    ) -> Result<T> {
        let mut shard = self.shard_for(file_id, page_no).lock();
        let before_hits = shard.hits();
        let page = shard.get_or_load(file_id, page_no, load)?;
        let out = f(page);
        if shard.hits() > before_hits {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Evict one page from the cache, if resident. Returns whether an
    /// entry was dropped. Used by repair hooks so a page re-verified from
    /// disk is not shadowed by a stale (possibly corrupt) cached copy.
    pub fn evict(&self, file_id: u64, page_no: u64) -> bool {
        self.shard_for(file_id, page_no).lock().remove((file_id, page_no))
    }

    /// Total cache hits across all shards since the last reset.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total cache misses across all shards since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of accesses served from the cache; 0.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Per-shard counters, for shard-level hit-rate reporting.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock();
                ShardStats { hits: shard.hits(), misses: shard.misses(), len: shard.len() }
            })
            .collect()
    }

    /// Zero all counters (global and per-shard); cached pages are kept.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        for s in &self.shards {
            s.lock().reset_stats();
        }
    }

    /// Drop every cached page and zero all counters.
    pub fn clear(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        for s in &self.shards {
            s.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    fn page_with_marker(marker: u8) -> Page {
        let mut p = Page::new();
        p.push_row(&[marker; 8]);
        p
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SharedBufferCache::new(64, 1).num_shards(), 1);
        assert_eq!(SharedBufferCache::new(64, 5).num_shards(), 8);
        assert_eq!(SharedBufferCache::new(64, 8).num_shards(), 8);
        assert_eq!(SharedBufferCache::new(64, 0).num_shards(), 1);
    }

    #[test]
    fn capacity_never_exceeds_the_requested_budget() {
        // Regression: `new(4, 6)` used to allocate max(4/8, 1) = 1 page ×
        // 8 shards = 8 pages (2× the budget) and `new(100, 8)` allocated
        // 12 × 8 = 96 (silently truncating 4). The budget must now be met
        // exactly for any (capacity, shards) combination.
        for capacity in [0usize, 1, 3, 4, 7, 16, 100, 1000, 1024] {
            for shards in [0usize, 1, 2, 3, 5, 6, 8, 16] {
                let cache = SharedBufferCache::new(capacity, shards);
                assert_eq!(
                    cache.capacity(),
                    capacity,
                    "new({capacity}, {shards}) allocated {} pages",
                    cache.capacity()
                );
            }
        }
    }

    #[test]
    fn remainder_pages_go_to_leading_shards() {
        // 100 pages over 8 shards: shards 0..4 get 13, shards 4..8 get 12.
        let cache = SharedBufferCache::new(100, 8);
        assert_eq!(cache.num_shards(), 8);
        assert_eq!(cache.capacity(), 100);
        let caps: Vec<usize> = cache.shards.iter().map(|s| s.lock().capacity()).collect();
        assert_eq!(caps, vec![13, 13, 13, 13, 12, 12, 12, 12]);
        // 4 pages over 6→8 shards: four shards hold one page, four none.
        let tiny = SharedBufferCache::new(4, 6);
        let caps: Vec<usize> = tiny.shards.iter().map(|s| s.lock().capacity()).collect();
        assert_eq!(caps, vec![1, 1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn hit_miss_accounting_matches_accesses() {
        let cache = SharedBufferCache::new(64, 4);
        for round in 0..3 {
            for p in 0..10u64 {
                cache
                    .with_page_or_load(
                        1,
                        p,
                        || Ok(page_with_marker(p as u8)),
                        |pg| {
                            assert_eq!(pg.row(8, 0)[0], p as u8);
                        },
                    )
                    .unwrap();
            }
            let _ = round;
        }
        assert_eq!(cache.misses(), 10);
        assert_eq!(cache.hits(), 20);
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        let shard_totals: u64 = cache.shard_stats().iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(shard_totals, 30);
    }

    #[test]
    fn zero_capacity_serves_without_retaining() {
        let cache = SharedBufferCache::new(0, 4);
        for _ in 0..2 {
            cache
                .with_page_or_load(
                    1,
                    0,
                    || Ok(page_with_marker(9)),
                    |pg| {
                        assert_eq!(pg.row(8, 0)[0], 9);
                    },
                )
                .unwrap();
        }
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn reset_and_clear() {
        let cache = SharedBufferCache::new(16, 2);
        cache.with_page_or_load(1, 0, || Ok(page_with_marker(1)), |_| ()).unwrap();
        cache.with_page_or_load(1, 0, || Ok(page_with_marker(1)), |_| ()).unwrap();
        assert_eq!(cache.hits() + cache.misses(), 2);
        cache.reset_stats();
        assert_eq!(cache.hits() + cache.misses(), 0);
        // Page still cached after reset_stats.
        cache.with_page_or_load(1, 0, || panic!("should be cached"), |_| ()).unwrap();
        assert_eq!(cache.hits(), 1);
        cache.clear();
        cache.with_page_or_load(1, 0, || Ok(page_with_marker(1)), |_| ()).unwrap();
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn evict_forces_a_reload() {
        let cache = SharedBufferCache::new(16, 2);
        cache.with_page_or_load(1, 0, || Ok(page_with_marker(1)), |_| ()).unwrap();
        assert!(cache.evict(1, 0));
        assert!(!cache.evict(1, 0), "already gone");
        let mut reloaded = false;
        cache
            .with_page_or_load(
                1,
                0,
                || {
                    reloaded = true;
                    Ok(page_with_marker(2))
                },
                |pg| assert_eq!(pg.row(8, 0)[0], 2),
            )
            .unwrap();
        assert!(reloaded, "evicted page must be loaded fresh");
    }

    #[test]
    fn concurrent_access_counts_are_exact() {
        let cache = Arc::new(SharedBufferCache::new(256, 8));
        let threads = 8;
        let per_thread = 1_000u64;
        let pages = 64u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let p = (i * 7 + t) % pages;
                        cache
                            .with_page_or_load(
                                3,
                                p,
                                || Ok(page_with_marker(p as u8)),
                                |pg| {
                                    assert_eq!(pg.row(8, 0)[0], p as u8);
                                },
                            )
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every access is exactly one hit or one miss.
        assert_eq!(cache.hits() + cache.misses(), threads * per_thread);
        // Capacity (256) exceeds the working set (64 pages), so after the
        // initial faults everything hits: at most one miss per (page,
        // racing thread) pair, in practice far fewer.
        assert!(cache.misses() < pages * threads);
        assert!(cache.hits() > 0);
    }
}
