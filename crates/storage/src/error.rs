//! Error type shared by all storage-engine operations.

use std::fmt;
use std::io;

/// Convenient result alias used across the storage engine.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors produced by the storage engine.
///
/// The engine keeps the error surface small: everything is either an I/O
/// failure, a schema/layout mismatch, or a logical misuse (bad row-id,
/// unknown relation). Callers that need rich context should wrap these.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A row or page did not match the expected fixed-width layout.
    Corrupt(String),
    /// A specific page of a specific relation failed its checksum or
    /// sanity checks on read. Carries enough context for quarantine and
    /// repair decisions in the serving layer.
    CorruptPage {
        /// Relation (heap file stem) the page belongs to.
        relation: String,
        /// Zero-based page number within the relation.
        page: u64,
        /// What failed (checksum mismatch, impossible row count, …).
        detail: String,
    },
    /// A row-id outside the relation was requested.
    RowOutOfBounds { rowid: u64, num_rows: u64 },
    /// A relation name was not found in (or already exists in) the catalog.
    Catalog(String),
    /// A value did not match the column type of the schema.
    TypeMismatch { column: usize, expected: &'static str },
    /// A row wider than a page was appended, or similar sizing misuse.
    Layout(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            StorageError::CorruptPage { relation, page, detail } => {
                write!(f, "corrupt page {page} in relation '{relation}': {detail}")
            }
            StorageError::RowOutOfBounds { rowid, num_rows } => {
                write!(f, "row-id {rowid} out of bounds (relation has {num_rows} rows)")
            }
            StorageError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            StorageError::TypeMismatch { column, expected } => {
                write!(f, "type mismatch in column {column}: expected {expected}")
            }
            StorageError::Layout(msg) => write!(f, "layout error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = StorageError::RowOutOfBounds { rowid: 7, num_rows: 3 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3'));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: StorageError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        let e = StorageError::Catalog("x".into());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn corrupt_page_carries_relation_and_page() {
        let e = StorageError::CorruptPage {
            relation: "facts".into(),
            page: 42,
            detail: "checksum mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("facts") && s.contains("42") && s.contains("checksum"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
