//! External merge sort over fixed-width rows.
//!
//! CURE sizes its partitions so in-memory sorting suffices (§4), but two
//! places still need a sorter that degrades gracefully past the memory
//! budget: sorting an oversized signature spill, and the CURE+
//! post-processing step that orders TT row-id relations. The
//! [`ExternalSorter`] is a textbook run-generation + k-way-merge sorter:
//! rows are buffered up to a budget, each full buffer is sorted and written
//! as a run file, and `finish()` merges the runs with a tournament heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::stats::StorageStats;

/// Compares two encoded rows. Must be a total order.
pub type RowCmp = dyn Fn(&[u8], &[u8]) -> Ordering;

/// External sorter for rows of a fixed byte width.
pub struct ExternalSorter<'a> {
    row_width: usize,
    budget_rows: usize,
    spill_dir: PathBuf,
    cmp: &'a RowCmp,
    buffer: Vec<u8>,
    run_paths: Vec<PathBuf>,
    /// Optional counter registry; spilled runs and their byte volume are
    /// reported to it (see [`StorageStats::count_sort_spill`]).
    stats: Option<Arc<StorageStats>>,
}

impl<'a> ExternalSorter<'a> {
    /// Create a sorter.
    ///
    /// * `row_width` — encoded row size in bytes (must be > 0).
    /// * `memory_budget_bytes` — max bytes buffered before a run is spilled
    ///   (at least one row is always buffered).
    /// * `spill_dir` — directory for run files (created if missing).
    /// * `cmp` — total order on encoded rows.
    pub fn new(
        row_width: usize,
        memory_budget_bytes: usize,
        spill_dir: impl Into<PathBuf>,
        cmp: &'a RowCmp,
    ) -> Result<Self> {
        if row_width == 0 {
            return Err(StorageError::Layout("external sort of zero-width rows".into()));
        }
        let spill_dir = spill_dir.into();
        fs::create_dir_all(&spill_dir)?;
        let budget_rows = (memory_budget_bytes / row_width).max(1);
        Ok(ExternalSorter {
            row_width,
            budget_rows,
            spill_dir,
            cmp,
            buffer: Vec::new(),
            run_paths: Vec::new(),
            stats: None,
        })
    }

    /// Attach a [`StorageStats`] registry that spilled runs report to.
    pub fn attach_stats(&mut self, stats: Arc<StorageStats>) {
        self.stats = Some(stats);
    }

    /// Number of spilled runs so far (observability for tests/benches).
    pub fn runs_spilled(&self) -> usize {
        self.run_paths.len()
    }

    /// Add one row.
    pub fn push(&mut self, row: &[u8]) -> Result<()> {
        if row.len() != self.row_width {
            return Err(StorageError::Layout(format!(
                "push: row {} bytes, sorter width {}",
                row.len(),
                self.row_width
            )));
        }
        self.buffer.extend_from_slice(row);
        if self.buffer.len() / self.row_width >= self.budget_rows {
            self.spill_run()?;
        }
        Ok(())
    }

    fn sort_buffer(&mut self) -> Vec<usize> {
        let w = self.row_width;
        let n = self.buffer.len() / w;
        let mut idx: Vec<usize> = (0..n).collect();
        let buf = &self.buffer;
        let cmp = self.cmp;
        idx.sort_by(|&a, &b| cmp(&buf[a * w..(a + 1) * w], &buf[b * w..(b + 1) * w]));
        idx
    }

    fn spill_run(&mut self) -> Result<()> {
        let idx = self.sort_buffer();
        let path = self.spill_dir.join(format!("run_{}.sort", self.run_paths.len()));
        let mut out = BufWriter::new(File::create(&path)?);
        let w = self.row_width;
        for i in idx {
            out.write_all(&self.buffer[i * w..(i + 1) * w])?;
        }
        out.flush()?;
        if let Some(stats) = &self.stats {
            stats.count_sort_spill(self.buffer.len() as u64);
        }
        self.run_paths.push(path);
        self.buffer.clear();
        Ok(())
    }

    /// Finish: return an iterator producing all pushed rows in sorted order.
    ///
    /// If everything fit in memory, no I/O happens at all; otherwise the
    /// final buffer is sorted in memory and merged with the spilled runs.
    pub fn finish(mut self) -> Result<SortedRows<'a>> {
        if self.run_paths.is_empty() {
            let idx = self.sort_buffer();
            return Ok(SortedRows {
                mode: Mode::InMemory { buffer: self.buffer, order: idx, next: 0 },
                row_width: self.row_width,
            });
        }
        // Spill the tail buffer too, then merge all runs.
        if !self.buffer.is_empty() {
            self.spill_run()?;
        }
        let mut readers = Vec::with_capacity(self.run_paths.len());
        for p in &self.run_paths {
            readers.push(BufReader::new(File::open(p)?));
        }
        let mut merge = MergeState {
            readers,
            heap: BinaryHeap::new(),
            cmp: self.cmp,
            row_width: self.row_width,
            run_paths: self.run_paths,
        };
        for i in 0..merge.readers.len() {
            merge.refill(i)?;
        }
        Ok(SortedRows { mode: Mode::Merging(merge), row_width: self.row_width })
    }
}

enum Mode<'a> {
    InMemory { buffer: Vec<u8>, order: Vec<usize>, next: usize },
    Merging(MergeState<'a>),
}

struct HeapEntry {
    row: Vec<u8>,
    run: usize,
    /// Sequence number for stable heap ordering resolution.
    seq: u64,
}

// BinaryHeap is a max-heap; ordering is provided externally via wrapper keys,
// so HeapEntry itself carries no Ord — we wrap it below.
struct OrdEntry<'a> {
    entry: HeapEntry,
    cmp: &'a RowCmp,
}

impl OrdEntry<'_> {
    fn order(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap, break ties by sequence for stability.
        (self.cmp)(&other.entry.row, &self.entry.row)
            .then_with(|| other.entry.seq.cmp(&self.entry.seq))
    }
}

impl PartialEq for OrdEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}
impl Eq for OrdEntry<'_> {}
impl PartialOrd for OrdEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order(other)
    }
}

struct MergeState<'a> {
    readers: Vec<BufReader<File>>,
    heap: BinaryHeap<OrdEntry<'a>>,
    cmp: &'a RowCmp,
    row_width: usize,
    run_paths: Vec<PathBuf>,
}

impl<'a> MergeState<'a> {
    fn refill(&mut self, run: usize) -> Result<()> {
        let mut row = vec![0u8; self.row_width];
        match self.readers[run].read_exact(&mut row) {
            Ok(()) => {
                static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.heap.push(OrdEntry { entry: HeapEntry { row, run, seq }, cmp: self.cmp });
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

impl Drop for MergeState<'_> {
    fn drop(&mut self) {
        for p in &self.run_paths {
            let _ = fs::remove_file(p);
        }
    }
}

/// Sorted output stream of an [`ExternalSorter`].
pub struct SortedRows<'a> {
    mode: Mode<'a>,
    row_width: usize,
}

impl SortedRows<'_> {
    /// Next row in sorted order, or `None` when exhausted.
    pub fn next_row(&mut self) -> Result<Option<Vec<u8>>> {
        match &mut self.mode {
            Mode::InMemory { buffer, order, next } => {
                if *next >= order.len() {
                    return Ok(None);
                }
                let w = self.row_width;
                let i = order[*next];
                *next += 1;
                Ok(Some(buffer[i * w..(i + 1) * w].to_vec()))
            }
            Mode::Merging(m) => {
                let Some(top) = m.heap.pop() else { return Ok(None) };
                let run = top.entry.run;
                let row = top.entry.row;
                m.refill(run)?;
                Ok(Some(row))
            }
        }
    }

    /// Drain into a vector (tests / small relations).
    pub fn collect_all(mut self) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_row()? {
            out.push(r);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u64_cmp(a: &[u8], b: &[u8]) -> Ordering {
        let x = u64::from_le_bytes(a.try_into().unwrap());
        let y = u64::from_le_bytes(b.try_into().unwrap());
        x.cmp(&y)
    }

    fn spill_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cure_sort_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn run_sort(n: u64, budget: usize, tag: &str) -> (Vec<u64>, usize) {
        let cmp: &RowCmp = &u64_cmp;
        let mut sorter = ExternalSorter::new(8, budget, spill_dir(tag), cmp).unwrap();
        // Pseudo-random insertion order.
        let mut x = 0x2545f4914f6cdd1du64;
        let mut inputs = Vec::new();
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            inputs.push(x % (n * 2));
        }
        for v in &inputs {
            sorter.push(&v.to_le_bytes()).unwrap();
        }
        let runs = sorter.runs_spilled();
        let rows = sorter.finish().unwrap().collect_all().unwrap();
        let got: Vec<u64> =
            rows.iter().map(|r| u64::from_le_bytes(r[..8].try_into().unwrap())).collect();
        let mut expect = inputs;
        expect.sort_unstable();
        assert_eq!(got, expect);
        (got, runs)
    }

    #[test]
    fn in_memory_path() {
        let (_, runs) = run_sort(1_000, 1 << 20, "mem");
        assert_eq!(runs, 0, "should not spill under a large budget");
    }

    #[test]
    fn spilling_path() {
        let (_, runs) = run_sort(10_000, 800, "spill"); // 100 rows per run
        assert!(runs >= 50, "expected many runs, got {runs}");
    }

    #[test]
    fn exact_budget_boundary() {
        // Budget of exactly one row: every push spills.
        let (_, runs) = run_sort(64, 8, "tiny");
        assert!(runs >= 63);
    }

    #[test]
    fn empty_input() {
        let cmp: &RowCmp = &u64_cmp;
        let sorter = ExternalSorter::new(8, 1024, spill_dir("empty"), cmp).unwrap();
        assert!(sorter.finish().unwrap().collect_all().unwrap().is_empty());
    }

    #[test]
    fn wrong_width_rejected() {
        let cmp: &RowCmp = &u64_cmp;
        let mut sorter = ExternalSorter::new(8, 1024, spill_dir("width"), cmp).unwrap();
        assert!(sorter.push(&[0u8; 4]).is_err());
    }

    #[test]
    fn duplicates_preserved() {
        let cmp: &RowCmp = &u64_cmp;
        let mut sorter = ExternalSorter::new(8, 24, spill_dir("dups"), cmp).unwrap();
        for _ in 0..100 {
            sorter.push(&7u64.to_le_bytes()).unwrap();
        }
        let rows = sorter.finish().unwrap().collect_all().unwrap();
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| u64::from_le_bytes(r[..8].try_into().unwrap()) == 7));
    }

    #[test]
    fn attached_stats_count_spills() {
        use crate::stats::StorageStats;
        let cmp: &RowCmp = &u64_cmp;
        let mut sorter = ExternalSorter::new(8, 80, spill_dir("stats"), cmp).unwrap(); // 10 rows/run
        let stats = Arc::new(StorageStats::new());
        sorter.attach_stats(Arc::clone(&stats));
        for v in 0..35u64 {
            sorter.push(&v.to_le_bytes()).unwrap();
        }
        assert_eq!(stats.sort_runs(), 3);
        assert_eq!(stats.sort_spill_bytes(), 3 * 10 * 8);
        // finish() spills the 5-row tail before merging.
        let rows = sorter.finish().unwrap().collect_all().unwrap();
        assert_eq!(rows.len(), 35);
        assert_eq!(stats.sort_runs(), 4);
        assert_eq!(stats.sort_spill_bytes(), 35 * 8);
    }

    #[test]
    fn run_files_cleaned_up() {
        let dir = spill_dir("cleanup");
        {
            let cmp: &RowCmp = &u64_cmp;
            let mut sorter = ExternalSorter::new(8, 16, &dir, cmp).unwrap();
            for v in 0..100u64 {
                sorter.push(&v.to_le_bytes()).unwrap();
            }
            let sorted = sorter.finish().unwrap();
            let _ = sorted.collect_all().unwrap();
        }
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "run files should be deleted after merge");
    }
}
