//! Smoke tests keeping the experiment harness runnable: each module is
//! executed at an extreme scale divisor (tiny data) so regressions in the
//! harness code surface in `cargo test` without re-running full figures.

use cure_bench::experiments;

#[test]
fn table1_exact() {
    let figs = experiments::table1::run(1).unwrap();
    assert_eq!(figs.len(), 1);
    assert_eq!(figs[0].series[0].y, vec![2.0, 1.0, 1.0]);
}

#[test]
fn apb_harness_smoke() {
    std::env::set_var("CURE_RESULTS_DIR", std::env::temp_dir().join("cure_smoke_results"));
    let figs = experiments::apb::run(20_000).unwrap();
    assert_eq!(figs.len(), 2);
    // Four variants × three densities everywhere.
    for f in &figs {
        assert_eq!(f.series.len(), 4);
        assert_eq!(f.series[0].y.len(), 3);
        assert!(f.series.iter().all(|s| s.y.iter().all(|&v| v >= 0.0)));
    }
}

#[test]
fn flat_hier_harness_smoke() {
    std::env::set_var("CURE_RESULTS_DIR", std::env::temp_dir().join("cure_smoke_results"));
    std::env::set_var("CURE_QUERIES", "10");
    let figs = experiments::flat_hier::run(20_000).unwrap();
    assert_eq!(figs.len(), 3);
    // Six methods on the x axis.
    assert_eq!(figs[0].series[0].x.len(), 6);
}

#[test]
fn qrt_harness_smoke() {
    std::env::set_var("CURE_RESULTS_DIR", std::env::temp_dir().join("cure_smoke_results"));
    let figs = experiments::qrt::run(20_000).unwrap();
    assert_eq!(figs.len(), 1);
    assert_eq!(figs[0].series.len(), 4);
}

#[test]
fn iceberg_harness_smoke() {
    std::env::set_var("CURE_RESULTS_DIR", std::env::temp_dir().join("cure_smoke_results"));
    let figs = experiments::iceberg::run(20_000).unwrap();
    assert_eq!(figs.len(), 1);
    let y = &figs[0].series[0].y;
    assert!(y[1] <= y[0], "iceberg must not be slower than full: {y:?}");
}

#[test]
fn pool_harness_smoke() {
    std::env::set_var("CURE_RESULTS_DIR", std::env::temp_dir().join("cure_smoke_results"));
    let figs = experiments::pool::run(2_000).unwrap();
    assert_eq!(figs.len(), 1);
    assert_eq!(figs[0].series.len(), 4); // 2 datasets × {CURE, CURE+}
}
