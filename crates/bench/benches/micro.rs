//! Criterion micro-benchmarks for the load-bearing primitives.
//!
//! The full table/figure regenerations live in the `cure-bench` binaries
//! (they take minutes and produce the paper-shaped output); these benches
//! track the hot paths those experiments stand on:
//!
//! * `sort/*` — counting vs. comparison segment sort across skews (the
//!   §7 CountingSort observation, the Figures 21/22 mechanism),
//! * `signature/*` — pool flush (sort + classify),
//! * `bitmap/*` — CURE+ TT bitmap construction and iteration,
//! * `cube/*` — small end-to-end in-memory builds (flat, hierarchical),
//! * `query/*` — node-query answering over a small disk cube.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use cure_core::cube::{CubeBuilder, CubeConfig};
use cure_core::meta::CubeMeta;
use cure_core::sink::DiskSink;
use cure_core::{CatFormatPolicy, MemSink, NodeCoder, SignaturePool, SortPolicy, Sorter, Tuples};
use cure_data::synthetic::{flat, hierarchical, FlatSpec, HierSpec};
use cure_storage::{BitmapIndex, Catalog};

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    let n = 100_000usize;
    let card = 1_000u32;
    for &z in &[0.0, 1.0, 2.0] {
        let ds = flat(&FlatSpec { dims: 1, tuples: n, zipf: z, measures: 1, seed: 1 });
        let keys: Vec<u32> = (0..n).map(|i| ds.tuples.dim(i, 0) % card).collect();
        for (name, policy) in
            [("counting", SortPolicy::ForceCounting), ("comparison", SortPolicy::ForceComparison)]
        {
            group.bench_with_input(BenchmarkId::new(name, format!("z={z}")), &keys, |b, keys| {
                let mut sorter = Sorter::new(policy);
                b.iter(|| {
                    let mut idx: Vec<u32> = (0..n as u32).collect();
                    sorter.sort_by_key(&mut idx, card, |t| keys[t as usize]);
                    black_box(idx[0])
                });
            });
        }
    }
    group.finish();
}

fn bench_signature_flush(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature");
    let n = 100_000usize;
    group.bench_function("flush_100k", |b| {
        b.iter(|| {
            let mut sink = MemSink::new(2);
            let mut pool = SignaturePool::new(2, n + 1, CatFormatPolicy::Auto);
            let mut x = 7u64;
            for i in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // ~30% CAT rate.
                let agg = (x % (n as u64 * 2 / 3)) as i64;
                pool.push(&mut sink, &[agg, agg / 2], x % 1000, i as u64 % 64).unwrap();
            }
            pool.flush(&mut sink).unwrap();
            black_box(pool.total_signatures())
        });
    });
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap");
    // Half-dense row-id set, the typical TT profile after sorting.
    let ids: Vec<u64> = (0..200_000u64).filter(|i| i % 3 != 0).collect();
    group.bench_function("build_133k", |b| {
        b.iter(|| black_box(BitmapIndex::from_sorted(&ids).size_bytes()));
    });
    let bm = BitmapIndex::from_sorted(&ids);
    group.bench_function("iterate_133k", |b| {
        b.iter(|| black_box(bm.iter().sum::<u64>()));
    });
    group.finish();
}

fn small_hier_dataset() -> cure_data::Dataset {
    hierarchical(
        &[
            HierSpec { name: "A".into(), level_cards: vec![500, 50, 5] },
            HierSpec { name: "B".into(), level_cards: vec![100, 10] },
            HierSpec { name: "C".into(), level_cards: vec![20] },
        ],
        20_000,
        0.6,
        2,
        0xBE,
        "bench",
    )
}

fn bench_cube_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube");
    group.sample_size(10);
    let flat_ds = flat(&FlatSpec { dims: 6, tuples: 20_000, zipf: 0.8, measures: 1, seed: 2 });
    group.bench_function("flat_d6_20k", |b| {
        b.iter(|| {
            let mut sink = MemSink::new(1);
            let report = CubeBuilder::new(&flat_ds.schema, CubeConfig::default())
                .build_in_memory(&flat_ds.tuples, &mut sink)
                .unwrap();
            black_box(report.stats.total_tuples())
        });
    });
    let hier_ds = small_hier_dataset();
    group.bench_function("hier_3dims_20k", |b| {
        b.iter(|| {
            let mut sink = MemSink::new(2);
            let report = CubeBuilder::new(&hier_ds.schema, CubeConfig::default())
                .build_in_memory(&hier_ds.tuples, &mut sink)
                .unwrap();
            black_box(report.stats.total_tuples())
        });
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    let dir = std::env::temp_dir().join(format!("cure_criterion_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir).unwrap();
    let ds = small_hier_dataset();
    let mut heap = catalog.create_or_replace("facts", Tuples::fact_schema(3, 2)).unwrap();
    ds.tuples.store_fact(&mut heap).unwrap();
    drop(heap);
    let mut sink = DiskSink::new(&catalog, "q_", &ds.schema, false, false, None).unwrap();
    let report = CubeBuilder::new(&ds.schema, CubeConfig::default())
        .build_in_memory(&ds.tuples, &mut sink)
        .unwrap();
    CubeMeta {
        prefix: "q_".into(),
        fact_rel: "facts".into(),
        n_dims: 3,
        n_measures: 2,
        dr: false,
        plus: false,
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: 1,
    }
    .write(&catalog)
    .unwrap();
    let ds_schema = ds.schema.clone();
    let mut cube = cure_query::CureCube::open(&catalog, &ds_schema, "q_").unwrap();
    let coder = NodeCoder::new(&ds_schema);
    let workload = cure_query::workload::random_nodes(&coder, 20, 5);
    group.bench_function("node_queries_20", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for &n in &workload {
                rows += cube.node_query(n).unwrap().len();
            }
            black_box(rows)
        });
    });
    group.finish();
}

fn bench_storage_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    // CRC-32 over a full page payload (stamped on every page write).
    let payload = vec![0xA5u8; 8192 - 8];
    group.bench_function("crc32_page", |b| {
        b.iter(|| black_box(cure_storage::checksum::crc32(&payload)));
    });
    // Heap append throughput (buffered tail-page writes).
    let dir = std::env::temp_dir().join(format!("cure_bench_heap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    group.bench_function("heap_append_10k", |b| {
        let mut n = 0u32;
        b.iter(|| {
            n += 1;
            let path = dir.join(format!("b{n}.heap"));
            let mut hf =
                cure_storage::HeapFile::create(&path, cure_storage::Schema::fact(2, 1)).unwrap();
            let row = [0u8; 16];
            for _ in 0..10_000 {
                hf.append_raw(&row).unwrap();
            }
            hf.flush().unwrap();
            black_box(hf.num_rows())
        });
    });
    group.finish();
}

fn bench_partition_scan(c: &mut Criterion) {
    use cure_core::partition::{build_cure_cube, select_partition_level};
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    let ds = small_hier_dataset();
    // Level selection alone (Table 1 logic) is nanoseconds; bench the full
    // partitioned build at a tight budget.
    group.bench_function("select_level", |b| {
        b.iter(|| {
            black_box(select_partition_level(&ds.schema, 1_000_000, 48, 1 << 20).unwrap().level)
        });
    });
    let dir = std::env::temp_dir().join(format!("cure_bench_part_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir).unwrap();
    let mut heap = catalog.create_or_replace("facts", Tuples::fact_schema(3, 2)).unwrap();
    ds.tuples.store_fact(&mut heap).unwrap();
    drop(heap);
    let budget = ds.tuples.mem_bytes() / 6;
    group.bench_function("partitioned_build_20k", |b| {
        b.iter(|| {
            let cfg = CubeConfig { memory_budget_bytes: budget, ..CubeConfig::default() };
            let mut sink = MemSink::new(2);
            let report =
                build_cure_cube(&catalog, "facts", &ds.schema, &cfg, &mut sink, "tmp_").unwrap();
            black_box(report.stats.total_tuples())
        });
    });
    group.finish();
}

fn bench_value_index(c: &mut Criterion) {
    use cure_query::index::ValueIndex;
    let mut group = c.benchmark_group("value_index");
    group.sample_size(10);
    let ds = small_hier_dataset();
    let dir = std::env::temp_dir().join(format!("cure_bench_vidx_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Catalog::open(&dir).unwrap();
    let mut heap = catalog.create_or_replace("facts", Tuples::fact_schema(3, 2)).unwrap();
    ds.tuples.store_fact(&mut heap).unwrap();
    let fact = catalog.open_relation("facts").unwrap();
    group.bench_function("build_d0_20k", |b| {
        b.iter(|| black_box(ValueIndex::build(&fact, 0, 500).unwrap().size_bytes()));
    });
    let idx = ValueIndex::build(&fact, 0, 500).unwrap();
    group.bench_function("rows_for_level", |b| {
        b.iter(|| black_box(idx.rows_for_level(&ds.schema, 0, 1, 7).unwrap().count()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sort,
    bench_signature_flush,
    bench_bitmap,
    bench_cube_build,
    bench_query,
    bench_storage_primitives,
    bench_partition_scan,
    bench_value_index
);
criterion_main!(benches);
