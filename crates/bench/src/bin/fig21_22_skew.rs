//! Regenerates Figures 21-22 (skew) of the paper. See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(25);
    println!("running Figures 21-22 (skew) (scale 1:{scale}; set CURE_SCALE to change)");
    if let Err(e) = cure_bench::experiments::skew::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
