//! Regenerates Table 1 (partitioning efficiency) of the paper. See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(1);
    println!(
        "running Table 1 (partitioning efficiency) (scale 1:{scale}; set CURE_SCALE to change)"
    );
    if let Err(e) = cure_bench::experiments::table1::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
