//! Measures crash-safe build overhead and resume-from-checkpoint cost. See DESIGN.md's
//! "Durability & recovery" section.
fn main() {
    let scale = cure_bench::scale_from_env(1);
    println!("running recovery overhead (scale 1:{scale}; set CURE_SCALE to change)");
    if let Err(e) = cure_bench::experiments::recovery::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
