//! Regenerates Figures 14-16 (real datasets) of the paper. See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(100);
    println!("running Figures 14-16 (real datasets) (scale 1:{scale}; set CURE_SCALE to change)");
    if let Err(e) = cure_bench::experiments::real::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
