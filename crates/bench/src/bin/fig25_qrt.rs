//! Regenerates Figure 25 (APB-1 query response time) of the paper. See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(1000);
    println!(
        "running Figure 25 (APB-1 query response time) (scale 1:{scale}; set CURE_SCALE to change)"
    );
    if let Err(e) = cure_bench::experiments::qrt::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
