//! Regenerates Figures 23-24 (APB-1 construction) of the paper. See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(1000);
    println!(
        "running Figures 23-24 (APB-1 construction) (scale 1:{scale}; set CURE_SCALE to change)"
    );
    if let Err(e) = cure_bench::experiments::apb::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
