//! Regenerates the count-iceberg query comparison of the paper. See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(1000);
    println!(
        "running the count-iceberg query comparison (scale 1:{scale}; set CURE_SCALE to change)"
    );
    if let Err(e) = cure_bench::experiments::iceberg::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
