//! Regenerates Figures 26-28 (flat vs hierarchical) of the paper. See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(500);
    println!(
        "running Figures 26-28 (flat vs hierarchical) (scale 1:{scale}; set CURE_SCALE to change)"
    );
    if let Err(e) = cure_bench::experiments::flat_hier::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
