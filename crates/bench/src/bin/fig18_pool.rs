//! Regenerates Figure 18 (signature pool size) of the paper. See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(100);
    println!("running Figure 18 (signature pool size) (scale 1:{scale}; set CURE_SCALE to change)");
    if let Err(e) = cure_bench::experiments::pool::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
