//! Regenerates the CAT-format and plan ablations of the paper. See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(1000);
    println!(
        "running the CAT-format and plan ablations (scale 1:{scale}; set CURE_SCALE to change)"
    );
    if let Err(e) = cure_bench::experiments::ablations::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
