//! Runs every experiment of the evaluation in sequence, writing all
//! figure JSONs into `results/`. Scales are each experiment's default
//! unless `CURE_SCALE` is set (then it applies to all).
use cure_bench::experiments;

/// One runnable experiment: a label and a closure producing its figures.
type Run = (&'static str, Box<dyn Fn() -> cure_core::Result<Vec<cure_bench::FigureResult>>>);

fn main() {
    let overridden = std::env::var("CURE_SCALE").is_ok();
    let scale = move |d: u64| if overridden { cure_bench::scale_from_env(d) } else { d };
    let runs: Vec<Run> = vec![
        ("table1", Box::new(move || experiments::table1::run(scale(1)))),
        ("fig14-16", Box::new(move || experiments::real::run(scale(100)))),
        ("fig17", Box::new(move || experiments::cache::run(scale(100)))),
        ("fig18", Box::new(move || experiments::pool::run(scale(100)))),
        ("fig19-20", Box::new(move || experiments::dims::run(scale(25)))),
        ("fig21-22", Box::new(move || experiments::skew::run(scale(25)))),
        ("fig23-24", Box::new(move || experiments::apb::run(scale(1000)))),
        ("fig25", Box::new(move || experiments::qrt::run(scale(1000)))),
        ("fig26-28", Box::new(move || experiments::flat_hier::run(scale(500)))),
        ("iceberg", Box::new(move || experiments::iceberg::run(scale(1000)))),
        ("ablations", Box::new(move || experiments::ablations::run(scale(1000)))),
        ("serve", Box::new(move || experiments::serve::run(scale(1000)))),
        ("build_scaling", Box::new(move || experiments::build_scaling::run(scale(1000)))),
        ("recovery", Box::new(move || experiments::recovery::run(scale(4)))),
    ];
    let mut failed = 0;
    for (name, run) in runs {
        println!("\n================ {name} ================");
        let start = std::time::Instant::now();
        match run() {
            Ok(figs) => println!(
                "[{name}: {} figure(s) in {:.1}s]",
                figs.len(),
                start.elapsed().as_secs_f64()
            ),
            Err(e) => {
                eprintln!("[{name} FAILED: {e}]");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        std::process::exit(1);
    }
}
