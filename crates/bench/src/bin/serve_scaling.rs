//! Regenerates the serving-throughput scaling experiment (cure-serve).
//! See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(1000);
    println!("running serving scaling (scale 1:{scale}; set CURE_SCALE to change)");
    if let Err(e) = cure_bench::experiments::serve::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
