//! Regenerates the parallel-build scaling experiment.
//! See DESIGN.md's experiment index.
fn main() {
    let scale = cure_bench::scale_from_env(1000);
    println!("running build scaling (scale 1:{scale}; set CURE_SCALE to change)");
    if let Err(e) = cure_bench::experiments::build_scaling::run(scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
