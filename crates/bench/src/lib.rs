//! # cure-bench — the experiment harness
//!
//! One runnable binary per table/figure of the paper's evaluation (§7);
//! see DESIGN.md for the full experiment index. Every binary:
//!
//! * generates its workload with `cure-data` (deterministic seeds),
//! * builds the cubes under test on disk through the real storage engine,
//! * prints a human-readable table shaped like the paper's figure, and
//! * writes a machine-readable JSON series to `results/<figure>.json`.
//!
//! ## Scaling
//!
//! The paper's largest runs (496 M tuples) are scaled down by a divisor so
//! every figure regenerates in minutes; set `CURE_SCALE` to trade time for
//! fidelity (1 = the paper's sizes). What matters for the reproduction is
//! the *shape* of each figure — method ordering, crossover points,
//! monotonicity — which is scale-stable; EXPERIMENTS.md records the scale
//! used for the committed results.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cure_core::cube::{BuildReport, CubeBuilder, CubeConfig};
use cure_core::meta::CubeMeta;
use cure_core::partition::build_cure_cube;
use cure_core::sink::{DiskSink, RowResolver};
use cure_core::{CubeSchema, Result};
use cure_query::CureCube;
use cure_storage::{Catalog, Schema};

/// The CURE variants the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CureVariant {
    /// Plain CURE.
    Cure,
    /// CURE+ (sorted bitmap TTs, §5.3 post-processing).
    CurePlus,
    /// CURE_DR (NTs keep materialized dimension values).
    CureDr,
    /// CURE_DR+ (both).
    CureDrPlus,
}

impl CureVariant {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            CureVariant::Cure => "CURE",
            CureVariant::CurePlus => "CURE+",
            CureVariant::CureDr => "CURE_DR",
            CureVariant::CureDrPlus => "CURE_DR+",
        }
    }

    /// Whether this variant materializes NT dimension values.
    pub fn dr(self) -> bool {
        matches!(self, CureVariant::CureDr | CureVariant::CureDrPlus)
    }

    /// Whether this variant post-processes TTs into bitmaps.
    pub fn plus(self) -> bool {
        matches!(self, CureVariant::CurePlus | CureVariant::CureDrPlus)
    }

    /// All four variants.
    pub fn all() -> [CureVariant; 4] {
        [CureVariant::Cure, CureVariant::CurePlus, CureVariant::CureDr, CureVariant::CureDrPlus]
    }
}

/// Read the global scale divisor (default per experiment; `CURE_SCALE`
/// overrides).
pub fn scale_from_env(default: u64) -> u64 {
    std::env::var("CURE_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(default).max(1)
}

/// A fresh working directory + catalog for one experiment.
pub fn experiment_catalog(tag: &str) -> Result<Catalog> {
    let dir = std::env::temp_dir().join(format!("cure_bench_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    Ok(Catalog::open(dir)?)
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Build a CURE-variant cube on disk from a stored fact relation, via the
/// full `Algorithm CURE` driver (partitions when the budget demands it),
/// and persist its metadata. Returns the build report and wall seconds.
pub fn build_cure_variant(
    catalog: &Catalog,
    schema: &CubeSchema,
    fact_rel: &str,
    prefix: &str,
    variant: CureVariant,
    cfg: &CubeConfig,
) -> Result<(BuildReport, f64)> {
    let resolver: Option<RowResolver> = if variant.dr() {
        let fact = catalog.open_relation(fact_rel)?;
        let fs = fact.schema().clone();
        let d = schema.num_dims();
        let mut buf = vec![0u8; fs.row_width()];
        Some(Box::new(move |rowid, out: &mut [u32]| {
            fact.fetch_into(rowid, &mut buf)?;
            for (i, o) in out.iter_mut().enumerate().take(d) {
                *o = Schema::read_u32_at(&buf, fs.offset(i));
            }
            Ok(())
        }))
    } else {
        None
    };
    let start = Instant::now();
    let mut sink = DiskSink::new(catalog, prefix, schema, variant.dr(), variant.plus(), resolver)?;
    let report =
        build_cure_cube(catalog, fact_rel, schema, cfg, &mut sink, &format!("{prefix}tmp_"))?;
    let secs = start.elapsed().as_secs_f64();
    CubeMeta {
        prefix: prefix.to_string(),
        fact_rel: fact_rel.to_string(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr: variant.dr(),
        plus: variant.plus(),
        cat_format: report.stats.cat_format,
        partition_level: report.partition.as_ref().map(|p| p.choice.level),
        min_support: cfg.min_support,
    }
    .write(catalog)?;
    Ok((report, secs))
}

/// Build a CURE-variant cube from in-memory tuples (skipping the driver's
/// load; used when the experiment times pure construction).
pub fn build_cure_variant_in_memory(
    catalog: &Catalog,
    schema: &CubeSchema,
    tuples: &cure_core::Tuples,
    fact_rel: &str,
    prefix: &str,
    variant: CureVariant,
    cfg: &CubeConfig,
) -> Result<(BuildReport, f64)> {
    let resolver: Option<RowResolver> = if variant.dr() {
        let fact = catalog.open_relation(fact_rel)?;
        let fs = fact.schema().clone();
        let d = schema.num_dims();
        let mut buf = vec![0u8; fs.row_width()];
        Some(Box::new(move |rowid, out: &mut [u32]| {
            fact.fetch_into(rowid, &mut buf)?;
            for (i, o) in out.iter_mut().enumerate().take(d) {
                *o = Schema::read_u32_at(&buf, fs.offset(i));
            }
            Ok(())
        }))
    } else {
        None
    };
    let start = Instant::now();
    let mut sink = DiskSink::new(catalog, prefix, schema, variant.dr(), variant.plus(), resolver)?;
    let report = CubeBuilder::new(schema, cfg.clone()).build_in_memory(tuples, &mut sink)?;
    let secs = start.elapsed().as_secs_f64();
    CubeMeta {
        prefix: prefix.to_string(),
        fact_rel: fact_rel.to_string(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr: variant.dr(),
        plus: variant.plus(),
        cat_format: report.stats.cat_format,
        partition_level: None,
        min_support: cfg.min_support,
    }
    .write(catalog)?;
    Ok((report, secs))
}

/// Average per-query wall seconds over a node workload.
pub fn avg_query_secs(cube: &mut CureCube, workload: &[u64]) -> Result<f64> {
    let start = Instant::now();
    for &n in workload {
        let _ = cube.node_query(n)?;
    }
    Ok(start.elapsed().as_secs_f64() / workload.len().max(1) as f64)
}

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

/// A data series for the JSON output: one line of a figure.
#[derive(Debug)]
pub struct Series {
    /// Legend label ("CURE+", "BU-BST", …).
    pub label: String,
    /// X values (dataset names, dimension counts, skews, …).
    pub x: Vec<serde_json::Value>,
    /// Y values.
    pub y: Vec<f64>,
}

/// A figure result: id, axis descriptions, and its series.
#[derive(Debug)]
pub struct FigureResult {
    /// Figure/table id ("fig14", "table1", …).
    pub id: String,
    /// Short description.
    pub title: String,
    /// X-axis meaning.
    pub x_axis: String,
    /// Y-axis meaning.
    pub y_axis: String,
    /// Scale divisor used.
    pub scale: u64,
    /// The series.
    pub series: Vec<Series>,
}

impl serde_json::ToJson for Series {
    fn to_json(&self) -> serde_json::Value {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("label".to_string(), serde_json::Value::from(&self.label));
        obj.insert("x".to_string(), serde_json::Value::Array(self.x.clone()));
        obj.insert("y".to_string(), serde_json::Value::from(self.y.clone()));
        serde_json::Value::Object(obj)
    }
}

impl serde_json::ToJson for FigureResult {
    fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("id".to_string(), Value::from(&self.id));
        obj.insert("title".to_string(), Value::from(&self.title));
        obj.insert("x_axis".to_string(), Value::from(&self.x_axis));
        obj.insert("y_axis".to_string(), Value::from(&self.y_axis));
        obj.insert("scale".to_string(), Value::from(self.scale));
        obj.insert(
            "series".to_string(),
            Value::Array(self.series.iter().map(|s| s.to_json()).collect()),
        );
        Value::Object(obj)
    }
}

/// Where figure JSON results are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CURE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Persist a figure result as pretty JSON.
pub fn write_result(result: &FigureResult) {
    let path = results_dir().join(format!("{}.json", result.id));
    match serde_json::to_vec_pretty(result) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {}: {e}", result.id),
    }
}

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = std::io::stdout().lock();
    let _ = write!(out, "  ");
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, "{h:>w$}  ");
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "  ");
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, "{cell:>w$}  ");
        }
        let _ = writeln!(out);
    }
}

/// Format seconds for tables.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Format bytes for tables.
pub fn fmt_bytes(b: u64) -> String {
    const KB: f64 = 1e3;
    const MB: f64 = 1e6;
    const GB: f64 = 1e9;
    let b = b as f64;
    if b >= GB {
        format!("{:.2}GB", b / GB)
    } else if b >= MB {
        format!("{:.2}MB", b / MB)
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_flags() {
        assert!(!CureVariant::Cure.dr() && !CureVariant::Cure.plus());
        assert!(CureVariant::CurePlus.plus() && !CureVariant::CurePlus.dr());
        assert!(CureVariant::CureDr.dr() && !CureVariant::CureDr.plus());
        assert!(CureVariant::CureDrPlus.dr() && CureVariant::CureDrPlus.plus());
        assert_eq!(CureVariant::all().len(), 4);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_secs(0.0025), "2.5ms");
        assert_eq!(fmt_secs(3.25), "3.25s");
        assert_eq!(fmt_bytes(500), "500B");
        assert_eq!(fmt_bytes(2_500), "2.5KB");
        assert_eq!(fmt_bytes(3_000_000), "3.00MB");
        assert_eq!(fmt_bytes(7_500_000_000), "7.50GB");
    }

    #[test]
    fn scale_env_default() {
        std::env::remove_var("CURE_SCALE");
        assert_eq!(scale_from_env(40), 40);
    }

    #[test]
    fn end_to_end_variant_build() {
        // Smoke-test the shared builder across all four variants.
        let catalog = experiment_catalog("libtest").unwrap();
        let ds = cure_data::synthetic::hierarchical(
            &[
                cure_data::synthetic::HierSpec { name: "A".into(), level_cards: vec![40, 8, 2] },
                cure_data::synthetic::HierSpec { name: "B".into(), level_cards: vec![10, 2] },
            ],
            1_000,
            0.5,
            1,
            3,
            "libtest",
        );
        ds.store(&catalog, "facts").unwrap();
        for v in CureVariant::all() {
            let prefix = format!("{}_", v.name().to_lowercase().replace('+', "p"));
            let (report, secs) = build_cure_variant(
                &catalog,
                &ds.schema,
                "facts",
                &prefix,
                v,
                &CubeConfig::default(),
            )
            .unwrap();
            assert!(report.stats.total_tuples() > 0, "{}", v.name());
            assert!(secs >= 0.0);
            let mut cube = CureCube::open(&catalog, &ds.schema, &prefix).unwrap();
            let coder = cure_core::NodeCoder::new(&ds.schema);
            let workload = cure_query::workload::random_nodes(&coder, 10, 1);
            let avg = avg_query_secs(&mut cube, &workload).unwrap();
            assert!(avg >= 0.0);
        }
    }
}

pub mod experiments;

/// Build a flat BUC cube on disk; returns (stats, seconds).
pub fn build_buc_disk(
    catalog: &Catalog,
    cards: &[u32],
    tuples: &cure_core::Tuples,
    prefix: &str,
) -> Result<(cure_baselines::BaselineStats, f64)> {
    let start = Instant::now();
    let mut sink = cure_baselines::buc::BucDiskCube::new(catalog, prefix, tuples.n_measures());
    let stats = cure_baselines::buc::build_buc(cards, tuples, 1, &mut sink)?;
    Ok((stats, start.elapsed().as_secs_f64()))
}

/// Build a BU-BST condensed cube on disk; returns (stats, seconds).
pub fn build_bubst_disk(
    catalog: &Catalog,
    cards: &[u32],
    tuples: &cure_core::Tuples,
    prefix: &str,
) -> Result<(cure_baselines::BaselineStats, f64)> {
    let start = Instant::now();
    let mut sink = cure_baselines::bubst::BubstDiskCube::new(
        catalog,
        prefix,
        tuples.n_dims(),
        tuples.n_measures(),
    )?;
    let stats = cure_baselines::bubst::build_bubst(cards, tuples, 1, &mut sink)?;
    Ok((stats, start.elapsed().as_secs_f64()))
}
