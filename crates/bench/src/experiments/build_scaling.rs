//! Parallel cube-construction scaling: the partition-level worker pool.
//!
//! Not a figure from the paper — its evaluation is single-threaded — but
//! the write-path counterpart of the `serve` experiment: §4's external
//! partitions are independent once sealed, so the parallel driver cubes
//! them on a worker pool while a single merger keeps the output
//! byte-identical to the sequential build. This experiment stores an
//! APB-1-style fact table, forces partitioning with a small memory
//! budget, and times `build_cure_cube_parallel` at 1/2/4/8 threads for
//! CURE and CURE_DR.
//!
//! Wall-clock speedup is bounded by the host's physical cores (a
//! single-core machine measures ~1x everywhere); the core count is
//! recorded in the JSON so the committed numbers stay interpretable.

use cure_core::partition::build_cure_cube_parallel;
use cure_core::sink::{DiskSink, RowResolver};
use cure_core::{CubeConfig, CubeSchema, Result};
use cure_storage::{Catalog, Schema};

use crate::{
    experiment_catalog, print_table, timed, write_result, CureVariant, FigureResult, Series,
};

fn dr_resolver<'a>(catalog: &Catalog, schema: &CubeSchema) -> Result<RowResolver<'a>> {
    let fact = catalog.open_relation("facts")?;
    let fs = fact.schema().clone();
    let d = schema.num_dims();
    let mut buf = vec![0u8; fs.row_width()];
    Ok(Box::new(move |rowid, out: &mut [u32]| {
        fact.fetch_into(rowid, &mut buf)?;
        for (i, o) in out.iter_mut().enumerate().take(d) {
            *o = Schema::read_u32_at(&buf, fs.offset(i));
        }
        Ok(())
    }))
}

/// Run the parallel-build scaling experiment.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let thread_counts = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("(host reports {cores} core(s) available — speedup is bounded by this)");

    // Density 40 like the ablation's parallel run: per-partition work has
    // to dwarf the serial scan + merge for the pool to show through.
    let ds = cure_data::apb::apb1(40.0, scale, 0x5E4E);
    // A budget well below the fact size, so the driver partitions and the
    // worker pool has a queue to drain (in-memory builds short-circuit it).
    let fact_bytes = ds.tuples.len() as u64
        * (ds.schema.num_dims() * 4 + ds.schema.num_measures() * 8 + 8) as u64;
    let cfg = CubeConfig {
        memory_budget_bytes: (fact_bytes as usize / 16).max(1 << 20),
        ..CubeConfig::default()
    };

    let mut series = Vec::new();
    let mut rows = Vec::new();
    for variant in [CureVariant::Cure, CureVariant::CureDr] {
        let mut secs_series = Vec::new();
        let mut pass_series = Vec::new();
        let mut merge_series = Vec::new();
        let mut pages_series = Vec::new();
        let mut base_secs = 0.0;
        for &threads in &thread_counts {
            // A fresh directory per run: every build writes the same
            // relation names and timings must not include stale pages.
            let catalog = experiment_catalog(&format!(
                "build_scaling_{}_{threads}",
                variant.name().to_lowercase().replace('+', "p")
            ))?;
            ds.store(&catalog, "facts")?;
            let resolver =
                if variant.dr() { Some(dr_resolver(&catalog, &ds.schema)?) } else { None };
            let mut sink =
                DiskSink::new(&catalog, "bs_", &ds.schema, variant.dr(), false, resolver)?;
            let (report, secs) = timed(|| {
                build_cure_cube_parallel(
                    &catalog, "facts", &ds.schema, &cfg, &mut sink, "bs_tmp_", threads,
                )
            });
            let report = report?;
            let io = catalog.stats().snapshot();
            let parts = report.partition.as_ref().map(|p| p.choice.num_partitions).unwrap_or(0);
            if threads == 1 {
                base_secs = secs;
            }
            let speedup = if secs > 0.0 { base_secs / secs } else { 0.0 };
            rows.push(vec![
                variant.name().to_string(),
                threads.to_string(),
                format!("{secs:.2}s"),
                format!("{speedup:.2}x"),
                format!("{:.2}s", report.phases.pass_secs),
                format!("{:.2}s", report.phases.merge_secs),
                parts.to_string(),
                report.stats.total_tuples().to_string(),
                io.pages_written.to_string(),
            ]);
            secs_series.push(secs);
            pass_series.push(report.phases.pass_secs);
            merge_series.push(report.phases.merge_secs);
            pages_series.push(io.pages_written as f64);
        }
        let xs: Vec<serde_json::Value> =
            thread_counts.iter().map(|t| serde_json::json!(t)).collect();
        series.push(Series {
            label: format!("{} build seconds", variant.name()),
            x: xs.clone(),
            y: secs_series,
        });
        // The observability spine's phase timers: worker pass time is the
        // parallelizable share, merger replay the serial share (Amdahl),
        // and page writes show the instrumented runs do identical I/O.
        series.push(Series {
            label: format!("{} pass seconds", variant.name()),
            x: xs.clone(),
            y: pass_series,
        });
        series.push(Series {
            label: format!("{} merge seconds", variant.name()),
            x: xs.clone(),
            y: merge_series,
        });
        series.push(Series {
            label: format!("{} pages written", variant.name()),
            x: xs,
            y: pages_series,
        });
    }
    // Record the hardware bound alongside the measurements.
    series.push(Series {
        label: "host cores".into(),
        x: vec![serde_json::json!("available_parallelism")],
        y: vec![cores as f64],
    });

    print_table(
        "Parallel construction — partition worker-pool scaling",
        &[
            "variant",
            "threads",
            "build",
            "speedup",
            "pass",
            "merge",
            "partitions",
            "tuples",
            "pages",
        ],
        &rows,
    );
    let result = FigureResult {
        id: "build_scaling".into(),
        title: "parallel cube construction scaling (partition worker pool)".into(),
        x_axis: "worker threads".into(),
        y_axis: "build seconds".into(),
        scale,
        series,
    };
    write_result(&result);
    Ok(vec![result])
}
