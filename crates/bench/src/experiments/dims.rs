//! Figures 19 & 20: dimensionality vs. construction time and storage.
//!
//! The paper's setting: T = 500,000 tuples, Zipf Z = 0.8, cardinalities
//! Cᵢ = T/i, D swept from 8 to 28. A flat cube has 2^D nodes and BUC
//! materializes *every* group of every node, so its output explodes with
//! D — the reproduction therefore sweeps a smaller D range by default
//! (override with `CURE_DIMS`, comma-separated) at a scaled-down T while
//! preserving the recipe.

use cure_core::{CubeConfig, Result};
use cure_data::synthetic::{flat, FlatSpec};

use crate::{
    build_bubst_disk, build_buc_disk, build_cure_variant_in_memory, experiment_catalog, fmt_bytes,
    fmt_secs, print_table, write_result, CureVariant, FigureResult, Series,
};

fn dims_list() -> Vec<usize> {
    std::env::var("CURE_DIMS")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![4, 6, 8, 10, 12])
}

/// Run Figures 19 and 20.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let t = (500_000 / scale as usize).max(1_000);
    let dims = dims_list();
    println!("T = {t}, Z = 0.8, Ci = T/i, D ∈ {dims:?}");
    let methods = ["BUC", "BU-BST", "CURE", "CURE+"];
    // per method: (times, bytes) across D.
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let mut bytes: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let mut rows = Vec::new();
    for &d in &dims {
        let spec = FlatSpec { dims: d, tuples: t, zipf: 0.8, measures: 1, seed: 0xD13 };
        let ds = flat(&spec);
        let catalog = experiment_catalog(&format!("dims_{d}"))?;
        ds.store(&catalog, "facts")?;
        let cards: Vec<u32> = ds.schema.dims().iter().map(|x| x.leaf_cardinality()).collect();

        let (buc_stats, buc_secs) = build_buc_disk(&catalog, &cards, &ds.tuples, "buc_")?;
        times[0].push(buc_secs);
        bytes[0].push(buc_stats.bytes as f64);
        let (bb_stats, bb_secs) = build_bubst_disk(&catalog, &cards, &ds.tuples, "bb_")?;
        times[1].push(bb_secs);
        bytes[1].push(bb_stats.bytes as f64);
        for (mi, v) in [(2usize, CureVariant::Cure), (3, CureVariant::CurePlus)] {
            let prefix = if v == CureVariant::Cure { "cure_" } else { "curep_" };
            let (report, secs) = build_cure_variant_in_memory(
                &catalog,
                &ds.schema,
                &ds.tuples,
                "facts",
                prefix,
                v,
                &CubeConfig::default(),
            )?;
            times[mi].push(secs);
            bytes[mi].push(report.stats.total_bytes() as f64);
        }
        rows.push(vec![
            d.to_string(),
            fmt_secs(times[0].last().copied().unwrap()),
            fmt_secs(times[1].last().copied().unwrap()),
            fmt_secs(times[2].last().copied().unwrap()),
            fmt_secs(times[3].last().copied().unwrap()),
            fmt_bytes(*bytes[0].last().unwrap() as u64),
            fmt_bytes(*bytes[1].last().unwrap() as u64),
            fmt_bytes(*bytes[2].last().unwrap() as u64),
            fmt_bytes(*bytes[3].last().unwrap() as u64),
        ]);
    }
    print_table(
        "Figures 19/20 — dimensionality vs. construction time and storage",
        &[
            "D",
            "BUC t",
            "BU-BST t",
            "CURE t",
            "CURE+ t",
            "BUC sz",
            "BU-BST sz",
            "CURE sz",
            "CURE+ sz",
        ],
        &rows,
    );
    let x: Vec<serde_json::Value> = dims.iter().map(|&d| serde_json::json!(d)).collect();
    let mk = |id: &str, title: &str, y_axis: &str, data: &[Vec<f64>]| FigureResult {
        id: id.into(),
        title: title.into(),
        x_axis: "number of dimensions".into(),
        y_axis: y_axis.into(),
        scale,
        series: methods
            .iter()
            .zip(data)
            .map(|(m, ys)| Series { label: m.to_string(), x: x.clone(), y: ys.clone() })
            .collect(),
    };
    let f19 = mk("fig19", "Dimensionality vs. construction time", "seconds", &times);
    let f20 = mk("fig20", "Dimensionality vs. storage space", "bytes", &bytes);
    write_result(&f19);
    write_result(&f20);
    Ok(vec![f19, f20])
}
