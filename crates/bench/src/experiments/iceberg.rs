//! Count-iceberg queries (§7, closing remark): `HAVING count(*) > k`
//! queries over a CURE cube skip every trivial tuple without reading it —
//! the count of a TT is 1 by construction. The paper reports
//! orders-of-magnitude speedups but omits the figures for space; this
//! experiment supplies them: full node query vs. count-iceberg query over
//! the same CURE cube, per node-size bucket, on APB-1.

use cure_core::{CubeConfig, CubeSchema, NodeCoder, Result, Tuples};
use cure_data::apb::apb1;
use cure_query::CureCube;

use crate::{
    build_cure_variant_in_memory, experiment_catalog, fmt_secs, print_table, timed, write_result,
    CureVariant, FigureResult, Series,
};

/// Run the iceberg-query experiment.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    // APB-1 with an appended count measure (1 per fact tuple).
    // Sparse APB-1 (cardinalities unscaled): most groups are singletons,
    // so trivial tuples dominate and the skip-TTs effect is visible the
    // way the paper describes it.
    let base = apb1(4.0, scale, 0x1CE);
    let schema = CubeSchema::new(base.schema.dims().to_vec(), 3)?;
    let mut tuples = Tuples::with_capacity(4, 3, base.tuples.len());
    for i in 0..base.tuples.len() {
        let mut aggs = base.tuples.aggs_of(i).to_vec();
        aggs.push(1);
        tuples.push_fact(base.tuples.dims_of(i), &aggs, i as u64);
    }
    println!("APB-1 density 4 (scaled) + count measure: {} tuples", tuples.len());

    let catalog = experiment_catalog("iceberg")?;
    let mut heap = catalog.create_or_replace("facts", Tuples::fact_schema(4, 3))?;
    tuples.store_fact(&mut heap)?;
    drop(heap);
    build_cure_variant_in_memory(
        &catalog,
        &schema,
        &tuples,
        "facts",
        "i_",
        CureVariant::Cure,
        &CubeConfig::default(),
    )?;

    let mut cube = CureCube::open(&catalog, &schema, "i_")?;
    let coder = NodeCoder::new(&schema);
    let min_count = 3i64;
    let ids: Vec<u64> = coder.all_ids().collect();
    let (full_res, full_secs) = timed(|| -> Result<u64> {
        let mut rows = 0;
        for &id in &ids {
            rows += cube.node_query(id)?.len() as u64;
        }
        Ok(rows)
    });
    let full_rows = full_res?;
    let (ice_res, ice_secs) = timed(|| -> Result<u64> {
        let mut rows = 0;
        for &id in &ids {
            rows += cube.iceberg_count_query(id, min_count, 2)?.len() as u64;
        }
        Ok(rows)
    });
    let ice_rows = ice_res?;

    let rows = vec![
        vec![
            "full node queries".to_string(),
            ids.len().to_string(),
            full_rows.to_string(),
            fmt_secs(full_secs),
            fmt_secs(full_secs / ids.len() as f64),
        ],
        vec![
            format!("count-iceberg (> {min_count})"),
            ids.len().to_string(),
            ice_rows.to_string(),
            fmt_secs(ice_secs),
            fmt_secs(ice_secs / ids.len() as f64),
        ],
    ];
    print_table(
        "Count-iceberg queries over a CURE cube (all 168 APB-1 nodes)",
        &["workload", "queries", "rows returned", "total", "avg/query"],
        &rows,
    );
    println!("  speedup: {:.1}× (TTs skipped without being read)", full_secs / ice_secs.max(1e-9));

    let result = FigureResult {
        id: "iceberg".into(),
        title: "Count-iceberg vs. full node queries (CURE, APB-1 density 4)".into(),
        x_axis: "workload".into(),
        y_axis: "seconds total (168 node queries)".into(),
        scale,
        series: vec![Series {
            label: "CURE".into(),
            x: vec![serde_json::json!("full"), serde_json::json!("iceberg")],
            y: vec![full_secs, ice_secs],
        }],
    };
    write_result(&result);
    Ok(vec![result])
}
