//! Figures 23 & 24: hierarchical cube construction on APB-1 — time and
//! storage for CURE, CURE+, CURE_DR, CURE_DR+ at densities 0.4, 4 and 40.
//!
//! This is the paper's headline experiment: at density 40 the original
//! fact table (496 M tuples, 12 GB) exceeded memory by 24×, and CURE was
//! the first ROLAP method to finish. The reproduction scales tuple counts
//! down (divisor `CURE_SCALE`) while keeping the 168-node lattice, the
//! low base-level cardinalities that defeat naive partitioning, and a
//! memory budget that forces the out-of-core driver at the two higher
//! densities — so the same code paths run as in the paper.

use cure_core::{CubeConfig, Result, Tuples};
use cure_data::apb::apb1_dense;

use crate::{
    build_cure_variant, experiment_catalog, fmt_bytes, fmt_secs, print_table, write_result,
    CureVariant, FigureResult, Series,
};

/// Run Figures 23 and 24.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let densities = [0.4, 4.0, 40.0];
    let variants = CureVariant::all();
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let mut bytes: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    let mut tuple_counts = Vec::new();
    let mut rows = Vec::new();
    for &density in &densities {
        let ds = apb1_dense(density, scale, 0xAB1);
        let n = ds.tuples.len();
        tuple_counts.push(n as u64);
        let catalog = experiment_catalog(&format!("apb_{}", (density * 10.0) as u32))?;
        ds.store(&catalog, "facts")?;
        // Budget: enough for the lowest density in memory, forcing
        // partitioning at densities 4 and 40 (paper: 256 MB vs 12 GB). The
        // floor of |R_max|/12 keeps level-0 partitioning feasible for the
        // density-preserving (cardinality-shrunk) hierarchy, whose |N|
        // estimate is |R|·|A1|/|A0| ≈ 7 % of |R|.
        let tuple_bytes = Tuples::tuple_bytes(4, 2);
        let low_density_rows = cure_data::apb::tuples_for_density(0.4) / scale;
        let max_density_rows = cure_data::apb::tuples_for_density(40.0) / scale;
        let budget = (low_density_rows as usize * tuple_bytes * 2)
            .max(max_density_rows as usize * tuple_bytes / 12)
            .max(1 << 20);
        let cfg = CubeConfig { memory_budget_bytes: budget, ..CubeConfig::default() };
        println!(
            "density {density}: {n} tuples ({}), budget {}",
            fmt_bytes((n * tuple_bytes) as u64),
            fmt_bytes(budget as u64)
        );
        for (vi, v) in variants.iter().enumerate() {
            let prefix = format!("d{}_{}_", (density * 10.0) as u32, vi);
            let (report, secs) =
                build_cure_variant(&catalog, &ds.schema, "facts", &prefix, *v, &cfg)?;
            times[vi].push(secs);
            bytes[vi].push(report.stats.total_bytes() as f64);
            rows.push(vec![
                format!("{density}"),
                v.name().to_string(),
                n.to_string(),
                fmt_secs(secs),
                fmt_bytes(report.stats.total_bytes()),
                report
                    .partition
                    .as_ref()
                    .map(|p| format!("L={} ({} parts)", p.choice.level, p.choice.num_partitions))
                    .unwrap_or_else(|| "in-memory".into()),
            ]);
        }
    }
    print_table(
        "Figures 23/24 — APB-1 construction time and storage",
        &["density", "method", "tuples", "time", "cube size", "partitioning"],
        &rows,
    );
    let x: Vec<serde_json::Value> = tuple_counts.iter().map(|&n| serde_json::json!(n)).collect();
    let mk = |id: &str, title: &str, y_axis: &str, data: &[Vec<f64>]| FigureResult {
        id: id.into(),
        title: title.into(),
        x_axis: "tuples in the fact table".into(),
        y_axis: y_axis.into(),
        scale,
        series: variants
            .iter()
            .zip(data)
            .map(|(v, ys)| Series { label: v.name().to_string(), x: x.clone(), y: ys.clone() })
            .collect(),
    };
    let f23 = mk("fig23", "APB-1 construction time", "seconds", &times);
    let f24 = mk("fig24", "APB-1 storage space", "bytes", &bytes);
    write_result(&f23);
    write_result(&f24);
    Ok(vec![f23, f24])
}
