//! Recovery overhead: what crash-safety costs and what resume saves.
//!
//! Three measurements over the same partitioned workload:
//!
//! 1. **plain** — the seed `build_cure_cube` driver (no journal, no
//!    per-partition fsyncs): the baseline build time;
//! 2. **durable** — `build_cure_cube_durable`, fault-free: the journaling
//!    + checkpoint-fsync overhead relative to the baseline;
//! 3. **resume@f** — a simulated process death at a fraction *f* of the
//!    durable build's writes (sticky injected I/O error), followed by a
//!    `resume` run: the recovery cost, which should shrink as the crash
//!    point moves later because journaled-complete partition passes are
//!    skipped rather than re-run.

use std::sync::Arc;

use cure_core::cube::CubeConfig;
use cure_core::partition::build_cure_cube;
use cure_core::sink::DiskSink;
use cure_core::{build_cure_cube_durable, DurableOptions, Result};
use cure_data::synthetic::{hierarchical, HierSpec};
use cure_storage::io::{FaultInjector, FaultKind, IoPolicy};
use cure_storage::Catalog;

use crate::{print_table, timed, write_result, FigureResult, Series};

fn workload(scale: u64) -> cure_data::Dataset {
    let specs = vec![
        HierSpec { name: "P".into(), level_cards: vec![200, 20, 2] },
        HierSpec { name: "S".into(), level_cards: vec![50, 5] },
        HierSpec { name: "T".into(), level_cards: vec![20] },
    ];
    hierarchical(&specs, (120_000 / scale).max(2_000) as usize, 0.6, 2, 11, "recovery")
}

fn cfg() -> CubeConfig {
    // Small budget so the build partitions and checkpoints several times.
    CubeConfig { memory_budget_bytes: 512 << 10, ..CubeConfig::default() }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cure_bench_recovery_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_build(catalog: &Catalog, ds: &cure_data::Dataset, resume: bool) -> Result<f64> {
    let mut sink = DiskSink::new(catalog, "cube_", &ds.schema, false, false, None)?;
    let (res, secs) = timed(|| {
        build_cure_cube_durable(
            catalog,
            "facts",
            &ds.schema,
            &cfg(),
            &mut sink,
            "cube_tmp_",
            &DurableOptions { resume, threads: 1 },
        )
    });
    res?;
    Ok(secs)
}

/// Run the recovery-overhead experiment.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let ds = workload(scale);
    let mut labels: Vec<serde_json::Value> = Vec::new();
    let mut secs: Vec<f64> = Vec::new();
    let mut ratio: Vec<f64> = Vec::new();
    let mut rows = Vec::new();
    let mut push = |rows: &mut Vec<Vec<String>>, label: &str, s: f64, base: f64| {
        labels.push(serde_json::Value::from(label));
        secs.push(s);
        ratio.push(if base > 0.0 { s / base } else { 0.0 });
        rows.push(vec![label.to_string(), format!("{s:.3}"), format!("{:.2}x", s / base)]);
    };

    // 1. Plain driver: the seed baseline.
    let plain_dir = fresh_dir("plain");
    let plain_catalog = Catalog::open(&plain_dir)?;
    ds.store(&plain_catalog, "facts")?;
    let plain_secs = {
        let mut sink = DiskSink::new(&plain_catalog, "cube_", &ds.schema, false, false, None)?;
        let (res, secs) = timed(|| {
            build_cure_cube(&plain_catalog, "facts", &ds.schema, &cfg(), &mut sink, "cube_tmp_")
        });
        res?;
        secs
    };
    push(&mut rows, "plain", plain_secs, plain_secs);

    // 2. Durable driver, fault-free — and count its writes for the crash
    //    points below.
    let durable_dir = fresh_dir("durable");
    {
        let plain = Catalog::open(&durable_dir)?;
        ds.store(&plain, "facts")?;
    }
    let counter = Arc::new(FaultInjector::counting());
    let counted = Catalog::open_with_policy(&durable_dir, counter.clone() as Arc<dyn IoPolicy>)?;
    let durable_secs = durable_build(&counted, &ds, false)?;
    let writes = counter.writes();
    push(&mut rows, "durable", durable_secs, plain_secs);

    // 3. Crash at 25% / 50% / 75% of the build's writes, then resume.
    for frac in [0.25f64, 0.50, 0.75] {
        let k = (writes as f64 * frac) as u64;
        let dir = fresh_dir(&format!("crash{}", (frac * 100.0) as u32));
        {
            let plain = Catalog::open(&dir)?;
            ds.store(&plain, "facts")?;
        }
        let inj = Arc::new(FaultInjector::fail_nth_write(k, FaultKind::Error).sticky());
        let faulty = Catalog::open_with_policy(&dir, inj as Arc<dyn IoPolicy>)?;
        if durable_build(&faulty, &ds, false).is_ok() {
            return Err(cure_core::CubeError::Config(
                "injected crash did not abort the build".into(),
            ));
        }
        let recovered = Catalog::open(&dir)?;
        let resume_secs = durable_build(&recovered, &ds, true)?;
        push(&mut rows, &format!("resume@{:.0}%", frac * 100.0), resume_secs, plain_secs);
    }

    print_table(
        "Recovery — durable-build overhead and resume cost vs the plain driver",
        &["run", "seconds", "vs plain"],
        &rows,
    );
    println!(
        "  ({} tuples, {} build writes; resume cost falls as the crash point moves later)",
        ds.tuples.len(),
        writes
    );

    let result = FigureResult {
        id: "recovery".into(),
        title: "Crash-safe build: journaling overhead and resume-from-checkpoint cost".into(),
        x_axis: "run (plain, durable fault-free, resume after crash at f% of writes)".into(),
        y_axis: "wall seconds".into(),
        scale,
        series: vec![
            Series { label: "build seconds".into(), x: labels.clone(), y: secs },
            Series { label: "overhead vs plain (x)".into(), x: labels, y: ratio },
        ],
    };
    write_result(&result);
    Ok(vec![result])
}
