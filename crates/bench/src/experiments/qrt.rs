//! Figure 25: average query response time on APB-1 (density 4) as a
//! function of result size.
//!
//! The paper runs all 168 node queries, orders them by the number of
//! tuples they return, splits them into ten equal sets, and reports each
//! set's average response time per CURE variant. Small-result queries
//! (the ones analysts actually read) answer in well under a second;
//! huge-result queries are dominated by output volume.

use cure_core::{CubeConfig, NodeCoder, Result, Tuples};
use cure_data::apb::apb1_dense;
use cure_query::workload::bucket_by_result_size;
use cure_query::CureCube;

use crate::{
    build_cure_variant, experiment_catalog, fmt_secs, print_table, timed, write_result,
    CureVariant, FigureResult, Series,
};

/// Run Figure 25.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let ds = apb1_dense(4.0, scale, 0xF25);
    println!("APB-1 density 4 (scaled): {} tuples, 168 node queries", ds.tuples.len());
    let catalog = experiment_catalog("qrt")?;
    ds.store(&catalog, "facts")?;
    let tuple_bytes = Tuples::tuple_bytes(4, 2);
    let budget = (ds.tuples.len() * tuple_bytes / 4).max(1 << 20);
    let cfg = CubeConfig { memory_budget_bytes: budget, ..CubeConfig::default() };

    let coder = NodeCoder::new(&ds.schema);
    let variants = CureVariant::all();
    let mut cubes = Vec::new();
    for (vi, v) in variants.iter().enumerate() {
        let prefix = format!("q{vi}_");
        build_cure_variant(&catalog, &ds.schema, "facts", &prefix, *v, &cfg)?;
        cubes.push(prefix);
    }

    // Result sizes (same for every variant): answer each node once.
    let mut first = CureCube::open(&catalog, &ds.schema, &cubes[0])?;
    let sized: Vec<(u64, u64)> = coder
        .all_ids()
        .map(|id| Ok((id, first.node_query(id)?.len() as u64)))
        .collect::<Result<_>>()?;
    let buckets = bucket_by_result_size(sized, 10);

    let mut series = Vec::new();
    let mut rows = Vec::new();
    let xs: Vec<serde_json::Value> = buckets
        .iter()
        .map(|b| serde_json::json!(b.iter().map(|&(_, s)| s).max().unwrap_or(0)))
        .collect();
    for (vi, v) in variants.iter().enumerate() {
        let mut cube = CureCube::open(&catalog, &ds.schema, &cubes[vi])?;
        let mut ys = Vec::new();
        for bucket in &buckets {
            let (res, secs) = timed(|| -> Result<()> {
                for &(id, _) in bucket {
                    let _ = cube.node_query(id)?;
                }
                Ok(())
            });
            res?;
            ys.push(secs / bucket.len().max(1) as f64);
        }
        for (bi, bucket) in buckets.iter().enumerate() {
            rows.push(vec![
                v.name().to_string(),
                format!("≤{}", bucket.iter().map(|&(_, s)| s).max().unwrap_or(0)),
                bucket.len().to_string(),
                fmt_secs(ys[bi]),
            ]);
        }
        series.push(Series { label: v.name().to_string(), x: xs.clone(), y: ys });
    }
    print_table(
        "Figure 25 — average QRT vs. maximum result size (APB-1 density 4)",
        &["method", "max result", "queries", "avg QRT"],
        &rows,
    );
    let result = FigureResult {
        id: "fig25".into(),
        title: "Average QRT vs. result size (APB-1 density 4)".into(),
        x_axis: "maximum tuples in result (bucket)".into(),
        y_axis: "seconds/query".into(),
        scale,
        series,
    };
    write_result(&result);
    Ok(vec![result])
}
