//! Figure 17: effect of fact-table caching on average query response time.
//!
//! CURE's NT/TT references all resolve against two relations — the
//! original fact table and `AGGREGATES` — so caching them is uniquely
//! effective (§5.3: "in other ROLAP methods there is no simple rule to
//! indicate which relations to cache"). The sweep varies the fraction of
//! the fact table held in the LRU page cache from 0 to 1 and reports the
//! average node-query time for CURE and CURE+ on both real-dataset
//! surrogates; BUC is shown as the (cache-independent) reference line.

use cure_core::{CubeConfig, NodeCoder, Result};
use cure_data::surrogates::{covtype_like, sep85l_like};
use cure_query::workload::random_nodes;
use cure_query::{BucCube, CureCube};

use crate::{
    avg_query_secs, build_buc_disk, build_cure_variant_in_memory, experiment_catalog, fmt_secs,
    print_table, timed, write_result, CureVariant, FigureResult, Series,
};

/// Run Figure 17.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    let queries: usize =
        std::env::var("CURE_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(150);
    let mut series = Vec::new();
    let mut rows = Vec::new();
    for ds in [covtype_like(scale as usize), sep85l_like(scale as usize)] {
        let catalog = experiment_catalog("cache")?;
        ds.store(&catalog, "facts")?;
        let coder = NodeCoder::new(&ds.schema);
        let workload = random_nodes(&coder, queries, 0xF17);
        let cards: Vec<u32> = ds.schema.dims().iter().map(|d| d.leaf_cardinality()).collect();

        // BUC reference line (no row-id indirection → cache-independent).
        build_buc_disk(&catalog, &cards, &ds.tuples, "buc_")?;
        let buc = BucCube::open(&catalog, "buc_", ds.schema.num_measures());
        let flat_workload: Vec<u64> = workload
            .iter()
            .map(|&id| {
                let levels = coder.decode(id).expect("in range");
                cure_query::rollup::flat_node_for(&coder, &levels)
            })
            .collect();
        let (res, secs) = timed(|| -> Result<()> {
            for &n in &flat_workload {
                let _ = buc.node_query(n)?;
            }
            Ok(())
        });
        res?;
        let buc_qrt = secs / flat_workload.len() as f64;
        series.push(Series {
            label: format!("{}: BUC", ds.name),
            x: fractions.iter().map(|f| serde_json::json!(f)).collect(),
            y: vec![buc_qrt; fractions.len()],
        });

        for v in [CureVariant::Cure, CureVariant::CurePlus] {
            let prefix = if v == CureVariant::Cure { "cure_" } else { "curep_" };
            build_cure_variant_in_memory(
                &catalog,
                &ds.schema,
                &ds.tuples,
                "facts",
                prefix,
                v,
                &CubeConfig::default(),
            )?;
            let mut cube = CureCube::open(&catalog, &ds.schema, prefix)?;
            let total_pages = cube.fact_pages() as f64;
            let mut ys = Vec::new();
            for &f in &fractions {
                cube.set_fact_cache_pages((total_pages * f) as usize);
                // Warm pass (the paper measures steady-state behaviour),
                // then the measured pass.
                avg_query_secs(&mut cube, &workload)?;
                let avg = avg_query_secs(&mut cube, &workload)?;
                ys.push(avg);
                rows.push(vec![
                    ds.name.clone(),
                    v.name().to_string(),
                    format!("{f:.2}"),
                    fmt_secs(avg),
                    format!("{:.1}%", cube.fact_cache().hit_rate() * 100.0),
                ]);
                cube.reset_stats();
            }
            series.push(Series {
                label: format!("{}: {}", ds.name, v.name()),
                x: fractions.iter().map(|f| serde_json::json!(f)).collect(),
                y: ys,
            });
        }
    }
    print_table(
        "Figure 17 — fact-table cache fraction vs. average QRT",
        &["dataset", "method", "cache fraction", "avg QRT", "hit rate"],
        &rows,
    );
    let result = FigureResult {
        id: "fig17".into(),
        title: "Effect of caching on average QRT".into(),
        x_axis: "fraction of the fact table cached".into(),
        y_axis: "seconds/query".into(),
        scale,
        series,
    };
    write_result(&result);
    Ok(vec![result])
}
