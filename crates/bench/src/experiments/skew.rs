//! Figures 21 & 22: Zipf skew vs. construction time and storage.
//!
//! D = 8, T = 500,000 (scaled), Cᵢ = T/i, Z swept 0 → 2. The paper's
//! reading: low skew → sparse cube → many TTs → small condensed cubes;
//! moderate skew → dense areas appear → sizes grow; extreme skew → the
//! whole cube collapses onto few distinct tuples → sizes shrink again,
//! and BUC's output cost drops so much it gets *faster*. CountingSort
//! keeps BUC-family construction robust across the sweep (ablated in the
//! `sort` Criterion bench).

use cure_core::{CubeConfig, Result};
use cure_data::synthetic::{flat, FlatSpec};

use crate::{
    build_bubst_disk, build_buc_disk, build_cure_variant_in_memory, experiment_catalog, fmt_bytes,
    fmt_secs, print_table, write_result, CureVariant, FigureResult, Series,
};

/// Run Figures 21 and 22.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let t = (500_000 / scale as usize).max(1_000);
    let zs = [0.0, 0.4, 0.8, 1.2, 1.6, 2.0];
    let d = 8usize;
    println!("D = {d}, T = {t}, Z ∈ {zs:?}");
    let methods = ["BUC", "BU-BST", "CURE", "CURE+"];
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let mut bytes: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    let mut rows = Vec::new();
    for &z in &zs {
        let ds = flat(&FlatSpec { dims: d, tuples: t, zipf: z, measures: 1, seed: 0x5CE4 });
        let catalog = experiment_catalog(&format!("skew_{}", (z * 10.0) as u32))?;
        ds.store(&catalog, "facts")?;
        let cards: Vec<u32> = ds.schema.dims().iter().map(|x| x.leaf_cardinality()).collect();

        let (buc_stats, buc_secs) = build_buc_disk(&catalog, &cards, &ds.tuples, "buc_")?;
        times[0].push(buc_secs);
        bytes[0].push(buc_stats.bytes as f64);
        let (bb_stats, bb_secs) = build_bubst_disk(&catalog, &cards, &ds.tuples, "bb_")?;
        times[1].push(bb_secs);
        bytes[1].push(bb_stats.bytes as f64);
        for (mi, v) in [(2usize, CureVariant::Cure), (3, CureVariant::CurePlus)] {
            let prefix = if v == CureVariant::Cure { "cure_" } else { "curep_" };
            let (report, secs) = build_cure_variant_in_memory(
                &catalog,
                &ds.schema,
                &ds.tuples,
                "facts",
                prefix,
                v,
                &CubeConfig::default(),
            )?;
            times[mi].push(secs);
            bytes[mi].push(report.stats.total_bytes() as f64);
        }
        rows.push(vec![
            format!("{z:.1}"),
            fmt_secs(times[0].last().copied().unwrap()),
            fmt_secs(times[1].last().copied().unwrap()),
            fmt_secs(times[2].last().copied().unwrap()),
            fmt_secs(times[3].last().copied().unwrap()),
            fmt_bytes(*bytes[0].last().unwrap() as u64),
            fmt_bytes(*bytes[1].last().unwrap() as u64),
            fmt_bytes(*bytes[2].last().unwrap() as u64),
            fmt_bytes(*bytes[3].last().unwrap() as u64),
        ]);
    }
    print_table(
        "Figures 21/22 — skew vs. construction time and storage",
        &[
            "Z",
            "BUC t",
            "BU-BST t",
            "CURE t",
            "CURE+ t",
            "BUC sz",
            "BU-BST sz",
            "CURE sz",
            "CURE+ sz",
        ],
        &rows,
    );
    let x: Vec<serde_json::Value> = zs.iter().map(|&z| serde_json::json!(z)).collect();
    let mk = |id: &str, title: &str, y_axis: &str, data: &[Vec<f64>]| FigureResult {
        id: id.into(),
        title: title.into(),
        x_axis: "zipf factor Z".into(),
        y_axis: y_axis.into(),
        scale,
        series: methods
            .iter()
            .zip(data)
            .map(|(m, ys)| Series { label: m.to_string(), x: x.clone(), y: ys.clone() })
            .collect(),
    };
    let f21 = mk("fig21", "Skew vs. construction time", "seconds", &times);
    let f22 = mk("fig22", "Skew vs. storage space", "bytes", &bytes);
    write_result(&f21);
    write_result(&f22);
    Ok(vec![f21, f22])
}
