//! Table 1: CURE's partitioning efficiency on the SALES example.
//!
//! The paper's §4 example: fact table SALES with dimension Product
//! organized as barcode → brand → economic_strength with cardinalities
//! 10,000 → 1,000 → 10, memory |M| = 1 GB. For |R| ∈ {10 GB, 100 GB,
//! 1 TB} the selected level L, number of partitions, partition size,
//! reduction factor |A0|/|A_{L+1}| and |N| must match Table 1. This is an
//! analytic reproduction: the level-selection logic runs for real, no data
//! is materialized.

use cure_core::partition::select_partition_level;
use cure_core::{CubeSchema, Result};
use cure_data::synthetic::block_hierarchy;

use crate::{print_table, write_result, FigureResult, Series};

/// The §4 SALES schema.
pub fn sales_schema() -> CubeSchema {
    let product = block_hierarchy("Product", &[10_000, 1_000, 10]);
    let store = block_hierarchy("Store", &[500]);
    CubeSchema::new(vec![product, store], 1).expect("static schema")
}

/// Run Table 1.
pub fn run(_scale: u64) -> Result<Vec<FigureResult>> {
    let schema = sales_schema();
    let gb: u64 = 1_000_000_000;
    let budget = gb as usize; // |M| = 1 GB
    let cases: [(&str, u64); 3] = [("10 GB", 10 * gb), ("100 GB", 100 * gb), ("1 TB", 1000 * gb)];

    let mut rows = Vec::new();
    let mut levels = Vec::new();
    let mut parts = Vec::new();
    for (label, r_bytes) in cases {
        // Nominal 1-byte tuples: |R| in bytes == row count.
        let c = select_partition_level(&schema, r_bytes, 1, budget)?;
        let dim0 = &schema.dims()[0];
        let card_l1 =
            if c.level == dim0.top_level() { 1 } else { dim0.cardinality(c.level + 1) as u64 };
        let reduction = dim0.leaf_cardinality() as u64 / card_l1;
        rows.push(vec![
            label.to_string(),
            c.level.to_string(),
            c.num_partitions.to_string(),
            crate::fmt_bytes(c.est_partition_bytes),
            reduction.to_string(),
            crate::fmt_bytes(c.est_n_bytes),
        ]);
        levels.push(c.level as f64);
        parts.push(c.num_partitions as f64);
    }
    print_table(
        "Table 1 — CURE's partitioning efficiency (|M| = 1 GB, Product 10,000 → 1,000 → 10)",
        &["|R|", "L", "# partitions", "partition size", "|A0|/|A(L+1)|", "|N|"],
        &rows,
    );
    println!("  (paper: L = 2/1/1, partitions = 10/100/1000, |N| = 1MB/100MB/1GB)");

    let result = FigureResult {
        id: "table1".into(),
        title: "Partitioning efficiency (SALES example)".into(),
        x_axis: "|R|".into(),
        y_axis: "selected level L / number of partitions".into(),
        scale: 1,
        series: vec![
            Series {
                label: "L".into(),
                x: cases.iter().map(|(l, _)| serde_json::json!(l)).collect(),
                y: levels,
            },
            Series {
                label: "partitions".into(),
                x: cases.iter().map(|(l, _)| serde_json::json!(l)).collect(),
                y: parts,
            },
        ],
    };
    write_result(&result);
    Ok(vec![result])
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_matches_paper() {
        let results = super::run(1).unwrap();
        assert_eq!(results[0].series[0].y, vec![2.0, 1.0, 1.0]); // L
        assert_eq!(results[0].series[1].y, vec![10.0, 100.0, 1000.0]); // partitions
    }
}
