//! Design-choice ablations called out in DESIGN.md.
//!
//! 1. **CAT format** (§5.1): force format (a), format (b) and the
//!    as-NT fallback on workloads whose CAT population is dominated by
//!    common-source vs. coincidental CATs, and check the dynamic
//!    criterion's choice against the measured best.
//! 2. **Execution plan** (§3.1): CURE's single pipelined P3 traversal vs.
//!    the strawman the paper dismisses — running an independent cubing
//!    pass per combination of hierarchy levels ("several times, once for
//!    every possible combination").

use cure_core::cube::{CubeBuilder, CubeConfig};
use cure_core::{CatFormat, CatFormatPolicy, CubeSchema, Dimension, MemSink, Result, Tuples};
use cure_data::apb::apb1;

use crate::{fmt_bytes, fmt_secs, print_table, timed, write_result, FigureResult, Series};

/// CAT-format ablation.
pub fn run_cat_formats(scale: u64) -> Result<Vec<FigureResult>> {
    // Workload A: few measures repeated across many nodes from the same
    // source set → common-source CATs prevail.
    // Workload B: single-valued measure domain → coincidental CATs prevail.
    let common_source = {
        let ds = apb1(0.4, scale * 4, 0xCA7);
        (ds.schema, ds.tuples, "APB-1 (common-source heavy)")
    };
    let coincidental = {
        // Tiny measure domain (0/1) over a flat schema: equal aggregates by
        // coincidence everywhere.
        let schema = CubeSchema::new(
            vec![Dimension::flat("A", 50), Dimension::flat("B", 40), Dimension::flat("C", 30)],
            2,
        )?;
        let mut t = Tuples::new(3, 2);
        let mut x = 0xC01u64;
        for i in 0..20_000usize {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t.push_fact(
                &[(x % 50) as u32, ((x >> 8) % 40) as u32, ((x >> 16) % 30) as u32],
                &[(x % 2) as i64, ((x >> 3) % 2) as i64],
                i as u64,
            );
        }
        (schema, t, "flat, binary measures (coincidental heavy)")
    };

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (schema, tuples, label) in [common_source, coincidental] {
        let mut sizes = Vec::new();
        let policies = [
            ("auto", CatFormatPolicy::Auto),
            ("force (a)", CatFormatPolicy::Force(CatFormat::CommonSource)),
            ("force (b)", CatFormatPolicy::Force(CatFormat::Coincidental)),
            ("as NT", CatFormatPolicy::Force(CatFormat::AsNt)),
        ];
        for (name, policy) in policies {
            let cfg = CubeConfig { cat_policy: policy, ..CubeConfig::default() };
            let mut sink = MemSink::new(schema.num_measures());
            let report = CubeBuilder::new(&schema, cfg).build_in_memory(&tuples, &mut sink)?;
            sizes.push((name, report.stats.total_bytes(), report.stats.cat_format));
        }
        let auto_bytes = sizes[0].1;
        let best_forced = sizes[1..].iter().map(|&(_, b, _)| b).min().expect("three forced runs");
        for (name, bytes, fmt) in &sizes {
            rows.push(vec![
                label.to_string(),
                name.to_string(),
                fmt_bytes(*bytes),
                format!("{fmt:?}"),
            ]);
        }
        rows.push(vec![
            label.to_string(),
            "auto vs best".to_string(),
            format!("{:+.1}%", (auto_bytes as f64 / best_forced as f64 - 1.0) * 100.0),
            String::new(),
        ]);
        series.push(Series {
            label: label.to_string(),
            x: sizes.iter().map(|(n, _, _)| serde_json::json!(n)).collect(),
            y: sizes.iter().map(|&(_, b, _)| b as f64).collect(),
        });
    }
    print_table(
        "Ablation — CAT storage format (§5.1 criterion)",
        &["workload", "policy", "cube size", "format used"],
        &rows,
    );
    let result = FigureResult {
        id: "ablation_cat_format".into(),
        title: "CAT storage format ablation".into(),
        x_axis: "format policy".into(),
        y_axis: "cube bytes".into(),
        scale,
        series,
    };
    write_result(&result);
    Ok(vec![result])
}

/// Execution-plan ablation: P3 vs. independent per-level-combination runs.
pub fn run_plan(scale: u64) -> Result<Vec<FigureResult>> {
    let ds = apb1(0.4, scale * 2, 0xB3);
    let schema = &ds.schema;
    println!("APB-1 density 0.4 (scaled ×2): {} tuples", ds.tuples.len());

    // CURE: one pipelined P3 traversal computes all 168 nodes.
    let (res, p3_secs) = timed(|| -> Result<u64> {
        let mut sink = MemSink::new(schema.num_measures());
        let report = CubeBuilder::new(schema, CubeConfig::default())
            .build_in_memory(&ds.tuples, &mut sink)?;
        Ok(report.stats.total_tuples())
    });
    let p3_tuples = res?;

    // Strawman (§3.1): run an independent flat cubing pass for every
    // combination of hierarchy levels — (L1+1)(L2+1)… / covering the same
    // 168 nodes with massive recomputation. Implemented by building the
    // flat cube of each level-combination projection.
    let combos: Vec<Vec<usize>> = {
        let mut out = vec![vec![]];
        for d in schema.dims() {
            let mut next = Vec::new();
            for base in &out {
                for l in 0..d.num_levels() {
                    let mut b = base.clone();
                    b.push(l);
                    next.push(b);
                }
            }
            out = next;
        }
        out
    };
    let (res, indep_secs) = timed(|| -> Result<u64> {
        let mut total = 0u64;
        for combo in &combos {
            // Project the fact table to this level combination.
            let dims: Vec<Dimension> = schema
                .dims()
                .iter()
                .zip(combo)
                .map(|(d, &l)| Dimension::flat(d.name().to_string(), d.cardinality(l)))
                .collect();
            let flat = CubeSchema::new(dims, schema.num_measures())?;
            let mut t =
                Tuples::with_capacity(schema.num_dims(), schema.num_measures(), ds.tuples.len());
            let mut proj = vec![0u32; schema.num_dims()];
            for i in 0..ds.tuples.len() {
                for (dd, p) in proj.iter_mut().enumerate() {
                    *p = schema.dims()[dd].value_at(combo[dd], ds.tuples.dim(i, dd));
                }
                t.push_fact(&proj, ds.tuples.aggs_of(i), i as u64);
            }
            let mut sink = MemSink::new(schema.num_measures());
            let report =
                CubeBuilder::new(&flat, CubeConfig::default()).build_in_memory(&t, &mut sink)?;
            total += report.stats.total_tuples();
        }
        Ok(total)
    });
    let indep_tuples = res?;

    let rows = vec![
        vec!["CURE plan P3 (one pass)".into(), fmt_secs(p3_secs), p3_tuples.to_string()],
        vec![
            format!("independent runs ({} level combos)", combos.len()),
            fmt_secs(indep_secs),
            indep_tuples.to_string(),
        ],
    ];
    print_table(
        "Ablation — pipelined plan P3 vs. independent per-combination cubing (§3.1)",
        &["strategy", "construction time", "stored tuples"],
        &rows,
    );
    println!(
        "  P3 speedup: {:.1}× (shared sorts + shared TT pruning)",
        indep_secs / p3_secs.max(1e-9)
    );
    let result = FigureResult {
        id: "ablation_plan".into(),
        title: "Plan P3 vs. independent per-combination cubing".into(),
        x_axis: "strategy".into(),
        y_axis: "seconds".into(),
        scale,
        series: vec![Series {
            label: "construction".into(),
            x: vec![serde_json::json!("P3"), serde_json::json!("independent")],
            y: vec![p3_secs, indep_secs],
        }],
    };
    write_result(&result);
    Ok(vec![result])
}

/// Parallel out-of-core build scaling (extension beyond the paper): the
/// per-partition passes of `build_cure_cube_parallel` across 1–8 worker
/// threads on a partitioned APB-1 build.
pub fn run_parallel(scale: u64) -> Result<Vec<FigureResult>> {
    use cure_core::partition::build_cure_cube_parallel;
    use cure_core::Tuples;

    let ds = apb1(40.0, scale, 0x9A4);
    let catalog = crate::experiment_catalog("parallel")?;
    ds.store(&catalog, "facts")?;
    let tuple_bytes = Tuples::tuple_bytes(4, 2);
    let budget = (ds.tuples.len() * tuple_bytes / 16).max(1 << 20);
    let cfg = CubeConfig { memory_budget_bytes: budget, ..CubeConfig::default() };
    println!(
        "APB-1 density 40 (scaled): {} tuples, budget {}",
        ds.tuples.len(),
        fmt_bytes(budget as u64)
    );

    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut base = 0.0f64;
    let mut first_part = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let mut sink = cure_core::MemSink::new(2);
        let (res, secs) = timed(|| {
            build_cure_cube_parallel(
                &catalog, "facts", &ds.schema, &cfg, &mut sink, "tmp_", threads,
            )
        });
        let report = res?;
        if threads == 1 {
            base = secs;
        }
        let part_secs = report.partition.as_ref().map(|p| p.partition_secs).unwrap_or(0.0);
        rows.push(vec![
            threads.to_string(),
            fmt_secs(secs),
            format!("{:.2}x", base / secs.max(1e-9)),
            fmt_secs(part_secs),
            format!("{:.2}x", (base - first_part) / (secs - part_secs).max(1e-9)),
            report
                .partition
                .as_ref()
                .map(|p| p.choice.num_partitions.to_string())
                .unwrap_or_default(),
        ]);
        if threads == 1 {
            first_part = part_secs;
        }
        xs.push(serde_json::json!(threads));
        ys.push(secs);
    }
    print_table(
        "Extension — parallel partition passes (build_cure_cube_parallel)",
        &[
            "threads",
            "build time",
            "speedup",
            "partition scan (serial)",
            "pass speedup",
            "partitions",
        ],
        &rows,
    );
    println!(
        "  (the single partitioning scan is inherently serial — Amdahl bounds the total; \
         'pass speedup' isolates the parallel per-partition phase)"
    );
    let result = FigureResult {
        id: "ablation_parallel".into(),
        title: "Parallel out-of-core build scaling".into(),
        x_axis: "worker threads".into(),
        y_axis: "seconds".into(),
        scale,
        series: vec![Series { label: "APB-1 density 40".into(), x: xs, y: ys }],
    };
    write_result(&result);
    Ok(vec![result])
}

/// Run all ablations.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let mut out = run_cat_formats(scale)?;
    out.extend(run_plan(scale)?);
    out.extend(run_parallel(scale)?);
    Ok(out)
}
