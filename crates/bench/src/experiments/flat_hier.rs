//! Figures 26–28: flat vs. hierarchical cubes over hierarchical data
//! (APB-1 density 0.4).
//!
//! Building only the leaf-level (flat) cube is cheaper and smaller —
//! Figures 26 and 27 — but answering the roll-up/drill-down queries
//! analysts actually ask then requires on-the-fly re-aggregation, which
//! Figure 28 shows dominating query time. Methods: BUC, BU-BST and
//! FCURE/FCURE+ (all flat), vs. CURE/CURE+ (full hierarchical cube).

use cure_core::{CubeConfig, NodeCoder, Result};
use cure_data::apb::apb1_dense;
use cure_query::rollup::{flat_node_for, rollup};
use cure_query::workload::random_nodes;
use cure_query::{BubstCube, BucCube, CureCube};

use crate::{
    build_bubst_disk, build_buc_disk, build_cure_variant_in_memory, experiment_catalog, fmt_bytes,
    fmt_secs, print_table, timed, write_result, CureVariant, FigureResult, Series,
};

/// Run Figures 26, 27 and 28.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let ds = apb1_dense(0.4, scale, 0xF26);
    println!("APB-1 density 0.4 (scaled): {} tuples", ds.tuples.len());
    let catalog = experiment_catalog("flat_hier")?;
    ds.store(&catalog, "facts")?;
    let schema = &ds.schema;
    let flat_schema = schema.flattened();
    let cards: Vec<u32> = schema.dims().iter().map(|d| d.leaf_cardinality()).collect();
    let hier_coder = NodeCoder::new(schema);
    let flat_coder = NodeCoder::new(&flat_schema);
    let cfg = CubeConfig::default();

    // ---- builds -----------------------------------------------------------
    let (buc_stats, buc_secs) = build_buc_disk(&catalog, &cards, &ds.tuples, "buc_")?;
    let (bb_stats, bb_secs) = build_bubst_disk(&catalog, &cards, &ds.tuples, "bb_")?;
    let (fcure_rep, fcure_secs) = build_cure_variant_in_memory(
        &catalog,
        &flat_schema,
        &ds.tuples,
        "facts",
        "fc_",
        CureVariant::Cure,
        &cfg,
    )?;
    let (fcurep_rep, fcurep_secs) = build_cure_variant_in_memory(
        &catalog,
        &flat_schema,
        &ds.tuples,
        "facts",
        "fcp_",
        CureVariant::CurePlus,
        &cfg,
    )?;
    let (cure_rep, cure_secs) = build_cure_variant_in_memory(
        &catalog,
        schema,
        &ds.tuples,
        "facts",
        "c_",
        CureVariant::Cure,
        &cfg,
    )?;
    let (curep_rep, curep_secs) = build_cure_variant_in_memory(
        &catalog,
        schema,
        &ds.tuples,
        "facts",
        "cp_",
        CureVariant::CurePlus,
        &cfg,
    )?;

    // ---- hierarchical query workload ---------------------------------------
    // Random nodes over the full 168-node lattice; flat formats answer by
    // querying the corresponding leaf node and rolling up.
    let queries = std::env::var("CURE_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(100);
    let workload = random_nodes(&hier_coder, queries, 0xF28);
    let flat_ids: Vec<(u64, u64, Vec<usize>)> = workload
        .iter()
        .map(|&id| {
            let levels = hier_coder.decode(id).expect("in range");
            let mask = flat_node_for(&hier_coder, &levels);
            let flat_levels: Vec<usize> = (0..flat_schema.num_dims())
                .map(|d| if mask & (1 << d) != 0 { 0 } else { flat_coder.all_level(d) })
                .collect();
            (flat_coder.encode(&flat_levels), mask, levels)
        })
        .collect();

    // CURE / CURE+ answer directly.
    let mut qrt = Vec::new();
    for prefix in ["c_", "cp_"] {
        let mut cube = CureCube::open(&catalog, schema, prefix)?;
        let (res, secs) = timed(|| -> Result<()> {
            for &id in &workload {
                let _ = cube.node_query(id)?;
            }
            Ok(())
        });
        res?;
        qrt.push(secs / workload.len() as f64);
    }
    let (cure_qrt, curep_qrt) = (qrt[0], qrt[1]);

    // FCURE / FCURE+ answer the flat node then roll up.
    let mut qrt = Vec::new();
    for prefix in ["fc_", "fcp_"] {
        let mut cube = CureCube::open(&catalog, &flat_schema, prefix)?;
        let (res, secs) = timed(|| -> Result<()> {
            for (flat_id, _, levels) in &flat_ids {
                let leaf_rows = cube.node_query(*flat_id)?;
                let _ = rollup(schema, &hier_coder, levels, &leaf_rows);
            }
            Ok(())
        });
        res?;
        qrt.push(secs / workload.len() as f64);
    }
    let (fcure_qrt, fcurep_qrt) = (qrt[0], qrt[1]);

    // BUC: per-node relation scan + rollup.
    let buc = BucCube::open(&catalog, "buc_", schema.num_measures());
    let (res, secs) = timed(|| -> Result<()> {
        for (_, mask, levels) in &flat_ids {
            let leaf_rows = buc.node_query(*mask)?;
            let _ = rollup(schema, &hier_coder, levels, &leaf_rows);
        }
        Ok(())
    });
    res?;
    let buc_qrt = secs / workload.len() as f64;

    // BU-BST: monolithic scan + rollup (subsampled — it is slow by design).
    let bb = BubstCube::open(&catalog, "bb_", "facts", schema.num_dims(), schema.num_measures())?;
    let bb_sample = (queries / 10).max(5).min(flat_ids.len());
    let (res, secs) = timed(|| -> Result<()> {
        for (_, mask, levels) in flat_ids.iter().take(bb_sample) {
            let leaf_rows = bb.node_query(*mask)?;
            let _ = rollup(schema, &hier_coder, levels, &leaf_rows);
        }
        Ok(())
    });
    res?;
    let bb_qrt = secs / bb_sample as f64;

    // ---- report -------------------------------------------------------------
    let methods = ["BUC", "BU-BST", "FCURE", "FCURE+", "CURE", "CURE+"];
    let build = [buc_secs, bb_secs, fcure_secs, fcurep_secs, cure_secs, curep_secs];
    let sizes = [
        buc_stats.bytes as f64,
        bb_stats.bytes as f64,
        fcure_rep.stats.total_bytes() as f64,
        fcurep_rep.stats.total_bytes() as f64,
        cure_rep.stats.total_bytes() as f64,
        curep_rep.stats.total_bytes() as f64,
    ];
    let qrts = [buc_qrt, bb_qrt, fcure_qrt, fcurep_qrt, cure_qrt, curep_qrt];
    let rows: Vec<Vec<String>> = methods
        .iter()
        .enumerate()
        .map(|(i, m)| {
            vec![m.to_string(), fmt_secs(build[i]), fmt_bytes(sizes[i] as u64), fmt_secs(qrts[i])]
        })
        .collect();
    print_table(
        "Figures 26/27/28 — flat vs. hierarchical cube (APB-1 density 0.4)",
        &["method", "construction", "storage", "avg hierarchical QRT"],
        &rows,
    );

    let x: Vec<serde_json::Value> = methods.iter().map(|m| serde_json::json!(m)).collect();
    let mk = |id: &str, title: &str, y_axis: &str, ys: &[f64]| FigureResult {
        id: id.into(),
        title: title.into(),
        x_axis: "method".into(),
        y_axis: y_axis.into(),
        scale,
        series: vec![Series { label: "APB 0.4".into(), x: x.clone(), y: ys.to_vec() }],
    };
    let f26 = mk("fig26", "Flat vs. hierarchical — construction time", "seconds", &build);
    let f27 = mk("fig27", "Flat vs. hierarchical — storage space", "bytes", &sizes);
    let f28 = mk("fig28", "Flat vs. hierarchical — average QRT", "seconds/query", &qrts);
    write_result(&f26);
    write_result(&f27);
    write_result(&f28);
    Ok(vec![f26, f27, f28])
}
