//! The experiments of the paper's evaluation (§7), one module per
//! table/figure group. Each exposes `run(scale) -> Result<Vec<FigureResult>>`
//! so the per-figure binaries and `run_all` share the same code.

pub mod ablations;
pub mod apb;
pub mod build_scaling;
pub mod cache;
pub mod dims;
pub mod flat_hier;
pub mod iceberg;
pub mod pool;
pub mod qrt;
pub mod real;
pub mod recovery;
pub mod serve;
pub mod skew;
pub mod table1;
