//! Figures 14–16: flat cubes over the "real" datasets (CovType, Sep85L
//! surrogates) — construction time, storage space, and average query
//! response time for BUC, BU-BST, CURE and CURE+.

use cure_core::{CubeConfig, NodeCoder, Result, Tuples};
use cure_data::surrogates::{covtype_like, sep85l_like};
use cure_data::Dataset;
use cure_query::workload::random_nodes;
use cure_query::{BubstCube, BucCube, CureCube};

use crate::{
    avg_query_secs, build_bubst_disk, build_buc_disk, build_cure_variant_in_memory,
    experiment_catalog, fmt_bytes, fmt_secs, print_table, timed, write_result, CureVariant,
    FigureResult, Series,
};

/// Number of random node queries per dataset/method (the paper used 1,000;
/// scale down with the same divisor logic for quick runs — overridable via
/// `CURE_QUERIES`).
fn workload_size() -> usize {
    std::env::var("CURE_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(200)
}

struct MethodResult {
    build_secs: f64,
    bytes: u64,
    avg_qrt: f64,
}

fn run_dataset(ds: &Dataset, tag: &str) -> Result<Vec<MethodResult>> {
    let catalog = experiment_catalog(&format!("real_{tag}"))?;
    ds.store(&catalog, "facts")?;
    let schema = &ds.schema;
    let cards: Vec<u32> = schema.dims().iter().map(|d| d.leaf_cardinality()).collect();
    let coder = NodeCoder::new(schema);
    let queries = workload_size();
    let workload = random_nodes(&coder, queries, 0xF16);
    // Flat node ids (bitmask) for the baseline readers.
    let flat_workload: Vec<u64> = workload
        .iter()
        .map(|&id| {
            let levels = coder.decode(id).expect("in range");
            cure_query::rollup::flat_node_for(&coder, &levels)
        })
        .collect();
    let mut out = Vec::new();

    // --- BUC ---------------------------------------------------------------
    let (buc_stats, buc_secs) = build_buc_disk(&catalog, &cards, &ds.tuples, "buc_")?;
    let buc = BucCube::open(&catalog, "buc_", schema.num_measures());
    let (q, qsecs) = timed(|| -> Result<u64> {
        let mut rows = 0u64;
        for &n in &flat_workload {
            rows += buc.node_query(n)?.len() as u64;
        }
        Ok(rows)
    });
    q?;
    out.push(MethodResult {
        build_secs: buc_secs,
        bytes: buc_stats.bytes,
        avg_qrt: qsecs / queries as f64,
    });

    // --- BU-BST ------------------------------------------------------------
    let (bb_stats, bb_secs) = build_bubst_disk(&catalog, &cards, &ds.tuples, "bb_")?;
    let bb = BubstCube::open(&catalog, "bb_", "facts", schema.num_dims(), schema.num_measures())?;
    // The monolithic scan makes BU-BST queries painfully slow (that is the
    // finding); use a subsample of the workload and extrapolate the mean.
    let bb_sample = (queries / 10).max(5).min(flat_workload.len());
    let (q, qsecs) = timed(|| -> Result<u64> {
        let mut rows = 0u64;
        for &n in flat_workload.iter().take(bb_sample) {
            rows += bb.node_query(n)?.len() as u64;
        }
        Ok(rows)
    });
    q?;
    out.push(MethodResult {
        build_secs: bb_secs,
        bytes: bb_stats.bytes,
        avg_qrt: qsecs / bb_sample as f64,
    });

    // --- CURE and CURE+ ----------------------------------------------------
    for v in [CureVariant::Cure, CureVariant::CurePlus] {
        let prefix = if v == CureVariant::Cure { "cure_" } else { "curep_" };
        let (report, secs) = build_cure_variant_in_memory(
            &catalog,
            schema,
            &ds.tuples,
            "facts",
            prefix,
            v,
            &CubeConfig::default(),
        )?;
        let mut cube = CureCube::open(&catalog, schema, prefix)?;
        let avg = avg_query_secs(&mut cube, &workload)?;
        out.push(MethodResult {
            build_secs: secs,
            bytes: report.stats.total_bytes(),
            avg_qrt: avg,
        });
    }
    Ok(out)
}

/// Run Figures 14, 15 and 16.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let datasets = [covtype_like(scale as usize), sep85l_like(scale as usize)];
    let mut per_ds = Vec::new();
    for ds in &datasets {
        println!(
            "dataset {} — {} tuples, {} dims, fact {}",
            ds.name,
            ds.tuples.len(),
            ds.schema.num_dims(),
            fmt_bytes(
                (ds.tuples.len()
                    * Tuples::fact_schema(ds.schema.num_dims(), ds.schema.num_measures())
                        .row_width()) as u64
            )
        );
        let tag = if ds.name.starts_with("CovType") { "covtype" } else { "sep85l" };
        per_ds.push(run_dataset(ds, tag)?);
    }

    let ds_names: Vec<serde_json::Value> =
        datasets.iter().map(|d| serde_json::json!(&d.name)).collect();
    let methods = ["BUC", "BU-BST", "CURE", "CURE+"];
    let mut figures = Vec::new();
    for (fig, title, y_axis, extract) in [
        (
            "fig14",
            "Real datasets — construction time",
            "seconds",
            Box::new(|m: &MethodResult| m.build_secs) as Box<dyn Fn(&MethodResult) -> f64>,
        ),
        (
            "fig15",
            "Real datasets — storage space",
            "bytes",
            Box::new(|m: &MethodResult| m.bytes as f64),
        ),
        (
            "fig16",
            "Real datasets — average query response time",
            "seconds/query",
            Box::new(|m: &MethodResult| m.avg_qrt),
        ),
    ] {
        let series: Vec<Series> = methods
            .iter()
            .enumerate()
            .map(|(mi, name)| Series {
                label: name.to_string(),
                x: ds_names.clone(),
                y: per_ds.iter().map(|ms| extract(&ms[mi])).collect(),
            })
            .collect();
        let rows: Vec<Vec<String>> = methods
            .iter()
            .enumerate()
            .map(|(mi, name)| {
                let mut row = vec![name.to_string()];
                for ms in &per_ds {
                    let v = extract(&ms[mi]);
                    row.push(if fig == "fig15" { fmt_bytes(v as u64) } else { fmt_secs(v) });
                }
                row
            })
            .collect();
        let headers: Vec<&str> =
            std::iter::once("method").chain(datasets.iter().map(|d| d.name.as_str())).collect();
        print_table(title, &headers, &rows);
        let result = FigureResult {
            id: fig.into(),
            title: title.into(),
            x_axis: "dataset".into(),
            y_axis: y_axis.into(),
            scale,
            series,
        };
        write_result(&result);
        figures.push(result);
    }
    Ok(figures)
}
