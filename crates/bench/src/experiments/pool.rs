//! Figure 18: signature-pool size vs. cube storage space.
//!
//! A bounded pool may flush before all signatures with equal aggregates
//! meet, missing some CATs and storing them redundantly as NTs. The paper
//! finds the "working set" of signatures is small: shrinking the pool from
//! 10⁷ to 10⁶ barely grows the cube. This experiment sweeps the pool size
//! on both real-dataset surrogates for CURE and CURE+.

use cure_core::{CatFormatPolicy, CubeConfig, Result, SortPolicy};
use cure_data::surrogates::{covtype_like, sep85l_like};

use crate::{
    build_cure_variant_in_memory, experiment_catalog, fmt_bytes, print_table, write_result,
    CureVariant, FigureResult, Series,
};

/// Pool sizes swept (number of signatures), scaled like the paper's
/// 10⁶–10⁷ range relative to the (scaled) dataset size.
fn pool_sizes(tuples: usize) -> Vec<usize> {
    // From "almost nothing" to "everything fits".
    vec![tuples / 100, tuples / 10, tuples / 2, tuples * 2, tuples * 10]
        .into_iter()
        .map(|p| p.max(16))
        .collect()
}

/// Run Figure 18.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let datasets = [covtype_like(scale as usize), sep85l_like(scale as usize)];
    let mut series = Vec::new();
    let mut rows = Vec::new();
    for ds in &datasets {
        let catalog = experiment_catalog("pool")?;
        ds.store(&catalog, "facts")?;
        let sizes = pool_sizes(ds.tuples.len());
        for v in [CureVariant::Cure, CureVariant::CurePlus] {
            let mut x = Vec::new();
            let mut y = Vec::new();
            for (i, &pool) in sizes.iter().enumerate() {
                let cfg = CubeConfig {
                    pool_capacity: pool,
                    cat_policy: CatFormatPolicy::Auto,
                    sort_policy: SortPolicy::Auto,
                    ..CubeConfig::default()
                };
                let prefix = format!("p{i}_{}_", v.name().to_lowercase().replace('+', "p"));
                let (report, _) = build_cure_variant_in_memory(
                    &catalog, &ds.schema, &ds.tuples, "facts", &prefix, v, &cfg,
                )?;
                x.push(serde_json::json!(pool));
                y.push(report.stats.total_bytes() as f64);
                rows.push(vec![
                    ds.name.clone(),
                    v.name().to_string(),
                    pool.to_string(),
                    fmt_bytes(report.stats.total_bytes()),
                    report.pool_flushes.to_string(),
                ]);
            }
            // Storage must be non-increasing in pool size (checked by the
            // integration tests; printed here for the figure).
            series.push(Series { label: format!("{}: {}", ds.name, v.name()), x, y });
        }
    }
    print_table(
        "Figure 18 — signature pool size vs. storage space",
        &["dataset", "method", "pool (signatures)", "cube size", "flushes"],
        &rows,
    );
    let result = FigureResult {
        id: "fig18".into(),
        title: "Signature pool size vs. storage space".into(),
        x_axis: "pool capacity (signatures)".into(),
        y_axis: "cube bytes".into(),
        scale,
        series,
    };
    write_result(&result);
    Ok(vec![result])
}
