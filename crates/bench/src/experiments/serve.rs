//! Serving-throughput scaling: the `cure-serve` subsystem under load.
//!
//! Not a figure from the paper — the paper's evaluation is
//! single-threaded — but the natural extension of its §5.3 observation:
//! because every CURE query resolves against just *two* hot relations
//! (the original fact table and `AGGREGATES`), one shared page cache
//! serves every worker thread. This experiment builds an APB-1-style
//! cube, then drives the same closed-loop workload through
//! [`CubeService`] at 1/2/4/8 worker threads and reports throughput,
//! latency quantiles (p50/p95/p99) and the shared-cache hit rate, for
//! both uniform and Zipf-skewed node popularity.

use std::sync::Arc;

use cure_core::{CubeConfig, Result};
use cure_query::CacheConfig;
use cure_serve::{run_load, CubeService, LoadSpec, NodePopularity};

use crate::{
    build_cure_variant_in_memory, experiment_catalog, print_table, write_result, CureVariant,
    FigureResult, Series,
};

/// Run the serving-throughput scaling experiment.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let queries: u64 =
        std::env::var("CURE_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(1_000);
    let thread_counts = [1usize, 2, 4, 8];
    let workloads =
        [("uniform", NodePopularity::Uniform), ("zipf(1.0)", NodePopularity::Zipf(1.0))];

    // Thread scaling is bounded by the physical cores of the host; on a
    // single-core machine every thread count measures ~1x and the extra
    // threads only add contention. Print it so the table is interpretable.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("(host reports {cores} core(s) available — speedup is bounded by this)");

    let ds = cure_data::apb::apb1_dense(0.4, scale, 0x5E4E);
    let catalog = experiment_catalog("serve")?;
    ds.store(&catalog, "facts")?;
    build_cure_variant_in_memory(
        &catalog,
        &ds.schema,
        &ds.tuples,
        "facts",
        "serve_",
        CureVariant::Cure,
        &CubeConfig::default(),
    )?;
    let catalog = Arc::new(catalog);
    let schema = Arc::new(ds.schema);

    let mut series = Vec::new();
    let mut rows = Vec::new();
    for (wl_name, popularity) in workloads {
        // One service per workload: caches warm up across thread counts,
        // so every run measures steady-state serving (the first runs'
        // compulsory misses are absorbed by the warm-up pass below).
        let service = CubeService::open(
            Arc::clone(&catalog),
            Arc::clone(&schema),
            "serve_",
            CacheConfig::default(),
        )?;
        let warmup = LoadSpec {
            queries: queries / 4,
            threads: 4,
            queue_depth: 64,
            popularity,
            seed: 0xAB1,
            deadline: None,
            shed_on_full: false,
        };
        run_load(&service, &warmup)?;

        let mut qps_series = Vec::new();
        let mut base_qps = 0.0;
        for &threads in &thread_counts {
            let spec = LoadSpec {
                queries,
                threads,
                queue_depth: 64,
                popularity,
                seed: 0xAB1,
                deadline: None,
                shed_on_full: false,
            };
            let report = run_load(&service, &spec)?;
            if threads == 1 {
                base_qps = report.qps;
            }
            let speedup = if base_qps > 0.0 { report.qps / base_qps } else { 0.0 };
            rows.push(vec![
                wl_name.to_string(),
                threads.to_string(),
                format!("{:.0}", report.qps),
                format!("{speedup:.2}x"),
                format!("{:.0}", report.p50_us),
                format!("{:.0}", report.p95_us),
                format!("{:.0}", report.p99_us),
                format!("{:.1}%", report.fact_hit_rate * 100.0),
            ]);
            qps_series.push(report.qps);
        }
        series.push(Series {
            label: format!("{wl_name} QPS"),
            x: thread_counts.iter().map(|t| serde_json::json!(t)).collect(),
            y: qps_series,
        });
    }

    print_table(
        "Serving throughput — cure-serve worker scaling",
        &["workload", "threads", "QPS", "speedup", "p50 µs", "p95 µs", "p99 µs", "fact hit rate"],
        &rows,
    );
    let result = FigureResult {
        id: "serve".into(),
        title: "cure-serve throughput scaling (shared sharded page cache)".into(),
        x_axis: "worker threads".into(),
        y_axis: "queries/second".into(),
        scale,
        series,
    };
    write_result(&result);
    Ok(vec![result])
}
