//! Serving-throughput scaling: the `cure-serve` subsystem under load.
//!
//! Not a figure from the paper — the paper's evaluation is
//! single-threaded — but the natural extension of its §5.3 observation:
//! because every CURE query resolves against just *two* hot relations
//! (the original fact table and `AGGREGATES`), the serve path stays
//! simple enough to scale with worker threads. This experiment builds an
//! APB-1-style cube, then drives the same closed-loop workload through
//! [`CubeService`] at 1/2/4/8 worker threads on *both* read paths — the
//! shared sharded page cache and the zero-copy mmap path with per-node
//! point-query indexes — and reports throughput, latency quantiles
//! (p50/p95/p99) and cache hit rates, for both uniform and Zipf-skewed
//! node popularity. The mmap path takes no lock per page, so it is the
//! one expected to scale near-linearly to 8 threads.

use std::sync::Arc;

use cure_core::{CubeConfig, Result};
use cure_query::{CacheConfig, ReadPath};
use cure_serve::{run_load, CubeService, LoadSpec, NodePopularity};

use crate::{
    build_cure_variant_in_memory, experiment_catalog, print_table, write_result, CureVariant,
    FigureResult, Series,
};

/// Run the serving-throughput scaling experiment.
pub fn run(scale: u64) -> Result<Vec<FigureResult>> {
    let queries: u64 =
        std::env::var("CURE_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(1_000);
    let thread_counts = [1usize, 2, 4, 8];
    let workloads =
        [("uniform", NodePopularity::Uniform), ("zipf(1.0)", NodePopularity::Zipf(1.0))];
    let read_paths = [ReadPath::Cache, ReadPath::Mmap];

    // Thread scaling is bounded by the physical cores of the host; on a
    // single-core machine every thread count measures ~1x and the extra
    // threads only add contention. Print it so the table is interpretable.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("(host reports {cores} core(s) available — speedup is bounded by this)");

    let ds = cure_data::apb::apb1_dense(0.4, scale, 0x5E4E);
    let catalog = experiment_catalog("serve")?;
    ds.store(&catalog, "facts")?;
    build_cure_variant_in_memory(
        &catalog,
        &ds.schema,
        &ds.tuples,
        "facts",
        "serve_",
        CureVariant::Cure,
        &CubeConfig::default(),
    )?;
    let catalog = Arc::new(catalog);
    let schema = Arc::new(ds.schema);

    let mut series = Vec::new();
    let mut rows = Vec::new();
    for read_path in read_paths {
        for (wl_name, popularity) in workloads {
            // One service per (read path, workload): cache-path runs warm
            // up across thread counts so every run measures steady-state
            // serving; the mmap path has no cache to warm but keeps the
            // same warm-up pass so the two paths see identical traffic.
            let service = CubeService::open_with_read_path(
                Arc::clone(&catalog),
                Arc::clone(&schema),
                "serve_",
                CacheConfig::default(),
                read_path,
            )?;
            let warmup = LoadSpec {
                queries: queries / 4,
                threads: 4,
                queue_depth: 64,
                popularity,
                seed: 0xAB1,
                deadline: None,
                shed_on_full: false,
            };
            run_load(&service, &warmup)?;

            let mut qps_series = Vec::new();
            let mut base_qps = 0.0;
            for &threads in &thread_counts {
                let spec = LoadSpec {
                    queries,
                    threads,
                    queue_depth: 64,
                    popularity,
                    seed: 0xAB1,
                    deadline: None,
                    shed_on_full: false,
                };
                let report = run_load(&service, &spec)?;
                if threads == 1 {
                    base_qps = report.qps;
                }
                let speedup = if base_qps > 0.0 { report.qps / base_qps } else { 0.0 };
                rows.push(vec![
                    report.read_path.to_string(),
                    wl_name.to_string(),
                    threads.to_string(),
                    format!("{:.0}", report.qps),
                    format!("{speedup:.2}x"),
                    format!("{:.0}", report.p50_us),
                    format!("{:.0}", report.p95_us),
                    format!("{:.0}", report.p99_us),
                    format!("{:.1}%", report.fact_hit_rate * 100.0),
                ]);
                qps_series.push(report.qps);
            }
            series.push(Series {
                label: format!("{wl_name} QPS ({})", read_path.label()),
                x: thread_counts.iter().map(|t| serde_json::json!(t)).collect(),
                y: qps_series,
            });
        }
    }

    print_table(
        "Serving throughput — cure-serve worker scaling",
        &[
            "read path",
            "workload",
            "threads",
            "QPS",
            "speedup",
            "p50 µs",
            "p95 µs",
            "p99 µs",
            "fact hit rate",
        ],
        &rows,
    );
    let result = FigureResult {
        id: "serve".into(),
        title: "cure-serve throughput scaling (mmap vs shared-cache read paths)".into(),
        x_axis: "worker threads".into(),
        y_axis: "queries/second".into(),
        scale,
        series,
    };
    write_result(&result);
    Ok(vec![result])
}
