//! Execution plans for hierarchical cube construction (§3 of the paper).
//!
//! CURE prunes the hierarchical cube lattice into a tree — plan **P3**,
//! "the tallest possible extension of BUC's plan" — using two rules:
//!
//! * **Rule 1 (solid edges):** a node is entered by adding one more
//!   dimension at its *top* (least detailed) level.
//! * **Rule 2 (dashed edges, modified for complex hierarchies):** the
//!   rightmost grouped dimension descends one step along its *descent
//!   tree* (each level hangs under its maximum-cardinality direct parent).
//!
//! Pushing node computation as high as possible shares expensive sorts at
//! the bottom of the plan — the paper's core argument for P3 over the
//! "shortest" extension P2.
//!
//! [`PlanSpec`] captures a concrete execution's plan *analytically*: given
//! any node it derives the node's parent in O(D), and hence the root-to-node
//! path that query answering walks to collect shared trivial tuples (TTs).
//! It also handles the **partitioned** execution of §4, where the plan is a
//! forest: one tree rooted at `∅` (built from the small relation *N*, with
//! dimension 0 never descending below level `L+1`) and one tree rooted at
//! `{A_L}` (built from the sound partitions, covering dimension-0 levels
//! `0..=L`). [`PlanSpec::build_tree`] materializes the tree(s) by
//! simulating the recursion — used by tests to cross-validate the analytic
//! parent function, and by experiments that enumerate plan nodes.

use cure_storage::hash::FxHashMap;

use crate::error::{CubeError, Result};
use crate::hierarchy::{CubeSchema, LevelIdx};
use crate::lattice::{NodeCoder, NodeId, NodeLevels};

/// How a node was entered in the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Root of a pass (node `∅`, or `{A_L}` for the partition pass).
    Root,
    /// Entered by Rule 1: one more dimension at its entry level.
    Solid,
    /// Entered by Rule 2: rightmost dimension descended one level.
    Dashed,
}

/// Which pass of a (possibly partitioned) execution covers a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Unpartitioned execution, or the *N*-relation pass of a partitioned
    /// one (dimension 0 at ALL or at level ≥ L+1).
    Main,
    /// The sound-partition pass (dimension 0 grouped at level ≤ L).
    Partition,
}

/// Analytic description of CURE's execution plan for a schema, optionally
/// partitioned on level `L` of dimension 0.
#[derive(Debug, Clone)]
pub struct PlanSpec {
    coder: NodeCoder,
    /// Per dimension: top level index.
    top: Vec<LevelIdx>,
    /// Per dimension: descent children per level (modified Rule 2).
    descent_children: Vec<Vec<Vec<LevelIdx>>>,
    /// Per dimension: descent parent per level (`None` for the top level).
    descent_parent: Vec<Vec<Option<LevelIdx>>>,
    /// Partition level `L` of dimension 0, if the execution is partitioned.
    partition_level: Option<LevelIdx>,
    num_dims: usize,
}

impl PlanSpec {
    /// Build the plan spec for an unpartitioned execution.
    pub fn new(schema: &CubeSchema) -> Self {
        Self::build(schema, None)
    }

    /// Build the plan spec for an execution partitioned on level `L` of
    /// dimension 0 (§4).
    pub fn partitioned(schema: &CubeSchema, l: LevelIdx) -> Result<Self> {
        let dim0 = &schema.dims()[0];
        if l >= dim0.num_levels() {
            return Err(CubeError::Partitioning(format!(
                "partition level {l} out of range for dimension {} with {} levels",
                dim0.name(),
                dim0.num_levels()
            )));
        }
        if !dim0.is_linear() {
            return Err(CubeError::Partitioning(
                "partitioning requires a linear hierarchy on dimension 0".into(),
            ));
        }
        Ok(Self::build(schema, Some(l)))
    }

    fn build(schema: &CubeSchema, partition_level: Option<LevelIdx>) -> Self {
        let coder = NodeCoder::new(schema);
        let num_dims = schema.num_dims();
        let top: Vec<LevelIdx> = schema.dims().iter().map(|d| d.top_level()).collect();
        let mut descent_children = Vec::with_capacity(num_dims);
        let mut descent_parent = Vec::with_capacity(num_dims);
        for d in schema.dims() {
            let n = d.num_levels();
            let ch: Vec<Vec<LevelIdx>> = (0..n).map(|l| d.descent_children(l).to_vec()).collect();
            let mut par: Vec<Option<LevelIdx>> = vec![None; n];
            for (l, children) in ch.iter().enumerate() {
                for &c in children {
                    par[c] = Some(l);
                }
            }
            descent_children.push(ch);
            descent_parent.push(par);
        }
        PlanSpec { coder, top, descent_children, descent_parent, partition_level, num_dims }
    }

    /// The node id coder for this plan's schema.
    pub fn coder(&self) -> &NodeCoder {
        &self.coder
    }

    /// The partition level, if this plan describes a partitioned execution.
    pub fn partition_level(&self) -> Option<LevelIdx> {
        self.partition_level
    }

    /// Which pass covers `levels`.
    pub fn pass_of(&self, levels: &[LevelIdx]) -> Pass {
        match self.partition_level {
            Some(l) if !self.coder.is_all(levels, 0) && levels[0] <= l => Pass::Partition,
            _ => Pass::Main,
        }
    }

    /// The level at which dimension `d` is first entered (solid edge) in
    /// the pass covering `levels`.
    fn entry_level(&self, levels: &[LevelIdx], d: usize) -> LevelIdx {
        if d == 0 && self.pass_of(levels) == Pass::Partition {
            self.partition_level.expect("partition pass implies a level")
        } else {
            self.top[d]
        }
    }

    /// The plan-tree parent of a node, or `None` if it is a pass root.
    ///
    /// Implements the inverse of Rules 1 and 2: the rightmost grouped
    /// dimension either leaves the grouping (solid arrival, when it sits at
    /// its entry level) or ascends one step in its descent tree (dashed
    /// arrival).
    pub fn parent(&self, levels: &[LevelIdx]) -> Option<NodeLevels> {
        let dmax = (0..self.num_dims).rev().find(|&d| !self.coder.is_all(levels, d))?;
        let l = levels[dmax];
        let entry = self.entry_level(levels, dmax);
        if l == entry {
            if dmax == 0 && self.pass_of(levels) == Pass::Partition {
                return None; // {A_L}: root of the partition pass
            }
            let mut p = levels.to_vec();
            p[dmax] = self.coder.all_level(dmax);
            Some(p)
        } else {
            let mut p = levels.to_vec();
            p[dmax] = self.descent_parent[dmax][l].expect("non-entry level has a descent parent");
            Some(p)
        }
    }

    /// How the node at `levels` was entered.
    pub fn edge_kind(&self, levels: &[LevelIdx]) -> EdgeKind {
        let Some(dmax) = (0..self.num_dims).rev().find(|&d| !self.coder.is_all(levels, d)) else {
            return EdgeKind::Root;
        };
        let entry = self.entry_level(levels, dmax);
        if levels[dmax] == entry {
            if dmax == 0 && self.pass_of(levels) == Pass::Partition {
                EdgeKind::Root
            } else {
                EdgeKind::Solid
            }
        } else {
            EdgeKind::Dashed
        }
    }

    /// The root-to-node path **within the node's pass**, pass root first,
    /// ending at (and including) the node itself.
    ///
    /// Query answering walks this path to collect the trivial tuples stored
    /// at coarser nodes and shared with `node` (§5.1: a TT stored at node
    /// `N_LD` represents tuples of the entire plan subtree rooted there).
    pub fn path_to(&self, node: NodeId) -> Result<Vec<NodeId>> {
        let mut levels = self.coder.decode(node)?;
        let mut path = vec![node];
        while let Some(p) = self.parent(&levels) {
            path.push(self.coder.encode(&p));
            levels = p;
        }
        path.reverse();
        Ok(path)
    }

    /// Materialize the plan tree(s) by simulating the execution recursion.
    ///
    /// Returns every node with its parent and entry edge, in the exact
    /// order the recursion first emits them.
    pub fn build_tree(&self) -> PlanTree {
        let mut out = PlanTree {
            order: Vec::new(),
            parent: FxHashMap::default(),
            edge: FxHashMap::default(),
        };
        match self.partition_level {
            None => {
                let levels: Vec<LevelIdx> = self.top.clone();
                let grouped = vec![false; self.num_dims];
                self.sim_execute(0, levels, grouped, None, 0, &mut out);
            }
            Some(l) => {
                // Main pass over N: dimension 0 never descends below L+1.
                let levels: Vec<LevelIdx> = self.top.clone();
                let grouped = vec![false; self.num_dims];
                self.sim_execute(0, levels, grouped, None, l + 1, &mut out);
                // Partition pass: enter dimension 0 directly at level L.
                let mut levels: Vec<LevelIdx> = self.top.clone();
                levels[0] = l;
                let mut grouped = vec![false; self.num_dims];
                grouped[0] = true;
                self.sim_execute(1, levels, grouped, None, 0, &mut out);
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn sim_execute(
        &self,
        dim: usize,
        mut levels: Vec<LevelIdx>,
        mut grouped: Vec<bool>,
        parent: Option<NodeId>,
        dim0_base: LevelIdx,
        out: &mut PlanTree,
    ) {
        let node_levels: Vec<LevelIdx> = (0..self.num_dims)
            .map(|d| if grouped[d] { levels[d] } else { self.coder.all_level(d) })
            .collect();
        let id = self.coder.encode(&node_levels);
        let edge = match parent {
            None => EdgeKind::Root,
            Some(_) => self.edge_kind(&node_levels),
        };
        out.order.push(id);
        out.parent.insert(id, parent);
        out.edge.insert(id, edge);

        // Solid edges: enter each remaining dimension at its current level.
        for d in dim..self.num_dims {
            // The partitioned main pass never enters dimension 0 below its
            // floor: when the partition level is dimension 0's top level
            // the partition pass owns the entire dim-0-grouped region
            // (mirrors `skip_dim0` in the execution driver) — without
            // this the two passes would emit those nodes twice.
            if d == 0 && levels[0] < dim0_base {
                continue;
            }
            grouped[d] = true;
            self.sim_execute(d + 1, levels.clone(), grouped.clone(), Some(id), dim0_base, out);
            grouped[d] = false;
        }
        // Dashed edges: descend the rightmost grouped dimension.
        if dim >= 1 {
            let d = dim - 1;
            let cur = levels[d];
            let base = if d == 0 { dim0_base } else { 0 };
            let children: Vec<LevelIdx> =
                self.descent_children[d][cur].iter().copied().filter(|&c| c >= base).collect();
            for c in children {
                let saved = levels[d];
                levels[d] = c;
                self.sim_execute(dim, levels.clone(), grouped.clone(), Some(id), dim0_base, out);
                levels[d] = saved;
            }
        }
    }
}

/// An explicit, materialized plan tree (or two-tree forest).
#[derive(Debug)]
pub struct PlanTree {
    /// Nodes in first-emission order.
    pub order: Vec<NodeId>,
    /// Parent of each node (`None` for pass roots).
    pub parent: FxHashMap<NodeId, Option<NodeId>>,
    /// How each node was entered.
    pub edge: FxHashMap<NodeId, EdgeKind>,
}

impl PlanTree {
    /// Number of nodes in the forest.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the plan is empty (never the case for a valid schema).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Height: the maximum root-to-leaf edge count over all trees.
    pub fn height(&self) -> usize {
        let mut best = 0;
        for &n in &self.order {
            let mut depth = 0;
            let mut cur = n;
            while let Some(&Some(p)) = self.parent.get(&cur) {
                depth += 1;
                cur = p;
            }
            best = best.max(depth);
        }
        best
    }
}

impl PlanTree {
    /// Render the plan forest as an indented ASCII tree (EXPLAIN-style),
    /// with `──` for solid edges (Rule 1) and `╌╌` for dashed edges
    /// (Rule 2) — the Figure 2–4 notation.
    pub fn render(&self, schema: &CubeSchema, coder: &NodeCoder) -> String {
        use cure_storage::hash::FxHashMap;
        let mut children: FxHashMap<Option<NodeId>, Vec<NodeId>> = FxHashMap::default();
        for &n in &self.order {
            children.entry(self.parent[&n]).or_default().push(n);
        }
        let mut out = String::new();
        fn walk(
            node: NodeId,
            depth: usize,
            tree: &PlanTree,
            children: &cure_storage::hash::FxHashMap<Option<NodeId>, Vec<NodeId>>,
            schema: &CubeSchema,
            coder: &NodeCoder,
            out: &mut String,
        ) {
            let edge = match tree.edge[&node] {
                EdgeKind::Root => "",
                EdgeKind::Solid => "── ",
                EdgeKind::Dashed => "╌╌ ",
            };
            out.push_str(&"   ".repeat(depth));
            out.push_str(edge);
            out.push_str(&coder.name(schema, node));
            out.push('\n');
            if let Some(ch) = children.get(&Some(node)) {
                for &c in ch {
                    walk(c, depth + 1, tree, children, schema, coder, out);
                }
            }
        }
        for &root in children.get(&None).map(|v| v.as_slice()).unwrap_or(&[]) {
            walk(root, 0, self, &children, schema, coder, &mut out);
        }
        out
    }
}

/// Height of the "shortest" hierarchical extension **P2** of BUC's plan
/// (Figure 3): every level of every dimension is treated as a separate flat
/// attribute, so the plan height equals the number of dimensions `D`
/// regardless of hierarchy depths. Provided for the plan-comparison
/// experiments; CURE itself always uses P3.
pub fn p2_height(schema: &CubeSchema) -> usize {
    schema.num_dims()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{CubeSchema, Dimension, Level};

    fn paper_schema() -> CubeSchema {
        let a =
            Dimension::linear("A", 8, &[vec![0, 0, 1, 1, 2, 2, 3, 3], vec![0, 0, 1, 1]]).unwrap();
        let b = Dimension::linear("B", 6, &[vec![0, 0, 0, 1, 1, 1]]).unwrap();
        let c = Dimension::flat("C", 4);
        CubeSchema::new(vec![a, b, c], 1).unwrap()
    }

    #[test]
    fn p3_visits_every_node_exactly_once() {
        let s = paper_schema();
        let plan = PlanSpec::new(&s);
        let tree = plan.build_tree();
        assert_eq!(tree.len(), 24);
        let mut sorted = tree.order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 24, "no node may be emitted twice");
    }

    #[test]
    fn partitioned_forest_visits_every_node_exactly_once_at_any_level() {
        // Including L == top: the partition pass then owns the entire
        // dim-0-grouped region and the main pass must not re-enter it
        // (regression: duplicated nodes doubled every merged group in
        // `update_cube` over such cubes).
        let s = paper_schema();
        let total = s.num_lattice_nodes() as usize;
        for l in 0..s.dims()[0].num_levels() {
            let tree = PlanSpec::partitioned(&s, l).unwrap().build_tree();
            let mut sorted = tree.order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), tree.len(), "level {l}: node emitted twice");
            assert_eq!(tree.len(), total, "level {l}: forest must cover the lattice");
        }
    }

    #[test]
    fn p3_height_matches_paper() {
        // The paper: P3 is the tallest extension, height Σ L_i = 3+2+1 = 6;
        // P2 keeps height D = 3.
        let s = paper_schema();
        let plan = PlanSpec::new(&s);
        assert_eq!(plan.build_tree().height(), 6);
        assert_eq!(p2_height(&s), 3);
    }

    #[test]
    fn figure_4_parent_spot_checks() {
        let s = paper_schema();
        let plan = PlanSpec::new(&s);
        let c = plan.coder().clone();
        let all = |d: usize| c.all_level(d);
        // parent(A2) = ∅ (solid entry of dim A at top level 2).
        assert_eq!(plan.parent(&[2, all(1), all(2)]), Some(vec![all(0), all(1), all(2)]));
        // parent(A1) = A2 (dashed descent).
        assert_eq!(plan.parent(&[1, all(1), all(2)]), Some(vec![2, all(1), all(2)]));
        // parent(A1B1) = A1 (solid entry of B at its top level 1).
        assert_eq!(plan.parent(&[1, 1, all(2)]), Some(vec![1, all(1), all(2)]));
        // parent(A0B0) = A0B1 (dashed descent of B).
        assert_eq!(plan.parent(&[0, 0, all(2)]), Some(vec![0, 1, all(2)]));
        // parent(A0B1C0) = A0B1 (solid entry of C).
        assert_eq!(plan.parent(&[0, 1, 0]), Some(vec![0, 1, all(2)]));
        // parent(B1) = ∅.
        assert_eq!(plan.parent(&[all(0), 1, all(2)]), Some(vec![all(0), all(1), all(2)]));
        // ∅ is the root.
        assert_eq!(plan.parent(&[all(0), all(1), all(2)]), None);
    }

    #[test]
    fn analytic_parent_matches_simulated_tree() {
        let s = paper_schema();
        let plan = PlanSpec::new(&s);
        let tree = plan.build_tree();
        for &id in &tree.order {
            let levels = plan.coder().decode(id).unwrap();
            let analytic = plan.parent(&levels).map(|p| plan.coder().encode(&p));
            assert_eq!(analytic, tree.parent[&id], "node {id}");
        }
    }

    #[test]
    fn path_to_follows_figure_4() {
        let s = paper_schema();
        let plan = PlanSpec::new(&s);
        let c = plan.coder();
        // Path to A0B0C0 (id 0): ∅ → A2 → A1 → A0 → A0B1 → A0B0 → A0B0C0.
        let path = plan.path_to(0).unwrap();
        let names: Vec<String> = path.iter().map(|&id| c.name(&s, id)).collect();
        assert_eq!(names, vec!["∅", "A2", "A1", "A0", "A0B1", "A0B0", "A0B0C0"]);
    }

    #[test]
    fn partitioned_plan_is_a_two_tree_forest() {
        let s = paper_schema();
        let plan = PlanSpec::partitioned(&s, 1).unwrap(); // L = 1 on A
        let tree = plan.build_tree();
        assert_eq!(tree.len(), 24, "partitioned coverage must still be complete");
        let mut dup = tree.order.clone();
        dup.sort_unstable();
        dup.dedup();
        assert_eq!(dup.len(), 24);
        let roots: Vec<NodeId> =
            tree.order.iter().copied().filter(|n| tree.parent[n].is_none()).collect();
        assert_eq!(roots.len(), 2);
        let c = plan.coder();
        let names: Vec<String> = roots.iter().map(|&r| c.name(&s, r)).collect();
        assert!(names.contains(&"∅".to_string()));
        assert!(names.contains(&"A1".to_string()), "partition pass root is A_L = A1: {names:?}");
    }

    #[test]
    fn partitioned_analytic_parent_matches_tree() {
        let s = paper_schema();
        for l in 0..=2 {
            let plan = PlanSpec::partitioned(&s, l).unwrap();
            let tree = plan.build_tree();
            for &id in &tree.order {
                let levels = plan.coder().decode(id).unwrap();
                let analytic = plan.parent(&levels).map(|p| plan.coder().encode(&p));
                assert_eq!(analytic, tree.parent[&id], "L={l} node {id}");
            }
        }
    }

    #[test]
    fn partition_pass_membership() {
        let s = paper_schema();
        let plan = PlanSpec::partitioned(&s, 1).unwrap();
        let c = plan.coder();
        // A0.. and A1.. nodes are partition-pass; A2.., no-A and ∅ are main.
        assert_eq!(plan.pass_of(&[0, 0, 0]), Pass::Partition);
        assert_eq!(plan.pass_of(&[1, c.all_level(1), c.all_level(2)]), Pass::Partition);
        assert_eq!(plan.pass_of(&[2, 0, 0]), Pass::Main);
        assert_eq!(plan.pass_of(&[c.all_level(0), 0, 0]), Pass::Main);
    }

    #[test]
    fn partitioned_path_stays_within_pass() {
        let s = paper_schema();
        let plan = PlanSpec::partitioned(&s, 1).unwrap();
        let c = plan.coder();
        // Path to A0B0C0 starts at the partition root A1, not at ∅.
        let path = plan.path_to(0).unwrap();
        let names: Vec<String> = path.iter().map(|&id| c.name(&s, id)).collect();
        assert_eq!(names, vec!["A1", "A0", "A0B1", "A0B0", "A0B0C0"]);
        // Path to a main-pass node still starts at ∅.
        let a2 = c.encode(&[2, c.all_level(1), c.all_level(2)]);
        let path = plan.path_to(a2).unwrap();
        let names: Vec<String> = path.iter().map(|&id| c.name(&s, id)).collect();
        assert_eq!(names, vec!["∅", "A2"]);
    }

    #[test]
    fn partitioning_rejects_bad_inputs() {
        let s = paper_schema();
        assert!(PlanSpec::partitioned(&s, 3).is_err(), "level out of range");
    }

    #[test]
    fn complex_hierarchy_plan_covers_all_levels() {
        // 1-dimensional time cube of Figure 5: ∅ → year → {month, week},
        // week → day.
        let days = 24u32;
        let levels = vec![
            Level { name: "day".into(), cardinality: days, parents: vec![1, 2], leaf_map: vec![] },
            Level {
                name: "week".into(),
                cardinality: 12,
                parents: vec![3],
                leaf_map: (0..days).map(|d| d / 2).collect(),
            },
            Level {
                name: "month".into(),
                cardinality: 4,
                parents: vec![3],
                leaf_map: (0..days).map(|d| d / 6).collect(),
            },
            Level {
                name: "year".into(),
                cardinality: 2,
                parents: vec![],
                leaf_map: (0..days).map(|d| d / 12).collect(),
            },
        ];
        let t = Dimension::from_levels("time", levels).unwrap();
        let s = CubeSchema::new(vec![t], 1).unwrap();
        let plan = PlanSpec::new(&s);
        let tree = plan.build_tree();
        // 5 nodes: ∅, year, month, week, day — each exactly once.
        assert_eq!(tree.len(), 5);
        let c = plan.coder();
        // Figure 5b: the month→day edge is discarded; day hangs under week.
        let day = c.encode(&[0]);
        let week = c.encode(&[1]);
        let month = c.encode(&[2]);
        let year = c.encode(&[3]);
        assert_eq!(tree.parent[&day], Some(week));
        assert_eq!(tree.parent[&week], Some(year));
        assert_eq!(tree.parent[&month], Some(year));
        assert_eq!(tree.parent[&year], Some(c.empty_node()));
        // Analytic parents agree.
        for &id in &tree.order {
            let lv = c.decode(id).unwrap();
            assert_eq!(plan.parent(&lv).map(|p| c.encode(&p)), tree.parent[&id]);
        }
    }

    #[test]
    fn flat_schema_p3_equals_p1() {
        // For a flat schema, P3 degenerates to BUC's plan P1: height D.
        let dims: Vec<Dimension> = (0..3).map(|i| Dimension::flat(format!("d{i}"), 4)).collect();
        let s = CubeSchema::new(dims, 1).unwrap();
        let plan = PlanSpec::new(&s);
        let tree = plan.build_tree();
        assert_eq!(tree.len(), 8);
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn render_shows_figure_4_structure() {
        let s = paper_schema();
        let plan = PlanSpec::new(&s);
        let tree = plan.build_tree();
        let text = tree.render(&s, plan.coder());
        // Every node name appears exactly once.
        assert_eq!(text.lines().count(), 24);
        assert!(text.starts_with('∅'), "root first: {text}");
        // A2 enters solid from ∅, A1 dashed below it.
        assert!(text.contains("── A2"));
        assert!(text.contains("╌╌ A1"));
        let a0b0c0: Vec<&str> = text.lines().filter(|l| l.ends_with("A0B0C0")).collect();
        assert_eq!(a0b0c0.len(), 1);
    }

    #[test]
    fn edge_kinds_are_consistent() {
        let s = paper_schema();
        let plan = PlanSpec::new(&s);
        let tree = plan.build_tree();
        let mut solids = 0;
        let mut dashed = 0;
        for &id in &tree.order {
            match tree.edge[&id] {
                EdgeKind::Root => assert!(tree.parent[&id].is_none()),
                EdgeKind::Solid => solids += 1,
                EdgeKind::Dashed => dashed += 1,
            }
        }
        // 24 nodes, 1 root → 23 edges; dashed edges are one per non-entry
        // level per dimension-context. Just sanity-check both kinds exist.
        assert_eq!(solids + dashed, 23);
        assert!(solids > 0 && dashed > 0);
    }
}
