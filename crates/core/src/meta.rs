//! Persisted cube metadata.
//!
//! A CURE cube on disk is a family of relations under a name prefix; the
//! query layer additionally needs to know which build options produced it
//! (variant flags, CAT format, partition level, the fact relation it
//! references). [`CubeMeta`] serializes those as a small key=value blob in
//! the catalog, so a cube can be opened with nothing but the catalog, the
//! schema and the prefix.

use cure_storage::Catalog;

use crate::error::{CubeError, Result};
use crate::hierarchy::LevelIdx;
use crate::sink::CatFormat;

/// Build options needed to interpret a stored cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeMeta {
    /// Relation-name prefix of the cube.
    pub prefix: String,
    /// Name of the original fact relation (NT/TT row-ids point into it).
    pub fact_rel: String,
    /// Number of dimensions.
    pub n_dims: usize,
    /// Number of measures.
    pub n_measures: usize,
    /// CURE_DR: NTs store materialized dimension values.
    pub dr: bool,
    /// CURE+: TT lists stored as sorted bitmaps.
    pub plus: bool,
    /// CAT format in use (None when the cube contains no CATs).
    pub cat_format: Option<CatFormat>,
    /// Partition level of the build (None for in-memory builds).
    pub partition_level: Option<LevelIdx>,
    /// Iceberg minimum support used at build time.
    pub min_support: u64,
}

fn fmt_cat(f: Option<CatFormat>) -> &'static str {
    match f {
        None => "none",
        Some(CatFormat::CommonSource) => "a",
        Some(CatFormat::Coincidental) => "b",
        Some(CatFormat::AsNt) => "nt",
    }
}

fn parse_cat(s: &str) -> Result<Option<CatFormat>> {
    match s {
        "none" => Ok(None),
        "a" => Ok(Some(CatFormat::CommonSource)),
        "b" => Ok(Some(CatFormat::Coincidental)),
        "nt" => Ok(Some(CatFormat::AsNt)),
        other => Err(CubeError::Schema(format!("unknown cat format '{other}'"))),
    }
}

impl CubeMeta {
    fn blob_name(prefix: &str) -> String {
        format!("{prefix}meta")
    }

    /// Persist into `catalog` under `<prefix>meta`.
    pub fn write(&self, catalog: &Catalog) -> Result<()> {
        let mut s = String::new();
        s.push_str(&format!("fact_rel={}\n", self.fact_rel));
        s.push_str(&format!("n_dims={}\n", self.n_dims));
        s.push_str(&format!("n_measures={}\n", self.n_measures));
        s.push_str(&format!("dr={}\n", self.dr));
        s.push_str(&format!("plus={}\n", self.plus));
        s.push_str(&format!("cat_format={}\n", fmt_cat(self.cat_format)));
        s.push_str(&format!(
            "partition_level={}\n",
            self.partition_level.map_or("none".to_string(), |l| l.to_string())
        ));
        s.push_str(&format!("min_support={}\n", self.min_support));
        catalog.write_blob(&Self::blob_name(&self.prefix), s.as_bytes())?;
        Ok(())
    }

    /// Load the metadata of the cube stored under `prefix`.
    pub fn read(catalog: &Catalog, prefix: &str) -> Result<CubeMeta> {
        let bytes = catalog.read_blob(&Self::blob_name(prefix))?;
        let text = String::from_utf8(bytes)
            .map_err(|_| CubeError::Schema("cube meta is not UTF-8".into()))?;
        let mut map = std::collections::HashMap::new();
        for line in text.lines() {
            if let Some((k, v)) = line.split_once('=') {
                map.insert(k.to_string(), v.to_string());
            }
        }
        let get = |k: &str| -> Result<String> {
            map.get(k).cloned().ok_or_else(|| CubeError::Schema(format!("cube meta missing '{k}'")))
        };
        let parse_usize = |k: &str| -> Result<usize> {
            get(k)?.parse().map_err(|_| CubeError::Schema(format!("cube meta: bad '{k}'")))
        };
        Ok(CubeMeta {
            prefix: prefix.to_string(),
            fact_rel: get("fact_rel")?,
            n_dims: parse_usize("n_dims")?,
            n_measures: parse_usize("n_measures")?,
            dr: get("dr")? == "true",
            plus: get("plus")? == "true",
            cat_format: parse_cat(&get("cat_format")?)?,
            partition_level: match get("partition_level")?.as_str() {
                "none" => None,
                s => Some(
                    s.parse()
                        .map_err(|_| CubeError::Schema("cube meta: bad partition_level".into()))?,
                ),
            },
            min_support: get("min_support")?
                .parse()
                .map_err(|_| CubeError::Schema("cube meta: bad min_support".into()))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_meta_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    #[test]
    fn roundtrip_all_fields() {
        let catalog = fresh_catalog("rt");
        let meta = CubeMeta {
            prefix: "c_".into(),
            fact_rel: "facts".into(),
            n_dims: 4,
            n_measures: 2,
            dr: true,
            plus: true,
            cat_format: Some(CatFormat::CommonSource),
            partition_level: Some(1),
            min_support: 5,
        };
        meta.write(&catalog).unwrap();
        assert_eq!(CubeMeta::read(&catalog, "c_").unwrap(), meta);
    }

    #[test]
    fn roundtrip_none_fields() {
        let catalog = fresh_catalog("none");
        let meta = CubeMeta {
            prefix: "x_".into(),
            fact_rel: "f".into(),
            n_dims: 1,
            n_measures: 1,
            dr: false,
            plus: false,
            cat_format: None,
            partition_level: None,
            min_support: 1,
        };
        meta.write(&catalog).unwrap();
        assert_eq!(CubeMeta::read(&catalog, "x_").unwrap(), meta);
    }

    #[test]
    fn every_cat_format_roundtrips() {
        let catalog = fresh_catalog("cats");
        for f in [
            None,
            Some(CatFormat::CommonSource),
            Some(CatFormat::Coincidental),
            Some(CatFormat::AsNt),
        ] {
            let meta = CubeMeta {
                prefix: format!("p{}_", fmt_cat(f)),
                fact_rel: "f".into(),
                n_dims: 2,
                n_measures: 1,
                dr: false,
                plus: false,
                cat_format: f,
                partition_level: None,
                min_support: 1,
            };
            meta.write(&catalog).unwrap();
            assert_eq!(CubeMeta::read(&catalog, &meta.prefix).unwrap().cat_format, f);
        }
    }

    #[test]
    fn missing_meta_errors() {
        let catalog = fresh_catalog("missing");
        assert!(CubeMeta::read(&catalog, "nope_").is_err());
    }
}
