//! The signature pool: classifying NTs vs CATs (§5.2 of the paper).
//!
//! During construction CURE writes TTs immediately but defers every other
//! tuple: it keeps only a **signature** — `(Aggr1..AggrY, R-rowid, NodeId)`
//! — in a bounded in-memory pool. Flushing the pool sorts signatures by
//! aggregate values (and row-id), so equal-aggregate runs become adjacent:
//!
//! * a run of length 1 is a **normal tuple** (NT) — written as
//!   `(R-rowid, aggs)` to its node's NT relation;
//! * a longer run is a set of **common-aggregate tuples** (CATs) — their
//!   aggregates are stored once in `AGGREGATES` and the node relations
//!   store references.
//!
//! The flush also gathers the paper's `k`/`n` statistics (average CATs per
//! aggregate combination vs. average distinct source sets) and fixes the
//! CAT storage format by the §5.1 criterion the first time CATs appear:
//!
//! ```text
//! k/n > Y+1      → format (a)  (common-source CATs prevail)
//! else if Y == 1 → store CATs as NTs
//! else           → format (b)  (coincidental CATs prevail)
//! ```
//!
//! A bounded pool trades optimality for memory: signatures of equal
//! aggregates that land in different flushes are stored redundantly (as
//! NTs or duplicate CAT groups). The paper's Figure 18 measures exactly
//! this trade-off; `flushes()` and `len()` expose what experiments need.

use std::sync::{Arc, OnceLock};

use crate::error::Result;
use crate::lattice::NodeId;
use crate::sink::{CatFormat, CatFormatPolicy, CubeSink};

/// Durable snapshot of a pool's CAT-format decision machinery.
///
/// The §5.1 format criterion accumulates `k`/`n` statistics across every
/// flush that happens *before* a decision is reached. A resumed build must
/// restart from the same accumulated statistics (and the same decision, if
/// one was already made) or it could pick a different CAT format than the
/// original run would have — breaking byte-identical recovery. The build
/// manifest journals this state at every checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolDecisionState {
    /// The format decided so far, if any.
    pub decided: Option<CatFormat>,
    /// Aggregate combinations with ≥ 2 members seen while undecided.
    pub groups: u64,
    /// Total CATs over those combinations (`Σk`).
    pub k_sum: u64,
    /// Total distinct source rowids over those combinations (`Σn`).
    pub n_sum: u64,
    /// Completed flushes so far.
    pub flushes: u64,
    /// Signatures ever pushed.
    pub total_signatures: u64,
}

/// One flush's worth of signatures, sorted by `(aggs, rowid)` and sealed
/// for later replay.
///
/// Parallel builds cube partitions on worker threads, but the NT/CAT
/// classification, the §5.1 format decision and `AGGREGATES` row-id
/// assignment are all order-sensitive. Workers therefore run their pools
/// in *recording* mode: every flush is sorted and sealed into one of
/// these instead of being written, and a single merger replays the sealed
/// flushes — in partition order, against one decision-carrying pool — via
/// [`SignaturePool::apply_sealed`]. Because sorting is deterministic and
/// the merger sees the exact same flush contents in the exact same order
/// as a sequential build would, the output bytes are identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedFlush {
    /// Flat aggregate values, `y` per signature, in sorted order.
    aggs: Vec<i64>,
    /// Source row-ids, parallel to `aggs`.
    rowids: Vec<u64>,
    /// Owning nodes, parallel to `rowids`.
    nodes: Vec<NodeId>,
}

impl SealedFlush {
    /// Number of signatures in this flush.
    pub fn len(&self) -> usize {
        self.rowids.len()
    }

    /// Whether the flush holds no signatures (never true for flushes
    /// produced by [`SignaturePool::flush`], which skips empty pools).
    pub fn is_empty(&self) -> bool {
        self.rowids.is_empty()
    }

    /// Approximate heap footprint in bytes (for merge backpressure).
    pub fn size_bytes(&self) -> usize {
        self.aggs.len() * 8 + self.rowids.len() * 8 + self.nodes.len() * 8
    }
}

/// Bounded pool of deferred tuple signatures.
#[derive(Debug)]
pub struct SignaturePool {
    y: usize,
    capacity: usize,
    aggs: Vec<i64>,
    rowids: Vec<u64>,
    nodes: Vec<NodeId>,
    policy: CatFormatPolicy,
    decided: Option<CatFormat>,
    /// Cross-pool decision cell for parallel builds: the first pool to
    /// decide publishes the format; every other pool adopts it.
    shared: Option<Arc<OnceLock<CatFormat>>>,
    /// Recording mode: flushes are sealed here instead of being written.
    record: Option<Vec<SealedFlush>>,
    flushes: u64,
    total_signatures: u64,
    /// Accumulated decision statistics (until a decision is made).
    k_sum: u64,
    n_sum: u64,
    groups: u64,
    /// Observability counters for the write half of a flush. These are
    /// deliberately *not* part of [`PoolDecisionState`]: they never steer
    /// the build, so journaling them would bloat the manifest for no
    /// recovery value (a resumed build reports only its own run's
    /// counters). Recording pools never classify, so in parallel builds
    /// all counting happens in the single merger pool — deterministic.
    nt_written: u64,
    cat_groups: u64,
    cat_tuples: u64,
    write_secs: f64,
}

impl SignaturePool {
    /// Create a pool holding at most `capacity` signatures of `y`
    /// aggregates each. Capacity 0 disables CAT identification entirely
    /// (every aggregate tuple becomes an NT), matching the paper's remark
    /// about zero-length pools.
    pub fn new(y: usize, capacity: usize, policy: CatFormatPolicy) -> Self {
        let decided = match policy {
            CatFormatPolicy::Force(f) => Some(f),
            CatFormatPolicy::Auto => None,
        };
        SignaturePool {
            y,
            capacity,
            aggs: Vec::new(),
            rowids: Vec::new(),
            nodes: Vec::new(),
            policy,
            decided,
            shared: None,
            record: None,
            flushes: 0,
            total_signatures: 0,
            k_sum: 0,
            n_sum: 0,
            groups: 0,
            nt_written: 0,
            cat_groups: 0,
            cat_tuples: 0,
            write_secs: 0.0,
        }
    }

    /// Share the CAT-format decision with other pools (parallel builds):
    /// whichever pool decides first publishes into the cell; later pools
    /// adopt that format instead of deciding from their own statistics.
    pub fn with_shared_decision(mut self, cell: Arc<OnceLock<CatFormat>>) -> Self {
        if let Some(&f) = cell.get() {
            self.decided = Some(f);
        }
        self.shared = Some(cell);
        self
    }

    /// Switch the pool into recording mode: every flush is sorted and
    /// sealed into an internal log instead of being classified and
    /// written. The sink passed to [`push`](Self::push)/[`flush`](Self::flush)
    /// is never touched. Used by parallel build workers; the merger
    /// replays the log with [`apply_sealed`](Self::apply_sealed).
    pub fn recording(mut self) -> Self {
        self.record = Some(Vec::new());
        self
    }

    /// Take the sealed flushes recorded so far (recording mode only).
    /// The caller should [`flush`](Self::flush) first so the pool's tail
    /// is sealed too.
    pub fn take_recorded(&mut self) -> Vec<SealedFlush> {
        self.record.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Number of signatures currently pooled.
    pub fn len(&self) -> usize {
        self.rowids.len()
    }

    /// Whether the pool holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.rowids.is_empty()
    }

    /// Completed flushes so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Signatures ever pushed.
    pub fn total_signatures(&self) -> u64 {
        self.total_signatures
    }

    /// The CAT format in force (None until decided).
    pub fn cat_format(&self) -> Option<CatFormat> {
        self.decided
    }

    /// Signatures classified as NTs by this pool's flushes. Zero for
    /// recording pools (workers): only the classifying pool counts.
    pub fn nt_written(&self) -> u64 {
        self.nt_written
    }

    /// CAT groups written by this pool's flushes (one per
    /// `write_cat_group` call).
    pub fn cat_groups(&self) -> u64 {
        self.cat_groups
    }

    /// Tuples covered by those CAT groups.
    pub fn cat_tuples(&self) -> u64 {
        self.cat_tuples
    }

    /// Seconds spent classifying and writing flushed signatures.
    pub fn write_secs(&self) -> f64 {
        self.write_secs
    }

    /// Approximate pool memory footprint in bytes at full capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity * (self.y * 8 + 8 + 8)
    }

    /// Add a signature, flushing first if the pool is full (Figure 13,
    /// `ExecutePlan` lines 6–7).
    pub fn push(
        &mut self,
        sink: &mut dyn CubeSink,
        aggs: &[i64],
        rowid: u64,
        node: NodeId,
    ) -> Result<()> {
        debug_assert_eq!(aggs.len(), self.y);
        if self.len() >= self.capacity {
            self.flush(sink)?;
        }
        self.aggs.extend_from_slice(aggs);
        self.rowids.push(rowid);
        self.nodes.push(node);
        self.total_signatures += 1;
        Ok(())
    }

    /// Sort, classify and write out every pooled signature (`
    /// FlushSignatures` in the paper's pseudo-code), emptying the pool.
    ///
    /// In [recording mode](Self::recording) the sorted contents are
    /// sealed into the internal log instead and `sink` is not touched.
    pub fn flush(&mut self, sink: &mut dyn CubeSink) -> Result<()> {
        let Some(sealed) = self.seal_sorted() else {
            return Ok(());
        };
        if let Some(log) = &mut self.record {
            log.push(sealed);
            return Ok(());
        }
        self.apply_writes(sink, &sealed)
    }

    /// Replay a worker-sealed flush into `sink` as if its signatures had
    /// been pooled and flushed here: gather decision statistics, decide
    /// the CAT format if due, and write NTs / CAT groups. The pool must
    /// be empty (the merger pool only ever carries decision state).
    pub fn apply_sealed(
        &mut self,
        sink: &mut (impl CubeSink + ?Sized),
        sealed: &SealedFlush,
    ) -> Result<()> {
        if !self.is_empty() {
            return Err(crate::error::CubeError::Config(
                "apply_sealed requires an empty pool".into(),
            ));
        }
        if sealed.is_empty() {
            return Ok(());
        }
        self.total_signatures += sealed.len() as u64;
        self.apply_writes(sink, sealed)
    }

    /// Drain the pool into a [`SealedFlush`] sorted by `(aggs, rowid)` —
    /// bringing common-aggregate signatures (and common-source ones
    /// within them) to adjacent positions. Returns `None` when empty.
    fn seal_sorted(&mut self) -> Option<SealedFlush> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let y = self.y;
        let aggs = &self.aggs;
        let rowids = &self.rowids;
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            aggs[a * y..(a + 1) * y]
                .cmp(&aggs[b * y..(b + 1) * y])
                .then_with(|| rowids[a].cmp(&rowids[b]))
        });
        let mut out = SealedFlush {
            aggs: Vec::with_capacity(n * y),
            rowids: Vec::with_capacity(n),
            nodes: Vec::with_capacity(n),
        };
        for &w in &idx {
            let t = w as usize;
            out.aggs.extend_from_slice(&self.aggs[t * y..(t + 1) * y]);
            out.rowids.push(self.rowids[t]);
            out.nodes.push(self.nodes[t]);
        }
        self.aggs.clear();
        self.rowids.clear();
        self.nodes.clear();
        Some(out)
    }

    /// The write half of a flush, over pre-sorted signatures: adopt or
    /// make the §5.1 format decision, then emit NTs and CAT groups.
    fn apply_writes(
        &mut self,
        sink: &mut (impl CubeSink + ?Sized),
        sealed: &SealedFlush,
    ) -> Result<()> {
        let t0 = std::time::Instant::now();
        let n = sealed.len();
        let y = self.y;
        let aggs = &sealed.aggs;
        let rowids = &sealed.rowids;
        let nodes = &sealed.nodes;
        let same_aggs = |a: usize, b: usize| aggs[a * y..(a + 1) * y] == aggs[b * y..(b + 1) * y];
        self.flushes += 1;

        // Adopt a decision another pool has published meanwhile.
        if self.decided.is_none() {
            if let Some(cell) = &self.shared {
                if let Some(&f) = cell.get() {
                    self.decided = Some(f);
                }
            }
        }
        // Pass 1 (only while undecided): gather k/n statistics.
        if self.decided.is_none() {
            let mut i = 0usize;
            while i < n {
                let mut j = i + 1;
                while j < n && same_aggs(i, j) {
                    j += 1;
                }
                if j - i > 1 {
                    self.groups += 1;
                    self.k_sum += (j - i) as u64;
                    let mut distinct = 1u64;
                    for w in i + 1..j {
                        if rowids[w] != rowids[w - 1] {
                            distinct += 1;
                        }
                    }
                    self.n_sum += distinct;
                }
                i = j;
            }
            if self.groups > 0 {
                // §5.1: format (a) iff k/n > Y+1; else AsNt when Y == 1;
                // else format (b).
                let f = if self.k_sum > (y as u64 + 1) * self.n_sum {
                    CatFormat::CommonSource
                } else if y == 1 {
                    CatFormat::AsNt
                } else {
                    CatFormat::Coincidental
                };
                self.decided = Some(match &self.shared {
                    Some(cell) => *cell.get_or_init(|| f),
                    None => f,
                });
            }
        }
        if let Some(f) = self.decided {
            if sink.cat_format().is_none() {
                sink.set_cat_format(f);
            }
        }

        // Pass 2: write NTs and CAT groups.
        let mut members: Vec<(NodeId, u64)> = Vec::new();
        let mut i = 0usize;
        while i < n {
            let mut j = i + 1;
            while j < n && same_aggs(i, j) {
                j += 1;
            }
            let agg_slice = &aggs[i * y..(i + 1) * y];
            if j - i == 1 {
                self.nt_written += 1;
                sink.write_nt(nodes[i], rowids[i], agg_slice)?;
            } else {
                let format = self.decided.ok_or_else(|| {
                    crate::error::CubeError::Config(
                        "CAT group flushed without a format decision".into(),
                    )
                })?;
                match format {
                    CatFormat::CommonSource => {
                        // Sub-group by source rowid (already adjacent).
                        let mut s = i;
                        while s < j {
                            let mut e = s + 1;
                            while e < j && rowids[e] == rowids[s] {
                                e += 1;
                            }
                            members.clear();
                            for t in s..e {
                                members.push((nodes[t], rowids[t]));
                            }
                            self.cat_groups += 1;
                            self.cat_tuples += (e - s) as u64;
                            sink.write_cat_group(&members, agg_slice)?;
                            s = e;
                        }
                    }
                    CatFormat::Coincidental | CatFormat::AsNt => {
                        members.clear();
                        for t in i..j {
                            members.push((nodes[t], rowids[t]));
                        }
                        self.cat_groups += 1;
                        self.cat_tuples += (j - i) as u64;
                        sink.write_cat_group(&members, agg_slice)?;
                    }
                }
            }
            i = j;
        }
        self.write_secs += t0.elapsed().as_secs_f64();
        Ok(())
    }

    /// The policy this pool was created with.
    pub fn policy(&self) -> CatFormatPolicy {
        self.policy
    }

    /// Snapshot the decision machinery for the build manifest. Only
    /// meaningful when the pool is empty (i.e. right after a flush) —
    /// pooled-but-unflushed signatures are not part of the snapshot.
    pub fn decision_state(&self) -> PoolDecisionState {
        PoolDecisionState {
            decided: self.decided,
            groups: self.groups,
            k_sum: self.k_sum,
            n_sum: self.n_sum,
            flushes: self.flushes,
            total_signatures: self.total_signatures,
        }
    }

    /// Restore a journaled decision snapshot into this (fresh, empty)
    /// pool so a resumed build continues the format criterion exactly
    /// where the original run left off.
    pub fn restore_decision(&mut self, st: &PoolDecisionState) -> Result<()> {
        if !self.is_empty() || self.total_signatures != 0 {
            return Err(crate::error::CubeError::Config(
                "restore_decision requires a fresh, empty pool".into(),
            ));
        }
        if let (CatFormatPolicy::Force(f), Some(d)) = (self.policy, st.decided) {
            if f != d {
                return Err(crate::error::CubeError::Config(format!(
                    "journaled CAT format {d:?} conflicts with forced policy {f:?}"
                )));
            }
        }
        // `.or`: a Force-policy pool is born decided; an undecided journal
        // (e.g. no CATs seen yet) must not wipe that.
        self.decided = st.decided.or(self.decided);
        self.groups = st.groups;
        self.k_sum = st.k_sum;
        self.n_sum = st.n_sum;
        self.flushes = st.flushes;
        self.total_signatures = st.total_signatures;
        if let (Some(f), Some(cell)) = (st.decided, &self.shared) {
            let _ = cell.set(f);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemSink;

    #[test]
    fn singleton_aggs_become_nts() {
        let mut sink = MemSink::new(2);
        let mut pool = SignaturePool::new(2, 100, CatFormatPolicy::Auto);
        pool.push(&mut sink, &[1, 2], 10, 0).unwrap();
        pool.push(&mut sink, &[3, 4], 20, 1).unwrap();
        pool.flush(&mut sink).unwrap();
        let stats = sink.finish().unwrap();
        assert_eq!(stats.nt_tuples, 2);
        assert_eq!(stats.cat_tuples, 0);
        assert!(pool.cat_format().is_none(), "no CATs → no decision yet");
    }

    #[test]
    fn common_source_cats_choose_format_a() {
        // Many CATs per combo, all from the same source: k/n large.
        let mut sink = MemSink::new(1);
        let mut pool = SignaturePool::new(1, 1000, CatFormatPolicy::Auto);
        // 5 combos × 6 CATs each, all CATs in a combo share the rowid.
        for combo in 0..5i64 {
            for node in 0..6u64 {
                pool.push(&mut sink, &[100 + combo], 7 + combo as u64, node).unwrap();
            }
        }
        pool.flush(&mut sink).unwrap();
        // k = 6, n = 1 → k/n = 6 > Y+1 = 2 → format (a).
        assert_eq!(pool.cat_format(), Some(CatFormat::CommonSource));
        let stats = sink.finish().unwrap();
        assert_eq!(stats.cat_tuples, 30);
        assert_eq!(stats.aggregates_rows, 5); // one per (aggs, rowid) pair
        assert_eq!(stats.nt_tuples, 0);
    }

    #[test]
    fn coincidental_cats_choose_format_b_when_y_gt_1() {
        // Every CAT in a combo has a different source: k == n.
        let mut sink = MemSink::new(2);
        let mut pool = SignaturePool::new(2, 1000, CatFormatPolicy::Auto);
        for combo in 0..4i64 {
            for src in 0..3u64 {
                pool.push(&mut sink, &[combo, combo], 100 + src, src).unwrap();
            }
        }
        pool.flush(&mut sink).unwrap();
        // k/n = 1 ≤ Y+1 and Y > 1 → format (b).
        assert_eq!(pool.cat_format(), Some(CatFormat::Coincidental));
        let stats = sink.finish().unwrap();
        assert_eq!(stats.cat_tuples, 12);
        assert_eq!(stats.aggregates_rows, 4); // one per combo
    }

    #[test]
    fn coincidental_single_aggregate_stores_as_nt() {
        let mut sink = MemSink::new(1);
        let mut pool = SignaturePool::new(1, 1000, CatFormatPolicy::Auto);
        for src in 0..3u64 {
            pool.push(&mut sink, &[42], 100 + src, src).unwrap();
        }
        pool.flush(&mut sink).unwrap();
        // k/n = 1, Y = 1 → CATs stored as NTs.
        assert_eq!(pool.cat_format(), Some(CatFormat::AsNt));
        let stats = sink.finish().unwrap();
        assert_eq!(stats.nt_tuples, 3);
        assert_eq!(stats.cat_tuples, 0);
        assert_eq!(stats.aggregates_rows, 0);
    }

    #[test]
    fn forced_policy_skips_statistics() {
        let mut sink = MemSink::new(1);
        let mut pool = SignaturePool::new(1, 10, CatFormatPolicy::Force(CatFormat::Coincidental));
        assert_eq!(pool.cat_format(), Some(CatFormat::Coincidental));
        for src in 0..3u64 {
            pool.push(&mut sink, &[42], 100 + src, src).unwrap();
        }
        pool.flush(&mut sink).unwrap();
        let stats = sink.finish().unwrap();
        assert_eq!(stats.cat_tuples, 3);
    }

    #[test]
    fn auto_flush_when_full() {
        let mut sink = MemSink::new(1);
        let mut pool = SignaturePool::new(1, 4, CatFormatPolicy::Auto);
        for i in 0..10i64 {
            pool.push(&mut sink, &[i], i as u64, 0).unwrap();
        }
        assert!(pool.flushes() >= 2, "pool of 4 must flush twice for 10 pushes");
        assert!(pool.len() <= 4);
        pool.flush(&mut sink).unwrap();
        assert_eq!(pool.total_signatures(), 10);
        let stats = sink.finish().unwrap();
        assert_eq!(stats.nt_tuples, 10);
    }

    #[test]
    fn zero_capacity_pool_disables_cats() {
        let mut sink = MemSink::new(1);
        let mut pool = SignaturePool::new(1, 0, CatFormatPolicy::Auto);
        // Identical aggregates everywhere — would be CATs with a real pool.
        for i in 0..5u64 {
            pool.push(&mut sink, &[7], 100 + i, i).unwrap();
        }
        pool.flush(&mut sink).unwrap();
        let stats = sink.finish().unwrap();
        assert_eq!(stats.nt_tuples, 5, "every signature flushed alone → NT");
        assert_eq!(stats.cat_tuples, 0);
    }

    #[test]
    fn small_pool_loses_some_cats_but_not_correctness() {
        // Same data with a big pool vs a pool of 2: the small pool stores
        // more tuples as NTs (redundantly) but the union of stored
        // aggregate information is identical.
        let data: Vec<(i64, u64, NodeId)> =
            vec![(7, 1, 0), (7, 1, 1), (9, 2, 0), (7, 1, 2), (9, 3, 1)];
        let run = |cap: usize| {
            let mut sink = MemSink::new(2);
            let mut pool =
                SignaturePool::new(2, cap, CatFormatPolicy::Force(CatFormat::Coincidental));
            for &(a, r, n) in &data {
                pool.push(&mut sink, &[a, a], r, n).unwrap();
            }
            pool.flush(&mut sink).unwrap();
            sink.finish().unwrap()
        };
        let big = run(100);
        let small = run(2);
        assert_eq!(big.total_tuples(), small.total_tuples(), "every tuple stored exactly once");
        assert!(small.nt_tuples >= big.nt_tuples, "small pool may miss CATs");
        assert!(small.total_bytes() >= big.total_bytes(), "missed CATs cost space");
    }

    #[test]
    fn flush_of_empty_pool_is_noop() {
        let mut sink = MemSink::new(1);
        let mut pool = SignaturePool::new(1, 10, CatFormatPolicy::Auto);
        pool.flush(&mut sink).unwrap();
        assert_eq!(pool.flushes(), 0);
    }

    #[test]
    fn capacity_bytes_matches_paper_shape() {
        // The paper: a pool of 10^6 signatures occupies ≈ (Y+2)·4 MB with
        // 4-byte fields; ours uses 8-byte fields → (Y+2)·8 MB.
        let pool = SignaturePool::new(2, 1_000_000, CatFormatPolicy::Auto);
        assert_eq!(pool.capacity_bytes(), 1_000_000 * (2 * 8 + 16));
    }

    #[test]
    fn decision_state_roundtrip_reaches_same_format() {
        // Split a workload across two pools at a flush boundary: the second
        // pool, restored from the first's snapshot, must reach the same
        // format decision as one pool seeing the whole stream.
        let data: Vec<(i64, u64, NodeId)> =
            (0..4i64).flat_map(|combo| (0..3u64).map(move |src| (combo, 100 + src, src))).collect();
        // Reference: one pool, one flush over everything.
        let mut ref_sink = MemSink::new(2);
        let mut ref_pool = SignaturePool::new(2, 1000, CatFormatPolicy::Auto);
        for &(a, r, n) in &data {
            ref_pool.push(&mut ref_sink, &[a, a], r, n).unwrap();
        }
        ref_pool.flush(&mut ref_sink).unwrap();
        let want = ref_pool.cat_format().expect("reference decides");

        // Resumed: first pool flushes half, snapshot, second pool restores
        // and flushes the rest.
        let mut sink = MemSink::new(2);
        let mut p1 = SignaturePool::new(2, 1000, CatFormatPolicy::Auto);
        for &(a, r, n) in &data[..6] {
            p1.push(&mut sink, &[a, a], r, n).unwrap();
        }
        p1.flush(&mut sink).unwrap();
        let snap = p1.decision_state();
        let mut p2 = SignaturePool::new(2, 1000, CatFormatPolicy::Auto);
        p2.restore_decision(&snap).unwrap();
        assert_eq!(p2.flushes(), p1.flushes());
        for &(a, r, n) in &data[6..] {
            p2.push(&mut sink, &[a, a], r, n).unwrap();
        }
        p2.flush(&mut sink).unwrap();
        assert_eq!(p2.cat_format(), Some(want));
        assert_eq!(p2.total_signatures(), data.len() as u64);
    }

    #[test]
    fn restore_decision_rejects_dirty_pool_and_policy_conflict() {
        let mut sink = MemSink::new(1);
        let mut dirty = SignaturePool::new(1, 10, CatFormatPolicy::Auto);
        dirty.push(&mut sink, &[1], 1, 0).unwrap();
        assert!(dirty.restore_decision(&PoolDecisionState::default()).is_err());

        let mut forced = SignaturePool::new(1, 10, CatFormatPolicy::Force(CatFormat::AsNt));
        let snap =
            PoolDecisionState { decided: Some(CatFormat::Coincidental), ..Default::default() };
        assert!(forced.restore_decision(&snap).is_err());
    }

    #[test]
    fn recording_pool_replays_identically() {
        // A recording pool seals its flushes without touching the sink;
        // replaying them through apply_sealed must reproduce exactly what
        // a direct pool produces — same relations, same AGGREGATES order,
        // same decision state. Capacity 4 forces several flush boundaries.
        let data: Vec<(i64, u64, NodeId)> = vec![
            (7, 1, 0),
            (7, 1, 1),
            (9, 2, 0),
            (7, 1, 2),
            (9, 3, 1),
            (5, 4, 2),
            (9, 2, 3),
            (5, 5, 0),
            (7, 6, 1),
        ];
        let mut ref_sink = MemSink::new(2);
        let mut ref_pool = SignaturePool::new(2, 4, CatFormatPolicy::Auto);
        for &(a, r, n) in &data {
            ref_pool.push(&mut ref_sink, &[a, a * 3], r, n).unwrap();
        }
        ref_pool.flush(&mut ref_sink).unwrap();

        let mut dummy = MemSink::new(2);
        let mut rec_pool = SignaturePool::new(2, 4, CatFormatPolicy::Auto).recording();
        for &(a, r, n) in &data {
            rec_pool.push(&mut dummy, &[a, a * 3], r, n).unwrap();
        }
        rec_pool.flush(&mut dummy).unwrap();
        assert!(dummy.tts.is_empty() && dummy.nts.is_empty() && dummy.cats.is_empty());
        assert!(rec_pool.cat_format().is_none(), "recording pools never decide");

        let sealed = rec_pool.take_recorded();
        assert_eq!(sealed.len() as u64, ref_pool.flushes());
        let mut merged = MemSink::new(2);
        let mut merge_pool = SignaturePool::new(2, 4, CatFormatPolicy::Auto);
        for s in &sealed {
            merge_pool.apply_sealed(&mut merged, s).unwrap();
        }
        assert_eq!(merged.nts, ref_sink.nts);
        assert_eq!(merged.cats, ref_sink.cats);
        assert_eq!(merged.aggregates, ref_sink.aggregates);
        assert_eq!(merge_pool.decision_state(), ref_pool.decision_state());
    }

    #[test]
    fn apply_sealed_rejects_dirty_pool() {
        let mut sink = MemSink::new(1);
        let mut rec = SignaturePool::new(1, 10, CatFormatPolicy::Auto).recording();
        rec.push(&mut sink, &[1], 1, 0).unwrap();
        rec.flush(&mut sink).unwrap();
        let sealed = rec.take_recorded();
        let mut dirty = SignaturePool::new(1, 10, CatFormatPolicy::Auto);
        dirty.push(&mut sink, &[2], 2, 0).unwrap();
        assert!(dirty.apply_sealed(&mut sink, &sealed[0]).is_err());
    }

    #[test]
    fn mixed_nt_and_cat_in_one_flush() {
        let mut sink = MemSink::new(2);
        let mut pool = SignaturePool::new(2, 100, CatFormatPolicy::Auto);
        pool.push(&mut sink, &[1, 1], 10, 0).unwrap(); // NT
        pool.push(&mut sink, &[2, 2], 11, 1).unwrap(); // CAT group…
        pool.push(&mut sink, &[2, 2], 12, 2).unwrap(); // …of two
        pool.flush(&mut sink).unwrap();
        let stats = sink.finish().unwrap();
        assert_eq!(stats.nt_tuples, 1);
        assert_eq!(stats.cat_tuples, 2);
    }
}
