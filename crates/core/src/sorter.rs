//! Segment sorting for the cubing recursion.
//!
//! Every `FollowEdge` call re-sorts its input segment by one dimension at
//! one hierarchy level (§6, Figure 13). The paper notes (§7, "Synthetic
//! datasets") that BUC-based methods degrade under skew with comparison
//! sorts and that **CountingSort** fixes this — level ids are small dense
//! integers, so counting sort is both O(n + cardinality) and insensitive to
//! value distribution. The [`Sorter`] picks counting sort whenever the
//! level cardinality is small relative to the segment, falling back to an
//! unstable comparison sort otherwise, and keeps its scratch buffers across
//! calls to stay allocation-free in the hot loop.

/// Sorting algorithm actually used for a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortAlgo {
    /// O(n + cardinality) counting sort (skew-insensitive).
    Counting,
    /// `slice::sort_unstable_by_key` comparison sort.
    Comparison,
}

/// Policy for choosing the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortPolicy {
    /// Counting sort when `cardinality ≤ 4·n + 1024`, else comparison.
    #[default]
    Auto,
    /// Always counting sort (allocates `cardinality` counters).
    ForceCounting,
    /// Always comparison sort (the configuration the paper warns about
    /// under skew; kept for the skew ablation benchmark).
    ForceComparison,
}

/// Reusable segment sorter with scratch buffers and call statistics.
#[derive(Debug, Default)]
pub struct Sorter {
    counts: Vec<u32>,
    scratch: Vec<u32>,
    policy: SortPolicy,
    counting_calls: u64,
    comparison_calls: u64,
    secs: f64,
}

impl Sorter {
    /// Create a sorter with the given policy.
    pub fn new(policy: SortPolicy) -> Self {
        Sorter { policy, ..Default::default() }
    }

    /// Counting-sort invocations so far.
    pub fn counting_calls(&self) -> u64 {
        self.counting_calls
    }

    /// Comparison-sort invocations so far.
    pub fn comparison_calls(&self) -> u64 {
        self.comparison_calls
    }

    /// Wall-clock seconds spent sorting (trivial segments excluded).
    pub fn sort_secs(&self) -> f64 {
        self.secs
    }

    fn choose(&self, n: usize, cardinality: u32) -> SortAlgo {
        match self.policy {
            SortPolicy::ForceCounting => SortAlgo::Counting,
            SortPolicy::ForceComparison => SortAlgo::Comparison,
            SortPolicy::Auto => {
                if (cardinality as usize) <= 4 * n + 1024 {
                    SortAlgo::Counting
                } else {
                    SortAlgo::Comparison
                }
            }
        }
    }

    /// Sort `idx` ascending by `key(idx[i])`, where keys lie in
    /// `0..cardinality`. Returns the algorithm used.
    ///
    /// `idx` holds tuple positions; `key` is typically a closure reading
    /// the tuple's dimension value at the current hierarchy level.
    pub fn sort_by_key(
        &mut self,
        idx: &mut [u32],
        cardinality: u32,
        mut key: impl FnMut(u32) -> u32,
    ) -> SortAlgo {
        if idx.len() <= 1 {
            return SortAlgo::Counting; // nothing to do; attribute to the cheap path
        }
        // Timed only past the early return so trivial segments (the vast
        // majority of calls deep in the recursion) stay clock-free.
        let t0 = std::time::Instant::now();
        let algo = match self.choose(idx.len(), cardinality) {
            SortAlgo::Comparison => {
                self.comparison_calls += 1;
                idx.sort_unstable_by_key(|&t| key(t));
                SortAlgo::Comparison
            }
            SortAlgo::Counting => {
                self.counting_calls += 1;
                let card = cardinality as usize;
                if self.counts.len() < card {
                    self.counts.resize(card, 0);
                }
                // Zero only the prefix we use.
                self.counts[..card].fill(0);
                for &t in idx.iter() {
                    self.counts[key(t) as usize] += 1;
                }
                // Exclusive prefix sums → start offsets.
                let mut sum = 0u32;
                for c in self.counts[..card].iter_mut() {
                    let n = *c;
                    *c = sum;
                    sum += n;
                }
                if self.scratch.len() < idx.len() {
                    self.scratch.resize(idx.len(), 0);
                }
                for &t in idx.iter() {
                    let k = key(t) as usize;
                    self.scratch[self.counts[k] as usize] = t;
                    self.counts[k] += 1;
                }
                idx.copy_from_slice(&self.scratch[..idx.len()]);
                SortAlgo::Counting
            }
        };
        self.secs += t0.elapsed().as_secs_f64();
        algo
    }
}

/// Iterate the equal-key segments of a sorted index slice.
///
/// Yields `(start, end)` half-open ranges such that `key` is constant on
/// `idx[start..end]` — the paper's `GetNextSegment`.
pub fn for_each_segment(
    idx: &[u32],
    mut key: impl FnMut(u32) -> u32,
    mut f: impl FnMut(usize, usize),
) {
    let mut start = 0usize;
    while start < idx.len() {
        let k = key(idx[start]);
        let mut end = start + 1;
        while end < idx.len() && key(idx[end]) == k {
            end += 1;
        }
        f(start, end);
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_sorted(idx: &[u32], key: impl Fn(u32) -> u32) -> bool {
        idx.windows(2).all(|w| key(w[0]) <= key(w[1]))
    }

    #[test]
    fn counting_sort_small_cardinality() {
        let vals: Vec<u32> = (0..1000).map(|i| (i * 7 + 3) % 5).collect();
        let mut idx: Vec<u32> = (0..1000).collect();
        let mut s = Sorter::new(SortPolicy::Auto);
        let algo = s.sort_by_key(&mut idx, 5, |t| vals[t as usize]);
        assert_eq!(algo, SortAlgo::Counting);
        assert!(keys_sorted(&idx, |t| vals[t as usize]));
        assert_eq!(s.counting_calls(), 1);
    }

    #[test]
    fn comparison_for_huge_cardinality() {
        let vals: Vec<u32> = (0..100).map(|i| i * 1_000_003).collect();
        let mut idx: Vec<u32> = (0..100).rev().collect();
        let mut s = Sorter::new(SortPolicy::Auto);
        let algo = s.sort_by_key(&mut idx, u32::MAX, |t| vals[t as usize]);
        assert_eq!(algo, SortAlgo::Comparison);
        assert!(keys_sorted(&idx, |t| vals[t as usize]));
    }

    #[test]
    fn forced_policies() {
        let vals: Vec<u32> = vec![3, 1, 2, 0];
        let mut idx: Vec<u32> = (0..4).collect();
        let mut s = Sorter::new(SortPolicy::ForceComparison);
        assert_eq!(s.sort_by_key(&mut idx, 4, |t| vals[t as usize]), SortAlgo::Comparison);
        let mut idx2: Vec<u32> = (0..4).collect();
        let mut s2 = Sorter::new(SortPolicy::ForceCounting);
        assert_eq!(s2.sort_by_key(&mut idx2, 4, |t| vals[t as usize]), SortAlgo::Counting);
        assert_eq!(idx, idx2);
    }

    #[test]
    fn counting_matches_comparison_on_random_data() {
        let mut x = 88172645463325252u64;
        let vals: Vec<u32> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 97) as u32
            })
            .collect();
        let mut a: Vec<u32> = (0..5000).collect();
        let mut b = a.clone();
        Sorter::new(SortPolicy::ForceCounting).sort_by_key(&mut a, 97, |t| vals[t as usize]);
        Sorter::new(SortPolicy::ForceComparison).sort_by_key(&mut b, 97, |t| vals[t as usize]);
        // Keys must agree position-by-position (ties may permute indexes).
        let ka: Vec<u32> = a.iter().map(|&t| vals[t as usize]).collect();
        let kb: Vec<u32> = b.iter().map(|&t| vals[t as usize]).collect();
        assert_eq!(ka, kb);
        // Both are permutations of the input.
        let mut sa = a.clone();
        sa.sort_unstable();
        assert_eq!(sa, (0..5000).collect::<Vec<u32>>());
    }

    #[test]
    fn scratch_reuse_across_calls() {
        let mut s = Sorter::new(SortPolicy::ForceCounting);
        for round in 0..10u32 {
            let vals: Vec<u32> = (0..100).map(|i| (i + round) % 10).collect();
            let mut idx: Vec<u32> = (0..100).collect();
            s.sort_by_key(&mut idx, 10, |t| vals[t as usize]);
            assert!(keys_sorted(&idx, |t| vals[t as usize]), "round {round}");
        }
        assert_eq!(s.counting_calls(), 10);
    }

    #[test]
    fn empty_and_singleton() {
        let mut s = Sorter::new(SortPolicy::Auto);
        let mut idx: Vec<u32> = vec![];
        s.sort_by_key(&mut idx, 10, |_| 0);
        let mut idx = vec![5u32];
        s.sort_by_key(&mut idx, 10, |_| 0);
        assert_eq!(idx, vec![5]);
        assert_eq!(s.counting_calls() + s.comparison_calls(), 0, "trivial segments skip sorting");
    }

    #[test]
    fn segments_enumeration() {
        let idx = [0u32, 1, 2, 3, 4, 5];
        let keys = [1u32, 1, 2, 2, 2, 9];
        let mut segs = Vec::new();
        for_each_segment(&idx, |t| keys[t as usize], |s, e| segs.push((s, e)));
        assert_eq!(segs, vec![(0, 2), (2, 5), (5, 6)]);
    }

    #[test]
    fn segments_of_empty() {
        let mut called = false;
        for_each_segment(&[], |_| 0, |_, _| called = true);
        assert!(!called);
    }
}
