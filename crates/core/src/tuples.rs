//! In-memory tuple sets: the unit of cubing work.
//!
//! CURE's recursion operates on a loaded tuple set — either the whole fact
//! table (when it fits in the memory budget), one sound partition, or the
//! small aggregated relation *N* built during partitioning (§4). To make
//! all three cases uniform, every in-memory tuple carries:
//!
//! * `dims` — leaf-level dimension ids (for *N*, dimension 0 holds a
//!   *representative leaf* of its level-`L+1` group, valid for lookups at
//!   levels ≥ L+1),
//! * `aggs` — the running aggregate values (original tuples: the measures),
//! * `count` — how many original fact tuples it represents (original: 1),
//! * `rowid` — the minimum original row-id it represents.
//!
//! `count` is what makes trivial-tuple detection correct when cubing over
//! *N*: a group is trivial only when the **total represented count** is 1,
//! not when the group has one (already aggregated) tuple.

use cure_storage::{ColType, Column, HeapFile, Schema};

use crate::error::{CubeError, Result};

/// A columnar-ish (row-major, flat-buffer) set of cube input tuples.
#[derive(Debug, Clone)]
pub struct Tuples {
    n_dims: usize,
    n_measures: usize,
    dims: Vec<u32>,
    aggs: Vec<i64>,
    counts: Vec<u64>,
    rowids: Vec<u64>,
}

impl Tuples {
    /// Create an empty set for `n_dims` dimensions and `n_measures`
    /// measures.
    pub fn new(n_dims: usize, n_measures: usize) -> Self {
        Tuples {
            n_dims,
            n_measures,
            dims: Vec::new(),
            aggs: Vec::new(),
            counts: Vec::new(),
            rowids: Vec::new(),
        }
    }

    /// Pre-allocate for `n` tuples.
    pub fn with_capacity(n_dims: usize, n_measures: usize, n: usize) -> Self {
        Tuples {
            n_dims,
            n_measures,
            dims: Vec::with_capacity(n * n_dims),
            aggs: Vec::with_capacity(n * n_measures),
            counts: Vec::with_capacity(n),
            rowids: Vec::with_capacity(n),
        }
    }

    /// Number of dimensions per tuple.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Number of measures per tuple.
    pub fn n_measures(&self) -> usize {
        self.n_measures
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the set holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Append an original fact tuple (count 1).
    pub fn push_fact(&mut self, dims: &[u32], measures: &[i64], rowid: u64) {
        self.push(dims, measures, 1, rowid);
    }

    /// Append a (possibly pre-aggregated) tuple.
    pub fn push(&mut self, dims: &[u32], aggs: &[i64], count: u64, rowid: u64) {
        debug_assert_eq!(dims.len(), self.n_dims);
        debug_assert_eq!(aggs.len(), self.n_measures);
        self.dims.extend_from_slice(dims);
        self.aggs.extend_from_slice(aggs);
        self.counts.push(count);
        self.rowids.push(rowid);
    }

    /// Dimension `d` of tuple `t` (leaf id).
    #[inline]
    pub fn dim(&self, t: usize, d: usize) -> u32 {
        self.dims[t * self.n_dims + d]
    }

    /// All dimension ids of tuple `t`.
    #[inline]
    pub fn dims_of(&self, t: usize) -> &[u32] {
        &self.dims[t * self.n_dims..(t + 1) * self.n_dims]
    }

    /// Aggregate values of tuple `t`.
    #[inline]
    pub fn aggs_of(&self, t: usize) -> &[i64] {
        &self.aggs[t * self.n_measures..(t + 1) * self.n_measures]
    }

    /// Represented fact-tuple count of tuple `t`.
    #[inline]
    pub fn count(&self, t: usize) -> u64 {
        self.counts[t]
    }

    /// Minimum original row-id of tuple `t`.
    #[inline]
    pub fn rowid(&self, t: usize) -> u64 {
        self.rowids[t]
    }

    /// Approximate in-memory footprint in bytes (used against the memory
    /// budget when deciding whether partitioning is needed).
    pub fn mem_bytes(&self) -> usize {
        self.dims.len() * 4 + self.aggs.len() * 8 + self.counts.len() * 8 + self.rowids.len() * 8
    }

    /// Per-tuple in-memory footprint for a given shape.
    pub fn tuple_bytes(n_dims: usize, n_measures: usize) -> usize {
        n_dims * 4 + n_measures * 8 + 8 + 8
    }

    /// The on-disk schema of a fact table with this shape: `d0..` `U32`
    /// columns then `m0..` `I64` columns. Row-ids are implicit (dense).
    pub fn fact_schema(n_dims: usize, n_measures: usize) -> Schema {
        Schema::fact(n_dims, n_measures)
    }

    /// The on-disk schema of a spill partition: dims, aggs, then explicit
    /// `count` and `rowid` columns (partitions lose positional row-ids).
    pub fn partition_schema(n_dims: usize, n_measures: usize) -> Schema {
        let mut cols = Vec::with_capacity(n_dims + n_measures + 2);
        for i in 0..n_dims {
            cols.push(Column::new(format!("d{i}"), ColType::U32));
        }
        for i in 0..n_measures {
            cols.push(Column::new(format!("m{i}"), ColType::I64));
        }
        cols.push(Column::new("count", ColType::U64));
        cols.push(Column::new("rowid", ColType::U64));
        Schema::new(cols)
    }

    /// Load a whole on-disk fact table (schema
    /// [`fact_schema`](Self::fact_schema)); row-ids are the dense
    /// positions.
    pub fn load_fact(heap: &HeapFile, n_dims: usize, n_measures: usize) -> Result<Self> {
        let schema = heap.schema();
        if schema.arity() != n_dims + n_measures {
            return Err(CubeError::Schema(format!(
                "fact relation has {} columns, expected {}",
                schema.arity(),
                n_dims + n_measures
            )));
        }
        let mut t = Tuples::with_capacity(n_dims, n_measures, heap.num_rows() as usize);
        let mut dims = vec![0u32; n_dims];
        let mut aggs = vec![0i64; n_measures];
        heap.for_each_row(|rowid, row| {
            for (d, v) in dims.iter_mut().enumerate() {
                *v = Schema::read_u32_at(row, schema.offset(d));
            }
            for (m, v) in aggs.iter_mut().enumerate() {
                *v = Schema::read_i64_at(row, schema.offset(n_dims + m));
            }
            t.push_fact(&dims, &aggs, rowid);
        })?;
        Ok(t)
    }

    /// Load a spill partition (schema
    /// [`partition_schema`](Self::partition_schema)).
    pub fn load_partition(heap: &HeapFile, n_dims: usize, n_measures: usize) -> Result<Self> {
        let schema = heap.schema();
        if schema.arity() != n_dims + n_measures + 2 {
            return Err(CubeError::Schema(format!(
                "partition relation has {} columns, expected {}",
                schema.arity(),
                n_dims + n_measures + 2
            )));
        }
        let mut t = Tuples::with_capacity(n_dims, n_measures, heap.num_rows() as usize);
        let mut dims = vec![0u32; n_dims];
        let mut aggs = vec![0i64; n_measures];
        heap.for_each_row(|_, row| {
            for (d, v) in dims.iter_mut().enumerate() {
                *v = Schema::read_u32_at(row, schema.offset(d));
            }
            for (m, v) in aggs.iter_mut().enumerate() {
                *v = Schema::read_i64_at(row, schema.offset(n_dims + m));
            }
            let count = Schema::read_u64_at(row, schema.offset(n_dims + n_measures));
            let rowid = Schema::read_u64_at(row, schema.offset(n_dims + n_measures + 1));
            t.push(&dims, &aggs, count, rowid);
        })?;
        Ok(t)
    }

    /// Write this set in the partition layout (schema
    /// [`partition_schema`](Self::partition_schema)), preserving counts and
    /// rowids so [`load_partition`](Self::load_partition) restores the set
    /// in the same order. Used to persist the aggregated relation *N* for
    /// crash recovery: a resumed build reloads *N* instead of re-scanning
    /// the fact table.
    pub fn store_partition(&self, heap: &mut HeapFile) -> Result<()> {
        let schema = heap.schema().clone();
        if schema.arity() != self.n_dims + self.n_measures + 2 {
            return Err(CubeError::Schema(format!(
                "partition relation has {} columns, expected {}",
                schema.arity(),
                self.n_dims + self.n_measures + 2
            )));
        }
        let mut row = vec![0u8; schema.row_width()];
        for t in 0..self.len() {
            for (d, &v) in self.dims_of(t).iter().enumerate() {
                row[schema.offset(d)..schema.offset(d) + 4].copy_from_slice(&v.to_le_bytes());
            }
            for (m, &v) in self.aggs_of(t).iter().enumerate() {
                let off = schema.offset(self.n_dims + m);
                row[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
            let off = schema.offset(self.n_dims + self.n_measures);
            row[off..off + 8].copy_from_slice(&self.count(t).to_le_bytes());
            let off = schema.offset(self.n_dims + self.n_measures + 1);
            row[off..off + 8].copy_from_slice(&self.rowid(t).to_le_bytes());
            heap.append_raw(&row)?;
        }
        heap.flush()?;
        Ok(())
    }

    /// Write this set as an on-disk fact table (counts/rowids dropped;
    /// intended for original, count-1 data — debug-asserted).
    pub fn store_fact(&self, heap: &mut HeapFile) -> Result<()> {
        let w = heap.schema().row_width();
        let mut row = vec![0u8; w];
        let schema = heap.schema().clone();
        for t in 0..self.len() {
            debug_assert_eq!(self.count(t), 1, "store_fact expects original tuples");
            for (d, &v) in self.dims_of(t).iter().enumerate() {
                row[schema.offset(d)..schema.offset(d) + 4].copy_from_slice(&v.to_le_bytes());
            }
            for (m, &v) in self.aggs_of(t).iter().enumerate() {
                let off = schema.offset(self.n_dims + m);
                row[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
            heap.append_raw(&row)?;
        }
        heap.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cure_storage::{Catalog, Value};

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_tuples_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    #[test]
    fn push_and_access() {
        let mut t = Tuples::new(3, 2);
        t.push_fact(&[1, 2, 3], &[10, 20], 0);
        t.push(&[4, 5, 6], &[30, 40], 7, 42);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dims_of(0), &[1, 2, 3]);
        assert_eq!(t.aggs_of(1), &[30, 40]);
        assert_eq!(t.count(0), 1);
        assert_eq!(t.count(1), 7);
        assert_eq!(t.rowid(1), 42);
        assert_eq!(t.dim(1, 2), 6);
    }

    #[test]
    fn mem_accounting() {
        let mut t = Tuples::new(2, 1);
        t.push_fact(&[0, 0], &[0], 0);
        assert_eq!(t.mem_bytes(), 2 * 4 + 8 + 8 + 8);
        assert_eq!(Tuples::tuple_bytes(2, 1), t.mem_bytes());
    }

    #[test]
    fn fact_store_load_roundtrip() {
        let cat = fresh_catalog("fact");
        let mut src = Tuples::new(2, 2);
        for i in 0..1000u32 {
            src.push_fact(&[i % 7, i % 11], &[i as i64, -(i as i64)], i as u64);
        }
        let mut heap = cat.create_relation("facts", Tuples::fact_schema(2, 2)).unwrap();
        src.store_fact(&mut heap).unwrap();
        let loaded = Tuples::load_fact(&heap, 2, 2).unwrap();
        assert_eq!(loaded.len(), 1000);
        for t in 0..1000 {
            assert_eq!(loaded.dims_of(t), src.dims_of(t));
            assert_eq!(loaded.aggs_of(t), src.aggs_of(t));
            assert_eq!(loaded.rowid(t), t as u64);
            assert_eq!(loaded.count(t), 1);
        }
    }

    #[test]
    fn partition_roundtrip_preserves_counts_and_rowids() {
        let cat = fresh_catalog("part");
        let schema = Tuples::partition_schema(2, 1);
        let mut heap = cat.create_relation("p0", schema.clone()).unwrap();
        // Write partition rows through the raw Value API.
        heap.append(&[
            Value::U32(3),
            Value::U32(4),
            Value::I64(99),
            Value::U64(5),
            Value::U64(1234),
        ])
        .unwrap();
        heap.flush().unwrap();
        let t = Tuples::load_partition(&heap, 2, 1).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.dims_of(0), &[3, 4]);
        assert_eq!(t.aggs_of(0), &[99]);
        assert_eq!(t.count(0), 5);
        assert_eq!(t.rowid(0), 1234);
    }

    #[test]
    fn partition_store_load_roundtrip_preserves_order() {
        let cat = fresh_catalog("partstore");
        let mut src = Tuples::new(2, 1);
        for i in 0..500u32 {
            src.push(&[i % 5, i % 9], &[i as i64 * 3], (i % 4) as u64 + 1, 1000 + i as u64);
        }
        let mut heap = cat.create_relation("n", Tuples::partition_schema(2, 1)).unwrap();
        src.store_partition(&mut heap).unwrap();
        let loaded = Tuples::load_partition(&heap, 2, 1).unwrap();
        assert_eq!(loaded.len(), src.len());
        for t in 0..src.len() {
            assert_eq!(loaded.dims_of(t), src.dims_of(t));
            assert_eq!(loaded.aggs_of(t), src.aggs_of(t));
            assert_eq!(loaded.count(t), src.count(t));
            assert_eq!(loaded.rowid(t), src.rowid(t));
        }
        // Shape mismatches are rejected up front.
        let mut wrong = cat.create_relation("w", Tuples::partition_schema(3, 1)).unwrap();
        assert!(src.store_partition(&mut wrong).is_err());
    }

    #[test]
    fn load_fact_arity_mismatch_rejected() {
        let cat = fresh_catalog("arity");
        let heap = cat.create_relation("f", Tuples::fact_schema(2, 1)).unwrap();
        assert!(Tuples::load_fact(&heap, 3, 1).is_err());
        assert!(Tuples::load_partition(&heap, 2, 1).is_err());
    }
}
