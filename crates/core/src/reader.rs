//! Reconstructing node contents from an in-memory CURE cube.
//!
//! A CURE cube never materializes plain `(dims, aggs)` tuples — NTs hold
//! row-id references, CATs hold references into `AGGREGATES`, and TTs are
//! stored once at their least detailed node and *shared* with the whole
//! plan subtree below it. [`MemCubeReader`] inverts all of that against a
//! [`MemSink`]: given a node it returns the full logical contents, exactly
//! what a ROLAP engine would produce for the corresponding GROUP BY.
//!
//! This is the in-memory twin of the on-disk reader in `cure-query`; tests
//! use it to compare CURE output against the naive oracle.

use cure_storage::hash::FxHashMap;

use crate::error::{CubeError, Result};
use crate::hierarchy::{CubeSchema, LevelIdx};
use crate::lattice::{NodeCoder, NodeId};
use crate::plan::PlanSpec;
use crate::sink::MemSink;
use crate::tuples::Tuples;

/// Reads logical node contents out of a [`MemSink`]-backed cube.
pub struct MemCubeReader<'a> {
    schema: &'a CubeSchema,
    sink: &'a MemSink,
    fact: &'a Tuples,
    plan: PlanSpec,
    coder: NodeCoder,
    /// Original row-id → position in `fact`.
    rowid_pos: FxHashMap<u64, usize>,
}

impl<'a> MemCubeReader<'a> {
    /// Create a reader.
    ///
    /// `fact` must be the original fact tuples the cube was built from
    /// (their `rowid`s are what NT/TT references point at).
    /// `partition_level` must match the build (None for in-memory builds).
    pub fn new(
        schema: &'a CubeSchema,
        sink: &'a MemSink,
        fact: &'a Tuples,
        partition_level: Option<LevelIdx>,
    ) -> Result<Self> {
        let plan = match partition_level {
            None => PlanSpec::new(schema),
            Some(l) => PlanSpec::partitioned(schema, l)?,
        };
        let coder = NodeCoder::new(schema);
        let mut rowid_pos = FxHashMap::default();
        for i in 0..fact.len() {
            if rowid_pos.insert(fact.rowid(i), i).is_some() {
                return Err(CubeError::Schema(format!(
                    "duplicate row-id {} in fact tuples",
                    fact.rowid(i)
                )));
            }
        }
        Ok(MemCubeReader { schema, sink, fact, plan, coder, rowid_pos })
    }

    fn project(&self, levels: &[LevelIdx], rowid: u64) -> Result<Vec<u32>> {
        let &pos = self
            .rowid_pos
            .get(&rowid)
            .ok_or_else(|| CubeError::Schema(format!("row-id {rowid} not in fact tuples")))?;
        Ok(self
            .schema
            .dims()
            .iter()
            .enumerate()
            .filter(|(d, _)| !self.coder.is_all(levels, *d))
            .map(|(d, dim)| dim.value_at(levels[d], self.fact.dim(pos, d)))
            .collect())
    }

    /// The complete logical contents of `node`: `(grouping values,
    /// aggregates)` pairs, unordered.
    pub fn node_contents(&self, node: NodeId) -> Result<Vec<(Vec<u32>, Vec<i64>)>> {
        let levels = self.coder.decode(node)?;
        let mut out = Vec::new();
        // Normal tuples: resolve the R-rowid reference for dims.
        if let Some(nts) = self.sink.nts.get(&node) {
            for (rowid, aggs) in nts {
                out.push((self.project(&levels, *rowid)?, aggs.clone()));
            }
        }
        // Common-aggregate tuples: R-rowid for dims, A-rowid for aggs.
        if let Some(cats) = self.sink.cats.get(&node) {
            for &(rowid, a_rowid) in cats {
                let aggs = &self.sink.aggregates[a_rowid as usize].1;
                out.push((self.project(&levels, rowid)?, aggs.clone()));
            }
        }
        // Trivial tuples: shared along the plan path from the pass root.
        for m in self.plan.path_to(node)? {
            if let Some(tts) = self.sink.tts.get(&m) {
                for &rowid in tts {
                    let &pos = self.rowid_pos.get(&rowid).ok_or_else(|| {
                        CubeError::Schema(format!("TT row-id {rowid} not in fact tuples"))
                    })?;
                    out.push((self.project(&levels, rowid)?, self.fact.aggs_of(pos).to_vec()));
                }
            }
        }
        Ok(out)
    }

    /// The node id coder (convenience for tests).
    pub fn coder(&self) -> &NodeCoder {
        &self.coder
    }
}
