//! Cube output sinks: where classified tuples get stored.
//!
//! §5 of the paper defines the storage side of CURE: per cube node up to
//! three relations — **NT** (normal tuples), **TT** (trivial tuples),
//! **CAT** (common-aggregate tuples) — plus one shared `AGGREGATES`
//! relation. The [`CubeSink`] trait receives classified tuples from the
//! construction algorithm; two implementations are provided:
//!
//! * [`MemSink`] — keeps everything in memory. Used by unit tests, the
//!   reference-oracle comparisons and pure-CPU benchmarks.
//! * [`DiskSink`] — writes real relations through the
//!   [`cure_storage::Catalog`], buffering per node; supports the
//!   **CURE_DR** variant (NTs store materialized dimension values instead
//!   of row-id references) and the **CURE+** variant (TT row-id lists are
//!   sorted and stored as compressed bitmaps in a post-processing step,
//!   §5.3).
//!
//! ## Relation formats (all row widths fixed)
//!
//! | relation | format (a) "common source" | format (b) "coincidental" |
//! |---|---|---|
//! | `AGGREGATES` | `(R-rowid, Aggr1..AggrY)` | `(Aggr1..AggrY)` |
//! | node `CAT`   | `(A-rowid)`               | `(R-rowid, A-rowid)` |
//!
//! | relation | CURE | CURE_DR |
//! |---|---|---|
//! | node `NT` | `(R-rowid, Aggr1..AggrY)` | `(g1..gk, Aggr1..AggrY)` |
//! | node `TT` | `(R-rowid)` | same |

use cure_storage::hash::FxHashMap;
use cure_storage::{BitmapIndex, Catalog, ColType, Column, HeapFile, Schema};

use crate::error::{CubeError, Result};
use crate::hierarchy::CubeSchema;
use crate::lattice::{NodeCoder, NodeId};

/// How CATs and the shared `AGGREGATES` relation are laid out (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatFormat {
    /// Format (a): `AGGREGATES(R-rowid, aggs…)`, node CAT rows hold only an
    /// A-rowid. Best when most CATs are *common source* (`k/n > Y+1`).
    CommonSource,
    /// Format (b): `AGGREGATES(aggs…)`, node CAT rows hold `(R-rowid,
    /// A-rowid)`. Best when *coincidental* CATs prevail and `Y > 1`.
    Coincidental,
    /// Store CATs as plain NTs (the best choice when `Y = 1`).
    AsNt,
}

/// How the format is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CatFormatPolicy {
    /// Decide from statistics gathered during the first signature flush
    /// that contains CATs (the paper's dynamic criterion).
    #[default]
    Auto,
    /// Force a specific format (used by the format ablation benchmark).
    Force(CatFormat),
}

/// Classified-tuple counts and logical byte volumes of a finished cube.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Trivial tuples stored (after TT-subtree sharing).
    pub tt_tuples: u64,
    /// Normal tuples stored.
    pub nt_tuples: u64,
    /// Common-aggregate tuples stored.
    pub cat_tuples: u64,
    /// Rows in the shared `AGGREGATES` relation.
    pub aggregates_rows: u64,
    /// Logical bytes of TT storage (row-ids, or compressed bitmaps for
    /// CURE+).
    pub tt_bytes: u64,
    /// Logical bytes of NT storage.
    pub nt_bytes: u64,
    /// Logical bytes of node CAT storage.
    pub cat_bytes: u64,
    /// Logical bytes of the `AGGREGATES` relation.
    pub aggregates_bytes: u64,
    /// Number of distinct node relations materialized.
    pub relations: u64,
    /// The CAT format that was used (None if no CATs were ever written).
    pub cat_format: Option<CatFormat>,
}

impl SinkStats {
    /// Total logical cube size in bytes — the paper's "storage space".
    pub fn total_bytes(&self) -> u64 {
        self.tt_bytes + self.nt_bytes + self.cat_bytes + self.aggregates_bytes
    }

    /// Total stored cube tuples across classes.
    pub fn total_tuples(&self) -> u64 {
        self.tt_tuples + self.nt_tuples + self.cat_tuples
    }
}

/// Receives classified cube tuples during construction.
pub trait CubeSink {
    /// Number of aggregate values per tuple (`Y`).
    fn n_measures(&self) -> usize;

    /// Fix the CAT format; called once, before the first CAT write.
    fn set_cat_format(&mut self, f: CatFormat);

    /// The format fixed so far, if any.
    fn cat_format(&self) -> Option<CatFormat>;

    /// Store a trivial tuple: the row-id of the single source tuple, in
    /// the least detailed node it belongs to.
    fn write_tt(&mut self, node: NodeId, rowid: u64) -> Result<()>;

    /// Store a normal tuple.
    fn write_nt(&mut self, node: NodeId, rowid: u64, aggs: &[i64]) -> Result<()>;

    /// Store a group of CATs sharing `aggs`.
    ///
    /// Under [`CatFormat::CommonSource`] the caller groups by `(aggs,
    /// rowid)` so all members share one row-id; under
    /// [`CatFormat::Coincidental`] the group is all CATs with equal `aggs`.
    fn write_cat_group(&mut self, members: &[(NodeId, u64)], aggs: &[i64]) -> Result<()>;

    /// Flush buffers, run post-processing, and return the final stats.
    fn finish(&mut self) -> Result<SinkStats>;
}

// ---------------------------------------------------------------------------
// MemSink
// ---------------------------------------------------------------------------

/// An in-memory sink: the whole classified cube in hash maps.
#[derive(Debug)]
pub struct MemSink {
    y: usize,
    /// TT row-ids per node.
    pub tts: FxHashMap<NodeId, Vec<u64>>,
    /// NT `(rowid, aggs)` per node.
    pub nts: FxHashMap<NodeId, Vec<(u64, Vec<i64>)>>,
    /// CAT `(rowid, aggregates-row index)` per node.
    pub cats: FxHashMap<NodeId, Vec<(u64, u64)>>,
    /// Shared aggregate rows: `(source rowid for format (a), aggs)`.
    pub aggregates: Vec<(Option<u64>, Vec<i64>)>,
    format: Option<CatFormat>,
}

impl MemSink {
    /// Create an in-memory sink for `y` aggregates per tuple.
    pub fn new(y: usize) -> Self {
        MemSink {
            y,
            tts: FxHashMap::default(),
            nts: FxHashMap::default(),
            cats: FxHashMap::default(),
            aggregates: Vec::new(),
            format: None,
        }
    }
}

impl CubeSink for MemSink {
    fn n_measures(&self) -> usize {
        self.y
    }

    fn set_cat_format(&mut self, f: CatFormat) {
        debug_assert!(self.format.is_none() || self.format == Some(f), "format set twice");
        self.format = Some(f);
    }

    fn cat_format(&self) -> Option<CatFormat> {
        self.format
    }

    fn write_tt(&mut self, node: NodeId, rowid: u64) -> Result<()> {
        self.tts.entry(node).or_default().push(rowid);
        Ok(())
    }

    fn write_nt(&mut self, node: NodeId, rowid: u64, aggs: &[i64]) -> Result<()> {
        debug_assert_eq!(aggs.len(), self.y);
        self.nts.entry(node).or_default().push((rowid, aggs.to_vec()));
        Ok(())
    }

    fn write_cat_group(&mut self, members: &[(NodeId, u64)], aggs: &[i64]) -> Result<()> {
        let format = self
            .format
            .ok_or_else(|| CubeError::Config("CAT written before a format was decided".into()))?;
        match format {
            CatFormat::AsNt => {
                for &(node, rowid) in members {
                    self.write_nt(node, rowid, aggs)?;
                }
            }
            CatFormat::CommonSource => {
                let a_rowid = self.aggregates.len() as u64;
                self.aggregates.push((Some(members[0].1), aggs.to_vec()));
                for &(node, rowid) in members {
                    debug_assert_eq!(rowid, members[0].1, "format (a) members share a source");
                    self.cats.entry(node).or_default().push((rowid, a_rowid));
                }
            }
            CatFormat::Coincidental => {
                let a_rowid = self.aggregates.len() as u64;
                self.aggregates.push((None, aggs.to_vec()));
                for &(node, rowid) in members {
                    self.cats.entry(node).or_default().push((rowid, a_rowid));
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<SinkStats> {
        let y = self.y as u64;
        let mut s = SinkStats { cat_format: self.format, ..Default::default() };
        for v in self.tts.values() {
            s.tt_tuples += v.len() as u64;
            s.tt_bytes += 8 * v.len() as u64;
        }
        for v in self.nts.values() {
            s.nt_tuples += v.len() as u64;
            s.nt_bytes += (8 + 8 * y) * v.len() as u64;
        }
        let cat_row_bytes = match self.format {
            Some(CatFormat::CommonSource) => 8,
            _ => 16,
        };
        for v in self.cats.values() {
            s.cat_tuples += v.len() as u64;
            s.cat_bytes += cat_row_bytes * v.len() as u64;
        }
        s.aggregates_rows = self.aggregates.len() as u64;
        let agg_row_bytes = match self.format {
            Some(CatFormat::CommonSource) => 8 + 8 * y,
            _ => 8 * y,
        };
        s.aggregates_bytes = s.aggregates_rows * agg_row_bytes;
        s.relations = (self.tts.len() + self.nts.len() + self.cats.len()) as u64
            + u64::from(!self.aggregates.is_empty());
        Ok(s)
    }
}

// ---------------------------------------------------------------------------
// DiskSink
// ---------------------------------------------------------------------------

/// Relation name of a node's TT relation.
pub fn tt_rel_name(prefix: &str, node: NodeId) -> String {
    format!("{prefix}n{node}_tt")
}

/// Relation name of a node's NT relation.
pub fn nt_rel_name(prefix: &str, node: NodeId) -> String {
    format!("{prefix}n{node}_nt")
}

/// Relation name of a node's CAT relation.
pub fn cat_rel_name(prefix: &str, node: NodeId) -> String {
    format!("{prefix}n{node}_cat")
}

/// Relation name of the shared AGGREGATES relation.
pub fn aggregates_rel_name(prefix: &str) -> String {
    format!("{prefix}aggregates")
}

/// Blob name of a node's CURE+ TT bitmap.
pub fn tt_bitmap_name(prefix: &str, node: NodeId) -> String {
    format!("{prefix}n{node}_ttbm")
}

/// Blob name of a node's CURE+ CAT bitmap (format (a) only — §5.3 notes
/// the bitmap trick applies to "TT, and probably CAT if it uses format
/// (a)", whose node rows are bare A-rowids).
pub fn cat_bitmap_name(prefix: &str, node: NodeId) -> String {
    format!("{prefix}n{node}_catbm")
}

fn agg_cols(y: usize) -> Vec<Column> {
    (0..y).map(|i| Column::new(format!("aggr{i}"), ColType::I64)).collect()
}

/// Schema of `AGGREGATES` under a format.
pub fn aggregates_schema(y: usize, format: CatFormat) -> Schema {
    let mut cols = Vec::new();
    if format == CatFormat::CommonSource {
        cols.push(Column::new("r_rowid", ColType::U64));
    }
    cols.extend(agg_cols(y));
    Schema::new(cols)
}

/// Schema of a node CAT relation under a format.
pub fn cat_schema(format: CatFormat) -> Schema {
    match format {
        CatFormat::CommonSource => Schema::new(vec![Column::new("a_rowid", ColType::U64)]),
        _ => Schema::new(vec![
            Column::new("r_rowid", ColType::U64),
            Column::new("a_rowid", ColType::U64),
        ]),
    }
}

/// Schema of a node NT relation (`arity` > 0 selects the CURE_DR layout
/// with materialized grouping values).
pub fn nt_schema(y: usize, dr_arity: Option<usize>) -> Schema {
    let mut cols = Vec::new();
    match dr_arity {
        Some(k) => {
            for i in 0..k {
                cols.push(Column::new(format!("g{i}"), ColType::U32));
            }
        }
        None => cols.push(Column::new("r_rowid", ColType::U64)),
    }
    cols.extend(agg_cols(y));
    Schema::new(cols)
}

/// Schema of a node TT relation (plain row-id list).
pub fn tt_schema() -> Schema {
    Schema::new(vec![Column::new("r_rowid", ColType::U64)])
}

/// Resolves an original fact row-id to its leaf dimension ids. Needed by
/// the CURE_DR variant to materialize grouping values at flush time.
pub type RowResolver<'a> = Box<dyn FnMut(u64, &mut [u32]) -> Result<()> + Send + 'a>;

#[derive(Default)]
struct NodeBuf {
    tt: Vec<u64>,
    nt: Vec<u8>,
    cat: Vec<u8>,
    /// Format-(a) A-rowids retained for CURE+ bitmap post-processing.
    cat_a_rowids: Vec<u64>,
    nt_rows: u64,
    cat_rows: u64,
}

/// Flush a node buffer once it holds this many bytes.
const NODE_BUF_FLUSH_BYTES: usize = 256 * 1024;

/// A durable snapshot of a [`DiskSink`]'s progress, taken by
/// [`DiskSink::checkpoint`] after all buffers are flushed and fsynced.
/// The build manifest journals it; [`DiskSink::restore_checkpoint`] rebuilds
/// an equivalent sink on resume. `relations` maps each sealed node relation
/// to its journaled row count (the shared `AGGREGATES` relation is tracked
/// separately via `agg_rows`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SinkCheckpoint {
    /// The CAT format decided so far, if any.
    pub format: Option<CatFormat>,
    /// Rows sealed in the shared `AGGREGATES` relation.
    pub agg_rows: u64,
    /// Trivial tuples written so far.
    pub tt_tuples: u64,
    /// Normal tuples written so far.
    pub nt_tuples: u64,
    /// Common-aggregate tuples written so far.
    pub cat_tuples: u64,
    /// `(relation name, sealed row count)`, sorted by name.
    pub relations: Vec<(String, u64)>,
}

/// A sink writing real relations through a [`Catalog`].
pub struct DiskSink<'a> {
    catalog: &'a Catalog,
    prefix: String,
    schema: &'a CubeSchema,
    coder: NodeCoder,
    dr: bool,
    plus: bool,
    resolver: Option<RowResolver<'a>>,
    format: Option<CatFormat>,
    bufs: FxHashMap<NodeId, NodeBuf>,
    aggregates: Option<HeapFile>,
    agg_rows: u64,
    stats: SinkStats,
    leaf_scratch: Vec<u32>,
    relations: cure_storage::hash::FxHashSet<String>,
    /// Rows flushed to each node relation (kept in sync with disk by
    /// `flush_node_part`; drives checkpoints without re-opening files).
    rel_rows: FxHashMap<String, u64>,
    /// Relations with writes since the last checkpoint (need an fsync).
    dirty: cure_storage::hash::FxHashSet<String>,
    /// Whether `AGGREGATES` has writes since the last checkpoint.
    agg_dirty: bool,
}

impl<'a> DiskSink<'a> {
    /// Create a disk sink.
    ///
    /// * `prefix` — namespaces all relations of this cube in the catalog.
    /// * `dr` — CURE_DR: materialize NT dimension values (needs `resolver`).
    /// * `plus` — CURE+: post-process TT lists into sorted bitmaps.
    pub fn new(
        catalog: &'a Catalog,
        prefix: impl Into<String>,
        schema: &'a CubeSchema,
        dr: bool,
        plus: bool,
        resolver: Option<RowResolver<'a>>,
    ) -> Result<Self> {
        if dr && resolver.is_none() {
            return Err(CubeError::Config("CURE_DR requires a row resolver".into()));
        }
        let coder = NodeCoder::new(schema);
        let n_dims = schema.num_dims();
        Ok(DiskSink {
            catalog,
            prefix: prefix.into(),
            schema,
            coder,
            dr,
            plus,
            resolver,
            format: None,
            bufs: FxHashMap::default(),
            aggregates: None,
            agg_rows: 0,
            stats: SinkStats::default(),
            leaf_scratch: vec![0u32; n_dims],
            relations: Default::default(),
            rel_rows: FxHashMap::default(),
            dirty: Default::default(),
            agg_dirty: false,
        })
    }

    /// The relation-name prefix this sink writes under.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Whether this sink stores CURE_DR-layout NTs.
    pub fn dr(&self) -> bool {
        self.dr
    }

    /// Whether this sink can checkpoint (CURE+ cannot: TT row-id lists are
    /// held in memory until `finish` builds the bitmaps).
    pub fn supports_checkpoint(&self) -> bool {
        !self.plus
    }

    /// Flush and fsync everything written so far and return a durable
    /// snapshot of the sink's progress for the build manifest.
    ///
    /// After this returns, every journaled row is on stable storage; a
    /// crash at any later point can be recovered by truncating each
    /// relation back to its journaled row count.
    pub fn checkpoint(&mut self) -> Result<SinkCheckpoint> {
        if self.plus {
            return Err(CubeError::Config(
                "CURE+ builds cannot checkpoint: TT bitmaps are buffered until finish".into(),
            ));
        }
        let nodes: Vec<NodeId> = self.bufs.keys().copied().collect();
        for node in nodes {
            self.flush_node_part(node, Part::Tt)?;
            self.flush_node_part(node, Part::Nt)?;
            self.flush_node_part(node, Part::Cat)?;
        }
        if let Some(rel) = self.aggregates.as_mut() {
            rel.flush()?;
            if self.agg_dirty {
                rel.sync()?;
                self.agg_dirty = false;
            }
        }
        // Deterministic fsync order so fault-injection sweeps are
        // reproducible run to run.
        let mut dirty: Vec<String> = self.dirty.drain().collect();
        dirty.sort_unstable();
        for name in dirty {
            self.catalog.open_relation(&name)?.sync()?;
        }
        self.catalog.sync_dir()?;
        let mut relations: Vec<(String, u64)> =
            self.rel_rows.iter().map(|(n, r)| (n.clone(), *r)).collect();
        relations.sort_unstable();
        Ok(SinkCheckpoint {
            format: self.format,
            agg_rows: self.agg_rows,
            tt_tuples: self.stats.tt_tuples,
            nt_tuples: self.stats.nt_tuples,
            cat_tuples: self.stats.cat_tuples,
            relations,
        })
    }

    /// Rebuild this (freshly created) sink's progress from a journaled
    /// checkpoint. The caller is responsible for having truncated every
    /// journaled relation back to its sealed row count first.
    pub fn restore_checkpoint(&mut self, cp: &SinkCheckpoint) -> Result<()> {
        if self.plus {
            return Err(CubeError::Config("CURE+ builds cannot restore a checkpoint".into()));
        }
        if !self.bufs.is_empty() || self.stats.total_tuples() > 0 || self.aggregates.is_some() {
            return Err(CubeError::Config("restore_checkpoint requires a fresh sink".into()));
        }
        self.format = cp.format;
        self.agg_rows = cp.agg_rows;
        self.stats.tt_tuples = cp.tt_tuples;
        self.stats.nt_tuples = cp.nt_tuples;
        self.stats.cat_tuples = cp.cat_tuples;
        for (name, rows) in &cp.relations {
            self.relations.insert(name.clone());
            self.rel_rows.insert(name.clone(), *rows);
        }
        if cp.agg_rows > 0 {
            let name = aggregates_rel_name(&self.prefix);
            let rel = self.catalog.open_relation(&name)?;
            if rel.num_rows() != cp.agg_rows {
                return Err(CubeError::Config(format!(
                    "AGGREGATES has {} rows on disk but {} are journaled; \
                     recovery must truncate before restoring",
                    rel.num_rows(),
                    cp.agg_rows
                )));
            }
            self.aggregates = Some(rel);
        }
        Ok(())
    }

    fn flush_node_part(&mut self, node: NodeId, which: Part) -> Result<()> {
        let Some(buf) = self.bufs.get_mut(&node) else { return Ok(()) };
        match which {
            Part::Tt => {
                if buf.tt.is_empty() {
                    return Ok(());
                }
                let name = tt_rel_name(&self.prefix, node);
                let mut rel = if self.catalog.exists(&name) {
                    self.catalog.open_relation(&name)?
                } else {
                    self.relations.insert(name.clone());
                    self.catalog.create_relation(&name, tt_schema())?
                };
                for &r in &buf.tt {
                    rel.append_raw(&r.to_le_bytes())?;
                }
                rel.flush()?;
                *self.rel_rows.entry(name.clone()).or_insert(0) += buf.tt.len() as u64;
                self.dirty.insert(name);
                buf.tt.clear();
            }
            Part::Nt => {
                if buf.nt.is_empty() {
                    return Ok(());
                }
                let name = nt_rel_name(&self.prefix, node);
                let arity = if self.dr {
                    let levels = self.coder.decode(node)?;
                    Some(self.coder.grouping_arity(&levels))
                } else {
                    None
                };
                let schema = nt_schema(self.schema.num_measures(), arity);
                let mut rel = if self.catalog.exists(&name) {
                    self.catalog.open_relation(&name)?
                } else {
                    self.relations.insert(name.clone());
                    self.catalog.create_relation(&name, schema.clone())?
                };
                let w = schema.row_width();
                for chunk in buf.nt.chunks(w) {
                    rel.append_raw(chunk)?;
                }
                rel.flush()?;
                *self.rel_rows.entry(name.clone()).or_insert(0) += (buf.nt.len() / w) as u64;
                self.dirty.insert(name);
                buf.nt.clear();
            }
            Part::Cat => {
                if buf.cat.is_empty() {
                    return Ok(());
                }
                let format = self.format.ok_or_else(|| {
                    CubeError::Config("CAT rows buffered before a format was decided".into())
                })?;
                let name = cat_rel_name(&self.prefix, node);
                let schema = cat_schema(format);
                let mut rel = if self.catalog.exists(&name) {
                    self.catalog.open_relation(&name)?
                } else {
                    self.relations.insert(name.clone());
                    self.catalog.create_relation(&name, schema.clone())?
                };
                let w = schema.row_width();
                for chunk in buf.cat.chunks(w) {
                    rel.append_raw(chunk)?;
                }
                rel.flush()?;
                *self.rel_rows.entry(name.clone()).or_insert(0) += (buf.cat.len() / w) as u64;
                self.dirty.insert(name);
                buf.cat.clear();
            }
        }
        Ok(())
    }

    fn maybe_flush(&mut self, node: NodeId) -> Result<()> {
        let (nt_len, cat_len, tt_len) = {
            let buf = self
                .bufs
                .get(&node)
                .ok_or_else(|| CubeError::Config("flush of a node with no buffer".into()))?;
            (buf.nt.len(), buf.cat.len(), buf.tt.len() * 8)
        };
        if nt_len >= NODE_BUF_FLUSH_BYTES {
            self.flush_node_part(node, Part::Nt)?;
        }
        if cat_len >= NODE_BUF_FLUSH_BYTES {
            self.flush_node_part(node, Part::Cat)?;
        }
        // CURE+ keeps TTs in memory for the sort/bitmap post-processing.
        if !self.plus && tt_len >= NODE_BUF_FLUSH_BYTES {
            self.flush_node_part(node, Part::Tt)?;
        }
        Ok(())
    }

    fn ensure_aggregates(&mut self) -> Result<()> {
        if self.aggregates.is_none() {
            let format = self.format.ok_or_else(|| {
                CubeError::Config("AGGREGATES needed before format decided".into())
            })?;
            let name = aggregates_rel_name(&self.prefix);
            let schema = aggregates_schema(self.schema.num_measures(), format);
            self.aggregates = Some(self.catalog.create_or_replace(&name, schema)?);
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum Part {
    Tt,
    Nt,
    Cat,
}

impl CubeSink for DiskSink<'_> {
    fn n_measures(&self) -> usize {
        self.schema.num_measures()
    }

    fn set_cat_format(&mut self, f: CatFormat) {
        debug_assert!(self.format.is_none() || self.format == Some(f), "format set twice");
        self.format = Some(f);
    }

    fn cat_format(&self) -> Option<CatFormat> {
        self.format
    }

    fn write_tt(&mut self, node: NodeId, rowid: u64) -> Result<()> {
        self.bufs.entry(node).or_default().tt.push(rowid);
        self.stats.tt_tuples += 1;
        self.maybe_flush(node)
    }

    fn write_nt(&mut self, node: NodeId, rowid: u64, aggs: &[i64]) -> Result<()> {
        if self.dr {
            // Materialize the grouping values by resolving the source row.
            let levels = self.coder.decode(node)?;
            let mut leaf = std::mem::take(&mut self.leaf_scratch);
            let resolver = self
                .resolver
                .as_mut()
                .ok_or_else(|| CubeError::Config("CURE_DR sink lost its row resolver".into()))?;
            resolver(rowid, &mut leaf)?;
            let buf = self.bufs.entry(node).or_default();
            for (d, dim) in self.schema.dims().iter().enumerate() {
                if levels[d] < dim.num_levels() {
                    let v = dim.value_at(levels[d], leaf[d]);
                    buf.nt.extend_from_slice(&v.to_le_bytes());
                }
            }
            for &a in aggs {
                buf.nt.extend_from_slice(&a.to_le_bytes());
            }
            buf.nt_rows += 1;
            self.leaf_scratch = leaf;
        } else {
            let buf = self.bufs.entry(node).or_default();
            buf.nt.extend_from_slice(&rowid.to_le_bytes());
            for &a in aggs {
                buf.nt.extend_from_slice(&a.to_le_bytes());
            }
            buf.nt_rows += 1;
        }
        self.stats.nt_tuples += 1;
        self.maybe_flush(node)
    }

    fn write_cat_group(&mut self, members: &[(NodeId, u64)], aggs: &[i64]) -> Result<()> {
        let format = self
            .format
            .ok_or_else(|| CubeError::Config("CAT written before a format was decided".into()))?;
        match format {
            CatFormat::AsNt => {
                for &(node, rowid) in members {
                    self.write_nt(node, rowid, aggs)?;
                }
                return Ok(());
            }
            CatFormat::CommonSource => {
                self.ensure_aggregates()?;
                let a_rowid = self.agg_rows;
                let rel = self.aggregates.as_mut().ok_or_else(|| {
                    CubeError::Config("AGGREGATES relation missing after ensure".into())
                })?;
                let mut row = Vec::with_capacity(8 + aggs.len() * 8);
                row.extend_from_slice(&members[0].1.to_le_bytes());
                for &a in aggs {
                    row.extend_from_slice(&a.to_le_bytes());
                }
                rel.append_raw(&row)?;
                self.agg_rows += 1;
                self.agg_dirty = true;
                for &(node, _) in members {
                    let buf = self.bufs.entry(node).or_default();
                    if self.plus {
                        // Retained for the sort-and-bitmap post-processing
                        // step (§5.3 applies it to format-(a) CATs too).
                        buf.cat_a_rowids.push(a_rowid);
                    } else {
                        buf.cat.extend_from_slice(&a_rowid.to_le_bytes());
                    }
                    buf.cat_rows += 1;
                    self.stats.cat_tuples += 1;
                    self.maybe_flush(node)?;
                }
            }
            CatFormat::Coincidental => {
                self.ensure_aggregates()?;
                let a_rowid = self.agg_rows;
                let rel = self.aggregates.as_mut().ok_or_else(|| {
                    CubeError::Config("AGGREGATES relation missing after ensure".into())
                })?;
                let mut row = Vec::with_capacity(aggs.len() * 8);
                for &a in aggs {
                    row.extend_from_slice(&a.to_le_bytes());
                }
                rel.append_raw(&row)?;
                self.agg_rows += 1;
                self.agg_dirty = true;
                for &(node, rowid) in members {
                    let buf = self.bufs.entry(node).or_default();
                    buf.cat.extend_from_slice(&rowid.to_le_bytes());
                    buf.cat.extend_from_slice(&a_rowid.to_le_bytes());
                    buf.cat_rows += 1;
                    self.stats.cat_tuples += 1;
                    self.maybe_flush(node)?;
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<SinkStats> {
        let nodes: Vec<NodeId> = self.bufs.keys().copied().collect();
        let mut cat_bitmap_bytes = 0u64;
        for node in nodes {
            if self.plus {
                // CURE+ post-processing (§5.3): sort TT row-ids and store a
                // compressed bitmap instead of a row-id relation.
                let missing = || CubeError::Config("node buffer vanished during finish".into());
                let tt = std::mem::take(&mut self.bufs.get_mut(&node).ok_or_else(missing)?.tt);
                if !tt.is_empty() {
                    let bm = BitmapIndex::from_unsorted(&tt);
                    let name = tt_bitmap_name(&self.prefix, node);
                    self.catalog.write_blob(&name, &bm.to_bytes())?;
                    self.relations.insert(name);
                    self.stats.tt_bytes += bm.size_bytes() as u64;
                }
                // Format-(a) CAT rows are bare A-rowids: same treatment.
                let cats =
                    std::mem::take(&mut self.bufs.get_mut(&node).ok_or_else(missing)?.cat_a_rowids);
                if !cats.is_empty() {
                    let bm = BitmapIndex::from_unsorted(&cats);
                    let name = cat_bitmap_name(&self.prefix, node);
                    self.catalog.write_blob(&name, &bm.to_bytes())?;
                    self.relations.insert(name);
                    cat_bitmap_bytes += bm.size_bytes() as u64;
                }
            } else {
                self.flush_node_part(node, Part::Tt)?;
            }
            self.flush_node_part(node, Part::Nt)?;
            self.flush_node_part(node, Part::Cat)?;
        }
        if let Some(rel) = self.aggregates.as_mut() {
            rel.flush()?;
        }
        // Account logical bytes from the final relations.
        let y = self.schema.num_measures() as u64;
        if !self.plus {
            self.stats.tt_bytes = self.stats.tt_tuples * 8;
        }
        self.stats.nt_bytes = 0;
        if self.dr {
            // DR NT widths vary per node; recompute from relation volumes.
            for name in self.relations.iter() {
                if name.ends_with("_nt") {
                    let rel = self.catalog.open_relation(name)?;
                    self.stats.nt_bytes += rel.data_bytes();
                }
            }
        } else {
            self.stats.nt_bytes = self.stats.nt_tuples * (8 + 8 * y);
        }
        if self.plus && self.format == Some(CatFormat::CommonSource) {
            self.stats.cat_bytes = cat_bitmap_bytes;
        } else {
            let cat_row_bytes = match self.format {
                Some(CatFormat::CommonSource) => 8,
                _ => 16,
            };
            self.stats.cat_bytes = self.stats.cat_tuples * cat_row_bytes;
        }
        self.stats.aggregates_rows = self.agg_rows;
        let agg_row_bytes = match self.format {
            Some(CatFormat::CommonSource) => 8 + 8 * y,
            _ => 8 * y,
        };
        self.stats.aggregates_bytes = self.agg_rows * agg_row_bytes;
        self.stats.relations = self.relations.len() as u64 + u64::from(self.agg_rows > 0);
        self.stats.cat_format = self.format;
        Ok(self.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Dimension;

    fn two_dim_schema() -> CubeSchema {
        CubeSchema::new(vec![Dimension::flat("A", 4), Dimension::flat("B", 4)], 2).unwrap()
    }

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_sink_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    #[test]
    fn memsink_accounting() {
        let mut s = MemSink::new(2);
        s.set_cat_format(CatFormat::Coincidental);
        s.write_tt(1, 10).unwrap();
        s.write_tt(1, 11).unwrap();
        s.write_nt(2, 5, &[100, 200]).unwrap();
        s.write_cat_group(&[(2, 7), (3, 9)], &[42, 43]).unwrap();
        let stats = s.finish().unwrap();
        assert_eq!(stats.tt_tuples, 2);
        assert_eq!(stats.nt_tuples, 1);
        assert_eq!(stats.cat_tuples, 2);
        assert_eq!(stats.aggregates_rows, 1);
        assert_eq!(stats.tt_bytes, 16);
        assert_eq!(stats.nt_bytes, 8 + 16);
        assert_eq!(stats.cat_bytes, 32); // (rowid, a_rowid) × 2
        assert_eq!(stats.aggregates_bytes, 16); // aggs only (format b)
        assert_eq!(stats.total_tuples(), 5);
    }

    #[test]
    fn memsink_as_nt_format_redirects() {
        let mut s = MemSink::new(1);
        s.set_cat_format(CatFormat::AsNt);
        s.write_cat_group(&[(2, 7), (3, 9)], &[42]).unwrap();
        let stats = s.finish().unwrap();
        assert_eq!(stats.cat_tuples, 0);
        assert_eq!(stats.nt_tuples, 2);
        assert_eq!(stats.aggregates_rows, 0);
    }

    #[test]
    fn memsink_cat_before_format_errors() {
        let mut s = MemSink::new(1);
        assert!(s.write_cat_group(&[(1, 1)], &[1]).is_err());
    }

    #[test]
    fn disksink_roundtrip_plain() {
        let cat = fresh_catalog("plain");
        let schema = two_dim_schema();
        let mut sink = DiskSink::new(&cat, "c_", &schema, false, false, None).unwrap();
        sink.set_cat_format(CatFormat::CommonSource);
        sink.write_tt(0, 100).unwrap();
        sink.write_nt(1, 5, &[7, 8]).unwrap();
        sink.write_cat_group(&[(1, 9), (2, 9)], &[1, 2]).unwrap();
        let stats = sink.finish().unwrap();
        assert_eq!(stats.tt_tuples, 1);
        assert_eq!(stats.nt_tuples, 1);
        assert_eq!(stats.cat_tuples, 2);
        assert_eq!(stats.aggregates_rows, 1);
        // Relations exist and contain the rows.
        let tt = cat.open_relation(&tt_rel_name("c_", 0)).unwrap();
        assert_eq!(tt.num_rows(), 1);
        assert_eq!(tt.fetch_values(0).unwrap()[0], cure_storage::Value::U64(100));
        let nt = cat.open_relation(&nt_rel_name("c_", 1)).unwrap();
        assert_eq!(nt.num_rows(), 1);
        let agg = cat.open_relation(&aggregates_rel_name("c_")).unwrap();
        assert_eq!(agg.num_rows(), 1);
        let v = agg.fetch_values(0).unwrap();
        assert_eq!(v[0], cure_storage::Value::U64(9)); // shared source rowid
        assert_eq!(v[1], cure_storage::Value::I64(1));
        let catrel = cat.open_relation(&cat_rel_name("c_", 1)).unwrap();
        assert_eq!(catrel.num_rows(), 1);
        assert_eq!(catrel.fetch_values(0).unwrap()[0], cure_storage::Value::U64(0));
        // a_rowid 0
    }

    #[test]
    fn disksink_plus_builds_bitmaps() {
        let cat = fresh_catalog("plus");
        let schema = two_dim_schema();
        let mut sink = DiskSink::new(&cat, "p_", &schema, false, true, None).unwrap();
        for r in [5u64, 3, 9, 4] {
            sink.write_tt(7, r).unwrap();
        }
        let stats = sink.finish().unwrap();
        assert_eq!(stats.tt_tuples, 4);
        assert!(stats.tt_bytes > 0 && stats.tt_bytes < 32, "bitmap must compress");
        let bytes = cat.read_blob(&tt_bitmap_name("p_", 7)).unwrap();
        let bm = BitmapIndex::from_bytes(&bytes).unwrap();
        assert_eq!(bm.iter().collect::<Vec<_>>(), vec![3, 4, 5, 9]);
    }

    #[test]
    fn disksink_dr_materializes_dimension_values() {
        let cat = fresh_catalog("dr");
        let schema = two_dim_schema();
        // Fake fact table: rowid r has dims [r, r+1].
        let resolver: RowResolver = Box::new(|rowid, out| {
            out[0] = rowid as u32;
            out[1] = rowid as u32 + 1;
            Ok(())
        });
        let mut sink = DiskSink::new(&cat, "d_", &schema, true, false, Some(resolver)).unwrap();
        let coder = NodeCoder::new(&schema);
        // Node AB (both dims grouped at leaf): id encode([0,0]).
        let ab = coder.encode(&[0, 0]);
        sink.write_nt(ab, 2, &[10, 20]).unwrap();
        // Node A only.
        let a = coder.encode(&[0, coder.all_level(1)]);
        sink.write_nt(a, 3, &[30, 40]).unwrap();
        let stats = sink.finish().unwrap();
        assert_eq!(stats.nt_tuples, 2);
        let nt_ab = cat.open_relation(&nt_rel_name("d_", ab)).unwrap();
        let v = nt_ab.fetch_values(0).unwrap();
        assert_eq!(v[0], cure_storage::Value::U32(2));
        assert_eq!(v[1], cure_storage::Value::U32(3));
        assert_eq!(v[2], cure_storage::Value::I64(10));
        let nt_a = cat.open_relation(&nt_rel_name("d_", a)).unwrap();
        assert_eq!(nt_a.schema().arity(), 3); // 1 dim + 2 aggs
                                              // DR NT bytes: node AB (2 dims + 2 aggs = 24) + node A (1 dim +
                                              // 2 aggs = 20) = 44.
        assert_eq!(stats.nt_bytes, 44);
    }

    #[test]
    fn disksink_dr_without_resolver_rejected() {
        let cat = fresh_catalog("drbad");
        let schema = two_dim_schema();
        assert!(DiskSink::new(&cat, "x_", &schema, true, false, None).is_err());
    }

    #[test]
    fn disksink_checkpoint_journals_sealed_rows() {
        let cat = fresh_catalog("ckpt");
        let schema = two_dim_schema();
        let mut sink = DiskSink::new(&cat, "k_", &schema, false, false, None).unwrap();
        sink.set_cat_format(CatFormat::Coincidental);
        sink.write_tt(0, 100).unwrap();
        sink.write_tt(0, 101).unwrap();
        sink.write_nt(1, 5, &[7, 8]).unwrap();
        sink.write_cat_group(&[(1, 9), (2, 11)], &[1, 2]).unwrap();
        let cp = sink.checkpoint().unwrap();
        assert_eq!(cp.format, Some(CatFormat::Coincidental));
        assert_eq!(cp.agg_rows, 1);
        assert_eq!(cp.tt_tuples, 2);
        assert_eq!(cp.nt_tuples, 1);
        assert_eq!(cp.cat_tuples, 2);
        // Every journaled relation exists on disk with exactly the
        // journaled row count.
        assert!(!cp.relations.is_empty());
        for (name, rows) in &cp.relations {
            let rel = cat.open_relation(name).unwrap();
            assert_eq!(rel.num_rows(), *rows, "{name}");
        }
        // A second checkpoint with no writes in between is identical.
        assert_eq!(sink.checkpoint().unwrap(), cp);
    }

    #[test]
    fn disksink_restore_checkpoint_resumes_equivalently() {
        // Build A writes everything in one sink. Build B writes the first
        // half, checkpoints, then a fresh restored sink writes the second
        // half. Final stats and on-disk rows must agree.
        let schema = two_dim_schema();
        let write_first = |s: &mut DiskSink| {
            s.set_cat_format(CatFormat::CommonSource);
            s.write_tt(0, 100).unwrap();
            s.write_nt(1, 5, &[7, 8]).unwrap();
            s.write_cat_group(&[(1, 9), (2, 9)], &[1, 2]).unwrap();
        };
        let write_second = |s: &mut DiskSink| {
            s.write_tt(0, 102).unwrap();
            s.write_nt(3, 6, &[9, 10]).unwrap();
            s.write_cat_group(&[(2, 12), (3, 12)], &[3, 4]).unwrap();
        };

        let cat_a = fresh_catalog("res_a");
        let mut a = DiskSink::new(&cat_a, "r_", &schema, false, false, None).unwrap();
        write_first(&mut a);
        write_second(&mut a);
        let stats_a = a.finish().unwrap();

        let cat_b = fresh_catalog("res_b");
        let cp = {
            let mut b1 = DiskSink::new(&cat_b, "r_", &schema, false, false, None).unwrap();
            write_first(&mut b1);
            b1.checkpoint().unwrap()
        };
        let mut b2 = DiskSink::new(&cat_b, "r_", &schema, false, false, None).unwrap();
        b2.restore_checkpoint(&cp).unwrap();
        assert_eq!(b2.cat_format(), Some(CatFormat::CommonSource));
        write_second(&mut b2);
        let stats_b = b2.finish().unwrap();

        assert_eq!(stats_a, stats_b);
        for (name, _) in &cp.relations {
            let ra = cat_a.open_relation(name).unwrap();
            let rb = cat_b.open_relation(name).unwrap();
            assert_eq!(ra.num_rows(), rb.num_rows(), "{name}");
        }
        let agg = cat_b.open_relation(&aggregates_rel_name("r_")).unwrap();
        assert_eq!(agg.num_rows(), stats_b.aggregates_rows);
    }

    #[test]
    fn disksink_restore_rejects_mismatched_aggregates() {
        let cat = fresh_catalog("res_bad");
        let schema = two_dim_schema();
        let cp = {
            let mut s = DiskSink::new(&cat, "m_", &schema, false, false, None).unwrap();
            s.set_cat_format(CatFormat::Coincidental);
            s.write_cat_group(&[(1, 9), (2, 11)], &[1, 2]).unwrap();
            s.checkpoint().unwrap()
        };
        assert_eq!(cp.agg_rows, 1);
        // Corrupt the journal: claim more sealed rows than exist on disk.
        let mut bad = cp.clone();
        bad.agg_rows = 99;
        let mut s = DiskSink::new(&cat, "m_", &schema, false, false, None).unwrap();
        assert!(s.restore_checkpoint(&bad).is_err());
    }

    #[test]
    fn disksink_plus_cannot_checkpoint() {
        let cat = fresh_catalog("plus_ckpt");
        let schema = two_dim_schema();
        let mut sink = DiskSink::new(&cat, "pk_", &schema, false, true, None).unwrap();
        assert!(!sink.supports_checkpoint());
        assert!(sink.checkpoint().is_err());
        let mut fresh = DiskSink::new(&cat, "pk_", &schema, false, true, None).unwrap();
        assert!(fresh.restore_checkpoint(&SinkCheckpoint::default()).is_err());
    }

    #[test]
    fn disksink_large_buffer_flush() {
        let cat = fresh_catalog("bigbuf");
        let schema = two_dim_schema();
        let mut sink = DiskSink::new(&cat, "b_", &schema, false, false, None).unwrap();
        let n = 40_000u64; // 40k × 24B NT rows ≈ 960 KB → multiple flushes
        for i in 0..n {
            sink.write_nt(3, i, &[i as i64, 0]).unwrap();
        }
        let stats = sink.finish().unwrap();
        assert_eq!(stats.nt_tuples, n);
        let rel = cat.open_relation(&nt_rel_name("b_", 3)).unwrap();
        assert_eq!(rel.num_rows(), n);
        // Spot-check ordering survived the chunked appends.
        assert_eq!(rel.fetch_values(12_345).unwrap()[0], cure_storage::Value::U64(12_345));
    }
}
