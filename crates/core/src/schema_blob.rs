//! Self-describing sharded catalogs: a [`CubeSchema`] serialized into a
//! catalog blob.
//!
//! A shard server process (`cure-cli shard-serve`) is handed nothing but
//! a replica directory; it cannot re-derive the schema from the dataset
//! generator the way the CLI's bench paths do. `build_shard_cubes`
//! therefore writes the schema it built against into the catalog as the
//! `shard_schema` blob, and replication ships it, so any replica
//! directory is openable by itself.
//!
//! The format is a small versioned length-prefixed binary layout (all
//! integers little-endian). Reconstruction goes through
//! [`Dimension::from_levels`], which re-validates the hierarchy and
//! re-derives the descent tree — the blob only carries what validation
//! cannot recompute: per-level names, cardinalities, parent edges and
//! leaf maps, plus the measure count and aggregate functions.

use cure_storage::Catalog;

use crate::aggfn::AggFn;
use crate::error::{CubeError, Result};
use crate::hierarchy::{CubeSchema, Dimension, Level};

/// Catalog blob name the schema is stored under.
pub const SCHEMA_BLOB: &str = "shard_schema";

const MAGIC: &[u8; 4] = b"CSCH";
const VERSION: u8 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Serialize `schema` into the blob byte layout.
pub fn encode_schema(schema: &CubeSchema) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_u32(&mut out, schema.num_measures() as u32);
    put_u32(&mut out, schema.agg_fns().len() as u32);
    for f in schema.agg_fns() {
        out.push(match f {
            AggFn::Sum => 0,
            AggFn::Min => 1,
            AggFn::Max => 2,
        });
    }
    put_u32(&mut out, schema.num_dims() as u32);
    for dim in schema.dims() {
        put_str(&mut out, dim.name());
        put_u32(&mut out, dim.num_levels() as u32);
        for lv in dim.levels() {
            put_str(&mut out, &lv.name);
            put_u32(&mut out, lv.cardinality);
            let parents: Vec<u32> = lv.parents.iter().map(|&p| p as u32).collect();
            put_u32s(&mut out, &parents);
            put_u32s(&mut out, &lv.leaf_map);
        }
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| CubeError::Schema("schema blob truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// A length prefix that will be used to size an allocation; bounded
    /// by the bytes actually remaining so a corrupt prefix cannot force
    /// a huge reservation.
    fn len_prefix(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(CubeError::Schema(format!(
                "schema blob length prefix {n} exceeds remaining {} bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String> {
        let n = self.len_prefix()?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| CubeError::Schema("schema blob holds invalid utf-8".into()))
    }

    fn u32s(&mut self) -> Result<Vec<u32>> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) / 4 {
            return Err(CubeError::Schema(format!(
                "schema blob array prefix {n} exceeds remaining bytes"
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }
}

/// Reconstruct a schema from [`encode_schema`] bytes. Hierarchies are
/// re-validated by [`Dimension::from_levels`]; a tampered blob fails
/// typed, it does not build a bad schema.
pub fn decode_schema(bytes: &[u8]) -> Result<CubeSchema> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(CubeError::Schema("schema blob has bad magic".into()));
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(CubeError::Schema(format!("schema blob version {version} not supported")));
    }
    let n_measures = c.u32()? as usize;
    let n_fns = c.u32()? as usize;
    let mut agg_fns = Vec::with_capacity(n_fns.min(1024));
    for _ in 0..n_fns {
        agg_fns.push(match c.u8()? {
            0 => AggFn::Sum,
            1 => AggFn::Min,
            2 => AggFn::Max,
            t => return Err(CubeError::Schema(format!("schema blob has bad agg tag {t}"))),
        });
    }
    let n_dims = c.u32()? as usize;
    let mut dims = Vec::with_capacity(n_dims.min(1024));
    for _ in 0..n_dims {
        let name = c.string()?;
        let n_levels = c.u32()? as usize;
        let mut levels = Vec::with_capacity(n_levels.min(1024));
        for _ in 0..n_levels {
            let lname = c.string()?;
            let cardinality = c.u32()?;
            let parents = c.u32s()?.into_iter().map(|p| p as usize).collect();
            let leaf_map = c.u32s()?;
            levels.push(Level { name: lname, cardinality, parents, leaf_map });
        }
        dims.push(Dimension::from_levels(name, levels)?);
    }
    if c.pos != bytes.len() {
        return Err(CubeError::Schema("schema blob has trailing bytes".into()));
    }
    CubeSchema::new(dims, n_measures)?.with_agg_fns(agg_fns)
}

/// Write `schema` into `catalog` under [`SCHEMA_BLOB`].
pub fn write_schema_blob(catalog: &Catalog, schema: &CubeSchema) -> Result<()> {
    catalog.write_blob(SCHEMA_BLOB, &encode_schema(schema))?;
    Ok(())
}

/// Read the schema blob back, if one was written.
pub fn read_schema_blob(catalog: &Catalog) -> Result<Option<CubeSchema>> {
    if !catalog.blob_exists(SCHEMA_BLOB) {
        return Ok(None);
    }
    let bytes = catalog.read_blob(SCHEMA_BLOB)?;
    decode_schema(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> CubeSchema {
        let a = Dimension::linear("A", 6, &[vec![0, 0, 1, 1, 2, 2], vec![0, 0, 1]]).unwrap();
        let b = Dimension::flat("B", 4);
        CubeSchema::new(vec![a, b], 2).unwrap().with_agg_fns(vec![AggFn::Sum, AggFn::Max]).unwrap()
    }

    #[test]
    fn round_trips_through_bytes() {
        let schema = sample_schema();
        let decoded = decode_schema(&encode_schema(&schema)).unwrap();
        assert_eq!(decoded.num_dims(), schema.num_dims());
        assert_eq!(decoded.num_measures(), schema.num_measures());
        assert_eq!(decoded.agg_fns(), schema.agg_fns());
        assert_eq!(decoded.num_lattice_nodes(), schema.num_lattice_nodes());
        for (d1, d2) in schema.dims().iter().zip(decoded.dims()) {
            assert_eq!(d1.name(), d2.name());
            assert_eq!(d1.num_levels(), d2.num_levels());
            assert_eq!(d1.top_level(), d2.top_level());
            for l in 0..d1.num_levels() {
                assert_eq!(d1.cardinality(l), d2.cardinality(l));
                for leaf in 0..d1.leaf_cardinality() {
                    assert_eq!(d1.value_at(l, leaf), d2.value_at(l, leaf));
                }
            }
        }
    }

    #[test]
    fn round_trips_through_a_catalog() {
        let dir = std::env::temp_dir().join("cure_schema_blob_rt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let catalog = Catalog::open(&dir).unwrap();
        assert!(read_schema_blob(&catalog).unwrap().is_none());
        let schema = sample_schema();
        write_schema_blob(&catalog, &schema).unwrap();
        let back = read_schema_blob(&catalog).unwrap().unwrap();
        assert_eq!(back.num_lattice_nodes(), schema.num_lattice_nodes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_blobs_fail_typed() {
        let schema = sample_schema();
        let good = encode_schema(&schema);
        // Truncations at every boundary must error, never panic.
        for cut in 0..good.len() {
            assert!(decode_schema(&good[..cut]).is_err(), "cut at {cut} must fail");
        }
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(decode_schema(&bad).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(decode_schema(&bad).is_err());
        // Oversized length prefix must fail without allocating.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] = 0xFF;
        bad[n - 2] = 0xFF;
        assert!(decode_schema(&bad).is_err());
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert!(decode_schema(&bad).is_err());
    }
}
