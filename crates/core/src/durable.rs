//! Crash-safe cube construction: the durable variant of the §4 driver.
//!
//! [`build_cure_cube_durable`] wraps the partitioned CURE build with a
//! write-ahead journal (the [`BuildManifest`]) so that a crash at *any*
//! point — mid-write, mid-fsync, mid-rename — loses at most the work since
//! the last checkpoint, and a subsequent `resume` run completes the build
//! producing **byte-identical** cube files to a run that never crashed.
//! This holds at any thread count: parallel builds buffer per-partition
//! work on workers and replay it through a single in-order merger (see
//! `partition::run_partition_passes_parallel`), which checkpoints after
//! every merged partition exactly like the serial loop.
//!
//! ## Protocol
//!
//! 1. **Partitioning.** A `Partitioning`-phase manifest is published before
//!    the scan; a crash here restarts from scratch (the scan is one pass —
//!    there is nothing worth saving). The partitions *and* the aggregated
//!    relation *N* (persisted to `<part prefix>nrel`, so resume never
//!    re-scans the fact table) are flushed, fsynced, and journaled with
//!    their row counts; then the manifest moves to `Passes`.
//! 2. **Passes.** After each partition pass the signature pool is flushed,
//!    the sink is checkpointed ([`DiskSink::checkpoint`]: every relation
//!    fsynced), and the manifest journals the [`SinkCheckpoint`], the
//!    pool's [`PoolDecisionState`] and the completed-partition count. The
//!    journal is strictly write-behind: it never references a row that is
//!    not already on stable storage.
//! 3. **Complete.** After the *N* pass and `finish`, a final checkpoint
//!    fsyncs everything, the manifest records the final stats, and only
//!    then are the temporary partitions dropped.
//!
//! ## Recovery
//!
//! On `resume`, a `Passes`-phase manifest drives recovery: the sealed
//! inputs (partitions, *N*) are re-validated by a full checksummed scan;
//! every journaled cube relation is truncated back to its journaled row
//! count ([`HeapFile::repair_to_rows`] — sound because journaled rows were
//! fsynced before journaling, and append-only pages agree byte-for-byte on
//! sealed row slots under any torn rewrite); unjournaled relations are
//! dropped. The build then resumes from the first incomplete partition. If
//! validation fails (sealed inputs damaged externally), the build restarts
//! from scratch with a warning rather than erroring.

use std::time::Instant;

use cure_storage::{Catalog, HeapFile, StorageError};

use crate::cube::{BuildReport, CubeBuilder, CubeConfig, Exec};
use crate::error::{CubeError, Result};
use crate::hierarchy::CubeSchema;
use crate::lattice::NodeCoder;
use crate::manifest::{BuildManifest, BuildPhase};
use crate::partition::{
    partition_and_build_n, run_partition_passes_parallel, select_partition_level, PartitionChoice,
    PartitionReport,
};
use crate::signature::{PoolDecisionState, SignaturePool};
use crate::sink::{aggregates_rel_name, CubeSink, DiskSink, SinkCheckpoint};
use crate::stats::{PhaseTimes, PoolCounters};
use crate::tuples::Tuples;

/// Options for [`build_cure_cube_durable`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Resume from an existing manifest instead of starting fresh.
    pub resume: bool,
    /// Worker threads for the partition passes. `1` (the default) runs the
    /// serial driver. `> 1` cubes partitions on a worker pool while a
    /// single merger applies the buffered results in partition order —
    /// same bytes, same per-partition checkpoints, so a crash at any
    /// thread count resumes from the first unfinished partition.
    pub threads: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions { resume: false, threads: 1 }
    }
}

/// What [`build_cure_cube_durable`] did, beyond the ordinary report.
#[derive(Debug, Clone)]
pub struct DurableReport {
    /// The ordinary build report.
    pub report: BuildReport,
    /// Whether an existing manifest was resumed (vs a fresh build).
    pub resumed: bool,
    /// The manifest was already `Complete`; nothing was rebuilt.
    pub already_complete: bool,
    /// Partition passes skipped because they were journaled as complete.
    pub partitions_skipped: usize,
    /// Cube relations truncated back to their journaled row counts.
    pub relations_repaired: usize,
    /// Unjournaled relations dropped during recovery.
    pub relations_dropped: usize,
}

struct Recovery {
    repaired: usize,
    dropped: usize,
}

enum RecoverError {
    /// Sealed state failed validation; a fresh build is the remedy.
    Invalid(String),
    /// An environmental failure (I/O) that a rebuild would hit too.
    Fatal(CubeError),
}

/// Crash-safe, resumable version of
/// [`build_cure_cube`](crate::partition::build_cure_cube).
///
/// `sink` must be a freshly created [`DiskSink`] over the same catalog;
/// CURE+ sinks are rejected (their TT bitmaps live in memory until
/// `finish`, so no intermediate state is durable).
pub fn build_cure_cube_durable(
    catalog: &Catalog,
    fact_rel: &str,
    schema: &CubeSchema,
    cfg: &CubeConfig,
    sink: &mut DiskSink<'_>,
    part_prefix: &str,
    opts: &DurableOptions,
) -> Result<DurableReport> {
    let threads = opts.threads.max(1);
    if !sink.supports_checkpoint() {
        return Err(CubeError::Config(
            "durable builds do not support CURE+ (TT bitmaps are not checkpointable)".into(),
        ));
    }
    let cube_prefix = sink.prefix().to_string();
    let fact = catalog.open_relation(fact_rel)?;
    let d = schema.num_dims();
    let y = schema.num_measures();
    let num_rows = fact.num_rows();
    let mem_needed = num_rows.saturating_mul(Tuples::tuple_bytes(d, y) as u64);

    // ---- resume: load + validate the journal --------------------------
    let mut recovered: Option<(BuildManifest, Recovery)> = None;
    if opts.resume {
        if let Some(m) = BuildManifest::load(catalog, &cube_prefix)? {
            match m.phase {
                BuildPhase::Complete => {
                    // Idempotent: the cube is fully on disk. Clean up any
                    // partitions left by a crash between the Complete
                    // manifest and the temp drops, then report.
                    let mut dropped = 0usize;
                    for (name, _) in &m.partitions {
                        if catalog.exists(name) {
                            catalog.drop_relation(name)?;
                            dropped += 1;
                        }
                    }
                    if !m.n_rel.is_empty() && catalog.exists(&m.n_rel) {
                        catalog.drop_relation(&m.n_rel)?;
                        dropped += 1;
                    }
                    let skipped = m.partitions.len();
                    return Ok(DurableReport {
                        report: complete_report(&m)?,
                        resumed: true,
                        already_complete: true,
                        partitions_skipped: skipped,
                        relations_repaired: 0,
                        relations_dropped: dropped,
                    });
                }
                BuildPhase::Passes => {
                    check_compat(&m, fact_rel, part_prefix, cfg, sink)?;
                    match recover_sealed_state(catalog, &m) {
                        Ok(rec) => recovered = Some((m, rec)),
                        Err(RecoverError::Invalid(why)) => {
                            eprintln!(
                                "cure-core: warning: cannot resume cube '{cube_prefix}': {why}; \
                                 rebuilding from scratch"
                            );
                        }
                        Err(RecoverError::Fatal(e)) => return Err(e),
                    }
                }
                BuildPhase::Partitioning => {
                    eprintln!(
                        "cure-core: warning: cube '{cube_prefix}' crashed while partitioning; \
                         nothing was sealed — rebuilding from scratch"
                    );
                }
            }
        }
    }
    let resumed = recovered.is_some();

    // ---- establish sealed inputs (recovered or freshly built) ---------
    let (mut manifest, part_names, n_tuples, skip, repaired, dropped);
    match recovered {
        Some((m, rec)) => {
            repaired = rec.repaired;
            dropped = rec.dropped;
            sink.restore_checkpoint(&m.sink)?;
            let n_heap = catalog.open_relation(&m.n_rel)?;
            n_tuples = Tuples::load_partition(&n_heap, d, y)?;
            part_names = m.partitions.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
            skip = m.completed_partitions;
            manifest = m;
        }
        None => {
            repaired = 0;
            dropped = 0;
            // Fresh start: wipe every trace of previous attempts so the
            // result is identical to a first build on a clean catalog.
            BuildManifest::remove(catalog, &cube_prefix)?;
            catalog.drop_prefix(&cube_prefix)?;
            if !part_prefix.starts_with(&cube_prefix) {
                catalog.drop_prefix(part_prefix)?;
            }

            // In-memory fast path: all-or-nothing, one Complete manifest.
            if mem_needed <= cfg.memory_budget_bytes as u64 {
                let t = Tuples::load_fact(&fact, d, y)?;
                let report = CubeBuilder::new(schema, cfg.clone()).build_in_memory(&t, sink)?;
                let cp = sink.checkpoint()?;
                let m = BuildManifest {
                    phase: BuildPhase::Complete,
                    cube_prefix,
                    part_prefix: part_prefix.to_string(),
                    fact_rel: fact_rel.to_string(),
                    dr: sink.dr(),
                    pool_capacity: cfg.pool_capacity,
                    min_support: cfg.min_support,
                    choice: PartitionChoice {
                        level: 0,
                        num_partitions: 0,
                        est_partition_bytes: 0,
                        est_n_rows: 0,
                        est_n_bytes: 0,
                    },
                    partitions: Vec::new(),
                    n_rel: String::new(),
                    n_rows: 0,
                    max_partition_rows: 0,
                    partition_secs: 0.0,
                    completed_partitions: 0,
                    counting_sorts: report.counting_sorts,
                    comparison_sorts: report.comparison_sorts,
                    pool: PoolDecisionState {
                        decided: cp.format,
                        flushes: report.pool_flushes,
                        total_signatures: report.signatures,
                        ..Default::default()
                    },
                    sink: cp,
                    stats: Some(report.stats.clone()),
                };
                m.save(catalog)?;
                return Ok(DurableReport {
                    report,
                    resumed: false,
                    already_complete: false,
                    partitions_skipped: 0,
                    relations_repaired: 0,
                    relations_dropped: 0,
                });
            }

            // Partitioned path. Publish intent first: a crash during the
            // scan leaves a Partitioning-phase manifest → clean restart.
            let choice = select_partition_level(
                schema,
                num_rows,
                Tuples::tuple_bytes(d, y),
                cfg.memory_budget_bytes,
            )?;
            let mut m = BuildManifest {
                phase: BuildPhase::Partitioning,
                cube_prefix,
                part_prefix: part_prefix.to_string(),
                fact_rel: fact_rel.to_string(),
                dr: sink.dr(),
                pool_capacity: cfg.pool_capacity,
                min_support: cfg.min_support,
                choice: choice.clone(),
                partitions: Vec::new(),
                n_rel: format!("{part_prefix}nrel"),
                n_rows: 0,
                max_partition_rows: 0,
                partition_secs: 0.0,
                completed_partitions: 0,
                counting_sorts: 0,
                comparison_sorts: 0,
                pool: PoolDecisionState::default(),
                sink: SinkCheckpoint::default(),
                stats: None,
            };
            m.save(catalog)?;

            let start = Instant::now();
            let (names, n, max_partition_rows) =
                partition_and_build_n(catalog, &fact, schema, &choice, part_prefix)?;
            m.partition_secs = start.elapsed().as_secs_f64();

            // Seal: fsync every partition, persist N, fsync the directory,
            // then journal the sealed row counts.
            let mut partitions = Vec::with_capacity(names.len());
            for name in &names {
                let rel = catalog.open_relation(name)?;
                rel.sync()?;
                partitions.push((name.clone(), rel.num_rows()));
            }
            let mut n_heap = catalog.create_or_replace(&m.n_rel, Tuples::partition_schema(d, y))?;
            n.store_partition(&mut n_heap)?;
            n_heap.sync()?;
            catalog.sync_dir()?;
            m.phase = BuildPhase::Passes;
            m.partitions = partitions;
            m.n_rows = n.len() as u64;
            m.max_partition_rows = max_partition_rows;
            m.save(catalog)?;

            n_tuples = n;
            part_names = names;
            skip = 0;
            manifest = m;
        }
    }

    // ---- partition passes ---------------------------------------------
    let coder = NodeCoder::new(schema);
    let level = manifest.choice.level;
    let mut counting = manifest.counting_sorts;
    let mut comparison = manifest.comparison_sorts;
    // Phase timers and classification counters cover *this run only*:
    // they are not journaled (they never steer the build, so the
    // manifest stays lean), so a resumed build reports the work it did
    // after the crash, not the sum across attempts.
    let mut pass_secs = 0.0f64;
    let mut sort_secs = 0.0f64;
    let mut tt_prunes = 0u64;
    let merge_secs;

    // One decision-carrying pool for the whole build, serial or parallel:
    // the parallel driver's workers only buffer sealed flushes, so every
    // order-sensitive effect still happens here, on the merger, through
    // this pool — byte-identical to a serial run at any thread count.
    let mut pool = SignaturePool::new(y, cfg.pool_capacity, cfg.cat_policy);
    pool.restore_decision(&manifest.pool)?;

    if threads == 1 {
        for (i, part_name) in part_names.iter().enumerate().skip(skip) {
            let rel = catalog.open_relation(part_name)?;
            if rel.num_rows() > 0 {
                let t = Tuples::load_partition(&rel, d, y)?;
                let mut exec = Exec::new(schema, &coder, &t, cfg.min_support, cfg.sort_policy);
                exec.set_dim0_level(level);
                let t0 = Instant::now();
                exec.run_partition_pass(&mut pool, sink)?;
                pass_secs += t0.elapsed().as_secs_f64();
                counting += exec.sorter.counting_calls();
                comparison += exec.sorter.comparison_calls();
                sort_secs += exec.sorter.sort_secs();
                tt_prunes += exec.tt_prunes;
            }
            // Checkpoint: flush the pool (durable state must be
            // self-contained), fsync everything, then journal.
            pool.flush(sink)?;
            manifest.sink = sink.checkpoint()?;
            manifest.pool = pool.decision_state();
            manifest.completed_partitions = i + 1;
            manifest.counting_sorts = counting;
            manifest.comparison_sorts = comparison;
            manifest.save(catalog)?;
        }
        merge_secs = 0.0;
    } else {
        // Parallel passes: workers record per-partition runs; the merger
        // (this thread) applies them in partition order and checkpoints
        // after each one, exactly like the serial loop — so `--resume`
        // restarts only the unfinished partitions, at any thread count.
        merge_secs = run_partition_passes_parallel(
            catalog,
            schema,
            &coder,
            cfg,
            sink,
            &part_names,
            level,
            threads,
            skip,
            &mut pool,
            |sink, pool, i, rs| {
                counting += rs.counting_sorts;
                comparison += rs.comparison_sorts;
                pass_secs += rs.pass_secs;
                sort_secs += rs.sort_secs;
                tt_prunes += rs.tt_prunes;
                manifest.sink = sink.checkpoint()?;
                manifest.pool = pool.decision_state();
                manifest.completed_partitions = i + 1;
                manifest.counting_sorts = counting;
                manifest.comparison_sorts = comparison;
                manifest.save(catalog)
            },
        )?;
    }
    // N pass, then finish + final checkpoint.
    run_n_pass(
        schema,
        &coder,
        &n_tuples,
        cfg,
        level,
        &mut pool,
        sink,
        &mut counting,
        &mut comparison,
        &mut pass_secs,
        &mut sort_secs,
        &mut tt_prunes,
    )?;
    pool.flush(sink)?;
    let pool_flushes = pool.flushes();
    let signatures = pool.total_signatures();
    manifest.pool = pool.decision_state();

    // ---- finish: final fsync, Complete manifest, then drop temps ------
    let stats = sink.finish()?;
    manifest.sink = sink.checkpoint()?;
    manifest.counting_sorts = counting;
    manifest.comparison_sorts = comparison;
    manifest.completed_partitions = part_names.len();
    manifest.phase = BuildPhase::Complete;
    manifest.stats = Some(stats.clone());
    manifest.save(catalog)?;
    for name in &part_names {
        catalog.drop_relation(name)?;
    }
    catalog.drop_relation(&manifest.n_rel)?;

    Ok(DurableReport {
        report: BuildReport {
            stats,
            pool_flushes,
            signatures,
            counting_sorts: counting,
            comparison_sorts: comparison,
            phases: PhaseTimes {
                partition_secs: manifest.partition_secs,
                pass_secs,
                sort_secs,
                flush_secs: pool.write_secs(),
                merge_secs,
            },
            pool: PoolCounters {
                tt_prunes,
                nt_written: pool.nt_written(),
                cat_groups: pool.cat_groups(),
                cat_tuples: pool.cat_tuples(),
            },
            partition: Some(PartitionReport {
                choice: manifest.choice.clone(),
                n_rows: manifest.n_rows,
                max_partition_rows: manifest.max_partition_rows,
                partition_secs: manifest.partition_secs,
            }),
        },
        resumed,
        already_complete: false,
        partitions_skipped: skip,
        relations_repaired: repaired,
        relations_dropped: dropped,
    })
}

/// The N pass: dimension 0 restricted to levels ≥ L+1 (skipped entirely
/// when L was the top level).
#[allow(clippy::too_many_arguments)]
fn run_n_pass(
    schema: &CubeSchema,
    coder: &NodeCoder,
    n_tuples: &Tuples,
    cfg: &CubeConfig,
    level: crate::hierarchy::LevelIdx,
    pool: &mut SignaturePool,
    sink: &mut DiskSink<'_>,
    counting: &mut u64,
    comparison: &mut u64,
    pass_secs: &mut f64,
    sort_secs: &mut f64,
    tt_prunes: &mut u64,
) -> Result<()> {
    let top = schema.dims()[0].top_level();
    let skip_dim0 = level == top;
    let mut exec = Exec::new(schema, coder, n_tuples, cfg.min_support, cfg.sort_policy);
    exec.restrict_dim0(level + 1, skip_dim0);
    let t0 = Instant::now();
    exec.run_full(pool, sink)?;
    *pass_secs += t0.elapsed().as_secs_f64();
    *counting += exec.sorter.counting_calls();
    *comparison += exec.sorter.comparison_calls();
    *sort_secs += exec.sorter.sort_secs();
    *tt_prunes += exec.tt_prunes;
    Ok(())
}

/// Reject resuming with build options that would change the stored bytes.
fn check_compat(
    m: &BuildManifest,
    fact_rel: &str,
    part_prefix: &str,
    cfg: &CubeConfig,
    sink: &DiskSink<'_>,
) -> Result<()> {
    let mismatch = |what: &str, was: String, now: String| {
        Err(CubeError::Config(format!(
            "cannot resume: {what} changed since the original build ({was} → {now}); \
             rebuild without --resume"
        )))
    };
    if m.fact_rel != fact_rel {
        return mismatch("fact relation", m.fact_rel.clone(), fact_rel.to_string());
    }
    if m.part_prefix != part_prefix {
        return mismatch("partition prefix", m.part_prefix.clone(), part_prefix.to_string());
    }
    if m.pool_capacity != cfg.pool_capacity {
        return mismatch(
            "signature pool capacity",
            m.pool_capacity.to_string(),
            cfg.pool_capacity.to_string(),
        );
    }
    if m.min_support != cfg.min_support {
        return mismatch("min support", m.min_support.to_string(), cfg.min_support.to_string());
    }
    if m.dr != sink.dr() {
        return mismatch("DR variant", m.dr.to_string(), sink.dr().to_string());
    }
    Ok(())
}

/// Reconstruct the build report journaled by a `Complete` manifest.
fn complete_report(m: &BuildManifest) -> Result<BuildReport> {
    let stats = m
        .stats
        .clone()
        .ok_or_else(|| CubeError::Config("complete manifest lacks final stats".into()))?;
    let partition = if m.choice.num_partitions == 0 {
        None
    } else {
        Some(PartitionReport {
            choice: m.choice.clone(),
            n_rows: m.n_rows,
            max_partition_rows: m.max_partition_rows,
            partition_secs: m.partition_secs,
        })
    };
    Ok(BuildReport {
        stats,
        pool_flushes: m.pool.flushes,
        signatures: m.pool.total_signatures,
        counting_sorts: m.counting_sorts,
        comparison_sorts: m.comparison_sorts,
        // Phase timers and pool counters are per-run observability, not
        // journaled state: an already-complete build reports only what
        // survives in the manifest (the partitioning time).
        phases: PhaseTimes { partition_secs: m.partition_secs, ..Default::default() },
        pool: PoolCounters::default(),
        partition,
    })
}

/// Validate the sealed inputs and truncate the cube back to the journal.
fn recover_sealed_state(
    catalog: &Catalog,
    m: &BuildManifest,
) -> std::result::Result<Recovery, RecoverError> {
    let fatal = |e: CubeError| RecoverError::Fatal(e);

    // 1. Sealed inputs (partitions + N) must exist, pass a full checksummed
    //    scan, and hold exactly their journaled row counts.
    let mut sealed: Vec<(String, u64)> = Vec::with_capacity(m.partitions.len() + 1);
    sealed.push((m.n_rel.clone(), m.n_rows));
    sealed.extend(m.partitions.iter().cloned());
    for (name, rows) in &sealed {
        if !catalog.exists(name) {
            return Err(RecoverError::Invalid(format!("sealed relation '{name}' is missing")));
        }
        let rel = catalog
            .open_relation(name)
            .map_err(|e| RecoverError::Invalid(format!("sealed relation '{name}': {e}")))?;
        let count = rel
            .try_for_each_row(|_, _| Ok(()))
            .map_err(|e| RecoverError::Invalid(format!("sealed relation '{name}': {e}")))?;
        if count != *rows {
            return Err(RecoverError::Invalid(format!(
                "sealed relation '{name}' has {count} rows, {rows} journaled"
            )));
        }
    }

    // 2. Truncate every journaled cube relation back to its sealed rows.
    let policy = catalog.policy().clone();
    let mut journaled = cure_storage::hash::FxHashSet::default();
    let mut to_repair: Vec<(String, u64)> = m.sink.relations.clone();
    if m.sink.agg_rows > 0 {
        to_repair.push((aggregates_rel_name(&m.cube_prefix), m.sink.agg_rows));
    }
    let mut repaired = 0usize;
    for (name, rows) in &to_repair {
        journaled.insert(name.clone());
        if !catalog.exists(name) {
            return Err(RecoverError::Invalid(format!("journaled relation '{name}' is missing")));
        }
        let schema = catalog.relation_schema(name).map_err(|e| fatal(e.into()))?;
        match HeapFile::repair_to_rows(
            catalog.relation_heap_path(name),
            &schema,
            *rows,
            policy.as_ref(),
        ) {
            Ok(()) => repaired += 1,
            Err(StorageError::Corrupt(msg)) => {
                return Err(RecoverError::Invalid(format!("journaled relation '{name}': {msg}")))
            }
            Err(e) => return Err(fatal(e.into())),
        }
    }

    // 3. Drop relations created after the last checkpoint (unjournaled).
    let mut dropped = 0usize;
    for name in catalog.list().map_err(|e| fatal(e.into()))? {
        if !name.starts_with(&m.cube_prefix)
            || name.starts_with(&m.part_prefix)
            || journaled.contains(&name)
        {
            continue;
        }
        catalog.drop_relation(&name).map_err(|e| fatal(e.into()))?;
        dropped += 1;
    }
    catalog.sync_dir().map_err(|e| fatal(e.into()))?;
    Ok(Recovery { repaired, dropped })
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::path::Path;
    use std::sync::Arc;

    use cure_storage::io::{FaultInjector, FaultKind, IoPolicy};

    use super::*;
    use crate::hierarchy::Dimension;

    fn fresh_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cure_durable_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_schema() -> CubeSchema {
        // A: 40 -> 8 -> 2 (linear), B: 12 -> 3, C: flat 6.
        let a = Dimension::linear(
            "A",
            40,
            &[(0..40).map(|v| v / 5).collect(), (0..8).map(|v| v / 4).collect()],
        )
        .unwrap();
        let b = Dimension::linear("B", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
        let c = Dimension::flat("C", 6);
        CubeSchema::new(vec![a, b, c], 2).unwrap()
    }

    fn store_fact(catalog: &Catalog, schema: &CubeSchema, n: usize, seed: u64) {
        let d = schema.num_dims();
        let y = schema.num_measures();
        let mut t = Tuples::new(d, y);
        let mut x = seed | 1;
        let mut dims = vec![0u32; d];
        let mut aggs = vec![0i64; y];
        for i in 0..n {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
            }
            for a in aggs.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *a = (x % 50) as i64;
            }
            t.push_fact(&dims, &aggs, i as u64);
        }
        let mut heap = catalog.create_relation("facts", Tuples::fact_schema(d, y)).unwrap();
        t.store_fact(&mut heap).unwrap();
        heap.sync().unwrap();
    }

    /// Every file in the catalog directory, minus the build manifest
    /// (timings differ run to run) — the byte-identity comparison set.
    fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
        let mut out = BTreeMap::new();
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with("manifest.json") || name.ends_with(".tmp") {
                continue;
            }
            out.insert(name, std::fs::read(entry.path()).unwrap());
        }
        out
    }

    fn durable_build(
        catalog: &Catalog,
        schema: &CubeSchema,
        cfg: &CubeConfig,
        opts: &DurableOptions,
    ) -> Result<DurableReport> {
        let mut sink = DiskSink::new(catalog, "cube_", schema, false, false, None)?;
        build_cure_cube_durable(catalog, "facts", schema, cfg, &mut sink, "cube_tmp_", opts)
    }

    fn small_cfg() -> CubeConfig {
        CubeConfig { memory_budget_bytes: 8 << 10, ..CubeConfig::default() }
    }

    /// A fault-free reference build: fact + completed durable cube.
    fn reference_build(tag: &str, cfg: &CubeConfig) -> (std::path::PathBuf, DurableReport) {
        let dir = fresh_dir(tag);
        let schema = test_schema();
        let catalog = Catalog::open(&dir).unwrap();
        store_fact(&catalog, &schema, 1_000, 99);
        let report = durable_build(&catalog, &schema, cfg, &DurableOptions::default()).unwrap();
        (dir, report)
    }

    #[test]
    fn durable_partitioned_build_is_deterministic() {
        let cfg = small_cfg();
        let (dir_a, ra) = reference_build("det_a", &cfg);
        let (dir_b, rb) = reference_build("det_b", &cfg);
        assert!(ra.report.partition.is_some(), "budget must force partitioning");
        assert_eq!(ra.report.stats, rb.report.stats);
        assert_eq!(snapshot(&dir_a), snapshot(&dir_b));
        // Temporary partitions and the persisted N were dropped.
        let catalog = Catalog::open(&dir_a).unwrap();
        assert!(catalog.list().unwrap().iter().all(|n| !n.starts_with("cube_tmp_")));
    }

    #[test]
    fn durable_build_matches_plain_build_exactly() {
        // Both drivers flush the pool at every partition boundary, so the
        // durable build (checkpoints and all) emits byte-for-byte the
        // same cube as the plain driver — same flush counts too.
        let cfg = small_cfg();
        let (dir, r) = reference_build("vs_plain", &cfg);
        let schema = test_schema();
        let plain_dir = fresh_dir("vs_plain_plain");
        let catalog = Catalog::open(&plain_dir).unwrap();
        store_fact(&catalog, &schema, 1_000, 99);
        let mut sink = DiskSink::new(&catalog, "cube_", &schema, false, false, None).unwrap();
        let plain = crate::partition::build_cure_cube(
            &catalog,
            "facts",
            &schema,
            &cfg,
            &mut sink,
            "cube_tmp_",
        )
        .unwrap();
        assert_eq!(r.report.stats, plain.stats);
        assert_eq!(r.report.pool_flushes, plain.pool_flushes);
        assert_eq!(r.report.signatures, plain.signatures);
        assert_eq!(
            r.report.partition.as_ref().unwrap().choice,
            plain.partition.as_ref().unwrap().choice
        );
        assert_eq!(snapshot(&dir), snapshot(&plain_dir), "durable vs plain bytes");
    }

    #[test]
    fn in_memory_fast_path_journals_and_resumes_idempotently() {
        let dir = fresh_dir("fastpath");
        let schema = test_schema();
        let catalog = Catalog::open(&dir).unwrap();
        store_fact(&catalog, &schema, 300, 7);
        let cfg = CubeConfig::default(); // big budget: in-memory path
        let first = durable_build(&catalog, &schema, &cfg, &DurableOptions::default()).unwrap();
        assert!(first.report.partition.is_none());
        assert!(!first.resumed);
        let m = BuildManifest::load(&catalog, "cube_").unwrap().expect("manifest written");
        assert_eq!(m.phase, BuildPhase::Complete);
        let before = snapshot(&dir);
        let again = durable_build(
            &catalog,
            &schema,
            &cfg,
            &DurableOptions { resume: true, ..Default::default() },
        )
        .unwrap();
        assert!(again.already_complete);
        assert_eq!(again.report.stats, first.report.stats);
        assert_eq!(again.report.signatures, first.report.signatures);
        assert_eq!(snapshot(&dir), before, "idempotent resume must not touch the cube");
    }

    #[test]
    fn resume_after_injected_crash_is_byte_identical() {
        let cfg = small_cfg();
        let (ref_dir, ref_report) = reference_build("crash_ref", &cfg);
        let reference = snapshot(&ref_dir);
        let schema = test_schema();
        // A spread of crash points: during partitioning, during early and
        // late passes. (The exhaustive every-write sweep lives in the
        // top-level crash_recovery harness.)
        for k in [0u64, 3, 10, 25, 60, 120, 250] {
            let dir = fresh_dir(&format!("crash_k{k}"));
            {
                let plain = Catalog::open(&dir).unwrap();
                store_fact(&plain, &schema, 1_000, 99);
            }
            let inj = Arc::new(FaultInjector::fail_nth_write(k, FaultKind::Error).sticky());
            let faulty = Catalog::open_with_policy(&dir, inj.clone() as Arc<dyn IoPolicy>).unwrap();
            let err = durable_build(&faulty, &schema, &cfg, &DurableOptions::default());
            if !inj.fired() {
                // k beyond the build's total writes: the build succeeded.
                err.unwrap();
            } else {
                assert!(err.is_err(), "sticky fault at write {k} must abort the build");
                let recovered = Catalog::open(&dir).unwrap();
                let r = durable_build(
                    &recovered,
                    &schema,
                    &cfg,
                    &DurableOptions { resume: true, ..Default::default() },
                )
                .unwrap();
                assert!(r.resumed || r.partitions_skipped == 0);
                assert_eq!(r.report.stats, ref_report.report.stats, "crash at write {k}");
            }
            assert_eq!(snapshot(&dir), reference, "crash at write {k}");
        }
    }

    #[test]
    fn crash_then_fresh_rebuild_also_matches() {
        let cfg = small_cfg();
        let (ref_dir, _) = reference_build("fresh_ref", &cfg);
        let reference = snapshot(&ref_dir);
        let schema = test_schema();
        let dir = fresh_dir("fresh_rebuild");
        {
            let plain = Catalog::open(&dir).unwrap();
            store_fact(&plain, &schema, 1_000, 99);
        }
        let inj = Arc::new(FaultInjector::fail_nth_write(40, FaultKind::Error).sticky());
        let faulty = Catalog::open_with_policy(&dir, inj.clone() as Arc<dyn IoPolicy>).unwrap();
        assert!(durable_build(&faulty, &schema, &cfg, &DurableOptions::default()).is_err());
        assert!(inj.fired());
        // resume: false wipes the partial state and rebuilds from scratch.
        let recovered = Catalog::open(&dir).unwrap();
        let r = durable_build(&recovered, &schema, &cfg, &DurableOptions::default()).unwrap();
        assert!(!r.resumed);
        assert_eq!(snapshot(&dir), reference);
    }

    #[test]
    fn resume_rejects_changed_build_options() {
        let cfg = small_cfg();
        let (dir, _) = reference_build("compat", &cfg);
        let catalog = Catalog::open(&dir).unwrap();
        // Rewind the manifest to mid-build so resume must check options.
        let mut m = BuildManifest::load(&catalog, "cube_").unwrap().unwrap();
        m.phase = BuildPhase::Passes;
        m.save(&catalog).unwrap();
        let bad = CubeConfig { min_support: cfg.min_support + 5, ..cfg.clone() };
        let err = durable_build(
            &catalog,
            &schema_of(&m),
            &bad,
            &DurableOptions { resume: true, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, CubeError::Config(_)), "got {err:?}");
    }

    fn schema_of(_m: &BuildManifest) -> CubeSchema {
        test_schema()
    }

    #[test]
    fn durable_rejects_cure_plus() {
        let dir = fresh_dir("plus");
        let schema = test_schema();
        let catalog = Catalog::open(&dir).unwrap();
        store_fact(&catalog, &schema, 100, 3);
        let mut sink = DiskSink::new(&catalog, "cube_", &schema, false, true, None).unwrap();
        let err = build_cure_cube_durable(
            &catalog,
            "facts",
            &schema,
            &CubeConfig::default(),
            &mut sink,
            "cube_tmp_",
            &DurableOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CubeError::Config(_)));
    }

    #[test]
    fn parallel_durable_build_is_byte_identical_to_serial() {
        // The merger applies worker runs in partition order through one
        // decision-carrying pool, so a parallel durable build emits
        // byte-for-byte the serial cube at every thread count.
        let cfg = small_cfg();
        let (serial_dir, serial) = reference_build("par_serial", &cfg);
        let reference = snapshot(&serial_dir);
        for threads in [2usize, 4, 8] {
            let dir = fresh_dir(&format!("par_threads{threads}"));
            let schema = test_schema();
            let catalog = Catalog::open(&dir).unwrap();
            store_fact(&catalog, &schema, 1_000, 99);
            let r =
                durable_build(&catalog, &schema, &cfg, &DurableOptions { resume: false, threads })
                    .unwrap();
            assert_eq!(r.report.stats, serial.report.stats, "threads={threads}");
            assert_eq!(r.report.pool_flushes, serial.report.pool_flushes, "threads={threads}");
            assert_eq!(r.report.signatures, serial.report.signatures, "threads={threads}");
            assert_eq!(snapshot(&dir), reference, "threads={threads} bytes");
            // The parallel driver still finishes Complete and is resumable.
            let again =
                durable_build(&catalog, &schema, &cfg, &DurableOptions { resume: true, threads })
                    .unwrap();
            assert!(again.already_complete);
        }
    }

    #[test]
    fn parallel_durable_crash_resumes_only_unfinished_partitions() {
        // Kill a 4-thread durable build at a write index past the first
        // few checkpoints; resume must skip the journaled partitions and
        // still land on the fault-free bytes.
        let cfg = small_cfg();
        let (ref_dir, _) = reference_build("par_crash_ref", &cfg);
        let reference = snapshot(&ref_dir);
        let schema = test_schema();
        // Count the build's writes so the fault points cover early,
        // middle and late stages whatever the exact write count is.
        let writes = {
            let dir = fresh_dir("par_crash_count");
            {
                let plain = Catalog::open(&dir).unwrap();
                store_fact(&plain, &schema, 1_000, 99);
            }
            let counter = Arc::new(FaultInjector::counting());
            let counted =
                Catalog::open_with_policy(&dir, counter.clone() as Arc<dyn IoPolicy>).unwrap();
            durable_build(&counted, &schema, &cfg, &DurableOptions { resume: false, threads: 4 })
                .unwrap();
            counter.writes()
        };
        let mut skipped_any = false;
        for k in [writes / 4, writes / 2, writes - 2] {
            let dir = fresh_dir(&format!("par_crash{k}"));
            {
                let plain = Catalog::open(&dir).unwrap();
                store_fact(&plain, &schema, 1_000, 99);
            }
            let inj = Arc::new(FaultInjector::fail_nth_write(k, FaultKind::Error).sticky());
            let faulty = Catalog::open_with_policy(&dir, inj.clone() as Arc<dyn IoPolicy>).unwrap();
            let died = durable_build(
                &faulty,
                &schema,
                &cfg,
                &DurableOptions { resume: false, threads: 4 },
            );
            assert!(inj.fired(), "write {k} must exist in the build");
            assert!(died.is_err(), "sticky fault at write {k} must abort");
            drop(faulty);
            let recovered = Catalog::open(&dir).unwrap();
            let r = durable_build(
                &recovered,
                &schema,
                &cfg,
                &DurableOptions { resume: true, threads: 4 },
            )
            .unwrap();
            assert!(r.resumed, "crash at write {k} must resume, not rebuild");
            skipped_any |= r.partitions_skipped > 0;
            assert_eq!(snapshot(&dir), reference, "crash at write {k}");
        }
        assert!(skipped_any, "at least one crash point must land past a partition checkpoint");
    }
}
