//! Error type for cube construction.

use std::fmt;

use cure_storage::StorageError;

/// Result alias for cube operations.
pub type Result<T> = std::result::Result<T, CubeError>;

/// Errors produced while building or reading cubes.
#[derive(Debug)]
pub enum CubeError {
    /// Propagated storage-engine failure.
    Storage(StorageError),
    /// Inconsistent hierarchy definition (bad rollup maps, cycles, multiple
    /// top levels, cardinality mismatches).
    Hierarchy(String),
    /// Input data does not match the cube schema.
    Schema(String),
    /// External partitioning could not find a feasible level (§4 notes this
    /// is rare; the pairs-of-dimensions extension is out of scope).
    Partitioning(String),
    /// Invalid configuration (e.g. zero memory budget).
    Config(String),
    /// A query exceeded its deadline mid-execution (serve path).
    Timeout(String),
}

impl fmt::Display for CubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeError::Storage(e) => write!(f, "storage: {e}"),
            CubeError::Hierarchy(m) => write!(f, "hierarchy: {m}"),
            CubeError::Schema(m) => write!(f, "schema: {m}"),
            CubeError::Partitioning(m) => write!(f, "partitioning: {m}"),
            CubeError::Config(m) => write!(f, "config: {m}"),
            CubeError::Timeout(m) => write!(f, "timeout: {m}"),
        }
    }
}

impl std::error::Error for CubeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CubeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CubeError {
    fn from(e: StorageError) -> Self {
        CubeError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CubeError::Hierarchy("x".into()).to_string().contains("hierarchy"));
        assert!(CubeError::Partitioning("y".into()).to_string().contains('y'));
    }

    #[test]
    fn storage_error_chains() {
        let inner = StorageError::Catalog("gone".into());
        let e: CubeError = inner.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
