//! The durable build manifest: the journal behind crash-safe construction.
//!
//! A partitioned CURE build ([`crate::durable::build_cure_cube_durable`])
//! records its progress in `<catalog dir>/<cube prefix>manifest.json`. The
//! file is replaced atomically ([`cure_storage::atomic_write`]: temp file +
//! fsync + rename + directory fsync) and guarded by a CRC32 over the
//! manifest body, so after a crash it is either absent, a complete old
//! version, or a complete new version — never a torn mix. Recovery trusts
//! only what the manifest journals:
//!
//! * **`Partitioning`** — the partitioning scan was in flight; nothing is
//!   sealed. Recovery restarts the build from scratch.
//! * **`Passes`** — the partitions and the aggregated relation *N* are
//!   sealed (flushed, fsynced, row counts journaled), and `sink` holds the
//!   last durable [`SinkCheckpoint`]. Recovery validates the sealed inputs
//!   by a full checksummed scan, truncates every cube relation back to its
//!   journaled row count, drops unjournaled relations, and resumes from
//!   partition `completed_partitions`.
//! * **`Complete`** — the build finished; `stats` holds the final numbers.
//!   Resuming is a no-op that returns the journaled report.
//!
//! Every journal entry is written *after* the data it describes is on
//! stable storage (write-ahead of nothing): the manifest never references
//! rows that a crash could take away.

use std::collections::BTreeMap;
use std::path::PathBuf;

use cure_storage::checksum::crc32;
use cure_storage::{atomic_write, Catalog};
use serde_json::Value;

use crate::error::{CubeError, Result};
use crate::hierarchy::LevelIdx;
use crate::partition::PartitionChoice;
use crate::signature::PoolDecisionState;
use crate::sink::{CatFormat, SinkCheckpoint, SinkStats};

/// Manifest format version (bumped on incompatible layout changes).
pub const MANIFEST_VERSION: u64 = 1;

/// Which stage a durable build had durably reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildPhase {
    /// The partitioning scan is (or was) in flight; nothing is sealed.
    Partitioning,
    /// Partitions and *N* are sealed; per-partition passes are running.
    Passes,
    /// The build finished; the cube is fully on disk.
    Complete,
}

impl BuildPhase {
    fn as_str(self) -> &'static str {
        match self {
            BuildPhase::Partitioning => "partitioning",
            BuildPhase::Passes => "passes",
            BuildPhase::Complete => "complete",
        }
    }

    fn parse(s: &str) -> Result<Self> {
        match s {
            "partitioning" => Ok(BuildPhase::Partitioning),
            "passes" => Ok(BuildPhase::Passes),
            "complete" => Ok(BuildPhase::Complete),
            other => Err(m_err(format!("unknown phase '{other}'"))),
        }
    }
}

/// The durable build journal. See the module docs for the protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildManifest {
    /// Stage durably reached.
    pub phase: BuildPhase,
    /// Relation-name prefix of the cube being built.
    pub cube_prefix: String,
    /// Relation-name prefix of the temporary partition relations.
    pub part_prefix: String,
    /// The fact relation the build reads.
    pub fact_rel: String,
    /// CURE_DR build (NTs store materialized dimension values).
    pub dr: bool,
    /// Signature-pool capacity of the original run (must match on resume —
    /// flush boundaries determine the stored bytes).
    pub pool_capacity: usize,
    /// Iceberg minimum support of the original run.
    pub min_support: u64,
    /// The §4 level selection made before partitioning.
    pub choice: PartitionChoice,
    /// Sealed partition relations and their row counts, in pass order.
    pub partitions: Vec<(String, u64)>,
    /// Name of the sealed relation holding the aggregated relation *N*.
    pub n_rel: String,
    /// Rows of *N*.
    pub n_rows: u64,
    /// Largest partition (skew indicator, for the final report).
    pub max_partition_rows: u64,
    /// Seconds the partitioning scan took (for the final report).
    pub partition_secs: f64,
    /// Partition passes completed (and checkpointed) so far.
    pub completed_partitions: usize,
    /// Counting-sort invocations accumulated over completed passes.
    pub counting_sorts: u64,
    /// Comparison-sort invocations accumulated over completed passes.
    pub comparison_sorts: u64,
    /// The signature pool's decision machinery at the last checkpoint.
    pub pool: PoolDecisionState,
    /// The sink's durable progress at the last checkpoint.
    pub sink: SinkCheckpoint,
    /// Final cube statistics (phase `Complete` only).
    pub stats: Option<SinkStats>,
}

fn m_err(msg: impl std::fmt::Display) -> CubeError {
    CubeError::Config(format!("build manifest: {msg}"))
}

fn fmt_cat(f: Option<CatFormat>) -> &'static str {
    match f {
        None => "none",
        Some(CatFormat::CommonSource) => "a",
        Some(CatFormat::Coincidental) => "b",
        Some(CatFormat::AsNt) => "nt",
    }
}

fn parse_cat(s: &str) -> Result<Option<CatFormat>> {
    match s {
        "none" => Ok(None),
        "a" => Ok(Some(CatFormat::CommonSource)),
        "b" => Ok(Some(CatFormat::Coincidental)),
        "nt" => Ok(Some(CatFormat::AsNt)),
        other => Err(m_err(format!("unknown cat format '{other}'"))),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn rel_list(rels: &[(String, u64)]) -> Value {
    Value::Array(
        rels.iter()
            .map(|(n, r)| Value::Array(vec![Value::from(n.as_str()), Value::from(*r)]))
            .collect(),
    )
}

// -- field accessors over the parsed tree ---------------------------------

fn get<'v>(v: &'v Value, key: &str) -> Result<&'v Value> {
    v.get(key).ok_or_else(|| m_err(format!("missing field '{key}'")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64> {
    get(v, key)?.as_u64().ok_or_else(|| m_err(format!("field '{key}' is not an integer")))
}

fn get_f64(v: &Value, key: &str) -> Result<f64> {
    get(v, key)?.as_f64().ok_or_else(|| m_err(format!("field '{key}' is not a number")))
}

fn get_str<'v>(v: &'v Value, key: &str) -> Result<&'v str> {
    get(v, key)?.as_str().ok_or_else(|| m_err(format!("field '{key}' is not a string")))
}

fn get_bool(v: &Value, key: &str) -> Result<bool> {
    get(v, key)?.as_bool().ok_or_else(|| m_err(format!("field '{key}' is not a bool")))
}

fn get_rels(v: &Value, key: &str) -> Result<Vec<(String, u64)>> {
    let arr =
        get(v, key)?.as_array().ok_or_else(|| m_err(format!("field '{key}' is not an array")))?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let pair =
            item.as_array().filter(|p| p.len() == 2).ok_or_else(|| m_err("bad relation entry"))?;
        let name = pair[0].as_str().ok_or_else(|| m_err("relation name is not a string"))?;
        let rows = pair[1].as_u64().ok_or_else(|| m_err("relation rows is not an integer"))?;
        out.push((name.to_string(), rows));
    }
    Ok(out)
}

impl BuildManifest {
    /// File name of the manifest for a cube prefix (lives next to the
    /// catalog's relations, but is not itself a catalog object).
    pub fn file_name(cube_prefix: &str) -> String {
        format!("{cube_prefix}manifest.json")
    }

    /// Filesystem path of the manifest for `cube_prefix` in `catalog`.
    pub fn path(catalog: &Catalog, cube_prefix: &str) -> PathBuf {
        catalog.dir().join(Self::file_name(cube_prefix))
    }

    /// Whether a manifest exists for `cube_prefix`.
    pub fn exists(catalog: &Catalog, cube_prefix: &str) -> bool {
        Self::path(catalog, cube_prefix).is_file()
    }

    /// Atomically replace the on-disk manifest with this state.
    pub fn save(&self, catalog: &Catalog) -> Result<()> {
        let inner = self.to_json();
        let crc = crc32(inner.to_string().as_bytes());
        let mut root = BTreeMap::new();
        root.insert("crc32".to_string(), Value::from(crc));
        root.insert("manifest".to_string(), inner);
        let text = serde_json::to_string_pretty(&Value::Object(root))
            .map_err(|e| m_err(format!("serialize: {e}")))?;
        atomic_write(
            catalog.policy().as_ref(),
            &Self::path(catalog, &self.cube_prefix),
            text.as_bytes(),
        )
        .map_err(|e| CubeError::Storage(e.into()))?;
        Ok(())
    }

    /// Load the manifest for `cube_prefix`, if one exists and is intact.
    ///
    /// Returns `Ok(None)` when the file is absent. A file that fails to
    /// parse or whose CRC does not match is treated the same way (with a
    /// warning): an interrupted *first* `save` can leave a temp file but
    /// never a torn manifest, so a damaged manifest means external
    /// corruption — the safe answer is a fresh build, not an error.
    pub fn load(catalog: &Catalog, cube_prefix: &str) -> Result<Option<BuildManifest>> {
        let path = Self::path(catalog, cube_prefix);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CubeError::Storage(e.into())),
        };
        match Self::parse(&bytes) {
            Ok(m) => {
                if m.cube_prefix != cube_prefix {
                    eprintln!(
                        "cure-core: warning: {} journals prefix '{}', expected '{}'; ignoring",
                        path.display(),
                        m.cube_prefix,
                        cube_prefix
                    );
                    return Ok(None);
                }
                Ok(Some(m))
            }
            Err(e) => {
                eprintln!("cure-core: warning: ignoring damaged manifest {}: {e}", path.display());
                Ok(None)
            }
        }
    }

    /// Delete the manifest if present.
    pub fn remove(catalog: &Catalog, cube_prefix: &str) -> Result<()> {
        let path = Self::path(catalog, cube_prefix);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CubeError::Storage(e.into())),
        }
    }

    /// Parse and CRC-check raw manifest bytes.
    pub fn parse(bytes: &[u8]) -> Result<BuildManifest> {
        let root = serde_json::from_slice(bytes).map_err(|e| m_err(format!("unparseable: {e}")))?;
        let crc = get_u64(&root, "crc32")? as u32;
        let inner = get(&root, "manifest")?;
        let actual = crc32(inner.to_string().as_bytes());
        if actual != crc {
            return Err(m_err(format!("CRC mismatch (stored {crc:#010x}, actual {actual:#010x})")));
        }
        Self::from_json(inner)
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("version", Value::from(MANIFEST_VERSION)),
            ("phase", Value::from(self.phase.as_str())),
            ("cube_prefix", Value::from(self.cube_prefix.as_str())),
            ("part_prefix", Value::from(self.part_prefix.as_str())),
            ("fact_rel", Value::from(self.fact_rel.as_str())),
            ("dr", Value::from(self.dr)),
            ("pool_capacity", Value::from(self.pool_capacity)),
            ("min_support", Value::from(self.min_support)),
            (
                "choice",
                obj(vec![
                    ("level", Value::from(self.choice.level)),
                    ("num_partitions", Value::from(self.choice.num_partitions)),
                    ("est_partition_bytes", Value::from(self.choice.est_partition_bytes)),
                    ("est_n_rows", Value::from(self.choice.est_n_rows)),
                    ("est_n_bytes", Value::from(self.choice.est_n_bytes)),
                ]),
            ),
            ("partitions", rel_list(&self.partitions)),
            ("n_rel", Value::from(self.n_rel.as_str())),
            ("n_rows", Value::from(self.n_rows)),
            ("max_partition_rows", Value::from(self.max_partition_rows)),
            ("partition_secs", Value::from(self.partition_secs)),
            ("completed_partitions", Value::from(self.completed_partitions)),
            ("counting_sorts", Value::from(self.counting_sorts)),
            ("comparison_sorts", Value::from(self.comparison_sorts)),
            (
                "pool",
                obj(vec![
                    ("decided", Value::from(fmt_cat(self.pool.decided))),
                    ("groups", Value::from(self.pool.groups)),
                    ("k_sum", Value::from(self.pool.k_sum)),
                    ("n_sum", Value::from(self.pool.n_sum)),
                    ("flushes", Value::from(self.pool.flushes)),
                    ("total_signatures", Value::from(self.pool.total_signatures)),
                ]),
            ),
            (
                "sink",
                obj(vec![
                    ("format", Value::from(fmt_cat(self.sink.format))),
                    ("agg_rows", Value::from(self.sink.agg_rows)),
                    ("tt_tuples", Value::from(self.sink.tt_tuples)),
                    ("nt_tuples", Value::from(self.sink.nt_tuples)),
                    ("cat_tuples", Value::from(self.sink.cat_tuples)),
                    ("relations", rel_list(&self.sink.relations)),
                ]),
            ),
        ];
        if let Some(s) = &self.stats {
            fields.push((
                "stats",
                obj(vec![
                    ("tt_tuples", Value::from(s.tt_tuples)),
                    ("nt_tuples", Value::from(s.nt_tuples)),
                    ("cat_tuples", Value::from(s.cat_tuples)),
                    ("aggregates_rows", Value::from(s.aggregates_rows)),
                    ("tt_bytes", Value::from(s.tt_bytes)),
                    ("nt_bytes", Value::from(s.nt_bytes)),
                    ("cat_bytes", Value::from(s.cat_bytes)),
                    ("aggregates_bytes", Value::from(s.aggregates_bytes)),
                    ("relations", Value::from(s.relations)),
                    ("cat_format", Value::from(fmt_cat(s.cat_format))),
                ]),
            ));
        }
        obj(fields)
    }

    fn from_json(v: &Value) -> Result<BuildManifest> {
        let version = get_u64(v, "version")?;
        if version != MANIFEST_VERSION {
            return Err(m_err(format!("version {version} is not supported")));
        }
        let choice = get(v, "choice")?;
        let pool = get(v, "pool")?;
        let sink = get(v, "sink")?;
        let stats = match v.get("stats") {
            None => None,
            Some(s) => Some(SinkStats {
                tt_tuples: get_u64(s, "tt_tuples")?,
                nt_tuples: get_u64(s, "nt_tuples")?,
                cat_tuples: get_u64(s, "cat_tuples")?,
                aggregates_rows: get_u64(s, "aggregates_rows")?,
                tt_bytes: get_u64(s, "tt_bytes")?,
                nt_bytes: get_u64(s, "nt_bytes")?,
                cat_bytes: get_u64(s, "cat_bytes")?,
                aggregates_bytes: get_u64(s, "aggregates_bytes")?,
                relations: get_u64(s, "relations")?,
                cat_format: parse_cat(get_str(s, "cat_format")?)?,
            }),
        };
        Ok(BuildManifest {
            phase: BuildPhase::parse(get_str(v, "phase")?)?,
            cube_prefix: get_str(v, "cube_prefix")?.to_string(),
            part_prefix: get_str(v, "part_prefix")?.to_string(),
            fact_rel: get_str(v, "fact_rel")?.to_string(),
            dr: get_bool(v, "dr")?,
            pool_capacity: get_u64(v, "pool_capacity")? as usize,
            min_support: get_u64(v, "min_support")?,
            choice: PartitionChoice {
                level: get_u64(choice, "level")? as LevelIdx,
                num_partitions: get_u64(choice, "num_partitions")? as usize,
                est_partition_bytes: get_u64(choice, "est_partition_bytes")?,
                est_n_rows: get_u64(choice, "est_n_rows")?,
                est_n_bytes: get_u64(choice, "est_n_bytes")?,
            },
            partitions: get_rels(v, "partitions")?,
            n_rel: get_str(v, "n_rel")?.to_string(),
            n_rows: get_u64(v, "n_rows")?,
            max_partition_rows: get_u64(v, "max_partition_rows")?,
            partition_secs: get_f64(v, "partition_secs")?,
            completed_partitions: get_u64(v, "completed_partitions")? as usize,
            counting_sorts: get_u64(v, "counting_sorts")?,
            comparison_sorts: get_u64(v, "comparison_sorts")?,
            pool: PoolDecisionState {
                decided: parse_cat(get_str(pool, "decided")?)?,
                groups: get_u64(pool, "groups")?,
                k_sum: get_u64(pool, "k_sum")?,
                n_sum: get_u64(pool, "n_sum")?,
                flushes: get_u64(pool, "flushes")?,
                total_signatures: get_u64(pool, "total_signatures")?,
            },
            sink: SinkCheckpoint {
                format: parse_cat(get_str(sink, "format")?)?,
                agg_rows: get_u64(sink, "agg_rows")?,
                tt_tuples: get_u64(sink, "tt_tuples")?,
                nt_tuples: get_u64(sink, "nt_tuples")?,
                cat_tuples: get_u64(sink, "cat_tuples")?,
                relations: get_rels(sink, "relations")?,
            },
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_manifest_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    fn sample(phase: BuildPhase) -> BuildManifest {
        BuildManifest {
            phase,
            cube_prefix: "cube_".into(),
            part_prefix: "cube_tmp_".into(),
            fact_rel: "facts".into(),
            dr: false,
            pool_capacity: 1 << 16,
            min_support: 1,
            choice: PartitionChoice {
                level: 1,
                num_partitions: 4,
                est_partition_bytes: 1024,
                est_n_rows: 37,
                est_n_bytes: 1628,
            },
            partitions: vec![("cube_tmp_part0".into(), 12), ("cube_tmp_part1".into(), 30)],
            n_rel: "cube_tmp_nrel".into(),
            n_rows: 37,
            max_partition_rows: 30,
            partition_secs: 0.125,
            completed_partitions: 1,
            counting_sorts: 7,
            comparison_sorts: 3,
            pool: PoolDecisionState {
                decided: Some(CatFormat::Coincidental),
                groups: 5,
                k_sum: 15,
                n_sum: 12,
                flushes: 2,
                total_signatures: 90,
            },
            sink: SinkCheckpoint {
                format: Some(CatFormat::Coincidental),
                agg_rows: 5,
                tt_tuples: 40,
                nt_tuples: 20,
                cat_tuples: 15,
                relations: vec![("cube_n3_nt".into(), 20), ("cube_n7_tt".into(), 40)],
            },
            stats: None,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let catalog = fresh_catalog("rt");
        let m = sample(BuildPhase::Passes);
        m.save(&catalog).unwrap();
        assert!(BuildManifest::exists(&catalog, "cube_"));
        let loaded = BuildManifest::load(&catalog, "cube_").unwrap().unwrap();
        assert_eq!(loaded, m);
    }

    #[test]
    fn complete_phase_carries_stats() {
        let catalog = fresh_catalog("stats");
        let mut m = sample(BuildPhase::Complete);
        m.stats = Some(SinkStats {
            tt_tuples: 40,
            nt_tuples: 25,
            cat_tuples: 15,
            aggregates_rows: 5,
            tt_bytes: 320,
            nt_bytes: 600,
            cat_bytes: 240,
            aggregates_bytes: 80,
            relations: 9,
            cat_format: Some(CatFormat::Coincidental),
        });
        m.save(&catalog).unwrap();
        let loaded = BuildManifest::load(&catalog, "cube_").unwrap().unwrap();
        assert_eq!(loaded.stats, m.stats);
        assert_eq!(loaded.phase, BuildPhase::Complete);
    }

    #[test]
    fn missing_manifest_is_none() {
        let catalog = fresh_catalog("missing");
        assert!(BuildManifest::load(&catalog, "cube_").unwrap().is_none());
    }

    #[test]
    fn corrupt_manifest_ignored_with_warning() {
        let catalog = fresh_catalog("corrupt");
        let m = sample(BuildPhase::Passes);
        m.save(&catalog).unwrap();
        // Flip a byte inside the body: CRC must catch it.
        let path = BuildManifest::path(&catalog, "cube_");
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes.len() / 2;
        bytes[pos] = bytes[pos].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(BuildManifest::load(&catalog, "cube_").unwrap().is_none());
        // Outright garbage too.
        std::fs::write(&path, b"not json at all").unwrap();
        assert!(BuildManifest::load(&catalog, "cube_").unwrap().is_none());
    }

    #[test]
    fn atomic_replace_preserves_old_version_under_fault() {
        use cure_storage::{FaultInjector, FaultKind};
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("cure_manifest_{}_fault", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(&dir).unwrap();
        let old = sample(BuildPhase::Passes);
        old.save(&catalog).unwrap();
        // Re-open the catalog with a policy that kills the next write: the
        // replacement must fail without touching the old manifest.
        let injector = Arc::new(FaultInjector::fail_nth_write(0, FaultKind::Torn).sticky());
        let faulty = Catalog::open_with_policy(&dir, injector).unwrap();
        let mut new = old.clone();
        new.completed_partitions = 2;
        assert!(new.save(&faulty).is_err());
        let loaded = BuildManifest::load(&catalog, "cube_").unwrap().unwrap();
        assert_eq!(loaded, old, "failed replace must leave the old manifest intact");
    }

    #[test]
    fn remove_is_idempotent() {
        let catalog = fresh_catalog("rm");
        BuildManifest::remove(&catalog, "cube_").unwrap();
        sample(BuildPhase::Passes).save(&catalog).unwrap();
        BuildManifest::remove(&catalog, "cube_").unwrap();
        assert!(!BuildManifest::exists(&catalog, "cube_"));
        BuildManifest::remove(&catalog, "cube_").unwrap();
    }
}
