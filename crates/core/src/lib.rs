//! # cure-core — CURE: Cubing Using a ROLAP Engine
//!
//! A from-scratch implementation of the CURE hierarchical data-cube
//! construction method (Morfonios & Ioannidis, VLDB 2006):
//!
//! * [`hierarchy`] — dimensions with linear or complex (DAG) hierarchies
//!   and O(1) rollup lookups;
//! * [`lattice`] — the hierarchical cube lattice and the paper's dense
//!   node enumeration (§3.3);
//! * [`plan`] — execution plan **P3** (Rules 1 & 2, modified Rule 2 for
//!   complex hierarchies), analytically and as a materialized tree, for
//!   both in-memory and partitioned executions;
//! * [`cube`] — the `ExecutePlan`/`FollowEdge` recursion of Figure 13 with
//!   trivial-tuple pruning and iceberg support;
//! * [`signature`] — the bounded signature pool classifying NTs vs CATs
//!   and choosing the CAT storage format dynamically (§5);
//! * [`sink`] — NT/TT/CAT relational storage (in-memory and on-disk),
//!   including the CURE_DR and CURE+ variants;
//! * [`partition`] — external partitioning and the out-of-core driver
//!   (§4), including the paper's Table 1 level-selection logic;
//! * [`manifest`] — the durable, CRC-guarded build manifest journaling
//!   sealed partitions and checkpointed sink state;
//! * [`durable`] — the crash-safe, resumable build driver
//!   ([`build_cure_cube_durable`]);
//! * [`mod@reference`] — a naive full-cube oracle used by the test suite;
//! * [`reader`] — logical node reconstruction from an in-memory cube.
//!
//! Start with [`cube::CubeBuilder`] for in-memory construction or
//! [`partition::build_cure_cube`] for the disk-based pipeline.
//!
//! ```
//! use cure_core::{CubeBuilder, CubeConfig, CubeSchema, Dimension, MemSink, Tuples};
//!
//! // Region: 4 cities → 2 countries; Product: flat.
//! let region = Dimension::linear("Region", 4, &[vec![0, 0, 1, 1]])?;
//! let product = Dimension::flat("Product", 3);
//! let schema = CubeSchema::new(vec![region, product], 1)?;
//! assert_eq!(schema.num_lattice_nodes(), (2 + 1) * (1 + 1));
//!
//! let mut facts = Tuples::new(2, 1);
//! facts.push_fact(&[0, 1], &[10], 0);
//! facts.push_fact(&[1, 1], &[20], 1);
//! facts.push_fact(&[3, 2], &[5], 2);
//!
//! let mut sink = MemSink::new(1);
//! let report = CubeBuilder::new(&schema, CubeConfig::default())
//!     .build_in_memory(&facts, &mut sink)?;
//! assert!(report.stats.total_tuples() > 0);
//! # Ok::<(), cure_core::CubeError>(())
//! ```

pub mod aggfn;
pub mod cube;
pub mod delta;
pub mod durable;
pub mod error;
pub mod hierarchy;
pub mod lattice;
pub mod manifest;
pub mod meta;
pub mod partition;
pub mod plan;
pub mod reader;
pub mod reference;
pub mod schema_blob;
pub mod shard;
pub mod signature;
pub mod sink;
pub mod sorter;
pub mod stats;
pub mod tuples;
pub mod update;

pub use aggfn::AggFn;
pub use cube::{BuildReport, CubeBuilder, CubeConfig};
pub use delta::{
    abort_ingest, active_prefix, ingest_cube, ingest_cube_into, other_prefix, parse_batch,
    recover_ingest, set_active_prefix, IngestManifest, IngestOptions, IngestPhase, IngestRecovery,
    IngestReport,
};
pub use durable::{build_cure_cube_durable, DurableOptions, DurableReport};
pub use error::{CubeError, Result};
pub use hierarchy::{CubeSchema, Dimension, Level, LevelIdx};
pub use lattice::{NodeCoder, NodeId, NodeLevels};
pub use manifest::{BuildManifest, BuildPhase};
pub use meta::CubeMeta;
pub use partition::{
    build_cure_cube, build_cure_cube_parallel, select_partition_level, PartitionChoice,
    PartitionReport,
};
pub use plan::{EdgeKind, Pass, PlanSpec, PlanTree};
pub use reader::MemCubeReader;
pub use schema_blob::{
    decode_schema, encode_schema, read_schema_blob, write_schema_blob, SCHEMA_BLOB,
};
pub use shard::{
    build_shard_cubes, read_shard_count, shard_cube_prefix, shard_fact_rel, shard_prefix,
    split_fact_shards, write_shard_count, ShardBuildReport,
};
pub use signature::{PoolDecisionState, SealedFlush, SignaturePool};
pub use sink::{
    CatFormat, CatFormatPolicy, CubeSink, DiskSink, MemSink, SinkCheckpoint, SinkStats,
};
pub use sorter::{SortAlgo, SortPolicy, Sorter};
pub use stats::{PhaseTimes, PoolCounters};
pub use tuples::Tuples;
pub use update::{update_cube, UpdateReport};
