//! Incremental cube updates — the paper's §8 future work, implemented.
//!
//! "We will further study incremental updating for redundant tuples in
//! CURE cubes. Our initial investigation has resulted in efficient methods
//! for updating NTs and TTs, and we are currently working on CATs."
//!
//! [`update_cube`] merges a **delta batch** of new fact tuples into an
//! existing cube *without re-processing the original fact table*: the only
//! inputs are the stored cube (read back through its own relations) and
//! the delta. The interesting part is class transitions:
//!
//! * an existing **TT** whose group is hit by a delta tuple stops being
//!   trivial at that node — but may *remain* trivial deeper in the plan
//!   subtree where the delta does not follow it. The updater walks the
//!   execution-plan tree depth-first, carrying the set of row-ids already
//!   re-established as TTs on the current path, so each trivial tuple is
//!   again stored exactly once at its (possibly new, more detailed) least
//!   detailed node;
//! * an existing **NT/CAT** group hit by a delta group keeps its class
//!   family (its count was already ≥ 2) with summed aggregates;
//! * delta-only groups classify exactly like in a fresh build.
//!
//! All non-trivial tuples are re-classified through a fresh
//! [`SignaturePool`], which re-detects CATs across old and new data — so
//! unlike the paper's work-in-progress, CAT updating falls out of the
//! design for free.
//!
//! The merged cube is written under a **new prefix** (immutable-update
//! style); the caller can drop the old relations afterwards. Cost is
//! `O(cube size + |delta| · nodes)`, independent of `|R|`.

use cure_storage::hash::FxHashMap;
use cure_storage::Catalog;

use crate::cube::CubeConfig;
use crate::error::{CubeError, Result};
use crate::hierarchy::CubeSchema;
use crate::lattice::{NodeCoder, NodeId};
use crate::meta::CubeMeta;
use crate::plan::PlanSpec;
use crate::reference;
use crate::signature::SignaturePool;
use crate::sink::CubeSink;
use crate::tuples::Tuples;

/// Statistics of an incremental update.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Nodes visited (always the full lattice).
    pub nodes: u64,
    /// Existing TTs that lost trivial status at some node (were re-placed
    /// deeper or became NT/CAT).
    pub tt_demotions: u64,
    /// Groups merged from both old cube and delta.
    pub merged_groups: u64,
    /// Groups taken unchanged from the old cube.
    pub carried_groups: u64,
    /// Groups introduced by the delta alone.
    pub new_groups: u64,
}

/// A read-back logical group of an existing cube node.
struct OldGroup {
    aggs: Vec<i64>,
    min_rowid: u64,
}

/// Reads the logical contents of an existing cube node, split into
/// non-trivial groups (keyed by grouping values) and the TT row-ids stored
/// *at* the node (not the shared ones from ancestors — those are carried
/// by the DFS).
trait OldCubeAccess {
    fn non_trivial_groups(&mut self, node: NodeId) -> Result<FxHashMap<Vec<u32>, OldGroup>>;
    fn own_tts(&mut self, node: NodeId) -> Result<Vec<u64>>;
    /// Leaf dimension values + measures of an original fact tuple.
    fn fact_row(&mut self, rowid: u64) -> Result<(Vec<u32>, Vec<i64>)>;
}

/// Access to an old cube through the catalog relations.
struct DiskOldCube<'a> {
    catalog: &'a Catalog,
    schema: &'a CubeSchema,
    meta: CubeMeta,
    coder: NodeCoder,
    fact: cure_storage::HeapFile,
    fact_schema: cure_storage::Schema,
    aggregates: Option<cure_storage::HeapFile>,
    /// Memoized fact rows. Every node of the lattice re-resolves the
    /// row-ids its groups reference, so without this the walk performs
    /// one random fact fetch *per group row per node* — the dominant cost
    /// of an update by far. The cache is bounded by the distinct row-ids
    /// the cube references (≤ |R|).
    fact_cache: FxHashMap<u64, (Vec<u32>, Vec<i64>)>,
    fact_buf: Vec<u8>,
    /// Page cache for the random fetches into the fact and `AGGREGATES`
    /// relations. `fetch_into` re-reads (and re-checksums) a whole page
    /// per row, which at cube scale means hundreds of thousands of
    /// redundant page reads; build order gives both relations strong
    /// locality, so a small LRU absorbs almost all of them.
    pages: cure_storage::BufferCache,
}

impl<'a> DiskOldCube<'a> {
    fn open(catalog: &'a Catalog, schema: &'a CubeSchema, prefix: &str) -> Result<Self> {
        let meta = CubeMeta::read(catalog, prefix)?;
        if meta.dr {
            return Err(CubeError::Config(
                "incremental update of CURE_DR cubes is not supported (NT rows lack row-ids)"
                    .into(),
            ));
        }
        if meta.min_support != 1 {
            return Err(CubeError::Config(
                "incremental update requires a complete (non-iceberg) cube".into(),
            ));
        }
        let fact = catalog.open_relation(&meta.fact_rel)?;
        let fact_schema = fact.schema().clone();
        let agg_name = crate::sink::aggregates_rel_name(prefix);
        let aggregates =
            if catalog.exists(&agg_name) { Some(catalog.open_relation(&agg_name)?) } else { None };
        let row_width = fact_schema.row_width();
        Ok(DiskOldCube {
            catalog,
            schema,
            meta,
            coder: NodeCoder::new(schema),
            fact,
            fact_schema,
            aggregates,
            fact_cache: FxHashMap::default(),
            fact_buf: vec![0u8; row_width],
            pages: cure_storage::BufferCache::new(1024),
        })
    }

    fn project(&self, levels: &[usize], leaf: &[u32]) -> Vec<u32> {
        self.schema
            .dims()
            .iter()
            .enumerate()
            .filter(|(d, _)| !self.coder.is_all(levels, *d))
            .map(|(d, dim)| dim.value_at(levels[d], leaf[d]))
            .collect()
    }
}

impl OldCubeAccess for DiskOldCube<'_> {
    fn non_trivial_groups(&mut self, node: NodeId) -> Result<FxHashMap<Vec<u32>, OldGroup>> {
        use cure_storage::Schema;
        let levels = self.coder.decode(node)?;
        let y = self.schema.num_measures();
        let mut out: FxHashMap<Vec<u32>, OldGroup> = FxHashMap::default();
        // NT rows.
        let nt_name = crate::sink::nt_rel_name(&self.meta.prefix, node);
        let mut pending: Vec<(u64, Vec<i64>)> = Vec::new();
        if self.catalog.exists(&nt_name) {
            let rel = self.catalog.open_relation(&nt_name)?;
            let rs = rel.schema().clone();
            let mut scan = rel.scan();
            while let Some(row) = scan.next_row()? {
                let rowid = Schema::read_u64_at(row, rs.offset(0));
                let aggs: Vec<i64> =
                    (0..y).map(|m| Schema::read_i64_at(row, rs.offset(1 + m))).collect();
                pending.push((rowid, aggs));
            }
        }
        // CAT rows (CURE+ format-(a) cubes store them as bitmap blobs).
        let cat_name = crate::sink::cat_rel_name(&self.meta.prefix, node);
        let cat_bm_name = crate::sink::cat_bitmap_name(&self.meta.prefix, node);
        let bitmap_cats = self.meta.plus && self.catalog.blob_exists(&cat_bm_name);
        if bitmap_cats || self.catalog.exists(&cat_name) {
            let format = self
                .meta
                .cat_format
                .ok_or_else(|| CubeError::Schema("CAT relation without a format in meta".into()))?;
            let aggrel = self
                .aggregates
                .as_ref()
                .ok_or_else(|| CubeError::Schema("CAT rows but no AGGREGATES".into()))?;
            let ars = aggrel.schema().clone();
            let mut agg_buf = vec![0u8; ars.row_width()];
            let mut refs: Vec<(Option<u64>, u64)> = Vec::new();
            if bitmap_cats {
                let bm =
                    cure_storage::BitmapIndex::from_bytes(&self.catalog.read_blob(&cat_bm_name)?)?;
                refs.extend(bm.iter().map(|a| (None, a)));
            } else {
                let rel = self.catalog.open_relation(&cat_name)?;
                let rs = rel.schema().clone();
                let mut scan = rel.scan();
                while let Some(row) = scan.next_row()? {
                    match format {
                        crate::sink::CatFormat::CommonSource => {
                            refs.push((None, Schema::read_u64_at(row, rs.offset(0))));
                        }
                        crate::sink::CatFormat::Coincidental => {
                            refs.push((
                                Some(Schema::read_u64_at(row, rs.offset(0))),
                                Schema::read_u64_at(row, rs.offset(1)),
                            ));
                        }
                        crate::sink::CatFormat::AsNt => {
                            return Err(CubeError::Schema("AsNt cube has CAT relations".into()))
                        }
                    }
                }
            }
            // Ascending AGGREGATES order keeps the fetches page-local.
            refs.sort_unstable_by_key(|r| r.1);
            for (rowid_opt, a_rowid) in refs {
                aggrel.fetch_cached(a_rowid, &mut self.pages, &mut agg_buf)?;
                match format {
                    crate::sink::CatFormat::CommonSource => {
                        let rowid = Schema::read_u64_at(&agg_buf, ars.offset(0));
                        let aggs: Vec<i64> = (0..y)
                            .map(|m| Schema::read_i64_at(&agg_buf, ars.offset(1 + m)))
                            .collect();
                        pending.push((rowid, aggs));
                    }
                    crate::sink::CatFormat::Coincidental => {
                        let aggs: Vec<i64> =
                            (0..y).map(|m| Schema::read_i64_at(&agg_buf, ars.offset(m))).collect();
                        pending.push((rowid_opt.expect("format (b)"), aggs));
                    }
                    crate::sink::CatFormat::AsNt => unreachable!(),
                }
            }
        }
        for (rowid, aggs) in pending {
            let (leaf, _) = self.fact_row(rowid)?;
            let key = self.project(&levels, &leaf);
            // Non-trivial groups are unique per key within a node.
            out.insert(key, OldGroup { aggs, min_rowid: rowid });
        }
        Ok(out)
    }

    fn own_tts(&mut self, node: NodeId) -> Result<Vec<u64>> {
        use cure_storage::Schema;
        if self.meta.plus {
            let name = crate::sink::tt_bitmap_name(&self.meta.prefix, node);
            if self.catalog.blob_exists(&name) {
                let bm = cure_storage::BitmapIndex::from_bytes(&self.catalog.read_blob(&name)?)?;
                return Ok(bm.iter().collect());
            }
            return Ok(Vec::new());
        }
        let name = crate::sink::tt_rel_name(&self.meta.prefix, node);
        if !self.catalog.exists(&name) {
            return Ok(Vec::new());
        }
        let rel = self.catalog.open_relation(&name)?;
        let mut out = Vec::with_capacity(rel.num_rows() as usize);
        let mut scan = rel.scan();
        while let Some(row) = scan.next_row()? {
            out.push(Schema::read_u64_at(row, 0));
        }
        Ok(out)
    }

    fn fact_row(&mut self, rowid: u64) -> Result<(Vec<u32>, Vec<i64>)> {
        use cure_storage::Schema;
        if let Some(hit) = self.fact_cache.get(&rowid) {
            return Ok(hit.clone());
        }
        let d = self.schema.num_dims();
        let y = self.schema.num_measures();
        self.fact.fetch_cached(rowid, &mut self.pages, &mut self.fact_buf)?;
        let buf = &self.fact_buf;
        let leaf: Vec<u32> =
            (0..d).map(|i| Schema::read_u32_at(buf, self.fact_schema.offset(i))).collect();
        let measures: Vec<i64> =
            (0..y).map(|m| Schema::read_i64_at(buf, self.fact_schema.offset(d + m))).collect();
        self.fact_cache.insert(rowid, (leaf.clone(), measures.clone()));
        Ok((leaf, measures))
    }
}

/// Merge `delta` into the cube stored under `old_prefix`, writing the
/// merged cube through `sink` (typically a [`DiskSink`](crate::sink::DiskSink)
/// with a new prefix).
///
/// Preconditions:
/// * `delta` tuples carry the row-ids they received when appended to the
///   fact relation (i.e. starting at the old relation's `num_rows()`);
///   the fact relation must already contain them (NT/TT references into
///   it must resolve).
/// * The old cube must be a complete (non-iceberg), non-DR cube.
pub fn update_cube(
    catalog: &Catalog,
    schema: &CubeSchema,
    old_prefix: &str,
    delta: &Tuples,
    cfg: &CubeConfig,
    sink: &mut dyn CubeSink,
) -> Result<UpdateReport> {
    let mut old = DiskOldCube::open(catalog, schema, old_prefix)?;
    let plan = match old.meta.partition_level {
        None => PlanSpec::new(schema),
        Some(l) => PlanSpec::partitioned(schema, l)?,
    };
    let coder = NodeCoder::new(schema);
    let mut pool = SignaturePool::new(schema.num_measures(), cfg.pool_capacity, cfg.cat_policy);
    let mut report = UpdateReport::default();

    // DFS over the plan forest, carrying the TTs shared along the path:
    // (rowid, leaf dims, measures) of tuples already re-stored as TTs.
    let tree = plan.build_tree();
    let mut children: FxHashMap<Option<NodeId>, Vec<NodeId>> = FxHashMap::default();
    for &n in &tree.order {
        children.entry(tree.parent[&n]).or_default().push(n);
    }
    let roots = children.remove(&None).unwrap_or_default();

    struct PathTt {
        rowid: u64,
        leaf: Vec<u32>,
        measures: Vec<i64>,
        /// Whether a TT row for this tuple has been written at an ancestor
        /// (then the whole subtree is covered and, because key collisions
        /// propagate upward, no deeper delta collision is possible).
        covered: bool,
    }

    // Iterative DFS with explicit stack carrying the path-TT frames.
    struct Frame {
        node: NodeId,
        /// TTs established at this node (appended to the path while its
        /// subtree is processed).
        established: usize,
        /// Inherited path entries whose `covered` flag was set at this
        /// node (re-established TTs) — reset when leaving the subtree.
        covered_here: Vec<usize>,
    }
    let mut path_tts: Vec<PathTt> = Vec::new();
    let mut stack: Vec<(NodeId, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
    let mut frames: Vec<Frame> = Vec::new();

    while let Some((node, done)) = stack.pop() {
        if done {
            let f = frames.pop().expect("frame");
            debug_assert_eq!(f.node, node);
            path_tts.truncate(path_tts.len() - f.established);
            for i in f.covered_here {
                path_tts[i].covered = false;
            }
            continue;
        }
        stack.push((node, true));
        let levels = coder.decode(node)?;
        report.nodes += 1;

        // Delta groups of this node.
        let delta_groups = reference::compute_node(schema, delta, &levels);
        let mut delta_map: FxHashMap<Vec<u32>, reference::GroupRow> = FxHashMap::default();
        for g in delta_groups {
            delta_map.insert(g.dims.clone(), g);
        }
        // Old non-trivial groups and own TTs.
        let mut old_groups = old.non_trivial_groups(node)?;
        let own_tts = old.own_tts(node)?;

        // 1. Old TTs stored at this node: collision check against delta.
        //
        // A collision here demotes the tuple to a non-trivial group *at
        // this node* (its merged row is written), but its trivial status
        // may resurface deeper in the subtree where the delta diverges —
        // the tuple is carried on the path as *uncovered* and step 2
        // re-establishes its TT at the topmost divergence point of each
        // branch.
        let mut established = 0usize;
        for rowid in own_tts {
            let (leaf, measures) = old.fact_row(rowid)?;
            let key = old.project(&levels, &leaf);
            if let Some(dg) = delta_map.remove(&key) {
                report.tt_demotions += 1;
                let mut aggs = measures.clone();
                crate::aggfn::AggFn::merge_all(schema.agg_fns(), &mut aggs, &dg.aggs);
                let min_rowid = rowid.min(dg.min_rowid);
                pool.push(sink, &aggs, min_rowid, node)?;
                report.merged_groups += 1;
                path_tts.push(PathTt { rowid, leaf, measures, covered: false });
                established += 1;
            } else {
                // Still trivial at this node: keep as TT and share below.
                sink.write_tt(node, rowid)?;
                report.carried_groups += 1;
                path_tts.push(PathTt { rowid, leaf, measures, covered: true });
                established += 1;
            }
        }

        // 2. Uncovered path TTs (demoted at an ancestor): either the delta
        // keeps colliding here (merged row, still uncovered) or it has
        // diverged (this is the least detailed node where the tuple is
        // trivial again → write its TT and cover the subtree). Covered
        // entries need nothing: a collision below a TT-covered node is
        // impossible because equal keys at a finer node imply equal keys
        // at every coarser one.
        let inherited = path_tts.len() - established;
        let mut cover_on_exit: Vec<usize> = Vec::new();
        #[allow(clippy::needless_range_loop)] // index kept: `path_tts[i]` is mutated below
        for i in 0..inherited {
            let (key, rowid) = {
                let t = &path_tts[i];
                (old.project(&levels, &t.leaf), t.rowid)
            };
            if path_tts[i].covered {
                // A covered *old* TT cannot be hit by the delta here
                // (collisions propagate upward and were ruled out at the
                // covering node). A covered *delta* TT, however, still
                // appears in this node's freshly computed delta groups —
                // consume it so step 4 does not store it twice.
                if let Some(dg) = delta_map.remove(&key) {
                    debug_assert_eq!(dg.count, 1, "covered TT group must stay trivial");
                    debug_assert_eq!(dg.min_rowid, rowid);
                }
                continue;
            }
            if let Some(dg) = delta_map.remove(&key) {
                let t = &path_tts[i];
                let mut aggs = t.measures.clone();
                crate::aggfn::AggFn::merge_all(schema.agg_fns(), &mut aggs, &dg.aggs);
                pool.push(sink, &aggs, rowid.min(dg.min_rowid), node)?;
                report.merged_groups += 1;
            } else {
                // Divergence point: re-establish the TT for this subtree.
                sink.write_tt(node, rowid)?;
                path_tts[i].covered = true;
                cover_on_exit.push(i);
            }
        }

        // 3. Old non-trivial groups: merge with delta where keys match.
        for (key, og) in old_groups.drain() {
            match delta_map.remove(&key) {
                Some(dg) => {
                    let mut aggs = og.aggs;
                    crate::aggfn::AggFn::merge_all(schema.agg_fns(), &mut aggs, &dg.aggs);
                    pool.push(sink, &aggs, og.min_rowid.min(dg.min_rowid), node)?;
                    report.merged_groups += 1;
                }
                None => {
                    pool.push(sink, &og.aggs, og.min_rowid, node)?;
                    report.carried_groups += 1;
                }
            }
        }

        // 4. Remaining delta-only groups.
        for (_, dg) in delta_map.drain() {
            if dg.count == 1 {
                // New trivial tuple: store here; shared with the subtree.
                sink.write_tt(node, dg.min_rowid)?;
                let (leaf, measures) = old.fact_row(dg.min_rowid)?;
                path_tts.push(PathTt { rowid: dg.min_rowid, leaf, measures, covered: true });
                established += 1;
            } else {
                pool.push(sink, &dg.aggs, dg.min_rowid, node)?;
            }
            report.new_groups += 1;
        }

        frames.push(Frame { node, established, covered_here: cover_on_exit });
        if let Some(ch) = children.get(&Some(node)) {
            for &c in ch.iter().rev() {
                stack.push((c, false));
            }
        }
    }

    pool.flush(sink)?;
    sink.finish()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeBuilder;
    use crate::hierarchy::Dimension;
    use crate::reader::MemCubeReader;
    use crate::sink::{DiskSink, MemSink};

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_update_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    fn schema() -> CubeSchema {
        let a = Dimension::linear("A", 20, &[(0..20).map(|v| v / 5).collect()]).unwrap();
        let b = Dimension::linear("B", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
        let c = Dimension::flat("C", 5);
        CubeSchema::new(vec![a, b, c], 2).unwrap()
    }

    fn make_tuples(schema: &CubeSchema, n: usize, seed: u64, rowid_base: u64) -> Tuples {
        let d = schema.num_dims();
        let y = schema.num_measures();
        let mut t = Tuples::new(d, y);
        let mut x = seed | 1;
        let mut dims = vec![0u32; d];
        let mut aggs = vec![0i64; y];
        for i in 0..n {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
            }
            for a in aggs.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *a = (x % 25) as i64;
            }
            t.push(&dims, &aggs, 1, rowid_base + i as u64);
        }
        t
    }

    /// Build base → update with delta → compare against a fresh oracle of
    /// the combined data, node by node.
    fn check_update(n_base: usize, n_delta: usize, seed: u64, tag: &str) {
        let catalog = fresh_catalog(tag);
        let schema = schema();
        let base = make_tuples(&schema, n_base, seed, 0);
        let delta = make_tuples(&schema, n_delta, seed.wrapping_mul(31) + 7, n_base as u64);

        // Store base facts and build the original cube on disk.
        let mut heap =
            catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
        base.store_fact(&mut heap).unwrap();
        let mut old_sink = DiskSink::new(&catalog, "old_", &schema, false, false, None).unwrap();
        let report = CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&base, &mut old_sink)
            .unwrap();
        CubeMeta {
            prefix: "old_".into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: 2,
            dr: false,
            plus: false,
            cat_format: report.stats.cat_format,
            partition_level: None,
            min_support: 1,
        }
        .write(&catalog)
        .unwrap();
        // Append the delta to the fact relation (row-ids continue).
        delta.store_fact(&mut heap).unwrap();
        drop(heap);

        // Incremental update into a MemSink.
        let mut new_sink = MemSink::new(2);
        let up =
            update_cube(&catalog, &schema, "old_", &delta, &CubeConfig::default(), &mut new_sink)
                .unwrap();
        assert_eq!(up.nodes, NodeCoder::new(&schema).num_nodes());

        // Oracle over base ∪ delta.
        let mut combined = Tuples::new(schema.num_dims(), 2);
        for src in [&base, &delta] {
            for i in 0..src.len() {
                combined.push(src.dims_of(i), src.aggs_of(i), 1, src.rowid(i));
            }
        }
        let reader = MemCubeReader::new(&schema, &new_sink, &combined, None).unwrap();
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let levels = coder.decode(id).unwrap();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                reference::compute_node(&schema, &combined, &levels)
                    .into_iter()
                    .map(|r| (r.dims, r.aggs))
                    .collect();
            assert_eq!(got, want, "{tag}: node {} ({})", id, coder.name(&schema, id));
        }
    }

    #[test]
    fn update_matches_full_rebuild_small_delta() {
        check_update(800, 50, 11, "small");
    }

    #[test]
    fn update_matches_full_rebuild_large_delta() {
        check_update(400, 400, 23, "large");
    }

    #[test]
    fn update_with_empty_delta_reproduces_cube() {
        check_update(500, 0, 5, "empty");
    }

    #[test]
    fn update_into_empty_cube_equals_fresh_build() {
        check_update(0, 300, 9, "fromscratch");
    }

    #[test]
    fn repeated_updates_accumulate() {
        // base + delta1 via update, then treat the merged MemSink as the
        // semantic target for base+delta1+delta2 computed by two chained
        // oracle checks (each check is independent; chaining disk rewrites
        // is exercised in the example).
        check_update(300, 100, 77, "chain1");
        check_update(400, 100, 78, "chain2");
    }

    #[test]
    fn chained_disk_updates_stay_correct() {
        // v1 (fresh build) → v2 (update) → v3 (update of the update):
        // exercises update_cube reading a cube that update_cube wrote,
        // including CAT references into the rewritten AGGREGATES.
        let catalog = fresh_catalog("chained");
        let schema = schema();
        let b0 = make_tuples(&schema, 500, 61, 0);
        let b1 = make_tuples(&schema, 120, 62, 500);
        let b2 = make_tuples(&schema, 120, 63, 620);
        let mut heap =
            catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
        b0.store_fact(&mut heap).unwrap();
        let mut s1 = DiskSink::new(&catalog, "v1_", &schema, false, false, None).unwrap();
        let r1 =
            CubeBuilder::new(&schema, CubeConfig::default()).build_in_memory(&b0, &mut s1).unwrap();
        let meta = |prefix: &str, fmt| CubeMeta {
            prefix: prefix.into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: 2,
            dr: false,
            plus: false,
            cat_format: fmt,
            partition_level: None,
            min_support: 1,
        };
        meta("v1_", r1.stats.cat_format).write(&catalog).unwrap();

        b1.store_fact(&mut heap).unwrap();
        let mut s2 = DiskSink::new(&catalog, "v2_", &schema, false, false, None).unwrap();
        update_cube(&catalog, &schema, "v1_", &b1, &CubeConfig::default(), &mut s2).unwrap();
        use crate::sink::CubeSink as _;
        meta("v2_", s2.cat_format()).write(&catalog).unwrap();

        b2.store_fact(&mut heap).unwrap();
        drop(heap);
        let mut s3 = MemSink::new(2);
        update_cube(&catalog, &schema, "v2_", &b2, &CubeConfig::default(), &mut s3).unwrap();

        let mut combined = Tuples::new(schema.num_dims(), 2);
        for src in [&b0, &b1, &b2] {
            for i in 0..src.len() {
                combined.push(src.dims_of(i), src.aggs_of(i), 1, src.rowid(i));
            }
        }
        let reader = MemCubeReader::new(&schema, &s3, &combined, None).unwrap();
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let levels = coder.decode(id).unwrap();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                reference::compute_node(&schema, &combined, &levels)
                    .into_iter()
                    .map(|r| (r.dims, r.aggs))
                    .collect();
            assert_eq!(got, want, "chained node {id}");
        }
    }

    #[test]
    fn update_over_cure_plus_cube() {
        // The old cube stores TTs as bitmaps; own_tts must read them back.
        let catalog = fresh_catalog("plus");
        let schema = schema();
        let base = make_tuples(&schema, 600, 41, 0);
        let delta = make_tuples(&schema, 80, 43, 600);
        let mut heap =
            catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
        base.store_fact(&mut heap).unwrap();
        let mut old_sink = DiskSink::new(&catalog, "old_", &schema, false, true, None).unwrap();
        let report = CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&base, &mut old_sink)
            .unwrap();
        CubeMeta {
            prefix: "old_".into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: 2,
            dr: false,
            plus: true,
            cat_format: report.stats.cat_format,
            partition_level: None,
            min_support: 1,
        }
        .write(&catalog)
        .unwrap();
        delta.store_fact(&mut heap).unwrap();
        drop(heap);
        let mut new_sink = MemSink::new(2);
        update_cube(&catalog, &schema, "old_", &delta, &CubeConfig::default(), &mut new_sink)
            .unwrap();
        let mut combined = Tuples::new(schema.num_dims(), 2);
        for src in [&base, &delta] {
            for i in 0..src.len() {
                combined.push(src.dims_of(i), src.aggs_of(i), 1, src.rowid(i));
            }
        }
        let reader = MemCubeReader::new(&schema, &new_sink, &combined, None).unwrap();
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let levels = coder.decode(id).unwrap();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                reference::compute_node(&schema, &combined, &levels)
                    .into_iter()
                    .map(|r| (r.dims, r.aggs))
                    .collect();
            assert_eq!(got, want, "plus node {id}");
        }
    }

    #[test]
    fn update_over_partitioned_cube() {
        // The old cube was built out-of-core: its plan is a two-tree
        // forest, so the update DFS must walk both passes and the new
        // cube must keep the same partition level in its meta for query
        // paths to resolve.
        let catalog = fresh_catalog("partup");
        let schema = schema();
        let base = make_tuples(&schema, 1_500, 31, 0);
        let delta = make_tuples(&schema, 150, 33, 1_500);
        let mut heap =
            catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
        base.store_fact(&mut heap).unwrap();
        // 16 KB budget: 5 partitions needed → L = 0 (card 20), N ≈ 13 KB.
        let cfg = CubeConfig { memory_budget_bytes: 16 << 10, ..CubeConfig::default() };
        let mut old_sink =
            crate::sink::DiskSink::new(&catalog, "old_", &schema, false, false, None).unwrap();
        let report = crate::partition::build_cure_cube(
            &catalog,
            "facts",
            &schema,
            &cfg,
            &mut old_sink,
            "tmp_",
        )
        .unwrap();
        let level = report.partition.as_ref().expect("partitioned").choice.level;
        CubeMeta {
            prefix: "old_".into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: 2,
            dr: false,
            plus: false,
            cat_format: report.stats.cat_format,
            partition_level: Some(level),
            min_support: 1,
        }
        .write(&catalog)
        .unwrap();
        delta.store_fact(&mut heap).unwrap();
        drop(heap);
        let mut new_sink = crate::sink::MemSink::new(2);
        update_cube(&catalog, &schema, "old_", &delta, &CubeConfig::default(), &mut new_sink)
            .unwrap();
        let mut combined = Tuples::new(schema.num_dims(), 2);
        for src in [&base, &delta] {
            for i in 0..src.len() {
                combined.push(src.dims_of(i), src.aggs_of(i), 1, src.rowid(i));
            }
        }
        // TT placement follows the OLD cube's (partitioned) plan forest.
        let reader =
            crate::reader::MemCubeReader::new(&schema, &new_sink, &combined, Some(level)).unwrap();
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let levels = coder.decode(id).unwrap();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                reference::compute_node(&schema, &combined, &levels)
                    .into_iter()
                    .map(|r| (r.dims, r.aggs))
                    .collect();
            assert_eq!(got, want, "partitioned-update node {id}");
        }
    }

    #[test]
    fn dr_cubes_are_rejected() {
        let catalog = fresh_catalog("drreject");
        let schema = schema();
        let base = make_tuples(&schema, 50, 3, 0);
        let mut heap =
            catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
        base.store_fact(&mut heap).unwrap();
        CubeMeta {
            prefix: "x_".into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: 2,
            dr: true,
            plus: false,
            cat_format: None,
            partition_level: None,
            min_support: 1,
        }
        .write(&catalog)
        .unwrap();
        let delta = make_tuples(&schema, 5, 4, 50);
        let mut sink = MemSink::new(2);
        assert!(update_cube(&catalog, &schema, "x_", &delta, &CubeConfig::default(), &mut sink)
            .is_err());
    }

    #[test]
    fn demotions_are_detected() {
        // Delta duplicating base tuples exactly forces TT demotions.
        let catalog = fresh_catalog("demote");
        let schema = schema();
        let base = make_tuples(&schema, 200, 55, 0);
        let mut delta = Tuples::new(schema.num_dims(), 2);
        for i in 0..50 {
            delta.push(base.dims_of(i), base.aggs_of(i), 1, 200 + i as u64);
        }
        let mut heap =
            catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
        base.store_fact(&mut heap).unwrap();
        let mut old_sink = DiskSink::new(&catalog, "old_", &schema, false, false, None).unwrap();
        let report = CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&base, &mut old_sink)
            .unwrap();
        CubeMeta {
            prefix: "old_".into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: 2,
            dr: false,
            plus: false,
            cat_format: report.stats.cat_format,
            partition_level: None,
            min_support: 1,
        }
        .write(&catalog)
        .unwrap();
        delta.store_fact(&mut heap).unwrap();
        drop(heap);
        let mut sink = MemSink::new(2);
        let up = update_cube(&catalog, &schema, "old_", &delta, &CubeConfig::default(), &mut sink)
            .unwrap();
        assert!(up.tt_demotions > 0, "exact duplicates must demote TTs: {up:?}");
    }
}
