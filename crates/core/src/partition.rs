//! External partitioning and the out-of-core driver (§4, Figure 13's
//! `Algorithm CURE`).
//!
//! When the fact table exceeds the memory budget, CURE cannot simply
//! partition on the first dimension's *top* level: coarse levels have tiny
//! cardinalities (the paper's example: `|A2| = 5` values cannot yield the
//! ≥10 memory-sized sound partitions a 10 GB table needs). Instead CURE
//! picks the **maximum** level `L` of dimension 0 such that
//!
//! 1. partitioning on `A_L` can produce memory-sized sound partitions
//!    (`⌈|R|/|M|⌉ ≤ |A_L|`, observation 1), and
//! 2. the aggregated relation `N = A_{L+1}·B_0·C_0·…` — built *during* the
//!    single partitioning scan with one hash table — fits in memory
//!    (`|N| ≈ |R|·|A_{L+1}|/|A_0| ≤ |M|`, observation 2).
//!
//! The partitions then produce every node containing `A_i, i ∈ [0, L]`,
//! and `N` produces all the rest (observation 3) — 2 reads + 1 write of
//! `R` in total, instead of the `D+1` reads and `D` writes of naive
//! per-dimension partitioning.

// A worker panic would poison the parallel build pool, so the build path
// must return typed errors instead of panicking (clippy.toml exempts the
// test modules).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::time::Instant;

use cure_storage::hash::FxHashMap;
use cure_storage::{Catalog, HeapFile, Schema};

use crate::cube::{BuildReport, CubeBuilder, CubeConfig, Exec};
use crate::error::{CubeError, Result};
use crate::hierarchy::{CubeSchema, LevelIdx};
use crate::lattice::NodeCoder;
use crate::signature::{SealedFlush, SignaturePool};
use crate::sink::CubeSink;
use crate::stats::{PhaseTimes, PoolCounters};
use crate::tuples::Tuples;

/// The outcome of partition-level selection (the paper's Table 1 columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionChoice {
    /// Chosen level `L` of dimension 0.
    pub level: LevelIdx,
    /// Number of sound partitions to create (`⌈|R|/|M|⌉`).
    pub num_partitions: usize,
    /// Expected bytes per partition (uniformity assumption).
    pub est_partition_bytes: u64,
    /// Estimated rows of `N` (`|R|·|A_{L+1}|/|A_0|`).
    pub est_n_rows: u64,
    /// Estimated bytes of `N`.
    pub est_n_bytes: u64,
}

/// What actually happened during a partitioned build.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// The selection that was made.
    pub choice: PartitionChoice,
    /// Actual rows in `N`.
    pub n_rows: u64,
    /// Rows in the largest partition (skew indicator).
    pub max_partition_rows: u64,
    /// Seconds spent in the partitioning scan.
    pub partition_secs: f64,
}

/// Select the partitioning level `L` for dimension 0 (§4).
///
/// `num_rows`/`tuple_bytes` describe the fact table's in-memory footprint;
/// `budget_bytes` is `|M|`. Scans levels from the top down and returns the
/// **maximum** feasible one; errors when none exists (the paper's rare
/// case, handled there by partitioning on dimension pairs — out of scope).
pub fn select_partition_level(
    schema: &CubeSchema,
    num_rows: u64,
    tuple_bytes: usize,
    budget_bytes: usize,
) -> Result<PartitionChoice> {
    let dim0 = &schema.dims()[0];
    if !dim0.is_linear() {
        return Err(CubeError::Partitioning(
            "partitioning requires a linear hierarchy on dimension 0 (reorder dimensions)".into(),
        ));
    }
    let r_bytes = num_rows.saturating_mul(tuple_bytes as u64);
    let budget = budget_bytes as u64;
    if budget == 0 {
        return Err(CubeError::Partitioning("zero memory budget".into()));
    }
    let needed = r_bytes.div_ceil(budget).max(1);
    let leaf_card = dim0.leaf_cardinality() as u64;
    let top = dim0.top_level();
    for l in (0..=top).rev() {
        let card_l = dim0.cardinality(l) as u64;
        if needed > card_l {
            continue; // cannot form enough sound partitions at this level
        }
        // |N| ≈ |R| · |A_{L+1}| / |A_0|; A_{top+1} ≡ ALL with cardinality 1.
        let card_l1 = if l == top { 1 } else { dim0.cardinality(l + 1) as u64 };
        let est_n_rows = (num_rows.saturating_mul(card_l1) / leaf_card.max(1)).max(1);
        // Checked: a huge |R| times a wide tuple must register as "does
        // not fit", not wrap around and look feasible.
        let est_n_bytes = match est_n_rows.checked_mul(tuple_bytes as u64) {
            Some(b) => b,
            None => continue,
        };
        if est_n_bytes <= budget {
            return Ok(PartitionChoice {
                level: l,
                num_partitions: needed as usize,
                est_partition_bytes: r_bytes / needed,
                est_n_rows,
                est_n_bytes,
            });
        }
    }
    Err(CubeError::Partitioning(format!(
        "no feasible partitioning level on dimension {} for |R| = {} bytes, |M| = {} bytes \
         (the pairs-of-dimensions extension of §4 is not implemented)",
        dim0.name(),
        r_bytes,
        budget
    )))
}

/// Build a cube from an on-disk fact relation, partitioning when it does
/// not fit the memory budget — the complete `Algorithm CURE`.
///
/// `part_prefix` namespaces the temporary partition relations, which are
/// dropped before returning.
pub fn build_cure_cube(
    catalog: &Catalog,
    fact_rel: &str,
    schema: &CubeSchema,
    cfg: &CubeConfig,
    sink: &mut dyn CubeSink,
    part_prefix: &str,
) -> Result<BuildReport> {
    let fact = catalog.open_relation(fact_rel)?;
    let d = schema.num_dims();
    let y = schema.num_measures();
    let num_rows = fact.num_rows();
    let mem_needed = num_rows.saturating_mul(Tuples::tuple_bytes(d, y) as u64);

    // Lines 6–8: in-memory fast path.
    if mem_needed <= cfg.memory_budget_bytes as u64 {
        let t = Tuples::load_fact(&fact, d, y)?;
        return CubeBuilder::new(schema, cfg.clone()).build_in_memory(&t, sink);
    }

    // Line 10: select L; lines 11: partition + build N in one scan.
    let choice = select_partition_level(
        schema,
        num_rows,
        Tuples::tuple_bytes(d, y),
        cfg.memory_budget_bytes,
    )?;
    let start = Instant::now();
    let (part_names, n_tuples, max_partition_rows) =
        partition_and_build_n(catalog, &fact, schema, &choice, part_prefix)?;
    let partition_secs = start.elapsed().as_secs_f64();

    let coder = NodeCoder::new(schema);
    let mut pool = SignaturePool::new(y, cfg.pool_capacity, cfg.cat_policy);
    let mut counting_sorts = 0u64;
    let mut comparison_sorts = 0u64;
    let mut pass_secs = 0.0f64;
    let mut sort_secs = 0.0f64;
    let mut tt_prunes = 0u64;

    // Lines 12–16: per-partition passes, entering dimension 0 at level L.
    // The pool is flushed at every partition boundary: that makes the
    // flush schedule a pure function of the partition contents, so the
    // sequential, parallel and durable drivers all emit identical bytes
    // (and a durable build can checkpoint between partitions). The cost
    // is that CATs spanning a partition boundary are stored redundantly —
    // the same working-set trade-off as the bounded pool itself.
    for name in &part_names {
        let rel = catalog.open_relation(name)?;
        if rel.num_rows() == 0 {
            continue;
        }
        let t = Tuples::load_partition(&rel, d, y)?;
        let mut exec = Exec::new(schema, &coder, &t, cfg.min_support, cfg.sort_policy);
        exec.set_dim0_level(choice.level);
        let t0 = Instant::now();
        exec.run_partition_pass(&mut pool, sink)?;
        pool.flush(sink)?;
        pass_secs += t0.elapsed().as_secs_f64();
        counting_sorts += exec.sorter.counting_calls();
        comparison_sorts += exec.sorter.comparison_calls();
        sort_secs += exec.sorter.sort_secs();
        tt_prunes += exec.tt_prunes;
    }
    // Lines 17–20: the N pass — dimension 0 restricted to levels ≥ L+1 (or
    // skipped entirely when L was the top level).
    {
        let top = schema.dims()[0].top_level();
        let skip_dim0 = choice.level == top;
        let mut exec = Exec::new(schema, &coder, &n_tuples, cfg.min_support, cfg.sort_policy);
        exec.restrict_dim0(choice.level + 1, skip_dim0);
        let t0 = Instant::now();
        exec.run_full(&mut pool, sink)?;
        pass_secs += t0.elapsed().as_secs_f64();
        counting_sorts += exec.sorter.counting_calls();
        comparison_sorts += exec.sorter.comparison_calls();
        sort_secs += exec.sorter.sort_secs();
        tt_prunes += exec.tt_prunes;
    }
    // Line 22: final flush.
    pool.flush(sink)?;
    let stats = sink.finish()?;

    // Drop the temporary partitions.
    for name in &part_names {
        catalog.drop_relation(name)?;
    }

    Ok(BuildReport {
        stats,
        pool_flushes: pool.flushes(),
        signatures: pool.total_signatures(),
        counting_sorts,
        comparison_sorts,
        phases: PhaseTimes {
            partition_secs,
            pass_secs,
            sort_secs,
            flush_secs: pool.write_secs(),
            merge_secs: 0.0,
        },
        pool: PoolCounters {
            tt_prunes,
            nt_written: pool.nt_written(),
            cat_groups: pool.cat_groups(),
            cat_tuples: pool.cat_tuples(),
        },
        partition: Some(PartitionReport {
            choice,
            n_rows: n_tuples.len() as u64,
            max_partition_rows,
            partition_secs,
        }),
    })
}

/// One scan of the fact relation: route each tuple to its sound partition
/// (on dimension 0 at level `L`) and hash-aggregate `N` in memory.
pub(crate) fn partition_and_build_n(
    catalog: &Catalog,
    fact: &HeapFile,
    schema: &CubeSchema,
    choice: &PartitionChoice,
    part_prefix: &str,
) -> Result<(Vec<String>, Tuples, u64)> {
    let d = schema.num_dims();
    let y = schema.num_measures();
    let dim0 = &schema.dims()[0];
    let top = dim0.top_level();
    let l = choice.level;
    let project_out_dim0 = l == top;
    let p = choice.num_partitions;
    let part_schema = Tuples::partition_schema(d, y);
    let fact_schema = fact.schema().clone();

    // Create the partition relations up front (kept open: `p` is bounded
    // by ⌈|R|/|M|⌉, small at any realistic budget).
    let mut names = Vec::with_capacity(p);
    let mut parts = Vec::with_capacity(p);
    for i in 0..p {
        let name = format!("{part_prefix}part{i}");
        parts.push(catalog.create_or_replace(&name, part_schema.clone())?);
        names.push(name);
    }

    // N accumulator: key = (A at L+1 | absent, other dims at leaf level).
    struct NAcc {
        aggs: Vec<i64>,
        count: u64,
        min_rowid: u64,
        rep_leaf0: u32,
    }
    let mut n_map: FxHashMap<Vec<u32>, NAcc> = FxHashMap::default();

    let mut key_scratch: Vec<u32> = vec![0; d];
    let mut part_row = vec![0u8; part_schema.row_width()];
    let mut max_rows_per_part = vec![0u64; p];
    fact.try_for_each_row(|rowid, row| {
        // Decode leaf dims and measures straight from the raw row.
        let leaf0 = Schema::read_u32_at(row, fact_schema.offset(0));
        // Route to the sound partition: all tuples with the same A_L value
        // share a partition.
        let v_l = dim0.value_at(l, leaf0);
        let part = (v_l as usize) % p;
        // Partition row: dims ++ measures ++ count(1) ++ rowid.
        debug_assert_eq!(row.len() + 16, part_row.len());
        part_row[..row.len()].copy_from_slice(row);
        part_row[row.len()..row.len() + 8].copy_from_slice(&1u64.to_le_bytes());
        part_row[row.len() + 8..].copy_from_slice(&rowid.to_le_bytes());
        parts[part].append_raw(&part_row)?;
        max_rows_per_part[part] += 1;

        // Accumulate N.
        key_scratch[0] = if project_out_dim0 { 0 } else { dim0.value_at(l + 1, leaf0) };
        for (dd, k) in key_scratch.iter_mut().enumerate().take(d).skip(1) {
            *k = Schema::read_u32_at(row, fact_schema.offset(dd));
        }
        match n_map.get_mut(key_scratch.as_slice()) {
            Some(acc) => {
                let fns = schema.agg_fns();
                for (m, a) in acc.aggs.iter_mut().enumerate() {
                    fns[m].merge(a, Schema::read_i64_at(row, fact_schema.offset(d + m)));
                }
                acc.count += 1;
                acc.min_rowid = acc.min_rowid.min(rowid);
            }
            None => {
                let aggs: Vec<i64> =
                    (0..y).map(|m| Schema::read_i64_at(row, fact_schema.offset(d + m))).collect();
                n_map.insert(
                    key_scratch.clone(),
                    NAcc { aggs, count: 1, min_rowid: rowid, rep_leaf0: leaf0 },
                );
            }
        }
        Ok(())
    })?;
    for part in parts.iter_mut() {
        part.flush()?;
    }
    let max_partition_rows = max_rows_per_part.iter().copied().max().unwrap_or(0);

    // Materialize N as in-memory tuples. Dimension 0 carries the
    // *representative leaf* of its level-(L+1) group: every lookup the
    // N-pass performs is at level ≥ L+1, where all leaves of the group
    // agree (linear hierarchy), so the representative is sound.
    let mut n_tuples = Tuples::with_capacity(d, y, n_map.len());
    let mut dims = vec![0u32; d];
    for (key, acc) in n_map {
        dims[0] = if project_out_dim0 { 0 } else { acc.rep_leaf0 };
        dims[1..d].copy_from_slice(&key[1..d]);
        n_tuples.push(&dims, &acc.aggs, acc.count, acc.min_rowid);
    }
    Ok((names, n_tuples, max_partition_rows))
}

// ---------------------------------------------------------------------
// Parallel partition passes: record on workers, merge in order.
//
// Every sound partition can be cubed independently (§4), but three pieces
// of build state are order-sensitive: the §5.1 CAT-format statistics, the
// `AGGREGATES` row-id counter, and the append order of every node
// relation. Rather than serializing workers behind locks (which scrambles
// all three), workers run the Figure 13 recursion against *buffered*
// state — TT writes into a local vector, pool flushes sealed by a
// recording [`SignaturePool`] — and a single merger replays completed
// partitions strictly in partition order against the real sink and one
// decision-carrying pool. Since the per-partition flush schedule of the
// sequential driver is a pure function of the partition contents (see
// [`build_cure_cube`]), the merger performs the exact same writes in the
// exact same order: the output is byte-identical, at any thread count.

/// Per-partition worker statistics, folded into build totals by the
/// merger in partition order. The integer counters are deterministic
/// (sums over fixed partition contents); only the wall-clock fields
/// vary run to run, and nothing downstream of them touches the output
/// bytes.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RunStats {
    pub counting_sorts: u64,
    pub comparison_sorts: u64,
    pub tt_prunes: u64,
    /// Worker wall-clock seconds cubing this partition (CPU seconds
    /// when summed across workers, not elapsed time).
    pub pass_secs: f64,
    /// Worker seconds inside the segment sorter.
    pub sort_secs: f64,
}

/// The buffered output of cubing one partition on a worker.
pub(crate) struct PartitionRun {
    /// TT writes in emission order.
    tts: Vec<(crate::lattice::NodeId, u64)>,
    /// The pool's sealed flushes, in flush order.
    flushes: Vec<SealedFlush>,
    stats: RunStats,
}

/// A [`CubeSink`] that buffers TT writes and rejects everything else.
/// Workers pair it with a recording pool, which never writes NTs or CATs.
struct RecordingSink {
    y: usize,
    tts: Vec<(crate::lattice::NodeId, u64)>,
}

impl CubeSink for RecordingSink {
    fn n_measures(&self) -> usize {
        self.y
    }

    fn set_cat_format(&mut self, _f: crate::sink::CatFormat) {}

    fn cat_format(&self) -> Option<crate::sink::CatFormat> {
        None
    }

    fn write_tt(&mut self, node: crate::lattice::NodeId, rowid: u64) -> Result<()> {
        self.tts.push((node, rowid));
        Ok(())
    }

    fn write_nt(&mut self, _: crate::lattice::NodeId, _: u64, _: &[i64]) -> Result<()> {
        Err(CubeError::Config("recording sink accepts only TT writes".into()))
    }

    fn write_cat_group(&mut self, _: &[(crate::lattice::NodeId, u64)], _: &[i64]) -> Result<()> {
        Err(CubeError::Config("recording sink accepts only TT writes".into()))
    }

    fn finish(&mut self) -> Result<crate::sink::SinkStats> {
        Err(CubeError::Config("recording sink cannot finish".into()))
    }
}

/// Cube one partition into a buffered [`PartitionRun`] (worker side).
fn cube_partition_recorded(
    catalog: &Catalog,
    name: &str,
    schema: &CubeSchema,
    coder: &NodeCoder,
    cfg: &CubeConfig,
    level: LevelIdx,
) -> Result<PartitionRun> {
    let d = schema.num_dims();
    let y = schema.num_measures();
    let mut run = PartitionRun { tts: Vec::new(), flushes: Vec::new(), stats: RunStats::default() };
    let rel = catalog.open_relation(name)?;
    if rel.num_rows() == 0 {
        return Ok(run);
    }
    let t = Tuples::load_partition(&rel, d, y)?;
    // Full pool capacity, not capacity/threads: the worker must reproduce
    // the sequential driver's flush boundaries exactly (the sequential
    // pool is empty at every partition start thanks to the per-partition
    // flush, so a fresh full-capacity pool sees identical push sequences).
    let mut pool = SignaturePool::new(y, cfg.pool_capacity, cfg.cat_policy).recording();
    let mut rec = RecordingSink { y, tts: Vec::new() };
    let mut exec = Exec::new(schema, coder, &t, cfg.min_support, cfg.sort_policy);
    exec.set_dim0_level(level);
    let t0 = Instant::now();
    exec.run_partition_pass(&mut pool, &mut rec)?;
    pool.flush(&mut rec)?; // seals the tail
    run.stats.pass_secs = t0.elapsed().as_secs_f64();
    run.tts = rec.tts;
    run.flushes = pool.take_recorded();
    run.stats.counting_sorts = exec.sorter.counting_calls();
    run.stats.comparison_sorts = exec.sorter.comparison_calls();
    run.stats.sort_secs = exec.sorter.sort_secs();
    run.stats.tt_prunes = exec.tt_prunes;
    Ok(run)
}

/// Coordination state shared between workers and the merger.
struct MergeState {
    /// Completed, not-yet-merged runs by partition index.
    runs: std::collections::BTreeMap<usize, PartitionRun>,
    /// Partitions merged so far (monotone; workers gate on it).
    merged: usize,
    /// First failure anywhere in the pool; stops everyone.
    failed: Option<CubeError>,
}

/// Run the per-partition passes of a partitioned build on `threads`
/// workers, merging completed runs into `sink` strictly in partition
/// order. `pool` is the merger's decision-carrying pool (possibly
/// restored from a manifest); partitions `0..skip` are assumed already
/// merged (durable resume). `after_merge(sink, pool, i, stats)` runs on
/// the merger thread after partition `i` is fully applied, receiving
/// the run's worker-side statistics — the durable driver checkpoints
/// there. Returns the merger's replay wall time in seconds.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_partition_passes_parallel<S, F>(
    catalog: &Catalog,
    schema: &CubeSchema,
    coder: &NodeCoder,
    cfg: &CubeConfig,
    sink: &mut S,
    part_names: &[String],
    level: LevelIdx,
    threads: usize,
    skip: usize,
    pool: &mut SignaturePool,
    mut after_merge: F,
) -> Result<f64>
where
    S: CubeSink + ?Sized,
    F: FnMut(&mut S, &mut SignaturePool, usize, RunStats) -> Result<()>,
{
    let n_parts = part_names.len();
    if skip >= n_parts {
        return Ok(0.0);
    }
    let threads = threads.max(1).min(n_parts - skip);
    // Backpressure window: a worker may run at most this many partitions
    // ahead of the merge frontier, bounding buffered-run memory. The
    // window never deadlocks: claim indices are monotone, so the worker
    // holding the next-to-merge partition always satisfies `i < merged +
    // window` (window ≥ 1) and can proceed.
    let window = threads * 2;
    let next = std::sync::atomic::AtomicUsize::new(skip);
    let state = parking_lot::Mutex::new(MergeState {
        runs: std::collections::BTreeMap::new(),
        merged: skip,
        failed: None,
    });
    let cv = parking_lot::Condvar::new();
    let mut merge_secs = 0.0f64;

    let fail = |e: CubeError| {
        let mut st = state.lock();
        if st.failed.is_none() {
            st.failed = Some(e);
        }
        cv.notify_all();
    };

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n_parts {
                    break;
                }
                {
                    let mut st = state.lock();
                    while st.failed.is_none() && i >= st.merged + window {
                        cv.wait(&mut st);
                    }
                    if st.failed.is_some() {
                        break;
                    }
                }
                match cube_partition_recorded(catalog, &part_names[i], schema, coder, cfg, level) {
                    Ok(run) => {
                        let mut st = state.lock();
                        st.runs.insert(i, run);
                        cv.notify_all();
                    }
                    Err(e) => {
                        fail(e);
                        break;
                    }
                }
            });
        }

        // Merger: the calling thread replays runs in partition order.
        for i in skip..n_parts {
            let run = {
                let mut st = state.lock();
                loop {
                    if let Some(run) = st.runs.remove(&i) {
                        break run;
                    }
                    if st.failed.is_some() {
                        return;
                    }
                    cv.wait(&mut st);
                }
            };
            let t0 = Instant::now();
            let applied = (|| -> Result<()> {
                // TT writes and pool flushes target disjoint relations, so
                // replaying all TTs first preserves per-relation append
                // order — the only order the bytes depend on.
                for &(node, rowid) in &run.tts {
                    sink.write_tt(node, rowid)?;
                }
                for f in &run.flushes {
                    pool.apply_sealed(sink, f)?;
                }
                after_merge(sink, pool, i, run.stats)
            })();
            merge_secs += t0.elapsed().as_secs_f64();
            if let Err(e) = applied {
                fail(e);
                return;
            }
            let mut st = state.lock();
            st.merged = i + 1;
            cv.notify_all();
        }
    });

    match state.into_inner().failed {
        Some(e) => Err(e),
        None => Ok(merge_secs),
    }
}

/// Parallel variant of [`build_cure_cube`]: partitions are cubed by a
/// fixed pool of `threads` workers into buffered per-partition runs, and
/// a single merger (the calling thread) appends completed runs to the
/// sink in deterministic partition order. Not an algorithm of the paper —
/// a natural extension its partitioning makes possible, since every sound
/// partition can be cubed independently.
///
/// The output is **byte-identical** to [`build_cure_cube`] at any thread
/// count: workers only ever buffer (TT vectors plus sealed signature
/// flushes), while every order-sensitive effect — NT/CAT classification,
/// the §5.1 format decision, `AGGREGATES` row-id assignment, relation
/// appends — happens on the merger, in the same order as a sequential
/// build. A backpressure window of `2 × threads` partitions bounds the
/// memory held in unmerged runs.
pub fn build_cure_cube_parallel(
    catalog: &Catalog,
    fact_rel: &str,
    schema: &CubeSchema,
    cfg: &CubeConfig,
    sink: &mut dyn CubeSink,
    part_prefix: &str,
    threads: usize,
) -> Result<BuildReport> {
    let threads = threads.max(1);
    let fact = catalog.open_relation(fact_rel)?;
    let d = schema.num_dims();
    let y = schema.num_measures();
    let num_rows = fact.num_rows();
    let mem_needed = num_rows.saturating_mul(Tuples::tuple_bytes(d, y) as u64);
    if mem_needed <= cfg.memory_budget_bytes as u64 {
        let t = Tuples::load_fact(&fact, d, y)?;
        return CubeBuilder::new(schema, cfg.clone()).build_in_memory(&t, sink);
    }
    let choice = select_partition_level(
        schema,
        num_rows,
        Tuples::tuple_bytes(d, y),
        cfg.memory_budget_bytes,
    )?;
    let start = Instant::now();
    let (part_names, n_tuples, max_partition_rows) =
        partition_and_build_n(catalog, &fact, schema, &choice, part_prefix)?;
    let partition_secs = start.elapsed().as_secs_f64();

    let coder = NodeCoder::new(schema);
    let mut pool = SignaturePool::new(y, cfg.pool_capacity, cfg.cat_policy);
    let mut counting_sorts = 0u64;
    let mut comparison_sorts = 0u64;
    let mut pass_secs = 0.0f64;
    let mut sort_secs = 0.0f64;
    let mut tt_prunes = 0u64;

    let merge_secs = run_partition_passes_parallel(
        catalog,
        schema,
        &coder,
        cfg,
        sink,
        &part_names,
        choice.level,
        threads,
        0,
        &mut pool,
        |_, _, _, rs| {
            counting_sorts += rs.counting_sorts;
            comparison_sorts += rs.comparison_sorts;
            pass_secs += rs.pass_secs;
            sort_secs += rs.sort_secs;
            tt_prunes += rs.tt_prunes;
            Ok(())
        },
    )?;

    // Serial N pass (small by construction), exactly as the sequential
    // driver runs it.
    {
        let top = schema.dims()[0].top_level();
        let skip_dim0 = choice.level == top;
        let mut exec = Exec::new(schema, &coder, &n_tuples, cfg.min_support, cfg.sort_policy);
        exec.restrict_dim0(choice.level + 1, skip_dim0);
        let t0 = Instant::now();
        exec.run_full(&mut pool, sink)?;
        pass_secs += t0.elapsed().as_secs_f64();
        counting_sorts += exec.sorter.counting_calls();
        comparison_sorts += exec.sorter.comparison_calls();
        sort_secs += exec.sorter.sort_secs();
        tt_prunes += exec.tt_prunes;
    }
    pool.flush(sink)?;
    let stats = sink.finish()?;
    for name in &part_names {
        catalog.drop_relation(name)?;
    }
    Ok(BuildReport {
        stats,
        pool_flushes: pool.flushes(),
        signatures: pool.total_signatures(),
        counting_sorts,
        comparison_sorts,
        phases: PhaseTimes {
            partition_secs,
            pass_secs,
            sort_secs,
            flush_secs: pool.write_secs(),
            merge_secs,
        },
        pool: PoolCounters {
            tt_prunes,
            nt_written: pool.nt_written(),
            cat_groups: pool.cat_groups(),
            cat_tuples: pool.cat_tuples(),
        },
        partition: Some(PartitionReport {
            choice,
            n_rows: n_tuples.len() as u64,
            max_partition_rows,
            partition_secs,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Dimension;

    /// The paper's Table 1 scenario: SALES with Product organized as
    /// barcode (10,000) → brand (1,000) → economic_strength (10), |M| = 1 GB.
    fn sales_schema() -> CubeSchema {
        let barcode_to_brand: Vec<u32> = (0..10_000).map(|v| v / 10).collect();
        let brand_to_strength: Vec<u32> = (0..1_000).map(|v| v / 100).collect();
        let product =
            Dimension::linear("Product", 10_000, &[barcode_to_brand, brand_to_strength]).unwrap();
        let store = Dimension::flat("Store", 100);
        CubeSchema::new(vec![product, store], 1).unwrap()
    }

    #[test]
    fn table_1_reproduction() {
        // Table 1 of the paper: rows |R| = 10 GB / 100 GB / 1 TB with
        // |M| = 1 GB give L = 2 / 1 / 1 and 10 / 100 / 1000 partitions.
        let schema = sales_schema();
        let gb = 1_000_000_000u64; // the paper uses decimal units
                                   // Use a nominal 1-byte tuple so num_rows equals |R| in bytes.
        let cases = [
            (10 * gb, 2usize, 10u64, 1_000_000u64 /* |N| = 1 MB */),
            (100 * gb, 1, 100, 100_000_000 /* 100 MB */),
            (1000 * gb, 1, 1000, gb /* 1 GB */),
        ];
        for (r_bytes, want_level, want_parts, want_n_bytes) in cases {
            let c = select_partition_level(&schema, r_bytes, 1, gb as usize).unwrap();
            assert_eq!(c.level, want_level, "|R| = {r_bytes}");
            assert_eq!(c.num_partitions as u64, want_parts, "|R| = {r_bytes}");
            // |N| estimates: |R| / (|A0|/|A_{L+1}|).
            assert_eq!(c.est_n_bytes, want_n_bytes, "|R| = {r_bytes}");
        }
    }

    #[test]
    fn in_memory_case_needs_no_partitioning_decision() {
        // A table within budget is loaded directly; the driver tests for
        // that path live in the partitioned-build integration tests.
        let schema = sales_schema();
        let c = select_partition_level(&schema, 100, 32, 1 << 30).unwrap();
        // Even trivially small tables get a valid (top-level) choice.
        assert_eq!(c.level, 2);
        assert_eq!(c.num_partitions, 1);
    }

    #[test]
    fn infeasible_when_budget_tiny_and_cardinalities_low() {
        // 1M tuples of 100 B with a 1 KB budget need 100,000 partitions —
        // more than the leaf cardinality (10,000) allows.
        let schema = sales_schema();
        let err = select_partition_level(&schema, 1_000_000, 100, 1024);
        assert!(err.is_err());
    }

    #[test]
    fn needed_partitions_bounded_by_level_cardinality() {
        let schema = sales_schema();
        // Needs 50 partitions: level 2 (card 10) infeasible, level 1 (card
        // 1,000) feasible.
        let c = select_partition_level(&schema, 50u64 << 30, 1, 1 << 30).unwrap();
        assert_eq!(c.level, 1);
        assert_eq!(c.num_partitions, 50);
    }

    #[test]
    fn zero_budget_rejected() {
        let schema = sales_schema();
        assert!(select_partition_level(&schema, 100, 1, 0).is_err());
    }

    #[test]
    fn memory_fit_estimate_survives_huge_products() {
        let schema = sales_schema();
        // |R| = 10^8 rows × 100 B: the naive `rows * row_width` product
        // (10^10) exceeds u32::MAX. The estimate must be computed in
        // wide arithmetic and still pick a sane level.
        let rows = 100_000_000u64;
        assert!(rows * 100 > u32::MAX as u64);
        let c = select_partition_level(&schema, rows, 100, 1 << 30).unwrap();
        assert_eq!(c.num_partitions as u64, (rows * 100).div_ceil(1 << 30));
        assert!(c.est_n_bytes <= 1 << 30);

        // And products that overflow even u64 must register as "does not
        // fit" (an error), never wrap around (or panic) into a bogus
        // feasible level: here every level's `est_n_rows * tuple_bytes`
        // exceeds u64::MAX even though one partition would suffice.
        let err = select_partition_level(&schema, u64::MAX, 65_536, usize::MAX);
        assert!(err.is_err());
    }

    // -- end-to-end partitioned builds ------------------------------------

    use crate::reader::MemCubeReader;
    use crate::reference;
    use crate::sink::MemSink;

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_partbuild_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    fn hierarchical_schema() -> CubeSchema {
        // A: 40 -> 8 -> 2 (linear), B: 12 -> 3, C: flat 6.
        let a = Dimension::linear(
            "A",
            40,
            &[(0..40).map(|v| v / 5).collect(), (0..8).map(|v| v / 4).collect()],
        )
        .unwrap();
        let b = Dimension::linear("B", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
        let c = Dimension::flat("C", 6);
        CubeSchema::new(vec![a, b, c], 2).unwrap()
    }

    fn store_random_fact(catalog: &Catalog, schema: &CubeSchema, n: usize, seed: u64) -> Tuples {
        let d = schema.num_dims();
        let y = schema.num_measures();
        let mut t = Tuples::new(d, y);
        let mut x = seed | 1;
        let mut dims = vec![0u32; d];
        let mut aggs = vec![0i64; y];
        for i in 0..n {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
            }
            for a in aggs.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *a = (x % 50) as i64;
            }
            t.push_fact(&dims, &aggs, i as u64);
        }
        let mut heap = catalog.create_relation("facts", Tuples::fact_schema(d, y)).unwrap();
        t.store_fact(&mut heap).unwrap();
        t
    }

    /// Build with a budget small enough to force partitioning, then check
    /// every node against the oracle.
    fn assert_partitioned_build_matches_oracle(schema: CubeSchema, budget: usize, tag: &str) {
        let catalog = fresh_catalog(tag);
        let fact = store_random_fact(&catalog, &schema, 2_000, 12345);
        let cfg = CubeConfig { memory_budget_bytes: budget, ..CubeConfig::default() };
        let mut sink = MemSink::new(schema.num_measures());
        let report = build_cure_cube(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_").unwrap();
        let part = report.partition.as_ref().expect("budget must force partitioning");
        assert!(part.choice.num_partitions > 1);
        let reader = MemCubeReader::new(&schema, &sink, &fact, Some(part.choice.level)).unwrap();
        let oracle = reference::compute_cube(&schema, &fact);
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                oracle[&id].iter().map(|r| (r.dims.clone(), r.aggs.clone())).collect();
            assert_eq!(got, want, "node {} ({})", id, coder.name(&schema, id));
        }
        // Temporary partitions were dropped.
        assert!(catalog.list().unwrap().iter().all(|n| !n.starts_with("tmp_")));
    }

    #[test]
    fn partitioned_build_matches_oracle_low_level() {
        // A steep hierarchy (400 -> 10 -> 2) with a budget of |R|/20 needs
        // 20 partitions: levels 2 and 1 lack the cardinality, so L = 0 and
        // N (~|R|/40) still fits — the leaf-level partitioning path.
        let a = Dimension::linear(
            "A",
            400,
            &[(0..400).map(|v| v / 40).collect(), (0..10).map(|v| v / 5).collect()],
        )
        .unwrap();
        let b = Dimension::linear("B", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
        let c = Dimension::flat("C", 6);
        let schema = CubeSchema::new(vec![a, b, c], 2).unwrap();
        // 2,000 tuples x 44 B = 88,000 B; budget 4,400 B -> 20 partitions.
        assert_partitioned_build_matches_oracle(schema, 4_400, "lowlevel");
    }

    #[test]
    fn partitioned_build_matches_oracle_top_level() {
        // A 45 KB budget needs 2 partitions: feasible at the top level
        // (cardinality 2), exercising the `L == top`, dimension-0-projected
        // N-pass.
        let catalog = fresh_catalog("toplevel");
        let schema = hierarchical_schema();
        let fact = store_random_fact(&catalog, &schema, 2_000, 777);
        let cfg = CubeConfig { memory_budget_bytes: 45 << 10, ..CubeConfig::default() };
        let mut sink = MemSink::new(schema.num_measures());
        let report = build_cure_cube(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_").unwrap();
        let part = report.partition.as_ref().unwrap();
        assert_eq!(part.choice.level, schema.dims()[0].top_level());
        let reader = MemCubeReader::new(&schema, &sink, &fact, Some(part.choice.level)).unwrap();
        let oracle = reference::compute_cube(&schema, &fact);
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                oracle[&id].iter().map(|r| (r.dims.clone(), r.aggs.clone())).collect();
            assert_eq!(got, want, "node {} ({})", id, coder.name(&schema, id));
        }
    }

    #[test]
    fn partitioned_build_matches_oracle_mid_level() {
        // ~12 KB budget -> ~8 partitions -> L = 1 (cardinality 8).
        assert_partitioned_build_matches_oracle(hierarchical_schema(), 12 << 10, "midlevel");
    }

    #[test]
    fn in_memory_fast_path_used_when_budget_allows() {
        let catalog = fresh_catalog("fastpath");
        let schema = hierarchical_schema();
        let _fact = store_random_fact(&catalog, &schema, 500, 5);
        let cfg = CubeConfig::default(); // 256 MB budget
        let mut sink = MemSink::new(schema.num_measures());
        let report = build_cure_cube(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_").unwrap();
        assert!(report.partition.is_none());
    }

    #[test]
    fn parallel_build_matches_oracle() {
        for threads in [1usize, 2, 4, 8] {
            let catalog = fresh_catalog(&format!("parallel{threads}"));
            let schema = hierarchical_schema();
            let fact = store_random_fact(&catalog, &schema, 2_000, 4242);
            let cfg = CubeConfig { memory_budget_bytes: 12 << 10, ..CubeConfig::default() };
            let mut sink = MemSink::new(schema.num_measures());
            let report = build_cure_cube_parallel(
                &catalog, "facts", &schema, &cfg, &mut sink, "tmp_", threads,
            )
            .unwrap();
            let part = report.partition.as_ref().expect("budget forces partitioning");
            assert!(part.choice.num_partitions > 1);
            let reader =
                MemCubeReader::new(&schema, &sink, &fact, Some(part.choice.level)).unwrap();
            let oracle = reference::compute_cube(&schema, &fact);
            let coder = NodeCoder::new(&schema);
            for id in coder.all_ids() {
                let mut got = reader.node_contents(id).unwrap();
                got.sort();
                let want: Vec<(Vec<u32>, Vec<i64>)> =
                    oracle[&id].iter().map(|r| (r.dims.clone(), r.aggs.clone())).collect();
                assert_eq!(got, want, "threads={threads} node {id}");
            }
        }
    }

    #[test]
    fn parallel_build_reports_same_counters_as_sequential() {
        // The instrumentation must not perturb determinism: every integer
        // counter of a parallel build (worker-summed or merger-side) must
        // equal the sequential build's, at any thread count. Timers are
        // wall-clock and excluded.
        let schema = hierarchical_schema();
        let cfg = CubeConfig { memory_budget_bytes: 12 << 10, ..CubeConfig::default() };
        let seq_catalog = fresh_catalog("counters_seq");
        store_random_fact(&seq_catalog, &schema, 2_000, 4242);
        let mut seq_sink = MemSink::new(schema.num_measures());
        let seq =
            build_cure_cube(&seq_catalog, "facts", &schema, &cfg, &mut seq_sink, "tmp_").unwrap();
        assert!(seq.pool.tt_prunes > 0, "sparse data must hit the TT fast path");
        assert!(seq.pool.nt_written + seq.pool.cat_tuples > 0);
        for threads in [1usize, 4] {
            let catalog = fresh_catalog(&format!("counters_par{threads}"));
            store_random_fact(&catalog, &schema, 2_000, 4242);
            let mut sink = MemSink::new(schema.num_measures());
            let par = build_cure_cube_parallel(
                &catalog, "facts", &schema, &cfg, &mut sink, "tmp_", threads,
            )
            .unwrap();
            assert_eq!(par.stats, seq.stats, "threads={threads}");
            assert_eq!(par.pool, seq.pool, "threads={threads}");
            assert_eq!(par.counting_sorts, seq.counting_sorts, "threads={threads}");
            assert_eq!(par.comparison_sorts, seq.comparison_sorts, "threads={threads}");
            assert_eq!(par.signatures, seq.signatures, "threads={threads}");
            assert_eq!(par.pool_flushes, seq.pool_flushes, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_in_memory_fast_path() {
        let catalog = fresh_catalog("parfast");
        let schema = hierarchical_schema();
        let _fact = store_random_fact(&catalog, &schema, 300, 77);
        let mut sink = MemSink::new(schema.num_measures());
        let report = build_cure_cube_parallel(
            &catalog,
            "facts",
            &schema,
            &CubeConfig::default(),
            &mut sink,
            "tmp_",
            4,
        )
        .unwrap();
        assert!(report.partition.is_none(), "small input skips partitioning");
    }

    #[test]
    fn partitioned_and_in_memory_cubes_store_same_logical_content() {
        // TT placement may differ across pass boundaries, but the logical
        // node contents must be identical between the two drivers.
        let catalog = fresh_catalog("samecontent");
        let schema = hierarchical_schema();
        let fact = store_random_fact(&catalog, &schema, 1_000, 99);
        let mut mem_sink = MemSink::new(2);
        CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&fact, &mut mem_sink)
            .unwrap();
        let mut part_sink = MemSink::new(2);
        let cfg = CubeConfig { memory_budget_bytes: 8 << 10, ..CubeConfig::default() };
        let report =
            build_cure_cube(&catalog, "facts", &schema, &cfg, &mut part_sink, "tmp_").unwrap();
        let l = report.partition.unwrap().choice.level;
        let mem_reader = MemCubeReader::new(&schema, &mem_sink, &fact, None).unwrap();
        let part_reader = MemCubeReader::new(&schema, &part_sink, &fact, Some(l)).unwrap();
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut a = mem_reader.node_contents(id).unwrap();
            let mut b = part_reader.node_contents(id).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "node {id}");
        }
    }
}
