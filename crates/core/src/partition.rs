//! External partitioning and the out-of-core driver (§4, Figure 13's
//! `Algorithm CURE`).
//!
//! When the fact table exceeds the memory budget, CURE cannot simply
//! partition on the first dimension's *top* level: coarse levels have tiny
//! cardinalities (the paper's example: `|A2| = 5` values cannot yield the
//! ≥10 memory-sized sound partitions a 10 GB table needs). Instead CURE
//! picks the **maximum** level `L` of dimension 0 such that
//!
//! 1. partitioning on `A_L` can produce memory-sized sound partitions
//!    (`⌈|R|/|M|⌉ ≤ |A_L|`, observation 1), and
//! 2. the aggregated relation `N = A_{L+1}·B_0·C_0·…` — built *during* the
//!    single partitioning scan with one hash table — fits in memory
//!    (`|N| ≈ |R|·|A_{L+1}|/|A_0| ≤ |M|`, observation 2).
//!
//! The partitions then produce every node containing `A_i, i ∈ [0, L]`,
//! and `N` produces all the rest (observation 3) — 2 reads + 1 write of
//! `R` in total, instead of the `D+1` reads and `D` writes of naive
//! per-dimension partitioning.

use std::time::Instant;

use cure_storage::hash::FxHashMap;
use cure_storage::{Catalog, HeapFile, Schema};

use crate::cube::{BuildReport, CubeBuilder, CubeConfig, Exec};
use crate::error::{CubeError, Result};
use crate::hierarchy::{CubeSchema, LevelIdx};
use crate::lattice::NodeCoder;
use crate::signature::SignaturePool;
use crate::sink::CubeSink;
use crate::tuples::Tuples;

/// The outcome of partition-level selection (the paper's Table 1 columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionChoice {
    /// Chosen level `L` of dimension 0.
    pub level: LevelIdx,
    /// Number of sound partitions to create (`⌈|R|/|M|⌉`).
    pub num_partitions: usize,
    /// Expected bytes per partition (uniformity assumption).
    pub est_partition_bytes: u64,
    /// Estimated rows of `N` (`|R|·|A_{L+1}|/|A_0|`).
    pub est_n_rows: u64,
    /// Estimated bytes of `N`.
    pub est_n_bytes: u64,
}

/// What actually happened during a partitioned build.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// The selection that was made.
    pub choice: PartitionChoice,
    /// Actual rows in `N`.
    pub n_rows: u64,
    /// Rows in the largest partition (skew indicator).
    pub max_partition_rows: u64,
    /// Seconds spent in the partitioning scan.
    pub partition_secs: f64,
}

/// Select the partitioning level `L` for dimension 0 (§4).
///
/// `num_rows`/`tuple_bytes` describe the fact table's in-memory footprint;
/// `budget_bytes` is `|M|`. Scans levels from the top down and returns the
/// **maximum** feasible one; errors when none exists (the paper's rare
/// case, handled there by partitioning on dimension pairs — out of scope).
pub fn select_partition_level(
    schema: &CubeSchema,
    num_rows: u64,
    tuple_bytes: usize,
    budget_bytes: usize,
) -> Result<PartitionChoice> {
    let dim0 = &schema.dims()[0];
    if !dim0.is_linear() {
        return Err(CubeError::Partitioning(
            "partitioning requires a linear hierarchy on dimension 0 (reorder dimensions)".into(),
        ));
    }
    let r_bytes = num_rows.saturating_mul(tuple_bytes as u64);
    let budget = budget_bytes as u64;
    if budget == 0 {
        return Err(CubeError::Partitioning("zero memory budget".into()));
    }
    let needed = r_bytes.div_ceil(budget).max(1);
    let leaf_card = dim0.leaf_cardinality() as u64;
    let top = dim0.top_level();
    for l in (0..=top).rev() {
        let card_l = dim0.cardinality(l) as u64;
        if needed > card_l {
            continue; // cannot form enough sound partitions at this level
        }
        // |N| ≈ |R| · |A_{L+1}| / |A_0|; A_{top+1} ≡ ALL with cardinality 1.
        let card_l1 = if l == top { 1 } else { dim0.cardinality(l + 1) as u64 };
        let est_n_rows = (num_rows.saturating_mul(card_l1) / leaf_card.max(1)).max(1);
        let est_n_bytes = est_n_rows * tuple_bytes as u64;
        if est_n_bytes <= budget {
            return Ok(PartitionChoice {
                level: l,
                num_partitions: needed as usize,
                est_partition_bytes: r_bytes / needed,
                est_n_rows,
                est_n_bytes,
            });
        }
    }
    Err(CubeError::Partitioning(format!(
        "no feasible partitioning level on dimension {} for |R| = {} bytes, |M| = {} bytes \
         (the pairs-of-dimensions extension of §4 is not implemented)",
        dim0.name(),
        r_bytes,
        budget
    )))
}

/// Build a cube from an on-disk fact relation, partitioning when it does
/// not fit the memory budget — the complete `Algorithm CURE`.
///
/// `part_prefix` namespaces the temporary partition relations, which are
/// dropped before returning.
pub fn build_cure_cube(
    catalog: &Catalog,
    fact_rel: &str,
    schema: &CubeSchema,
    cfg: &CubeConfig,
    sink: &mut dyn CubeSink,
    part_prefix: &str,
) -> Result<BuildReport> {
    let fact = catalog.open_relation(fact_rel)?;
    let d = schema.num_dims();
    let y = schema.num_measures();
    let num_rows = fact.num_rows();
    let mem_needed = num_rows.saturating_mul(Tuples::tuple_bytes(d, y) as u64);

    // Lines 6–8: in-memory fast path.
    if mem_needed <= cfg.memory_budget_bytes as u64 {
        let t = Tuples::load_fact(&fact, d, y)?;
        return CubeBuilder::new(schema, cfg.clone()).build_in_memory(&t, sink);
    }

    // Line 10: select L; lines 11: partition + build N in one scan.
    let choice = select_partition_level(
        schema,
        num_rows,
        Tuples::tuple_bytes(d, y),
        cfg.memory_budget_bytes,
    )?;
    let start = Instant::now();
    let (part_names, n_tuples, max_partition_rows) =
        partition_and_build_n(catalog, &fact, schema, &choice, part_prefix)?;
    let partition_secs = start.elapsed().as_secs_f64();

    let coder = NodeCoder::new(schema);
    let mut pool = SignaturePool::new(y, cfg.pool_capacity, cfg.cat_policy);
    let mut counting_sorts = 0u64;
    let mut comparison_sorts = 0u64;

    // Lines 12–16: per-partition passes, entering dimension 0 at level L.
    for name in &part_names {
        let rel = catalog.open_relation(name)?;
        if rel.num_rows() == 0 {
            continue;
        }
        let t = Tuples::load_partition(&rel, d, y)?;
        let mut exec = Exec::new(schema, &coder, &t, cfg.min_support, cfg.sort_policy);
        exec.set_dim0_level(choice.level);
        exec.run_partition_pass(&mut pool, sink)?;
        counting_sorts += exec.sorter.counting_calls();
        comparison_sorts += exec.sorter.comparison_calls();
    }
    // Lines 17–20: the N pass — dimension 0 restricted to levels ≥ L+1 (or
    // skipped entirely when L was the top level).
    {
        let top = schema.dims()[0].top_level();
        let skip_dim0 = choice.level == top;
        let mut exec = Exec::new(schema, &coder, &n_tuples, cfg.min_support, cfg.sort_policy);
        exec.restrict_dim0(choice.level + 1, skip_dim0);
        exec.run_full(&mut pool, sink)?;
        counting_sorts += exec.sorter.counting_calls();
        comparison_sorts += exec.sorter.comparison_calls();
    }
    // Line 22: final flush.
    pool.flush(sink)?;
    let stats = sink.finish()?;

    // Drop the temporary partitions.
    for name in &part_names {
        catalog.drop_relation(name)?;
    }

    Ok(BuildReport {
        stats,
        pool_flushes: pool.flushes(),
        signatures: pool.total_signatures(),
        counting_sorts,
        comparison_sorts,
        partition: Some(PartitionReport {
            choice,
            n_rows: n_tuples.len() as u64,
            max_partition_rows,
            partition_secs,
        }),
    })
}

/// One scan of the fact relation: route each tuple to its sound partition
/// (on dimension 0 at level `L`) and hash-aggregate `N` in memory.
pub(crate) fn partition_and_build_n(
    catalog: &Catalog,
    fact: &HeapFile,
    schema: &CubeSchema,
    choice: &PartitionChoice,
    part_prefix: &str,
) -> Result<(Vec<String>, Tuples, u64)> {
    let d = schema.num_dims();
    let y = schema.num_measures();
    let dim0 = &schema.dims()[0];
    let top = dim0.top_level();
    let l = choice.level;
    let project_out_dim0 = l == top;
    let p = choice.num_partitions;
    let part_schema = Tuples::partition_schema(d, y);
    let fact_schema = fact.schema().clone();

    // Create the partition relations up front (kept open: `p` is bounded
    // by ⌈|R|/|M|⌉, small at any realistic budget).
    let mut names = Vec::with_capacity(p);
    let mut parts = Vec::with_capacity(p);
    for i in 0..p {
        let name = format!("{part_prefix}part{i}");
        parts.push(catalog.create_or_replace(&name, part_schema.clone())?);
        names.push(name);
    }

    // N accumulator: key = (A at L+1 | absent, other dims at leaf level).
    struct NAcc {
        aggs: Vec<i64>,
        count: u64,
        min_rowid: u64,
        rep_leaf0: u32,
    }
    let mut n_map: FxHashMap<Vec<u32>, NAcc> = FxHashMap::default();

    let mut key_scratch: Vec<u32> = vec![0; d];
    let mut part_row = vec![0u8; part_schema.row_width()];
    let mut max_rows_per_part = vec![0u64; p];
    fact.try_for_each_row(|rowid, row| {
        // Decode leaf dims and measures straight from the raw row.
        let leaf0 = Schema::read_u32_at(row, fact_schema.offset(0));
        // Route to the sound partition: all tuples with the same A_L value
        // share a partition.
        let v_l = dim0.value_at(l, leaf0);
        let part = (v_l as usize) % p;
        // Partition row: dims ++ measures ++ count(1) ++ rowid.
        debug_assert_eq!(row.len() + 16, part_row.len());
        part_row[..row.len()].copy_from_slice(row);
        part_row[row.len()..row.len() + 8].copy_from_slice(&1u64.to_le_bytes());
        part_row[row.len() + 8..].copy_from_slice(&rowid.to_le_bytes());
        parts[part].append_raw(&part_row)?;
        max_rows_per_part[part] += 1;

        // Accumulate N.
        key_scratch[0] = if project_out_dim0 { 0 } else { dim0.value_at(l + 1, leaf0) };
        for (dd, k) in key_scratch.iter_mut().enumerate().take(d).skip(1) {
            *k = Schema::read_u32_at(row, fact_schema.offset(dd));
        }
        match n_map.get_mut(key_scratch.as_slice()) {
            Some(acc) => {
                let fns = schema.agg_fns();
                for (m, a) in acc.aggs.iter_mut().enumerate() {
                    fns[m].merge(a, Schema::read_i64_at(row, fact_schema.offset(d + m)));
                }
                acc.count += 1;
                acc.min_rowid = acc.min_rowid.min(rowid);
            }
            None => {
                let aggs: Vec<i64> =
                    (0..y).map(|m| Schema::read_i64_at(row, fact_schema.offset(d + m))).collect();
                n_map.insert(
                    key_scratch.clone(),
                    NAcc { aggs, count: 1, min_rowid: rowid, rep_leaf0: leaf0 },
                );
            }
        }
        Ok(())
    })?;
    for part in parts.iter_mut() {
        part.flush()?;
    }
    let max_partition_rows = max_rows_per_part.iter().copied().max().unwrap_or(0);

    // Materialize N as in-memory tuples. Dimension 0 carries the
    // *representative leaf* of its level-(L+1) group: every lookup the
    // N-pass performs is at level ≥ L+1, where all leaves of the group
    // agree (linear hierarchy), so the representative is sound.
    let mut n_tuples = Tuples::with_capacity(d, y, n_map.len());
    let mut dims = vec![0u32; d];
    for (key, acc) in n_map {
        dims[0] = if project_out_dim0 { 0 } else { acc.rep_leaf0 };
        dims[1..d].copy_from_slice(&key[1..d]);
        n_tuples.push(&dims, &acc.aggs, acc.count, acc.min_rowid);
    }
    Ok((names, n_tuples, max_partition_rows))
}

/// A [`CubeSink`] adapter that batches writes locally and drains them into
/// a mutex-protected shared sink — the write side of
/// [`build_cure_cube_parallel`]. Batching keeps lock acquisitions to one
/// per few thousand tuples instead of one per tuple (the recursion emits a
/// TT for almost every sparse group). `set_cat_format` is
/// first-writer-wins so concurrent pool decisions cannot clash.
/// A buffered CAT-group write: `(members, aggs)`.
type CatGroupOp = (Vec<(crate::lattice::NodeId, u64)>, Vec<i64>);

pub(crate) struct LockedSink<'a, 'b> {
    inner: &'a parking_lot::Mutex<&'b mut (dyn CubeSink + Send)>,
    tt: Vec<(crate::lattice::NodeId, u64)>,
    nt: Vec<(crate::lattice::NodeId, u64, Vec<i64>)>,
    cat: Vec<CatGroupOp>,
}

/// Drain the shard buffers after this many pending operations.
const SHARD_BATCH: usize = 8192;

impl<'a, 'b> LockedSink<'a, 'b> {
    pub(crate) fn new(inner: &'a parking_lot::Mutex<&'b mut (dyn CubeSink + Send)>) -> Self {
        LockedSink { inner, tt: Vec::new(), nt: Vec::new(), cat: Vec::new() }
    }

    fn pending(&self) -> usize {
        self.tt.len() + self.nt.len() + self.cat.len()
    }

    /// Drain every buffered operation into the shared sink under one lock.
    pub(crate) fn drain(&mut self) -> Result<()> {
        if self.pending() == 0 {
            return Ok(());
        }
        let mut g = self.inner.lock();
        for (node, rowid) in self.tt.drain(..) {
            g.write_tt(node, rowid)?;
        }
        for (node, rowid, aggs) in self.nt.drain(..) {
            g.write_nt(node, rowid, &aggs)?;
        }
        for (members, aggs) in self.cat.drain(..) {
            g.write_cat_group(&members, &aggs)?;
        }
        Ok(())
    }

    fn maybe_drain(&mut self) -> Result<()> {
        if self.pending() >= SHARD_BATCH {
            self.drain()?;
        }
        Ok(())
    }
}

impl CubeSink for LockedSink<'_, '_> {
    fn n_measures(&self) -> usize {
        self.inner.lock().n_measures()
    }

    fn set_cat_format(&mut self, f: crate::sink::CatFormat) {
        let mut g = self.inner.lock();
        if g.cat_format().is_none() {
            g.set_cat_format(f);
        }
    }

    fn cat_format(&self) -> Option<crate::sink::CatFormat> {
        self.inner.lock().cat_format()
    }

    fn write_tt(&mut self, node: crate::lattice::NodeId, rowid: u64) -> Result<()> {
        self.tt.push((node, rowid));
        self.maybe_drain()
    }

    fn write_nt(&mut self, node: crate::lattice::NodeId, rowid: u64, aggs: &[i64]) -> Result<()> {
        self.nt.push((node, rowid, aggs.to_vec()));
        self.maybe_drain()
    }

    fn write_cat_group(
        &mut self,
        members: &[(crate::lattice::NodeId, u64)],
        aggs: &[i64],
    ) -> Result<()> {
        self.cat.push((members.to_vec(), aggs.to_vec()));
        self.maybe_drain()
    }

    fn finish(&mut self) -> Result<crate::sink::SinkStats> {
        Err(CubeError::Config("finish() must be called on the shared sink, not a shard".into()))
    }
}

/// Parallel variant of [`build_cure_cube`]: the per-partition passes run on
/// `threads` worker threads (partitions are disjoint inputs; the shared
/// sink is serialized behind a mutex). Not an algorithm of the paper — a
/// natural extension its partitioning makes possible, since every sound
/// partition can be cubed independently.
///
/// Differences from the serial driver, both documented trade-offs:
/// * each worker owns a signature pool of `pool_capacity / threads`
///   signatures, so CATs spanning workers may be stored redundantly
///   (the same working-set argument as the bounded pool itself);
/// * the CAT format is decided by whichever worker first accumulates
///   statistics (shared through a `OnceLock`).
///
/// Logical cube contents are identical to the serial build (asserted by
/// tests against the oracle). CURE_DR is supported if the resolver is
/// `Send` (the `RowResolver` alias requires it).
pub fn build_cure_cube_parallel(
    catalog: &Catalog,
    fact_rel: &str,
    schema: &CubeSchema,
    cfg: &CubeConfig,
    sink: &mut (dyn CubeSink + Send),
    part_prefix: &str,
    threads: usize,
) -> Result<BuildReport> {
    let threads = threads.max(1);
    let fact = catalog.open_relation(fact_rel)?;
    let d = schema.num_dims();
    let y = schema.num_measures();
    let num_rows = fact.num_rows();
    let mem_needed = num_rows.saturating_mul(Tuples::tuple_bytes(d, y) as u64);
    if mem_needed <= cfg.memory_budget_bytes as u64 {
        let t = Tuples::load_fact(&fact, d, y)?;
        return CubeBuilder::new(schema, cfg.clone()).build_in_memory(&t, sink);
    }
    let choice = select_partition_level(
        schema,
        num_rows,
        Tuples::tuple_bytes(d, y),
        cfg.memory_budget_bytes,
    )?;
    let start = Instant::now();
    let (part_names, n_tuples, max_partition_rows) =
        partition_and_build_n(catalog, &fact, schema, &choice, part_prefix)?;
    let partition_secs = start.elapsed().as_secs_f64();

    let coder = NodeCoder::new(schema);
    let shared_format: std::sync::Arc<std::sync::OnceLock<crate::sink::CatFormat>> =
        std::sync::Arc::new(std::sync::OnceLock::new());
    let shared_sink = parking_lot::Mutex::new(sink);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let failure: parking_lot::Mutex<Option<CubeError>> = parking_lot::Mutex::new(None);
    let counting = std::sync::atomic::AtomicU64::new(0);
    let comparison = std::sync::atomic::AtomicU64::new(0);
    let flushes = std::sync::atomic::AtomicU64::new(0);
    let signatures = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(part_names.len().max(1)) {
            scope.spawn(|| {
                let mut pool =
                    SignaturePool::new(y, (cfg.pool_capacity / threads).max(1), cfg.cat_policy)
                        .with_shared_decision(shared_format.clone());
                let mut shard = LockedSink::new(&shared_sink);
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= part_names.len() || failure.lock().is_some() {
                        break;
                    }
                    let result = (|| -> Result<()> {
                        let rel = catalog.open_relation(&part_names[i])?;
                        if rel.num_rows() == 0 {
                            return Ok(());
                        }
                        let t = Tuples::load_partition(&rel, d, y)?;
                        let mut exec =
                            Exec::new(schema, &coder, &t, cfg.min_support, cfg.sort_policy);
                        exec.set_dim0_level(choice.level);
                        exec.run_partition_pass(&mut pool, &mut shard)?;
                        counting.fetch_add(
                            exec.sorter.counting_calls(),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                        comparison.fetch_add(
                            exec.sorter.comparison_calls(),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                        Ok(())
                    })();
                    if let Err(e) = result {
                        *failure.lock() = Some(e);
                        break;
                    }
                }
                if let Err(e) = pool.flush(&mut shard).and_then(|()| shard.drain()) {
                    let mut f = failure.lock();
                    if f.is_none() {
                        *f = Some(e);
                    }
                }
                flushes.fetch_add(pool.flushes(), std::sync::atomic::Ordering::Relaxed);
                signatures.fetch_add(pool.total_signatures(), std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }
    let sink = shared_sink.into_inner();

    // Serial N pass (small by construction).
    let mut pool = SignaturePool::new(y, cfg.pool_capacity, cfg.cat_policy)
        .with_shared_decision(shared_format);
    {
        let top = schema.dims()[0].top_level();
        let skip_dim0 = choice.level == top;
        let mut exec = Exec::new(schema, &coder, &n_tuples, cfg.min_support, cfg.sort_policy);
        exec.restrict_dim0(choice.level + 1, skip_dim0);
        exec.run_full(&mut pool, sink)?;
        counting.fetch_add(exec.sorter.counting_calls(), std::sync::atomic::Ordering::Relaxed);
        comparison.fetch_add(exec.sorter.comparison_calls(), std::sync::atomic::Ordering::Relaxed);
    }
    pool.flush(sink)?;
    let stats = sink.finish()?;
    for name in &part_names {
        catalog.drop_relation(name)?;
    }
    Ok(BuildReport {
        stats,
        pool_flushes: flushes.into_inner() + pool.flushes(),
        signatures: signatures.into_inner() + pool.total_signatures(),
        counting_sorts: counting.into_inner(),
        comparison_sorts: comparison.into_inner(),
        partition: Some(PartitionReport {
            choice,
            n_rows: n_tuples.len() as u64,
            max_partition_rows,
            partition_secs,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Dimension;

    /// The paper's Table 1 scenario: SALES with Product organized as
    /// barcode (10,000) → brand (1,000) → economic_strength (10), |M| = 1 GB.
    fn sales_schema() -> CubeSchema {
        let barcode_to_brand: Vec<u32> = (0..10_000).map(|v| v / 10).collect();
        let brand_to_strength: Vec<u32> = (0..1_000).map(|v| v / 100).collect();
        let product =
            Dimension::linear("Product", 10_000, &[barcode_to_brand, brand_to_strength]).unwrap();
        let store = Dimension::flat("Store", 100);
        CubeSchema::new(vec![product, store], 1).unwrap()
    }

    #[test]
    fn table_1_reproduction() {
        // Table 1 of the paper: rows |R| = 10 GB / 100 GB / 1 TB with
        // |M| = 1 GB give L = 2 / 1 / 1 and 10 / 100 / 1000 partitions.
        let schema = sales_schema();
        let gb = 1_000_000_000u64; // the paper uses decimal units
                                   // Use a nominal 1-byte tuple so num_rows equals |R| in bytes.
        let cases = [
            (10 * gb, 2usize, 10u64, 1_000_000u64 /* |N| = 1 MB */),
            (100 * gb, 1, 100, 100_000_000 /* 100 MB */),
            (1000 * gb, 1, 1000, gb /* 1 GB */),
        ];
        for (r_bytes, want_level, want_parts, want_n_bytes) in cases {
            let c = select_partition_level(&schema, r_bytes, 1, gb as usize).unwrap();
            assert_eq!(c.level, want_level, "|R| = {r_bytes}");
            assert_eq!(c.num_partitions as u64, want_parts, "|R| = {r_bytes}");
            // |N| estimates: |R| / (|A0|/|A_{L+1}|).
            assert_eq!(c.est_n_bytes, want_n_bytes, "|R| = {r_bytes}");
        }
    }

    #[test]
    fn in_memory_case_needs_no_partitioning_decision() {
        // A table within budget is loaded directly; the driver tests for
        // that path live in the partitioned-build integration tests.
        let schema = sales_schema();
        let c = select_partition_level(&schema, 100, 32, 1 << 30).unwrap();
        // Even trivially small tables get a valid (top-level) choice.
        assert_eq!(c.level, 2);
        assert_eq!(c.num_partitions, 1);
    }

    #[test]
    fn infeasible_when_budget_tiny_and_cardinalities_low() {
        // 1M tuples of 100 B with a 1 KB budget need 100,000 partitions —
        // more than the leaf cardinality (10,000) allows.
        let schema = sales_schema();
        let err = select_partition_level(&schema, 1_000_000, 100, 1024);
        assert!(err.is_err());
    }

    #[test]
    fn needed_partitions_bounded_by_level_cardinality() {
        let schema = sales_schema();
        // Needs 50 partitions: level 2 (card 10) infeasible, level 1 (card
        // 1,000) feasible.
        let c = select_partition_level(&schema, 50u64 << 30, 1, 1 << 30).unwrap();
        assert_eq!(c.level, 1);
        assert_eq!(c.num_partitions, 50);
    }

    #[test]
    fn zero_budget_rejected() {
        let schema = sales_schema();
        assert!(select_partition_level(&schema, 100, 1, 0).is_err());
    }

    // -- end-to-end partitioned builds ------------------------------------

    use crate::reader::MemCubeReader;
    use crate::reference;
    use crate::sink::MemSink;

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_partbuild_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    fn hierarchical_schema() -> CubeSchema {
        // A: 40 -> 8 -> 2 (linear), B: 12 -> 3, C: flat 6.
        let a = Dimension::linear(
            "A",
            40,
            &[(0..40).map(|v| v / 5).collect(), (0..8).map(|v| v / 4).collect()],
        )
        .unwrap();
        let b = Dimension::linear("B", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
        let c = Dimension::flat("C", 6);
        CubeSchema::new(vec![a, b, c], 2).unwrap()
    }

    fn store_random_fact(catalog: &Catalog, schema: &CubeSchema, n: usize, seed: u64) -> Tuples {
        let d = schema.num_dims();
        let y = schema.num_measures();
        let mut t = Tuples::new(d, y);
        let mut x = seed | 1;
        let mut dims = vec![0u32; d];
        let mut aggs = vec![0i64; y];
        for i in 0..n {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
            }
            for a in aggs.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *a = (x % 50) as i64;
            }
            t.push_fact(&dims, &aggs, i as u64);
        }
        let mut heap = catalog.create_relation("facts", Tuples::fact_schema(d, y)).unwrap();
        t.store_fact(&mut heap).unwrap();
        t
    }

    /// Build with a budget small enough to force partitioning, then check
    /// every node against the oracle.
    fn assert_partitioned_build_matches_oracle(schema: CubeSchema, budget: usize, tag: &str) {
        let catalog = fresh_catalog(tag);
        let fact = store_random_fact(&catalog, &schema, 2_000, 12345);
        let cfg = CubeConfig { memory_budget_bytes: budget, ..CubeConfig::default() };
        let mut sink = MemSink::new(schema.num_measures());
        let report = build_cure_cube(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_").unwrap();
        let part = report.partition.as_ref().expect("budget must force partitioning");
        assert!(part.choice.num_partitions > 1);
        let reader = MemCubeReader::new(&schema, &sink, &fact, Some(part.choice.level)).unwrap();
        let oracle = reference::compute_cube(&schema, &fact);
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                oracle[&id].iter().map(|r| (r.dims.clone(), r.aggs.clone())).collect();
            assert_eq!(got, want, "node {} ({})", id, coder.name(&schema, id));
        }
        // Temporary partitions were dropped.
        assert!(catalog.list().unwrap().iter().all(|n| !n.starts_with("tmp_")));
    }

    #[test]
    fn partitioned_build_matches_oracle_low_level() {
        // A steep hierarchy (400 -> 10 -> 2) with a budget of |R|/20 needs
        // 20 partitions: levels 2 and 1 lack the cardinality, so L = 0 and
        // N (~|R|/40) still fits — the leaf-level partitioning path.
        let a = Dimension::linear(
            "A",
            400,
            &[(0..400).map(|v| v / 40).collect(), (0..10).map(|v| v / 5).collect()],
        )
        .unwrap();
        let b = Dimension::linear("B", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
        let c = Dimension::flat("C", 6);
        let schema = CubeSchema::new(vec![a, b, c], 2).unwrap();
        // 2,000 tuples x 44 B = 88,000 B; budget 4,400 B -> 20 partitions.
        assert_partitioned_build_matches_oracle(schema, 4_400, "lowlevel");
    }

    #[test]
    fn partitioned_build_matches_oracle_top_level() {
        // A 45 KB budget needs 2 partitions: feasible at the top level
        // (cardinality 2), exercising the `L == top`, dimension-0-projected
        // N-pass.
        let catalog = fresh_catalog("toplevel");
        let schema = hierarchical_schema();
        let fact = store_random_fact(&catalog, &schema, 2_000, 777);
        let cfg = CubeConfig { memory_budget_bytes: 45 << 10, ..CubeConfig::default() };
        let mut sink = MemSink::new(schema.num_measures());
        let report = build_cure_cube(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_").unwrap();
        let part = report.partition.as_ref().unwrap();
        assert_eq!(part.choice.level, schema.dims()[0].top_level());
        let reader = MemCubeReader::new(&schema, &sink, &fact, Some(part.choice.level)).unwrap();
        let oracle = reference::compute_cube(&schema, &fact);
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                oracle[&id].iter().map(|r| (r.dims.clone(), r.aggs.clone())).collect();
            assert_eq!(got, want, "node {} ({})", id, coder.name(&schema, id));
        }
    }

    #[test]
    fn partitioned_build_matches_oracle_mid_level() {
        // ~12 KB budget -> ~8 partitions -> L = 1 (cardinality 8).
        assert_partitioned_build_matches_oracle(hierarchical_schema(), 12 << 10, "midlevel");
    }

    #[test]
    fn in_memory_fast_path_used_when_budget_allows() {
        let catalog = fresh_catalog("fastpath");
        let schema = hierarchical_schema();
        let _fact = store_random_fact(&catalog, &schema, 500, 5);
        let cfg = CubeConfig::default(); // 256 MB budget
        let mut sink = MemSink::new(schema.num_measures());
        let report = build_cure_cube(&catalog, "facts", &schema, &cfg, &mut sink, "tmp_").unwrap();
        assert!(report.partition.is_none());
    }

    #[test]
    fn parallel_build_matches_oracle() {
        for threads in [1usize, 2, 4] {
            let catalog = fresh_catalog(&format!("parallel{threads}"));
            let schema = hierarchical_schema();
            let fact = store_random_fact(&catalog, &schema, 2_000, 4242);
            let cfg = CubeConfig { memory_budget_bytes: 12 << 10, ..CubeConfig::default() };
            let mut sink = MemSink::new(schema.num_measures());
            let report = build_cure_cube_parallel(
                &catalog, "facts", &schema, &cfg, &mut sink, "tmp_", threads,
            )
            .unwrap();
            let part = report.partition.as_ref().expect("budget forces partitioning");
            assert!(part.choice.num_partitions > 1);
            let reader =
                MemCubeReader::new(&schema, &sink, &fact, Some(part.choice.level)).unwrap();
            let oracle = reference::compute_cube(&schema, &fact);
            let coder = NodeCoder::new(&schema);
            for id in coder.all_ids() {
                let mut got = reader.node_contents(id).unwrap();
                got.sort();
                let want: Vec<(Vec<u32>, Vec<i64>)> =
                    oracle[&id].iter().map(|r| (r.dims.clone(), r.aggs.clone())).collect();
                assert_eq!(got, want, "threads={threads} node {id}");
            }
        }
    }

    #[test]
    fn parallel_build_in_memory_fast_path() {
        let catalog = fresh_catalog("parfast");
        let schema = hierarchical_schema();
        let _fact = store_random_fact(&catalog, &schema, 300, 77);
        let mut sink = MemSink::new(schema.num_measures());
        let report = build_cure_cube_parallel(
            &catalog,
            "facts",
            &schema,
            &CubeConfig::default(),
            &mut sink,
            "tmp_",
            4,
        )
        .unwrap();
        assert!(report.partition.is_none(), "small input skips partitioning");
    }

    #[test]
    fn partitioned_and_in_memory_cubes_store_same_logical_content() {
        // TT placement may differ across pass boundaries, but the logical
        // node contents must be identical between the two drivers.
        let catalog = fresh_catalog("samecontent");
        let schema = hierarchical_schema();
        let fact = store_random_fact(&catalog, &schema, 1_000, 99);
        let mut mem_sink = MemSink::new(2);
        CubeBuilder::new(&schema, CubeConfig::default())
            .build_in_memory(&fact, &mut mem_sink)
            .unwrap();
        let mut part_sink = MemSink::new(2);
        let cfg = CubeConfig { memory_budget_bytes: 8 << 10, ..CubeConfig::default() };
        let report =
            build_cure_cube(&catalog, "facts", &schema, &cfg, &mut part_sink, "tmp_").unwrap();
        let l = report.partition.unwrap().choice.level;
        let mem_reader = MemCubeReader::new(&schema, &mem_sink, &fact, None).unwrap();
        let part_reader = MemCubeReader::new(&schema, &part_sink, &fact, Some(l)).unwrap();
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut a = mem_reader.node_contents(id).unwrap();
            let mut b = part_reader.node_contents(id).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "node {id}");
        }
    }
}
