//! Reference (naive) cube computation — the correctness oracle.
//!
//! Computes every lattice node independently by hash aggregation, with no
//! sharing, no redundancy elimination and no cleverness. Exponential in the
//! number of dimensions and therefore only usable on small schemas — which
//! is exactly its job: tests and property tests compare CURE's (and the
//! baselines') output against this oracle tuple-for-tuple.

use cure_storage::hash::FxHashMap;

use crate::hierarchy::CubeSchema;
use crate::lattice::{NodeCoder, NodeId};
use crate::tuples::Tuples;

/// One aggregated group of a cube node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroupRow {
    /// Projected grouping values (only the node's non-ALL dimensions, in
    /// dimension order).
    pub dims: Vec<u32>,
    /// Aggregate values (sums of the measures).
    pub aggs: Vec<i64>,
    /// Number of original fact tuples aggregated.
    pub count: u64,
    /// Minimum original row-id among them.
    pub min_rowid: u64,
}

/// Compute the contents of one node (identified by its level vector) by
/// naive hash aggregation. The result is sorted by grouping values.
pub fn compute_node(schema: &CubeSchema, t: &Tuples, levels: &[usize]) -> Vec<GroupRow> {
    let coder = NodeCoder::new(schema);
    let y = t.n_measures();
    let grouped_dims: Vec<usize> =
        (0..schema.num_dims()).filter(|&d| !coder.is_all(levels, d)).collect();
    let mut map: FxHashMap<Vec<u32>, GroupRow> = FxHashMap::default();
    for i in 0..t.len() {
        let key: Vec<u32> = grouped_dims
            .iter()
            .map(|&d| schema.dims()[d].value_at(levels[d], t.dim(i, d)))
            .collect();
        let aggs = t.aggs_of(i);
        match map.get_mut(key.as_slice()) {
            Some(row) => {
                crate::aggfn::AggFn::merge_all(schema.agg_fns(), &mut row.aggs, aggs);
                row.count += t.count(i);
                row.min_rowid = row.min_rowid.min(t.rowid(i));
            }
            None => {
                map.insert(
                    key.clone(),
                    GroupRow {
                        dims: key,
                        aggs: aggs.to_vec(),
                        count: t.count(i),
                        min_rowid: t.rowid(i),
                    },
                );
            }
        }
        debug_assert_eq!(aggs.len(), y);
    }
    let mut rows: Vec<GroupRow> = map.into_values().collect();
    rows.sort();
    rows
}

/// Compute the complete cube: every node's sorted contents.
///
/// Only feasible for small lattices (`∏(Lᵢ+1)` nodes); intended for tests.
pub fn compute_cube(schema: &CubeSchema, t: &Tuples) -> FxHashMap<NodeId, Vec<GroupRow>> {
    let coder = NodeCoder::new(schema);
    let mut out = FxHashMap::default();
    for id in coder.all_ids() {
        let levels = coder.decode(id).expect("dense ids");
        out.insert(id, compute_node(schema, t, &levels));
    }
    out
}

/// Apply an iceberg filter (`HAVING count >= min_support`) to oracle
/// output, matching BUC-style iceberg cube semantics.
pub fn iceberg_filter(rows: &[GroupRow], min_support: u64) -> Vec<GroupRow> {
    rows.iter().filter(|r| r.count >= min_support).cloned().collect()
}

/// Compute the complete iceberg cube: [`compute_cube`] with the
/// `HAVING count >= min_support` filter applied to every node.
///
/// This is the single oracle entry point differential tests need: it
/// composes hierarchy projection (linear *and* DAG rollups both go
/// through [`Dimension::value_at`](crate::hierarchy::Dimension::value_at))
/// with iceberg pruning, so the filter semantics are identical at every
/// level of every rollup path. `min_support == 1` degenerates to the full
/// cube.
pub fn compute_cube_iceberg(
    schema: &CubeSchema,
    t: &Tuples,
    min_support: u64,
) -> FxHashMap<NodeId, Vec<GroupRow>> {
    let mut cube = compute_cube(schema, t);
    if min_support > 1 {
        for rows in cube.values_mut() {
            rows.retain(|r| r.count >= min_support);
        }
    }
    cube
}

/// Project oracle rows to the `(grouping values, aggregates)` pairs that
/// cube readers return — the comparison currency of differential tests.
pub fn pairs(rows: &[GroupRow]) -> Vec<(Vec<u32>, Vec<i64>)> {
    rows.iter().map(|r| (r.dims.clone(), r.aggs.clone())).collect()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::hierarchy::Dimension;

    /// Figure 9a of the paper: fact table R(A, B, C; M).
    pub(crate) fn figure_9_table() -> (CubeSchema, Tuples) {
        let schema = CubeSchema::new(
            vec![Dimension::flat("A", 4), Dimension::flat("B", 4), Dimension::flat("C", 4)],
            1,
        )
        .unwrap();
        let mut t = Tuples::new(3, 1);
        // <A,B,C,M>: values are 1-based in the paper; keep them as-is
        // (cardinality 4 covers ids 0..=3).
        t.push_fact(&[1, 1, 1], &[10], 0);
        t.push_fact(&[1, 1, 2], &[20], 1);
        t.push_fact(&[2, 2, 3], &[40], 2);
        t.push_fact(&[3, 2, 1], &[45], 3);
        t.push_fact(&[3, 3, 3], &[45], 4);
        (schema, t)
    }

    #[test]
    fn figure_9_node_a() {
        // Node A of Figure 9b: {<1,30>, <2,40>, <3,90>}.
        let (schema, t) = figure_9_table();
        let coder = NodeCoder::new(&schema);
        let rows = compute_node(&schema, &t, &[0, coder.all_level(1), coder.all_level(2)]);
        assert_eq!(rows.len(), 3);
        assert_eq!((rows[0].dims[0], rows[0].aggs[0]), (1, 30));
        assert_eq!((rows[1].dims[0], rows[1].aggs[0]), (2, 40));
        assert_eq!((rows[2].dims[0], rows[2].aggs[0]), (3, 90));
        // <1,30> aggregates rows 0,1 → count 2, min rowid 0.
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].min_rowid, 0);
    }

    #[test]
    fn figure_9_node_b_and_c() {
        let (schema, t) = figure_9_table();
        let coder = NodeCoder::new(&schema);
        // Node B: {<1,30>, <2,85>, <3,45>}.
        let rows = compute_node(&schema, &t, &[coder.all_level(0), 0, coder.all_level(2)]);
        let pairs: Vec<(u32, i64)> = rows.iter().map(|r| (r.dims[0], r.aggs[0])).collect();
        assert_eq!(pairs, vec![(1, 30), (2, 85), (3, 45)]);
        // Node C: {<1,55>, <2,20>, <3,85>}.
        let rows = compute_node(&schema, &t, &[coder.all_level(0), coder.all_level(1), 0]);
        let pairs: Vec<(u32, i64)> = rows.iter().map(|r| (r.dims[0], r.aggs[0])).collect();
        assert_eq!(pairs, vec![(1, 55), (2, 20), (3, 85)]);
    }

    #[test]
    fn figure_9_all_node() {
        let (schema, t) = figure_9_table();
        let coder = NodeCoder::new(&schema);
        let rows = compute_node(
            &schema,
            &t,
            &[coder.all_level(0), coder.all_level(1), coder.all_level(2)],
        );
        assert_eq!(rows.len(), 1);
        assert!(rows[0].dims.is_empty());
        assert_eq!(rows[0].aggs[0], 160);
        assert_eq!(rows[0].count, 5);
    }

    #[test]
    fn full_cube_node_count() {
        let (schema, t) = figure_9_table();
        let cube = compute_cube(&schema, &t);
        assert_eq!(cube.len(), 8);
        // ABC node materializes all 5 distinct tuples.
        let coder = NodeCoder::new(&schema);
        assert_eq!(cube[&coder.encode(&[0, 0, 0])].len(), 5);
    }

    #[test]
    fn hierarchical_rollup_consistency() {
        // Sum at a coarse level equals the sum of its children's sums.
        let a = Dimension::linear("A", 4, &[vec![0, 0, 1, 1]]).unwrap();
        let schema = CubeSchema::new(vec![a], 1).unwrap();
        let mut t = Tuples::new(1, 1);
        for i in 0..100u32 {
            t.push_fact(&[i % 4], &[i as i64], i as u64);
        }
        let fine = compute_node(&schema, &t, &[0]);
        let coarse = compute_node(&schema, &t, &[1]);
        let coarse_sum: i64 = coarse.iter().map(|r| r.aggs[0]).sum();
        let fine_sum: i64 = fine.iter().map(|r| r.aggs[0]).sum();
        assert_eq!(coarse_sum, fine_sum);
        assert_eq!(coarse.len(), 2);
        assert_eq!(fine.len(), 4);
        // Group {0,1} at the coarse level = fine groups 0 + 1.
        assert_eq!(coarse[0].aggs[0], fine[0].aggs[0] + fine[1].aggs[0]);
    }

    #[test]
    fn aggregated_input_counts_respected() {
        // A pre-aggregated tuple with count 3 contributes its count, not 1.
        let schema = CubeSchema::new(vec![Dimension::flat("A", 2)], 1).unwrap();
        let mut t = Tuples::new(1, 1);
        t.push(&[0], &[30], 3, 7);
        t.push(&[0], &[5], 1, 9);
        let rows = compute_node(&schema, &t, &[0]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 4);
        assert_eq!(rows[0].aggs[0], 35);
        assert_eq!(rows[0].min_rowid, 7);
    }

    #[test]
    fn iceberg_filter_thresholds() {
        let (schema, t) = figure_9_table();
        let coder = NodeCoder::new(&schema);
        let rows = compute_node(&schema, &t, &[0, coder.all_level(1), coder.all_level(2)]);
        let filtered = iceberg_filter(&rows, 2);
        // Only groups A=1 (count 2) and A=3 (count 2) survive.
        assert_eq!(filtered.len(), 2);
        assert!(filtered.iter().all(|r| r.count >= 2));
    }

    /// A DAG time dimension (day → {week, month} → year over 12 days)
    /// plus a flat dimension: the smallest schema where iceberg filtering
    /// has to compose with a non-linear rollup.
    fn dag_schema() -> CubeSchema {
        let days = 12u32;
        let week: Vec<u32> = (0..days).map(|d| d / 2).collect();
        let month: Vec<u32> = (0..days).map(|d| d / 6).collect();
        let year: Vec<u32> = (0..days).map(|d| d / 12).collect();
        let levels = vec![
            crate::hierarchy::Level {
                name: "day".into(),
                cardinality: days,
                parents: vec![1, 2],
                leaf_map: vec![],
            },
            crate::hierarchy::Level {
                name: "week".into(),
                cardinality: 6,
                parents: vec![3],
                leaf_map: week,
            },
            crate::hierarchy::Level {
                name: "month".into(),
                cardinality: 2,
                parents: vec![3],
                leaf_map: month,
            },
            crate::hierarchy::Level {
                name: "year".into(),
                cardinality: 1,
                parents: vec![],
                leaf_map: year,
            },
        ];
        let time = Dimension::from_levels("time", levels).unwrap();
        CubeSchema::new(vec![time, Dimension::flat("C", 3)], 1).unwrap()
    }

    fn dag_tuples(n: usize, seed: u64) -> Tuples {
        let mut t = Tuples::new(2, 1);
        let mut x = seed | 1;
        for i in 0..n {
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let day = (next() % 12) as u32;
            let c = (next() % 3) as u32;
            let m = (next() % 20) as i64;
            t.push_fact(&[day, c], &[m], i as u64);
        }
        t
    }

    #[test]
    fn iceberg_on_dag_rollup_matches_bruteforce_counts() {
        // Every surviving group's count must equal an independent
        // brute-force recount through the DAG's leaf maps, and every
        // pruned group must really fall below the threshold.
        let schema = dag_schema();
        let t = dag_tuples(60, 0xDA6);
        let min_sup = 4u64;
        let coder = NodeCoder::new(&schema);
        let cube = compute_cube_iceberg(&schema, &t, min_sup);
        for id in coder.all_ids() {
            let levels = coder.decode(id).unwrap();
            let grouped: Vec<usize> = (0..2).filter(|&d| !coder.is_all(&levels, d)).collect();
            // Brute-force recount: project every tuple with value_at.
            let mut counts: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
            for i in 0..t.len() {
                let key: Vec<u32> = grouped
                    .iter()
                    .map(|&d| schema.dims()[d].value_at(levels[d], t.dim(i, d)))
                    .collect();
                *counts.entry(key).or_default() += 1;
            }
            let rows = &cube[&id];
            for r in rows {
                assert!(r.count >= min_sup, "node {id}: pruned group leaked");
                assert_eq!(counts[&r.dims], r.count, "node {id}: count mismatch");
            }
            let survivors = counts.values().filter(|&&c| c >= min_sup).count();
            assert_eq!(rows.len(), survivors, "node {id}: wrong survivor set");
        }
    }

    #[test]
    fn iceberg_dag_survivors_are_antimonotone_along_parents() {
        // BUC's pruning rule relies on count anti-monotonicity: a group
        // surviving at a child level must roll up (through *every* DAG
        // parent edge — week and month both) to a surviving parent group.
        let schema = dag_schema();
        let t = dag_tuples(80, 0x5EED);
        let min_sup = 3u64;
        let time = &schema.dims()[0];
        let coder = NodeCoder::new(&schema);
        // Node ⟨time level l, C=ALL⟩ for each hierarchy level l.
        let node_rows = |l: usize| {
            let levels = [l, coder.all_level(1)];
            iceberg_filter(&compute_node(&schema, &t, &levels), min_sup)
        };
        // child level → its DAG parents: day→{week,month}, week→year,
        // month→year (hierarchy.rs dag fixture shape).
        for (child, parents) in [(0usize, vec![1usize, 2]), (1, vec![3]), (2, vec![3])] {
            let child_rows = node_rows(child);
            for &p in &parents {
                let parent_rows = node_rows(p);
                for cr in &child_rows {
                    // Map the child value to the parent value through a
                    // representative leaf (rollup consistency guarantees
                    // any leaf in the child group gives the same parent).
                    let leaf = (0..time.leaf_cardinality())
                        .find(|&v| time.value_at(child, v) == cr.dims[0])
                        .expect("child value has a source leaf");
                    let pv = time.value_at(p, leaf);
                    let hit = parent_rows.iter().find(|r| r.dims[0] == pv);
                    let hit = hit.unwrap_or_else(|| {
                        panic!("child {child}→parent {p}: survivor {} lost", cr.dims[0])
                    });
                    assert!(hit.count >= cr.count, "parent count must dominate");
                }
            }
        }
    }

    #[test]
    fn compute_cube_iceberg_min_support_one_is_full_cube() {
        let schema = dag_schema();
        let t = dag_tuples(40, 7);
        assert_eq!(compute_cube_iceberg(&schema, &t, 1), compute_cube(&schema, &t));
    }

    #[test]
    fn pairs_projects_in_row_order() {
        let (schema, t) = figure_9_table();
        let coder = NodeCoder::new(&schema);
        let rows = compute_node(&schema, &t, &[0, coder.all_level(1), coder.all_level(2)]);
        let p = pairs(&rows);
        assert_eq!(p.len(), rows.len());
        assert_eq!(p[0], (vec![1], vec![30]));
    }
}
