//! Build-level observability: phase wall times and classification
//! counters.
//!
//! These types ride on [`crate::cube::BuildReport`] and are filled by
//! every build driver (in-memory, partitioned, parallel, durable). Two
//! invariants keep the instrumentation safe:
//!
//! * **Counters never steer the build.** They are incremented next to
//!   the writes they describe and are read only after the build
//!   finishes, so an instrumented build produces byte-identical cube
//!   relations to an uninstrumented one.
//! * **Parallel builds stay deterministic.** NT/CAT classification
//!   counters live in the *merger's* signature pool (worker pools run
//!   in recording mode and never classify), and worker-side counters
//!   (TT prunes, sort calls) are integer sums folded in partition
//!   order. Only wall-clock timers vary run to run.

/// Wall-clock seconds spent in each construction phase.
///
/// Phases overlap by design: `pass_secs` covers the whole
/// `ExecutePlan` recursion including in-line pool flushes, while
/// `sort_secs` and `flush_secs` isolate the sorting and
/// classification/write shares of that time. In parallel builds
/// `pass_secs` and `sort_secs` are summed across workers (total CPU
/// seconds, not wall time) and `merge_secs` is the single merger's
/// replay time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Partitioning the fact relation (§4 partition pass); 0 for
    /// in-memory builds.
    pub partition_secs: f64,
    /// Cubing passes: the `ExecutePlan`/`FollowEdge` recursion over
    /// every partition plus the N-relation pass.
    pub pass_secs: f64,
    /// Per-node sorting inside the recursion (counting + comparison
    /// sorts; trivial segments are excluded).
    pub sort_secs: f64,
    /// Signature-pool flushes: classifying pooled signatures as NT vs
    /// CAT and writing them out.
    pub flush_secs: f64,
    /// Merger replay of sealed worker runs (parallel builds only).
    pub merge_secs: f64,
}

/// Classification counters from the TT fast path and the signature
/// pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Sub-cubes pruned as trivial tuples (single-tuple areas written
    /// straight to the TT relation, Figure 13 line 2).
    pub tt_prunes: u64,
    /// Signatures classified as normal tuples at flush time.
    pub nt_written: u64,
    /// CAT groups written (one per `write_cat_group` call; common-source
    /// CATs count one group per distinct source row-id).
    pub cat_groups: u64,
    /// Tuples covered by those CAT groups.
    pub cat_tuples: u64,
}
