//! Distributive aggregate functions.
//!
//! CURE's observation 3 (§4) — "we can use a detailed node to construct
//! less detailed ones" — holds *for non-holistic aggregate functions*:
//! functions whose value over a union of groups is computable from the
//! per-group values. This module provides the distributive set the
//! relational cubes in the paper store (SUM being the default, COUNT via a
//! constant-1 measure being the idiom the iceberg queries use).
//!
//! Every merge site in the code base — the cubing recursion, the naive
//! oracle, roll-ups, incremental updates — merges through [`AggFn`], so
//! the whole pipeline (construction, partitioned *N*-pass re-aggregation,
//! query-time roll-up, delta merging) is consistent for any choice.
//!
//! Holistic functions (median, distinct-count) are out of scope, exactly
//! as in the paper.

/// A distributive aggregate function over `i64` measures.
///
/// ```
/// use cure_core::AggFn;
/// let mut acc = 10i64;
/// AggFn::Max.merge(&mut acc, 25);
/// assert_eq!(acc, 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggFn {
    /// Sum of the measure (the paper's default).
    #[default]
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFn {
    /// Merge another partial value into the accumulator.
    #[inline]
    pub fn merge(self, acc: &mut i64, v: i64) {
        match self {
            AggFn::Sum => *acc += v,
            AggFn::Min => *acc = (*acc).min(v),
            AggFn::Max => *acc = (*acc).max(v),
        }
    }

    /// Merge whole vectors element-wise according to per-measure functions.
    #[inline]
    pub fn merge_all(fns: &[AggFn], acc: &mut [i64], vs: &[i64]) {
        debug_assert_eq!(acc.len(), vs.len());
        debug_assert_eq!(acc.len(), fns.len());
        for ((f, a), &v) in fns.iter().zip(acc.iter_mut()).zip(vs) {
            f.merge(a, v);
        }
    }

    /// The neutral starting accumulator for this function.
    ///
    /// Only used when folding from a *neutral* start; folding that starts
    /// from the first element (as all the cubing loops do) never needs it.
    #[inline]
    pub fn identity(self) -> i64 {
        match self {
            AggFn::Sum => 0,
            AggFn::Min => i64::MAX,
            AggFn::Max => i64::MIN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_semantics() {
        let mut a = 5i64;
        AggFn::Sum.merge(&mut a, 3);
        assert_eq!(a, 8);
        let mut a = 5i64;
        AggFn::Min.merge(&mut a, 3);
        assert_eq!(a, 3);
        AggFn::Min.merge(&mut a, 9);
        assert_eq!(a, 3);
        let mut a = 5i64;
        AggFn::Max.merge(&mut a, 3);
        assert_eq!(a, 5);
        AggFn::Max.merge(&mut a, 9);
        assert_eq!(a, 9);
    }

    #[test]
    fn identities_are_neutral() {
        for f in [AggFn::Sum, AggFn::Min, AggFn::Max] {
            for v in [-100i64, 0, 7, i64::MAX / 2] {
                let mut a = f.identity();
                f.merge(&mut a, v);
                assert_eq!(a, v, "{f:?} identity must be neutral");
            }
        }
    }

    #[test]
    fn merge_all_elementwise() {
        let fns = [AggFn::Sum, AggFn::Min, AggFn::Max];
        let mut acc = [10i64, 10, 10];
        AggFn::merge_all(&fns, &mut acc, &[5, 5, 5]);
        assert_eq!(acc, [15, 5, 10]);
    }

    #[test]
    fn distributivity() {
        // Merging partials equals merging the flat stream — the property
        // observation 3 (the partitioned N-pass) depends on.
        let vals = [3i64, -7, 12, 0, 5, 5, -1];
        for f in [AggFn::Sum, AggFn::Min, AggFn::Max] {
            let mut flat = f.identity();
            for &v in &vals {
                f.merge(&mut flat, v);
            }
            let (left, right) = vals.split_at(3);
            let mut a = f.identity();
            for &v in left {
                f.merge(&mut a, v);
            }
            let mut b = f.identity();
            for &v in right {
                f.merge(&mut b, v);
            }
            f.merge(&mut a, b);
            assert_eq!(a, flat, "{f:?} must be distributive");
        }
    }
}
