//! Dimension hierarchies: linear chains and complex (DAG) hierarchies.
//!
//! A dimension stores values at its most detailed **leaf level** (level 0)
//! and defines coarser levels above it: the paper's example is
//! `City → Country → Continent`. Each level `l` carries a *rollup map*
//! `leaf id → level-l id`, so looking up a tuple's value at any granularity
//! is one array index — the operation the cubing recursion performs in its
//! innermost sort loop.
//!
//! §3.2 of the paper also allows **complex hierarchies**: a DAG of levels,
//! e.g. `day → {week, month}`, `month → year`, `week → year`. The modified
//! Rule 2 (max-cardinality tie-break) turns the DAG into a *descent tree*
//! used by the execution plan: each level is entered from exactly one
//! coarser level, chosen as its maximum-cardinality direct parent.
//!
//! Level numbering: 0 is the leaf (most detailed); larger indexes are
//! coarser. The implicit `ALL` pseudo-level has index `num_levels()` and is
//! never stored — it maps every leaf id to the single value 0.

use crate::aggfn::AggFn;
use crate::error::{CubeError, Result};

/// Index of a hierarchy level within one dimension (0 = leaf).
pub type LevelIdx = usize;

/// Metadata and rollup map of one hierarchy level.
#[derive(Debug, Clone)]
pub struct Level {
    /// Human-readable name ("month", "country", …).
    pub name: String,
    /// Number of distinct ids at this level (`ids are 0..cardinality`).
    pub cardinality: u32,
    /// Direct coarser levels this level rolls up to. Empty for the top
    /// level (its implicit parent is `ALL`).
    pub parents: Vec<LevelIdx>,
    /// `leaf_map[v]` = this level's id for leaf id `v`. For level 0 this is
    /// the identity and may be empty (treated as identity).
    pub leaf_map: Vec<u32>,
}

/// One dimension of a fact table: a validated hierarchy of levels.
#[derive(Debug, Clone)]
pub struct Dimension {
    name: String,
    levels: Vec<Level>,
    /// descent_children[l] = levels entered from `l` by a dashed edge under
    /// the modified Rule 2; the top level is entered from ALL.
    descent_children: Vec<Vec<LevelIdx>>,
    top: LevelIdx,
}

impl Dimension {
    /// Build a **linear** hierarchy from leaf cardinality and rollup maps.
    ///
    /// `maps[i]` maps level-`i` ids to level-`i+1` ids; level names are
    /// synthesized as `"{name}{i}"` following the paper's `A0 → A1 → A2`
    /// convention.
    ///
    /// ```
    /// use cure_core::Dimension;
    /// // 6 cities → 3 countries → 2 continents:
    /// let region = Dimension::linear(
    ///     "Region",
    ///     6,
    ///     &[vec![0, 0, 1, 1, 2, 2], vec![0, 0, 1]],
    /// ).unwrap();
    /// assert_eq!(region.num_levels(), 3);
    /// assert_eq!(region.value_at(1, 4), 2); // city 4 → country 2
    /// assert_eq!(region.value_at(2, 4), 1); // city 4 → continent 1
    /// assert!(region.is_linear());
    /// ```
    pub fn linear(
        name: impl Into<String>,
        leaf_cardinality: u32,
        maps: &[Vec<u32>],
    ) -> Result<Self> {
        let name = name.into();
        let mut levels = Vec::with_capacity(maps.len() + 1);
        levels.push(Level {
            name: format!("{name}0"),
            cardinality: leaf_cardinality,
            parents: if maps.is_empty() { vec![] } else { vec![1] },
            leaf_map: Vec::new(),
        });
        // Compose leaf→level maps going up.
        let mut prev_leaf_map: Option<Vec<u32>> = None;
        for (i, step) in maps.iter().enumerate() {
            let child_card = levels[i].cardinality;
            if step.len() != child_card as usize {
                return Err(CubeError::Hierarchy(format!(
                    "dimension {name}: rollup map {i} has {} entries for cardinality {child_card}",
                    step.len()
                )));
            }
            let cardinality = step.iter().copied().max().map_or(0, |m| m + 1);
            let leaf_map: Vec<u32> = match &prev_leaf_map {
                None => step.clone(),
                Some(pm) => pm.iter().map(|&v| step[v as usize]).collect(),
            };
            let is_top = i + 1 == maps.len();
            levels.push(Level {
                name: format!("{name}{}", i + 1),
                cardinality,
                parents: if is_top { vec![] } else { vec![i + 2] },
                leaf_map: leaf_map.clone(),
            });
            prev_leaf_map = Some(leaf_map);
        }
        Self::from_levels(name, levels)
    }

    /// A flat dimension: a single leaf level, no hierarchy.
    pub fn flat(name: impl Into<String>, cardinality: u32) -> Self {
        Self::linear(name, cardinality, &[]).expect("flat dimension is always valid")
    }

    /// Build a dimension from explicit levels (the general, possibly
    /// complex-hierarchy constructor). Validates:
    ///
    /// * level 0 has no children below it and an identity/empty leaf map,
    /// * parent indexes are coarser (`> own index`) and acyclic by
    ///   construction,
    /// * exactly one top level (no parents) exists,
    /// * every rollup is *consistent*: equal level-`c` ids imply equal
    ///   level-`p` ids for every DAG edge `c → p`,
    /// * cardinalities match the ranges of the leaf maps.
    pub fn from_levels(name: impl Into<String>, levels: Vec<Level>) -> Result<Self> {
        let name = name.into();
        if levels.is_empty() {
            return Err(CubeError::Hierarchy(format!("dimension {name}: no levels")));
        }
        let n = levels.len();
        for (i, lv) in levels.iter().enumerate() {
            for &p in &lv.parents {
                if p <= i || p >= n {
                    return Err(CubeError::Hierarchy(format!(
                        "dimension {name}: level {i} has invalid parent {p}"
                    )));
                }
            }
            if i > 0 && lv.leaf_map.len() != levels[0].cardinality as usize {
                return Err(CubeError::Hierarchy(format!(
                    "dimension {name}: level {i} leaf map has {} entries, leaf cardinality is {}",
                    lv.leaf_map.len(),
                    levels[0].cardinality
                )));
            }
            if i > 0 {
                if let Some(&max) = lv.leaf_map.iter().max() {
                    if max >= lv.cardinality {
                        return Err(CubeError::Hierarchy(format!(
                            "dimension {name}: level {i} map value {max} exceeds cardinality {}",
                            lv.cardinality
                        )));
                    }
                }
            }
        }
        let tops: Vec<LevelIdx> = (0..n).filter(|&i| levels[i].parents.is_empty()).collect();
        if tops.len() != 1 {
            return Err(CubeError::Hierarchy(format!(
                "dimension {name}: expected exactly one top level, found {}: {tops:?}",
                tops.len()
            )));
        }
        let top = tops[0];
        // Consistency of every DAG edge: equal child ids ⇒ equal parent ids.
        for (c, lv) in levels.iter().enumerate() {
            for &p in &lv.parents {
                let leaf_card = levels[0].cardinality as usize;
                let mut child_to_parent: Vec<Option<u32>> =
                    vec![None; levels[c].cardinality as usize];
                for leaf in 0..leaf_card {
                    let cid = level_value(&levels, c, leaf as u32) as usize;
                    let pid = level_value(&levels, p, leaf as u32);
                    match child_to_parent[cid] {
                        None => child_to_parent[cid] = Some(pid),
                        Some(existing) if existing != pid => {
                            return Err(CubeError::Hierarchy(format!(
                                "dimension {name}: inconsistent rollup {c}→{p}: child id {cid} maps to both {existing} and {pid}"
                            )));
                        }
                        _ => {}
                    }
                }
            }
        }
        // Modified Rule 2 (§3.2): each non-top level is entered from its
        // maximum-cardinality direct parent (ties broken toward the lower
        // level index for determinism); the top level is entered from ALL.
        let mut descent_children: Vec<Vec<LevelIdx>> = vec![Vec::new(); n];
        for (c, lv) in levels.iter().enumerate() {
            if c == top {
                continue;
            }
            if lv.parents.is_empty() {
                continue; // unreachable: single-top validated above
            }
            let chosen = *lv
                .parents
                .iter()
                .max_by_key(|&&p| (levels[p].cardinality, std::cmp::Reverse(p)))
                .expect("non-empty parents");
            descent_children[chosen].push(c);
        }
        for ch in &mut descent_children {
            ch.sort_unstable();
        }
        Ok(Dimension { name, levels, descent_children, top })
    }

    /// Dimension name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of real levels (excluding the implicit ALL).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The levels, leaf first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Index of the (unique) top level — the level entered from ALL.
    pub fn top_level(&self) -> LevelIdx {
        self.top
    }

    /// Cardinality of level `l`.
    pub fn cardinality(&self, l: LevelIdx) -> u32 {
        self.levels[l].cardinality
    }

    /// Leaf cardinality (level 0).
    pub fn leaf_cardinality(&self) -> u32 {
        self.levels[0].cardinality
    }

    /// Map a leaf id to its id at level `l` (O(1)).
    #[inline]
    pub fn value_at(&self, l: LevelIdx, leaf: u32) -> u32 {
        level_value(&self.levels, l, leaf)
    }

    /// Levels entered from level `l` by dashed edges in the execution plan
    /// (modified Rule 2). For a linear hierarchy this is `[l-1]` (or empty
    /// at the leaf).
    pub fn descent_children(&self, l: LevelIdx) -> &[LevelIdx] {
        &self.descent_children[l]
    }

    /// Whether the hierarchy is a simple chain (every level has exactly one
    /// parent and one descent child, except the ends).
    pub fn is_linear(&self) -> bool {
        self.levels.iter().enumerate().all(|(i, lv)| {
            (i == self.top || lv.parents.len() == 1) && self.descent_children[i].len() <= 1
        }) && {
            // A chain also requires the descent tree to be a path from top
            // to leaf.
            let mut cur = self.top;
            let mut seen = 1;
            while let Some(&next) = self.descent_children[cur].first() {
                cur = next;
                seen += 1;
            }
            seen == self.levels.len() && cur == 0
        }
    }
}

#[inline]
fn level_value(levels: &[Level], l: LevelIdx, leaf: u32) -> u32 {
    if l == 0 || levels[l].leaf_map.is_empty() {
        // Level 0 maps are identity; an empty non-leaf map only occurs for
        // level 0 by validation.
        leaf
    } else {
        levels[l].leaf_map[leaf as usize]
    }
}

/// A full cube schema: the ordered dimensions plus the number of measures.
///
/// The paper orders dimensions by decreasing (leaf) cardinality — BUC's
/// classic heuristic, which §4 notes also improves the feasibility of
/// CURE's partitioning. [`CubeSchema::sorted_by_cardinality`] applies it.
#[derive(Debug, Clone)]
pub struct CubeSchema {
    dims: Vec<Dimension>,
    n_measures: usize,
    agg_fns: Vec<AggFn>,
}

impl CubeSchema {
    /// Create a schema; requires at least one dimension. Every measure
    /// aggregates with [`AggFn::Sum`] (the paper's setting); see
    /// [`with_agg_fns`](Self::with_agg_fns) for Min/Max measures.
    pub fn new(dims: Vec<Dimension>, n_measures: usize) -> Result<Self> {
        if dims.is_empty() {
            return Err(CubeError::Schema("a cube needs at least one dimension".into()));
        }
        Ok(CubeSchema { dims, n_measures, agg_fns: vec![AggFn::Sum; n_measures] })
    }

    /// Replace the per-measure aggregate functions (must match the measure
    /// count). All functions are distributive, so every pipeline stage —
    /// construction, the partitioned *N*-pass, roll-ups, incremental
    /// updates — remains exact.
    pub fn with_agg_fns(mut self, fns: Vec<AggFn>) -> Result<Self> {
        if fns.len() != self.n_measures {
            return Err(CubeError::Schema(format!(
                "{} aggregate functions for {} measures",
                fns.len(),
                self.n_measures
            )));
        }
        self.agg_fns = fns;
        Ok(self)
    }

    /// Per-measure aggregate functions.
    pub fn agg_fns(&self) -> &[AggFn] {
        &self.agg_fns
    }

    /// Reorder dimensions by decreasing leaf cardinality (BUC heuristic).
    /// Returns the permutation applied (new position → old position).
    pub fn sorted_by_cardinality(
        dims: Vec<Dimension>,
        n_measures: usize,
    ) -> Result<(Self, Vec<usize>)> {
        let mut order: Vec<usize> = (0..dims.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(dims[i].leaf_cardinality()));
        let mut slots: Vec<Option<Dimension>> = dims.into_iter().map(Some).collect();
        let sorted: Vec<Dimension> =
            order.iter().map(|&i| slots[i].take().expect("permutation visits once")).collect();
        Ok((Self::new(sorted, n_measures)?, order))
    }

    /// The dimensions, in cube order.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// Number of dimensions `D`.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of measures `Y`.
    pub fn num_measures(&self) -> usize {
        self.n_measures
    }

    /// Total number of nodes in the hierarchical cube lattice:
    /// `∏ (L_i + 1)` (§3 of the paper; `L_i` excludes ALL).
    pub fn num_lattice_nodes(&self) -> u64 {
        self.dims.iter().map(|d| d.num_levels() as u64 + 1).product()
    }

    /// A copy of this schema with every hierarchy truncated to its leaf
    /// level — the "flat cube over hierarchical data" setting of the
    /// FCURE experiments (Figures 26–28).
    pub fn flattened(&self) -> CubeSchema {
        let dims = self
            .dims
            .iter()
            .map(|d| Dimension::flat(d.name().to_string(), d.leaf_cardinality()))
            .collect();
        CubeSchema { dims, n_measures: self.n_measures, agg_fns: self.agg_fns.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: A0→A1→A2, B0→B1, C0 (§3).
    pub(crate) fn paper_example_schema() -> CubeSchema {
        // Cardinalities chosen small but decreasing up the hierarchy.
        let a =
            Dimension::linear("A", 8, &[vec![0, 0, 1, 1, 2, 2, 3, 3], vec![0, 0, 1, 1]]).unwrap();
        let b = Dimension::linear("B", 6, &[vec![0, 0, 0, 1, 1, 1]]).unwrap();
        let c = Dimension::flat("C", 4);
        CubeSchema::new(vec![a, b, c], 1).unwrap()
    }

    #[test]
    fn linear_level_counts() {
        let s = paper_example_schema();
        assert_eq!(s.dims()[0].num_levels(), 3);
        assert_eq!(s.dims()[1].num_levels(), 2);
        assert_eq!(s.dims()[2].num_levels(), 1);
        // (3+1)(2+1)(1+1) = 24 nodes — the paper's example count.
        assert_eq!(s.num_lattice_nodes(), 24);
    }

    #[test]
    fn rollup_composition() {
        let s = paper_example_schema();
        let a = &s.dims()[0];
        // leaf 5 → A1 id 2 → A2 id 1.
        assert_eq!(a.value_at(0, 5), 5);
        assert_eq!(a.value_at(1, 5), 2);
        assert_eq!(a.value_at(2, 5), 1);
        assert_eq!(a.cardinality(0), 8);
        assert_eq!(a.cardinality(1), 4);
        assert_eq!(a.cardinality(2), 2);
    }

    #[test]
    fn linear_descent_is_a_chain() {
        let s = paper_example_schema();
        let a = &s.dims()[0];
        assert!(a.is_linear());
        assert_eq!(a.top_level(), 2);
        assert_eq!(a.descent_children(2), &[1]);
        assert_eq!(a.descent_children(1), &[0]);
        assert_eq!(a.descent_children(0), &[] as &[usize]);
    }

    #[test]
    fn bad_map_length_rejected() {
        let r = Dimension::linear("X", 4, &[vec![0, 0]]); // 2 entries for card 4
        assert!(r.is_err());
    }

    #[test]
    fn inconsistent_rollup_rejected() {
        // day→week and day→month→year with a month→year edge implied by
        // levels, but construct a direct inconsistency: leaf ids 0,1 share a
        // child id at level 1 but map to different ids at its parent level 2.
        let levels = vec![
            Level { name: "leaf".into(), cardinality: 2, parents: vec![1], leaf_map: vec![] },
            Level { name: "mid".into(), cardinality: 1, parents: vec![2], leaf_map: vec![0, 0] },
            Level { name: "top".into(), cardinality: 2, parents: vec![], leaf_map: vec![0, 1] },
        ];
        let r = Dimension::from_levels("bad", levels);
        assert!(r.is_err(), "shared mid id with diverging top ids must be rejected");
    }

    #[test]
    fn multiple_tops_rejected() {
        let levels = vec![
            Level { name: "leaf".into(), cardinality: 2, parents: vec![1, 2], leaf_map: vec![] },
            Level { name: "t1".into(), cardinality: 2, parents: vec![], leaf_map: vec![0, 1] },
            Level { name: "t2".into(), cardinality: 2, parents: vec![], leaf_map: vec![0, 1] },
        ];
        assert!(Dimension::from_levels("twotops", levels).is_err());
    }

    /// The paper's Figure 5 time hierarchy: day → {week, month}, both →
    /// year. Week has higher cardinality than month, so the descent tree
    /// must route day under week (month→day edge discarded).
    pub(crate) fn time_dimension() -> Dimension {
        // 24 "days": day d belongs to week d/2 (12 weeks), month d/6
        // (4 months), year d/12 (2 years).
        let days = 24u32;
        let week: Vec<u32> = (0..days).map(|d| d / 2).collect();
        let month: Vec<u32> = (0..days).map(|d| d / 6).collect();
        let year: Vec<u32> = (0..days).map(|d| d / 12).collect();
        let levels = vec![
            Level { name: "day".into(), cardinality: days, parents: vec![1, 2], leaf_map: vec![] },
            Level { name: "week".into(), cardinality: 12, parents: vec![3], leaf_map: week },
            Level { name: "month".into(), cardinality: 4, parents: vec![3], leaf_map: month },
            Level { name: "year".into(), cardinality: 2, parents: vec![], leaf_map: year },
        ];
        Dimension::from_levels("time", levels).unwrap()
    }

    #[test]
    fn complex_hierarchy_descent_tree_matches_figure_5() {
        let t = time_dimension();
        assert!(!t.is_linear());
        assert_eq!(t.top_level(), 3); // year
                                      // year → {week, month}; week → day (max-cardinality rule);
                                      // month gets no children.
        assert_eq!(t.descent_children(3), &[1, 2]);
        assert_eq!(t.descent_children(1), &[0]);
        assert_eq!(t.descent_children(2), &[] as &[usize]);
    }

    #[test]
    fn complex_descent_covers_every_level_once() {
        let t = time_dimension();
        let mut seen = vec![false; t.num_levels()];
        let mut stack = vec![t.top_level()];
        while let Some(l) = stack.pop() {
            assert!(!seen[l], "level {l} reached twice — plan is not a tree");
            seen[l] = true;
            stack.extend_from_slice(t.descent_children(l));
        }
        assert!(seen.iter().all(|&s| s), "every level must be reachable");
    }

    #[test]
    fn flattened_schema_keeps_leaf_cardinalities() {
        let s = paper_example_schema();
        let f = s.flattened();
        assert_eq!(f.num_lattice_nodes(), 8); // 2^3 flat nodes
        assert_eq!(f.dims()[0].leaf_cardinality(), 8);
        assert_eq!(f.dims()[0].num_levels(), 1);
    }

    #[test]
    fn cardinality_ordering_heuristic() {
        let d1 = Dimension::flat("small", 3);
        let d2 = Dimension::flat("big", 100);
        let (s, order) = CubeSchema::sorted_by_cardinality(vec![d1, d2], 1).unwrap();
        assert_eq!(s.dims()[0].name(), "big");
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(CubeSchema::new(vec![], 1).is_err());
    }
}
