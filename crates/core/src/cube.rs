//! The CURE construction algorithm (Figure 13 of the paper).
//!
//! This module implements the in-memory heart of CURE: the mutually
//! recursive `ExecutePlan` / `FollowEdge` pair that traverses execution
//! plan **P3** bottom-up and depth-first, sharing every sort with as many
//! nodes as possible:
//!
//! * `execute_plan(input, dim)` — emits the aggregate of `input` for the
//!   current node. A total represented count of 1 is a **trivial tuple**:
//!   it is written immediately to the current node (the least detailed one
//!   it belongs to) and recursion is *pruned* — its projections in every
//!   more detailed node of the plan subtree are implied (§5.2). Otherwise
//!   a signature enters the [`SignaturePool`] for deferred NT/CAT
//!   classification, and the recursion follows all solid edges and then
//!   the dashed edge(s).
//! * `follow_edge(input, d)` — re-sorts the current segment by dimension
//!   `d` at its current hierarchy level and recurses into each equal-value
//!   run.
//!
//! Iceberg cubes (`min_support > 1`) prune any segment whose represented
//! count is below the threshold, exactly like BUC.
//!
//! The out-of-core driver (`Algorithm CURE` lines 9–21) lives in
//! [`crate::partition`]; it reuses the internal `Exec` state for the per-partition and
//! *N*-relation passes.

// A worker panic would poison the parallel build pool, so the build path
// must return typed errors instead of panicking (clippy.toml exempts the
// test modules).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::{CubeError, Result};
use crate::hierarchy::{CubeSchema, LevelIdx};
use crate::lattice::NodeCoder;
use crate::signature::SignaturePool;
use crate::sink::{CatFormatPolicy, CubeSink, SinkStats};
use crate::sorter::{SortPolicy, Sorter};
use crate::stats::{PhaseTimes, PoolCounters};
use crate::tuples::Tuples;

/// Construction parameters.
#[derive(Debug, Clone)]
pub struct CubeConfig {
    /// Memory budget in bytes: inputs estimated to exceed it are
    /// partitioned (§4). The paper's headline run used 256 MB.
    pub memory_budget_bytes: usize,
    /// Signature-pool capacity in signatures (the Figure 18 knob; the
    /// paper found 1,000,000 sufficient).
    pub pool_capacity: usize,
    /// Iceberg minimum support; 1 builds the complete cube.
    pub min_support: u64,
    /// CAT storage-format policy (§5.1).
    pub cat_policy: CatFormatPolicy,
    /// Segment-sorting policy (counting sort vs comparison sort).
    pub sort_policy: SortPolicy,
}

impl Default for CubeConfig {
    fn default() -> Self {
        CubeConfig {
            memory_budget_bytes: 256 << 20,
            pool_capacity: 1_000_000,
            min_support: 1,
            cat_policy: CatFormatPolicy::Auto,
            sort_policy: SortPolicy::Auto,
        }
    }
}

/// What a finished build reports back.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Storage statistics from the sink.
    pub stats: SinkStats,
    /// Signature-pool flushes performed.
    pub pool_flushes: u64,
    /// Signatures (non-trivial aggregates) produced.
    pub signatures: u64,
    /// Counting-sort invocations.
    pub counting_sorts: u64,
    /// Comparison-sort invocations.
    pub comparison_sorts: u64,
    /// Wall-clock phase breakdown.
    pub phases: PhaseTimes,
    /// TT-prune and NT/CAT classification counters.
    pub pool: PoolCounters,
    /// Present when the build was partitioned (§4).
    pub partition: Option<crate::partition::PartitionReport>,
}

/// In-memory cube builder.
pub struct CubeBuilder<'a> {
    schema: &'a CubeSchema,
    cfg: CubeConfig,
}

impl<'a> CubeBuilder<'a> {
    /// Create a builder for `schema` with `cfg`.
    pub fn new(schema: &'a CubeSchema, cfg: CubeConfig) -> Self {
        CubeBuilder { schema, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CubeConfig {
        &self.cfg
    }

    /// Build the complete (or iceberg) cube of an in-memory tuple set,
    /// writing classified tuples to `sink`.
    pub fn build_in_memory(&self, t: &Tuples, sink: &mut dyn CubeSink) -> Result<BuildReport> {
        if t.n_dims() != self.schema.num_dims() || t.n_measures() != self.schema.num_measures() {
            return Err(CubeError::Schema(format!(
                "tuple shape ({}, {}) does not match schema ({}, {})",
                t.n_dims(),
                t.n_measures(),
                self.schema.num_dims(),
                self.schema.num_measures()
            )));
        }
        let coder = NodeCoder::new(self.schema);
        let mut pool = SignaturePool::new(
            self.schema.num_measures(),
            self.cfg.pool_capacity,
            self.cfg.cat_policy,
        );
        let mut exec =
            Exec::new(self.schema, &coder, t, self.cfg.min_support, self.cfg.sort_policy);
        let t0 = std::time::Instant::now();
        exec.run_full(&mut pool, sink)?;
        pool.flush(sink)?;
        let pass_secs = t0.elapsed().as_secs_f64();
        let stats = sink.finish()?;
        Ok(BuildReport {
            stats,
            pool_flushes: pool.flushes(),
            signatures: pool.total_signatures(),
            counting_sorts: exec.sorter.counting_calls(),
            comparison_sorts: exec.sorter.comparison_calls(),
            phases: PhaseTimes {
                partition_secs: 0.0,
                pass_secs,
                sort_secs: exec.sorter.sort_secs(),
                flush_secs: pool.write_secs(),
                merge_secs: 0.0,
            },
            pool: PoolCounters {
                tt_prunes: exec.tt_prunes,
                nt_written: pool.nt_written(),
                cat_groups: pool.cat_groups(),
                cat_tuples: pool.cat_tuples(),
            },
            partition: None,
        })
    }
}

/// The recursion state shared by the in-memory and partitioned drivers.
pub(crate) struct Exec<'a> {
    schema: &'a CubeSchema,
    coder: &'a NodeCoder,
    t: &'a Tuples,
    /// Current hierarchy level per dimension.
    levels: Vec<LevelIdx>,
    /// Which dimensions are grouped in the current recursion state.
    grouped: Vec<bool>,
    /// Dimension 0 never descends below this level (partitioned *N*-pass).
    base0: LevelIdx,
    /// Skip dimension 0 entirely (*N*-pass when `L` was the top level and
    /// dimension 0 is projected out of *N*).
    skip_dim0: bool,
    min_support: u64,
    pub(crate) sorter: Sorter,
    /// Sub-cubes pruned via the trivial-tuple fast path (Figure 13
    /// lines 1–4); one increment per `write_tt`.
    pub(crate) tt_prunes: u64,
    agg_scratch: Vec<i64>,
    node_scratch: Vec<LevelIdx>,
}

impl<'a> Exec<'a> {
    pub(crate) fn new(
        schema: &'a CubeSchema,
        coder: &'a NodeCoder,
        t: &'a Tuples,
        min_support: u64,
        sort_policy: SortPolicy,
    ) -> Self {
        let d = schema.num_dims();
        Exec {
            schema,
            coder,
            t,
            levels: schema.dims().iter().map(|dm| dm.top_level()).collect(),
            grouped: vec![false; d],
            base0: 0,
            skip_dim0: false,
            min_support,
            sorter: Sorter::new(sort_policy),
            tt_prunes: 0,
            agg_scratch: vec![0i64; schema.num_measures()],
            node_scratch: vec![0; d],
        }
    }

    /// Configure for the partitioned *N*-pass: dimension 0 enters at its
    /// top level but never descends below `base0 = L+1`; when `L` was the
    /// top level dimension 0 is skipped entirely.
    pub(crate) fn restrict_dim0(&mut self, base0: LevelIdx, skip_dim0: bool) {
        self.base0 = base0;
        self.skip_dim0 = skip_dim0;
    }

    /// Set dimension 0's entry level to `l` (the per-partition passes of
    /// the out-of-core driver enter at the partitioning level `L`).
    pub(crate) fn set_dim0_level(&mut self, l: LevelIdx) {
        self.levels[0] = l;
    }

    /// Run the full plan from the root: `ExecutePlan(input, 0, levels)`.
    pub(crate) fn run_full(
        &mut self,
        pool: &mut SignaturePool,
        sink: &mut dyn CubeSink,
    ) -> Result<()> {
        let mut idx: Vec<u32> = (0..self.t.len() as u32).collect();
        self.execute_plan(&mut idx, 0, pool, sink)
    }

    /// Run a partition pass: `FollowEdge(partition, 0, levels)` with
    /// `levels[0]` already set to the partitioning level `L`.
    pub(crate) fn run_partition_pass(
        &mut self,
        pool: &mut SignaturePool,
        sink: &mut dyn CubeSink,
    ) -> Result<()> {
        let mut idx: Vec<u32> = (0..self.t.len() as u32).collect();
        self.follow_edge(&mut idx, 0, pool, sink)
    }

    fn current_node(&mut self) -> u64 {
        for d in 0..self.schema.num_dims() {
            self.node_scratch[d] =
                if self.grouped[d] { self.levels[d] } else { self.coder.all_level(d) };
        }
        self.coder.encode(&self.node_scratch)
    }

    /// `ExecutePlan` of Figure 13.
    fn execute_plan(
        &mut self,
        idx: &mut [u32],
        dim: usize,
        pool: &mut SignaturePool,
        sink: &mut dyn CubeSink,
    ) -> Result<()> {
        // Aggregate the input in one pass: sums, total represented count,
        // minimum row-id.
        let y = self.agg_scratch.len();
        let fns = self.schema.agg_fns();
        for (a, f) in self.agg_scratch.iter_mut().zip(fns) {
            *a = f.identity();
        }
        let mut total: u64 = 0;
        let mut min_rowid = u64::MAX;
        for &u in idx.iter() {
            let u = u as usize;
            crate::aggfn::AggFn::merge_all(fns, &mut self.agg_scratch, self.t.aggs_of(u));
            total += self.t.count(u);
            min_rowid = min_rowid.min(self.t.rowid(u));
        }
        debug_assert_eq!(self.t.n_measures(), y);
        // Iceberg pruning (BUC semantics): groups below the support
        // threshold produce nothing, and neither do their refinements.
        if total < self.min_support {
            return Ok(());
        }
        let node = self.current_node();
        if total == 1 {
            // Trivial tuple: store once in the least detailed node and
            // prune the subtree (lines 1–4).
            self.tt_prunes += 1;
            sink.write_tt(node, min_rowid)?;
            return Ok(());
        }
        // Lines 5–7: aggregate → signature (pool flushes itself when full).
        let aggs = std::mem::take(&mut self.agg_scratch);
        pool.push(sink, &aggs, min_rowid, node)?;
        self.agg_scratch = aggs;

        // Lines 8–10: solid edges.
        let first = if self.skip_dim0 { dim.max(1) } else { dim };
        for d in first..self.schema.num_dims() {
            self.follow_edge(idx, d, pool, sink)?;
        }
        // Lines 11–15: dashed edge(s) — generalized to the descent tree so
        // complex hierarchies are covered (§3.2, modified Rule 2).
        if dim >= 1 {
            let d = dim - 1;
            debug_assert!(self.grouped[d], "dashed edge descends the last-grouped dimension");
            let cur = self.levels[d];
            let base = if d == 0 { self.base0 } else { 0 };
            // `schema` is a copy of the `&'a CubeSchema` reference, so the
            // children slice does not borrow `self` across the recursion.
            let schema: &'a CubeSchema = self.schema;
            let children = schema.dims()[d].descent_children(cur);
            for &c in children {
                if c < base {
                    continue;
                }
                self.levels[d] = c;
                self.follow_edge(idx, d, pool, sink)?;
                self.levels[d] = cur;
            }
        }
        Ok(())
    }

    /// `FollowEdge` of Figure 13: sort by dimension `d` at its current
    /// level, then recurse into each equal-value segment.
    fn follow_edge(
        &mut self,
        idx: &mut [u32],
        d: usize,
        pool: &mut SignaturePool,
        sink: &mut dyn CubeSink,
    ) -> Result<()> {
        let lv = self.levels[d];
        let schema: &'a CubeSchema = self.schema;
        let dim = &schema.dims()[d];
        let card = dim.cardinality(lv);
        let t = self.t;
        self.sorter.sort_by_key(idx, card, |u| dim.value_at(lv, t.dim(u as usize, d)));
        // Dashed edges re-enter follow_edge for an already-grouped
        // dimension; save and restore the flag rather than clearing it.
        let was_grouped = self.grouped[d];
        self.grouped[d] = true;
        let mut s = 0usize;
        while s < idx.len() {
            let k = dim.value_at(lv, t.dim(idx[s] as usize, d));
            let mut e = s + 1;
            while e < idx.len() && dim.value_at(lv, t.dim(idx[e] as usize, d)) == k {
                e += 1;
            }
            self.execute_plan(&mut idx[s..e], d + 1, pool, sink)?;
            s = e;
        }
        self.grouped[d] = was_grouped;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Dimension;
    use crate::reader::MemCubeReader;
    use crate::reference;
    use crate::sink::MemSink;

    fn flat_schema(cards: &[u32], y: usize) -> CubeSchema {
        let dims =
            cards.iter().enumerate().map(|(i, &c)| Dimension::flat(format!("d{i}"), c)).collect();
        CubeSchema::new(dims, y).unwrap()
    }

    fn pseudo_random_tuples(schema: &CubeSchema, n: usize, seed: u64) -> Tuples {
        let d = schema.num_dims();
        let y = schema.num_measures();
        let mut t = Tuples::new(d, y);
        let mut x = seed | 1;
        let mut dims = vec![0u32; d];
        let mut aggs = vec![0i64; y];
        for i in 0..n {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
            }
            for a in aggs.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *a = (x % 100) as i64;
            }
            t.push_fact(&dims, &aggs, i as u64);
        }
        t
    }

    /// Build with CURE into a MemSink, reconstruct every node through the
    /// reader, and compare against the naive oracle.
    fn assert_matches_oracle(schema: &CubeSchema, t: &Tuples, cfg: CubeConfig) {
        let builder = CubeBuilder::new(schema, cfg);
        let mut sink = MemSink::new(schema.num_measures());
        builder.build_in_memory(t, &mut sink).expect("build");
        let reader = MemCubeReader::new(schema, &sink, t, None).expect("reader");
        let oracle = reference::compute_cube(schema, t);
        let coder = NodeCoder::new(schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).expect("reconstruct");
            got.sort();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                oracle[&id].iter().map(|r| (r.dims.clone(), r.aggs.clone())).collect();
            assert_eq!(got, want, "node {} ({})", id, coder.name(schema, id));
        }
    }

    #[test]
    fn figure_9_flat_cube_matches_oracle() {
        let (schema, t) = reference::tests::figure_9_table();
        assert_matches_oracle(&schema, &t, CubeConfig::default());
    }

    #[test]
    fn random_flat_cube_matches_oracle() {
        let schema = flat_schema(&[7, 5, 3], 2);
        let t = pseudo_random_tuples(&schema, 500, 42);
        assert_matches_oracle(&schema, &t, CubeConfig::default());
    }

    #[test]
    fn hierarchical_cube_matches_oracle() {
        let a = Dimension::linear("A", 12, &[(0..12).map(|v| v / 3).collect(), vec![0, 0, 1, 1]])
            .unwrap();
        let b = Dimension::linear("B", 8, &[(0..8).map(|v| v / 4).collect()]).unwrap();
        let c = Dimension::flat("C", 5);
        let schema = CubeSchema::new(vec![a, b, c], 2).unwrap();
        let t = pseudo_random_tuples(&schema, 400, 7);
        assert_matches_oracle(&schema, &t, CubeConfig::default());
    }

    #[test]
    fn complex_hierarchy_cube_matches_oracle() {
        use crate::hierarchy::Level;
        let days = 24u32;
        let time = Dimension::from_levels(
            "time",
            vec![
                Level {
                    name: "day".into(),
                    cardinality: days,
                    parents: vec![1, 2],
                    leaf_map: vec![],
                },
                Level {
                    name: "week".into(),
                    cardinality: 12,
                    parents: vec![3],
                    leaf_map: (0..days).map(|d| d / 2).collect(),
                },
                Level {
                    name: "month".into(),
                    cardinality: 4,
                    parents: vec![3],
                    leaf_map: (0..days).map(|d| d / 6).collect(),
                },
                Level {
                    name: "year".into(),
                    cardinality: 2,
                    parents: vec![],
                    leaf_map: (0..days).map(|d| d / 12).collect(),
                },
            ],
        )
        .unwrap();
        let product = Dimension::linear("P", 10, &[(0..10).map(|v| v / 5).collect()]).unwrap();
        let schema = CubeSchema::new(vec![product, time], 1).unwrap();
        let t = pseudo_random_tuples(&schema, 300, 99);
        assert_matches_oracle(&schema, &t, CubeConfig::default());
    }

    #[test]
    fn min_max_aggregates_match_oracle() {
        use crate::aggfn::AggFn;
        let a = Dimension::linear("A", 12, &[(0..12).map(|v| v / 3).collect()]).unwrap();
        let b = Dimension::flat("B", 5);
        let schema = CubeSchema::new(vec![a, b], 3)
            .unwrap()
            .with_agg_fns(vec![AggFn::Sum, AggFn::Min, AggFn::Max])
            .unwrap();
        let t = pseudo_random_tuples(&schema, 400, 51);
        assert_matches_oracle(&schema, &t, CubeConfig::default());
    }

    #[test]
    fn min_max_rollup_consistency() {
        use crate::aggfn::AggFn;
        // The MAX at a coarse level equals the max of the fine-level MAXes
        // (distributivity through the hierarchy).
        let a = Dimension::linear("A", 8, &[vec![0, 0, 0, 0, 1, 1, 1, 1]]).unwrap();
        let schema = CubeSchema::new(vec![a], 1).unwrap().with_agg_fns(vec![AggFn::Max]).unwrap();
        let t = pseudo_random_tuples(&schema, 200, 3);
        let fine = crate::reference::compute_node(&schema, &t, &[0]);
        let coarse = crate::reference::compute_node(&schema, &t, &[1]);
        for c in &coarse {
            let expect = fine
                .iter()
                .filter(|f| f.dims[0] / 4 == c.dims[0])
                .map(|f| f.aggs[0])
                .max()
                .unwrap();
            assert_eq!(c.aggs[0], expect);
        }
    }

    #[test]
    fn mismatched_agg_fn_count_rejected() {
        use crate::aggfn::AggFn;
        let schema = CubeSchema::new(vec![Dimension::flat("A", 4)], 2).unwrap();
        assert!(schema.with_agg_fns(vec![AggFn::Sum]).is_err());
    }

    #[test]
    fn tiny_pool_still_correct() {
        let schema = flat_schema(&[5, 4], 1);
        let t = pseudo_random_tuples(&schema, 300, 3);
        assert_matches_oracle(
            &schema,
            &t,
            CubeConfig { pool_capacity: 3, ..CubeConfig::default() },
        );
    }

    #[test]
    fn zero_pool_still_correct() {
        let schema = flat_schema(&[5, 4], 1);
        let t = pseudo_random_tuples(&schema, 200, 5);
        assert_matches_oracle(
            &schema,
            &t,
            CubeConfig { pool_capacity: 0, ..CubeConfig::default() },
        );
    }

    #[test]
    fn forced_comparison_sort_still_correct() {
        let schema = flat_schema(&[6, 6], 1);
        let t = pseudo_random_tuples(&schema, 250, 11);
        assert_matches_oracle(
            &schema,
            &t,
            CubeConfig { sort_policy: SortPolicy::ForceComparison, ..CubeConfig::default() },
        );
    }

    #[test]
    fn single_tuple_input_is_one_tt() {
        let schema = flat_schema(&[4, 4], 1);
        let mut t = Tuples::new(2, 1);
        t.push_fact(&[1, 2], &[5], 0);
        let builder = CubeBuilder::new(&schema, CubeConfig::default());
        let mut sink = MemSink::new(1);
        let report = builder.build_in_memory(&t, &mut sink).unwrap();
        // The sole tuple is trivial at the ∅ node; nothing else is stored.
        assert_eq!(report.stats.tt_tuples, 1);
        assert_eq!(report.stats.nt_tuples + report.stats.cat_tuples, 0);
        let coder = NodeCoder::new(&schema);
        assert_eq!(sink.tts[&coder.empty_node()], vec![0]);
    }

    #[test]
    fn empty_input_builds_empty_cube() {
        let schema = flat_schema(&[4], 1);
        let t = Tuples::new(1, 1);
        let builder = CubeBuilder::new(&schema, CubeConfig::default());
        let mut sink = MemSink::new(1);
        let report = builder.build_in_memory(&t, &mut sink).unwrap();
        assert_eq!(report.stats.total_tuples(), 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let schema = flat_schema(&[4], 1);
        let t = Tuples::new(2, 1);
        let builder = CubeBuilder::new(&schema, CubeConfig::default());
        let mut sink = MemSink::new(1);
        assert!(builder.build_in_memory(&t, &mut sink).is_err());
    }

    #[test]
    fn iceberg_cube_matches_filtered_oracle() {
        let schema = flat_schema(&[4, 3], 1);
        let t = pseudo_random_tuples(&schema, 300, 17);
        let min_sup = 5u64;
        let builder =
            CubeBuilder::new(&schema, CubeConfig { min_support: min_sup, ..CubeConfig::default() });
        let mut sink = MemSink::new(1);
        builder.build_in_memory(&t, &mut sink).unwrap();
        let reader = MemCubeReader::new(&schema, &sink, &t, None).unwrap();
        let coder = NodeCoder::new(&schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let levels = coder.decode(id).unwrap();
            let want: Vec<(Vec<u32>, Vec<i64>)> =
                reference::iceberg_filter(&reference::compute_node(&schema, &t, &levels), min_sup)
                    .into_iter()
                    .map(|r| (r.dims, r.aggs))
                    .collect();
            assert_eq!(got, want, "iceberg node {id}");
        }
    }

    #[test]
    fn tt_pruning_saves_storage() {
        // Sparse data (many singletons) must produce far fewer stored
        // tuples than the uncompressed cube would have.
        let schema = flat_schema(&[1000, 1000, 1000], 1);
        let t = pseudo_random_tuples(&schema, 200, 23);
        let builder = CubeBuilder::new(&schema, CubeConfig::default());
        let mut sink = MemSink::new(1);
        let report = builder.build_in_memory(&t, &mut sink).unwrap();
        let oracle = reference::compute_cube(&schema, &t);
        let uncompressed: usize = oracle.values().map(|v| v.len()).sum();
        assert!(
            report.stats.total_tuples() < uncompressed as u64 / 2,
            "stored {} vs uncompressed {}",
            report.stats.total_tuples(),
            uncompressed
        );
    }

    #[test]
    fn report_counts_are_plausible() {
        let schema = flat_schema(&[8, 8], 1);
        let t = pseudo_random_tuples(&schema, 1000, 31);
        let builder = CubeBuilder::new(&schema, CubeConfig::default());
        let mut sink = MemSink::new(1);
        let report = builder.build_in_memory(&t, &mut sink).unwrap();
        assert!(report.signatures > 0);
        assert!(report.counting_sorts > 0);
        assert_eq!(report.pool_flushes, 1, "default pool flushes only at the end here");
        assert!(report.partition.is_none());
    }

    #[test]
    fn phase_and_pool_counters_are_consistent_with_sink_stats() {
        let schema = flat_schema(&[8, 8], 1);
        let t = pseudo_random_tuples(&schema, 1000, 31);
        let builder = CubeBuilder::new(&schema, CubeConfig::default());
        let mut sink = MemSink::new(1);
        let report = builder.build_in_memory(&t, &mut sink).unwrap();
        // Every TT prune produced exactly one stored TT and vice versa.
        assert_eq!(report.pool.tt_prunes, report.stats.tt_tuples);
        // Pool-side classification totals match the sink totals. (They
        // split differently under the AsNt CAT format, where the sink
        // stores CAT groups as NT rows, so only the sum is invariant.)
        assert_eq!(
            report.pool.nt_written + report.pool.cat_tuples,
            report.stats.nt_tuples + report.stats.cat_tuples
        );
        assert!(report.pool.nt_written > 0);
        assert!(report.pool.cat_groups <= report.pool.cat_tuples);
        // The sort and flush timers measure sub-intervals of the pass.
        assert!(report.phases.pass_secs > 0.0);
        assert!(report.phases.sort_secs + report.phases.flush_secs <= report.phases.pass_secs);
        assert_eq!(report.phases.partition_secs, 0.0);
        assert_eq!(report.phases.merge_secs, 0.0);
    }
}
