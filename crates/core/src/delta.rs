//! Incremental ingest: the durable delta pipeline over [`update_cube`].
//!
//! [`update_cube`] is a one-shot library call: given a delta batch that is
//! already in the fact relation, it merges the batch into a cube under a
//! new prefix. This module turns that call into a **crash-safe ingest
//! subsystem** — the semi-naive evaluation itself (classification
//! restricted to the groups the delta actually hits, TT demotion walk,
//! per-group merge of distributive/algebraic aggregates) lives in
//! [`update_cube`]; what is added here is the durable protocol around it:
//!
//! 1. **Append** — journal intent in an [`IngestManifest`] (CRC-guarded,
//!    atomically replaced, like the build's
//!    [`BuildManifest`](crate::manifest::BuildManifest)), then append the
//!    re-rowid'd delta to the fact relation and fsync it.
//! 2. **Merge** — journal phase `Merging` (the delta is now durable), then
//!    run [`update_cube`] into a [`DiskSink`] under the *other* prefix,
//!    write the new [`CubeMeta`], and fsync everything the merge produced.
//! 3. **Swap** — journal phase `Swapped`, atomically repoint the active
//!    cube blob at the new prefix, then (opt-in, [`IngestOptions::drop_old`])
//!    GC the old prefix so the catalog holds exactly one cube.
//!
//! Each journal entry is written only after the data it describes is on
//! stable storage, so [`recover_ingest`] can always finish or undo a
//! half-done ingest:
//!
//! * crash in `Appending` → the appended tail may be torn; truncate the
//!   fact relation back to its journaled pre-ingest row count
//!   ([`HeapFile::repair_to_rows`]) and drop any partial merge output —
//!   the old cube stays active, the ingest **rolls back**;
//! * crash in `Merging` → the delta is durable in the fact relation;
//!   reload it, redo the merge from scratch (partial output under the new
//!   prefix is dropped first), and continue — the ingest **rolls forward**;
//! * crash in `Swapped` → the new cube is complete; re-point the active
//!   blob (idempotent) and finish the GC.
//!
//! The active-cube pointer itself is a small catalog blob replaced via
//! `atomic_write`, so readers never observe a torn prefix name.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use cure_storage::checksum::crc32;
use cure_storage::{atomic_write, Catalog, HeapFile};
use serde_json::Value;

use crate::cube::CubeConfig;
use crate::error::{CubeError, Result};
use crate::hierarchy::CubeSchema;
use crate::manifest::BuildManifest;
use crate::meta::CubeMeta;
use crate::sink::{CubeSink as _, DiskSink};
use crate::tuples::Tuples;
use crate::update::{update_cube, UpdateReport};

/// Catalog blob holding the prefix of the currently active cube.
pub const ACTIVE_BLOB: &str = "active_cube";

/// File name of the ingest journal (one ingest at a time per catalog).
pub const INGEST_MANIFEST_FILE: &str = "ingest.json";

/// The prefix of the currently active cube (`"cube_"` when no ingest has
/// ever swapped it).
pub fn active_prefix(catalog: &Catalog) -> String {
    catalog
        .read_blob(ACTIVE_BLOB)
        .ok()
        .and_then(|b| String::from_utf8(b).ok())
        .unwrap_or_else(|| "cube_".to_string())
}

/// Atomically repoint the active-cube blob at `prefix`.
pub fn set_active_prefix(catalog: &Catalog, prefix: &str) -> Result<()> {
    catalog.write_blob(ACTIVE_BLOB, prefix.as_bytes())?;
    Ok(())
}

/// The partner prefix an ingest merges into: `"cube_"` ↔ `"cubeB_"`, and
/// in general a `B` toggled before the trailing underscore.
pub fn other_prefix(prefix: &str) -> String {
    if let Some(stem) = prefix.strip_suffix("B_") {
        format!("{stem}_")
    } else if let Some(stem) = prefix.strip_suffix('_') {
        format!("{stem}B_")
    } else {
        format!("{prefix}B_")
    }
}

/// Knobs of one ingest.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Drop the old cube's relations, blobs and build manifest after the
    /// swap, so the catalog holds exactly one cube. Callers that keep
    /// serving the old epoch from open file handles (live ingest) GC
    /// later and pass `false`.
    pub drop_old: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions { drop_old: true }
    }
}

/// What one completed ingest did.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The merge statistics (TT demotions, merged/carried/new groups).
    pub update: UpdateReport,
    /// Delta tuples appended to the fact relation.
    pub delta_rows: u64,
    /// Prefix the old cube was stored under.
    pub old_prefix: String,
    /// Prefix the merged cube is stored under (now active).
    pub new_prefix: String,
    /// Catalog objects dropped by the old-prefix GC (0 when kept).
    pub dropped_objects: u64,
    /// Seconds spent appending + fsyncing the delta.
    pub append_secs: f64,
    /// Seconds spent in the merge (update walk + sink + meta + fsync).
    pub merge_secs: f64,
}

/// Which stage an ingest had durably reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestPhase {
    /// The delta append is (or was) in flight; the fact tail is suspect.
    Appending,
    /// The delta is durable in the fact relation; the merge is running.
    Merging,
    /// The merged cube is durable and active; only GC remains.
    Swapped,
}

impl IngestPhase {
    fn as_str(self) -> &'static str {
        match self {
            IngestPhase::Appending => "appending",
            IngestPhase::Merging => "merging",
            IngestPhase::Swapped => "swapped",
        }
    }

    fn parse(s: &str) -> Result<Self> {
        match s {
            "appending" => Ok(IngestPhase::Appending),
            "merging" => Ok(IngestPhase::Merging),
            "swapped" => Ok(IngestPhase::Swapped),
            other => Err(m_err(format!("unknown phase '{other}'"))),
        }
    }
}

/// The durable ingest journal. See the module docs for the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestManifest {
    /// Stage durably reached.
    pub phase: IngestPhase,
    /// Prefix of the cube being updated.
    pub old_prefix: String,
    /// Prefix the merged cube is written under.
    pub new_prefix: String,
    /// The shared fact relation the delta was appended to.
    pub fact_rel: String,
    /// Fact rows *before* the append — the rollback truncation point.
    pub fact_rows_before: u64,
    /// Delta tuples being ingested.
    pub delta_rows: u64,
    /// Whether the old prefix is GC'd after the swap.
    pub drop_old: bool,
}

fn m_err(msg: impl std::fmt::Display) -> CubeError {
    CubeError::Config(format!("ingest manifest: {msg}"))
}

fn get<'v>(v: &'v Value, key: &str) -> Result<&'v Value> {
    v.get(key).ok_or_else(|| m_err(format!("missing field '{key}'")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64> {
    get(v, key)?.as_u64().ok_or_else(|| m_err(format!("field '{key}' is not an integer")))
}

fn get_str<'v>(v: &'v Value, key: &str) -> Result<&'v str> {
    get(v, key)?.as_str().ok_or_else(|| m_err(format!("field '{key}' is not a string")))
}

fn get_bool(v: &Value, key: &str) -> Result<bool> {
    get(v, key)?.as_bool().ok_or_else(|| m_err(format!("field '{key}' is not a bool")))
}

impl IngestManifest {
    /// Filesystem path of the ingest journal in `catalog`.
    pub fn path(catalog: &Catalog) -> PathBuf {
        catalog.dir().join(INGEST_MANIFEST_FILE)
    }

    /// Whether an (interrupted) ingest journal exists.
    pub fn exists(catalog: &Catalog) -> bool {
        Self::path(catalog).is_file()
    }

    /// Atomically replace the on-disk journal with this state.
    pub fn save(&self, catalog: &Catalog) -> Result<()> {
        let inner = self.to_json();
        let crc = crc32(inner.to_string().as_bytes());
        let mut root = BTreeMap::new();
        root.insert("crc32".to_string(), Value::from(crc));
        root.insert("manifest".to_string(), inner);
        let text = serde_json::to_string_pretty(&Value::Object(root))
            .map_err(|e| m_err(format!("serialize: {e}")))?;
        atomic_write(catalog.policy().as_ref(), &Self::path(catalog), text.as_bytes())
            .map_err(|e| CubeError::Storage(e.into()))?;
        Ok(())
    }

    /// Load the journal, if one exists and is intact. A damaged file is
    /// ignored with a warning (same policy as
    /// [`BuildManifest::load`](crate::manifest::BuildManifest::load)):
    /// journals are only ever replaced atomically, so damage means
    /// external corruption and the safe answer is "no pending ingest".
    pub fn load(catalog: &Catalog) -> Result<Option<IngestManifest>> {
        let path = Self::path(catalog);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CubeError::Storage(e.into())),
        };
        match Self::parse(&bytes) {
            Ok(m) => Ok(Some(m)),
            Err(e) => {
                eprintln!(
                    "cure-core: warning: ignoring damaged ingest manifest {}: {e}",
                    path.display()
                );
                Ok(None)
            }
        }
    }

    /// Delete the journal if present.
    pub fn remove(catalog: &Catalog) -> Result<()> {
        match std::fs::remove_file(Self::path(catalog)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CubeError::Storage(e.into())),
        }
    }

    /// Parse and CRC-check raw journal bytes.
    pub fn parse(bytes: &[u8]) -> Result<IngestManifest> {
        let root = serde_json::from_slice(bytes).map_err(|e| m_err(format!("unparseable: {e}")))?;
        let crc = get_u64(&root, "crc32")? as u32;
        let inner = get(&root, "manifest")?;
        let actual = crc32(inner.to_string().as_bytes());
        if actual != crc {
            return Err(m_err(format!("CRC mismatch (stored {crc:#010x}, actual {actual:#010x})")));
        }
        Ok(IngestManifest {
            phase: IngestPhase::parse(get_str(inner, "phase")?)?,
            old_prefix: get_str(inner, "old_prefix")?.to_string(),
            new_prefix: get_str(inner, "new_prefix")?.to_string(),
            fact_rel: get_str(inner, "fact_rel")?.to_string(),
            fact_rows_before: get_u64(inner, "fact_rows_before")?,
            delta_rows: get_u64(inner, "delta_rows")?,
            drop_old: get_bool(inner, "drop_old")?,
        })
    }

    fn to_json(&self) -> Value {
        Value::Object(
            [
                ("version", Value::from(1u64)),
                ("phase", Value::from(self.phase.as_str())),
                ("old_prefix", Value::from(self.old_prefix.as_str())),
                ("new_prefix", Value::from(self.new_prefix.as_str())),
                ("fact_rel", Value::from(self.fact_rel.as_str())),
                ("fact_rows_before", Value::from(self.fact_rows_before)),
                ("delta_rows", Value::from(self.delta_rows)),
                ("drop_old", Value::from(self.drop_old)),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
        )
    }
}

/// How [`recover_ingest`] resolved an interrupted ingest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestRecovery {
    /// The ingest was undone: the appended delta rows were truncated away
    /// and the old cube remains active.
    RolledBack {
        /// Delta rows discarded from the fact relation.
        discarded_rows: u64,
    },
    /// The ingest was finished: the merged cube is durable and active.
    Completed {
        /// Prefix of the now-active merged cube.
        new_prefix: String,
    },
}

/// Ingest `delta` into the active cube: append, merge under the partner
/// prefix, swap. `delta` carries leaf dimension values and measures; its
/// row-ids are ignored and reassigned to continue the fact relation.
///
/// The active cube must be a complete (non-iceberg), non-DR cube — the
/// same preconditions as [`update_cube`], checked up front so nothing is
/// appended on a doomed ingest.
pub fn ingest_cube(
    catalog: &Catalog,
    schema: &CubeSchema,
    delta: &Tuples,
    cfg: &CubeConfig,
    opts: &IngestOptions,
) -> Result<IngestReport> {
    let old_prefix = active_prefix(catalog);
    let new_prefix = other_prefix(&old_prefix);
    ingest_cube_into(catalog, schema, &old_prefix, &new_prefix, delta, cfg, opts)
}

/// [`ingest_cube`] with explicit prefixes (live ingest uses per-epoch
/// prefixes instead of the two-slot flip).
pub fn ingest_cube_into(
    catalog: &Catalog,
    schema: &CubeSchema,
    old_prefix: &str,
    new_prefix: &str,
    delta: &Tuples,
    cfg: &CubeConfig,
    opts: &IngestOptions,
) -> Result<IngestReport> {
    if IngestManifest::exists(catalog) {
        return Err(CubeError::Config(
            "a previous ingest was interrupted; run recover_ingest first".into(),
        ));
    }
    if old_prefix == new_prefix {
        return Err(CubeError::Config("ingest prefixes must differ".into()));
    }
    if delta.n_dims() != schema.num_dims() || delta.n_measures() != schema.num_measures() {
        return Err(CubeError::Config("delta shape does not match the cube schema".into()));
    }
    let old_meta = CubeMeta::read(catalog, old_prefix)?;
    if old_meta.dr {
        return Err(CubeError::Config(
            "incremental ingest of CURE_DR cubes is not supported (NT rows lack row-ids)".into(),
        ));
    }
    if old_meta.min_support != 1 {
        return Err(CubeError::Config(
            "incremental ingest requires a complete (non-iceberg) cube".into(),
        ));
    }

    let mut fact = catalog.open_relation(&old_meta.fact_rel)?;
    let fact_rows_before = fact.num_rows();
    let mut manifest = IngestManifest {
        phase: IngestPhase::Appending,
        old_prefix: old_prefix.to_string(),
        new_prefix: new_prefix.to_string(),
        fact_rel: old_meta.fact_rel.clone(),
        fact_rows_before,
        delta_rows: delta.len() as u64,
        drop_old: opts.drop_old,
    };
    manifest.save(catalog)?;

    // Phase 1: append the re-rowid'd delta to the fact relation.
    let t_append = Instant::now();
    let mut batch = Tuples::with_capacity(schema.num_dims(), schema.num_measures(), delta.len());
    for i in 0..delta.len() {
        batch.push(delta.dims_of(i), delta.aggs_of(i), 1, fact_rows_before + i as u64);
    }
    batch.store_fact(&mut fact)?;
    fact.sync()?;
    drop(fact);
    let append_secs = t_append.elapsed().as_secs_f64();

    // Phase 2: the delta is durable — journal that, then merge.
    manifest.phase = IngestPhase::Merging;
    manifest.save(catalog)?;
    let t_merge = Instant::now();
    let update = merge_delta(catalog, schema, &manifest, &old_meta, &batch, cfg)?;
    let merge_secs = t_merge.elapsed().as_secs_f64();

    // Phase 3: the merged cube is durable — journal that, swap, GC.
    manifest.phase = IngestPhase::Swapped;
    manifest.save(catalog)?;
    set_active_prefix(catalog, new_prefix)?;
    let dropped_objects = finish_swap(catalog, &manifest)?;
    IngestManifest::remove(catalog)?;

    Ok(IngestReport {
        update,
        delta_rows: manifest.delta_rows,
        old_prefix: old_prefix.to_string(),
        new_prefix: new_prefix.to_string(),
        dropped_objects,
        append_secs,
        merge_secs,
    })
}

/// Resolve an interrupted ingest: roll back (phase `Appending`) or roll
/// forward (`Merging`, `Swapped`). Returns `None` when no journal exists.
/// Idempotent — crashing *during* recovery leaves a journal that a rerun
/// resolves the same way.
pub fn recover_ingest(
    catalog: &Catalog,
    schema: &CubeSchema,
    cfg: &CubeConfig,
) -> Result<Option<IngestRecovery>> {
    let Some(mut m) = IngestManifest::load(catalog)? else { return Ok(None) };
    match m.phase {
        IngestPhase::Appending => Ok(Some(roll_back(catalog, &m)?)),
        IngestPhase::Merging => {
            // The journal says the delta is durable; trust it only if the
            // fact relation really holds every delta row.
            let fact = catalog.open_relation(&m.fact_rel)?;
            let total = m.fact_rows_before + m.delta_rows;
            if fact.num_rows() < total {
                drop(fact);
                return Ok(Some(roll_back(catalog, &m)?));
            }
            // Reload the delta rows and redo the merge from scratch.
            let all = Tuples::load_fact(&fact, schema.num_dims(), schema.num_measures())?;
            drop(fact);
            let mut batch = Tuples::with_capacity(
                schema.num_dims(),
                schema.num_measures(),
                m.delta_rows as usize,
            );
            for i in m.fact_rows_before..total {
                let i = i as usize;
                batch.push(all.dims_of(i), all.aggs_of(i), 1, i as u64);
            }
            let old_meta = CubeMeta::read(catalog, &m.old_prefix)?;
            merge_delta(catalog, schema, &m, &old_meta, &batch, cfg)?;
            m.phase = IngestPhase::Swapped;
            m.save(catalog)?;
            set_active_prefix(catalog, &m.new_prefix)?;
            finish_swap(catalog, &m)?;
            IngestManifest::remove(catalog)?;
            Ok(Some(IngestRecovery::Completed { new_prefix: m.new_prefix }))
        }
        IngestPhase::Swapped => {
            set_active_prefix(catalog, &m.new_prefix)?;
            finish_swap(catalog, &m)?;
            IngestManifest::remove(catalog)?;
            Ok(Some(IngestRecovery::Completed { new_prefix: m.new_prefix }))
        }
    }
}

/// Abort an interrupted ingest in favour of the *old* cube. Unlike
/// [`recover_ingest`] — which rolls a `Merging`-phase journal forward,
/// the right call after a crash — this rolls back whenever the old cube
/// can still be made authoritative: partial merge output is dropped and
/// the fact relation is truncated to its journaled pre-ingest row count,
/// so the same delta can be re-applied from scratch. Only a journal that
/// already reached `Swapped` (the merged cube is complete and durable)
/// is completed instead. Live serving uses this when `ingest_cube_into`
/// *returns* an error mid-merge: the active epoch keeps serving and the
/// failed delta leaves no partial state behind.
pub fn abort_ingest(catalog: &Catalog) -> Result<Option<IngestRecovery>> {
    let Some(m) = IngestManifest::load(catalog)? else { return Ok(None) };
    match m.phase {
        IngestPhase::Appending | IngestPhase::Merging => Ok(Some(roll_back(catalog, &m)?)),
        IngestPhase::Swapped => {
            set_active_prefix(catalog, &m.new_prefix)?;
            finish_swap(catalog, &m)?;
            IngestManifest::remove(catalog)?;
            Ok(Some(IngestRecovery::Completed { new_prefix: m.new_prefix }))
        }
    }
}

/// Run [`update_cube`] under the new prefix and make the result durable.
/// Any partial output of an earlier attempt is dropped first, so the merge
/// is restartable.
fn merge_delta(
    catalog: &Catalog,
    schema: &CubeSchema,
    m: &IngestManifest,
    old_meta: &CubeMeta,
    batch: &Tuples,
    cfg: &CubeConfig,
) -> Result<UpdateReport> {
    catalog.drop_prefix(&m.new_prefix)?;
    let mut sink = DiskSink::new(catalog, &m.new_prefix, schema, false, old_meta.plus, None)?;
    let update = update_cube(catalog, schema, &m.old_prefix, batch, cfg, &mut sink)?;
    let cat_format = sink.cat_format();
    drop(sink);
    CubeMeta {
        prefix: m.new_prefix.clone(),
        fact_rel: m.fact_rel.clone(),
        n_dims: schema.num_dims(),
        n_measures: schema.num_measures(),
        dr: false,
        plus: old_meta.plus,
        cat_format,
        // The update walks the old cube's plan forest, so TT placement
        // follows the old partition level; the query layer must keep it.
        partition_level: old_meta.partition_level,
        min_support: 1,
    }
    .write(catalog)?;
    // DiskSink::finish flushes but does not fsync; push every new-prefix
    // relation to stable storage before the journal claims it is there.
    for name in catalog.list()? {
        if name.starts_with(&m.new_prefix) {
            catalog.open_relation(&name)?.sync()?;
        }
    }
    catalog.sync_dir()?;
    Ok(update)
}

/// Post-swap GC: drop the old cube's relations, blobs and build manifest
/// (opt-in via the journaled `drop_old`).
fn finish_swap(catalog: &Catalog, m: &IngestManifest) -> Result<u64> {
    if !m.drop_old {
        return Ok(0);
    }
    let dropped = catalog.drop_prefix(&m.old_prefix)? as u64;
    BuildManifest::remove(catalog, &m.old_prefix)?;
    Ok(dropped)
}

/// Undo a half-appended ingest: drop partial merge output and truncate
/// the fact relation back to its journaled pre-ingest row count. The
/// appended tail may be torn, so the boundary page is rebuilt from raw
/// bytes ([`HeapFile::repair_to_rows`]) rather than trusted.
fn roll_back(catalog: &Catalog, m: &IngestManifest) -> Result<IngestRecovery> {
    catalog.drop_prefix(&m.new_prefix)?;
    let on_disk = catalog.open_relation(&m.fact_rel)?.num_rows();
    let rel_schema = catalog.relation_schema(&m.fact_rel)?;
    let path = catalog.relation_heap_path(&m.fact_rel);
    HeapFile::repair_to_rows(&path, &rel_schema, m.fact_rows_before, catalog.policy().as_ref())?;
    IngestManifest::remove(catalog)?;
    Ok(IngestRecovery::RolledBack { discarded_rows: on_disk.saturating_sub(m.fact_rows_before) })
}

/// Parse a delta batch from text: one fact per line, leaf dimension values
/// then measures separated by `|` — e.g. `"3 0 7 | 14 2"`. Blank lines
/// and `#` comments are skipped; values are validated against the schema.
/// Row-ids are assigned by the ingest itself.
pub fn parse_batch(schema: &CubeSchema, text: &str) -> Result<Tuples> {
    let d = schema.num_dims();
    let y = schema.num_measures();
    let mut out = Tuples::new(d, y);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| CubeError::Config(format!("batch line {}: {msg}", lineno + 1));
        let (dim_part, measure_part) = line
            .split_once('|')
            .ok_or_else(|| err("expected '<dims> | <measures>'".to_string()))?;
        let dims = dim_part
            .split_whitespace()
            .map(|t| t.parse::<u32>().map_err(|_| err(format!("bad dimension value '{t}'"))))
            .collect::<Result<Vec<u32>>>()?;
        let measures = measure_part
            .split_whitespace()
            .map(|t| t.parse::<i64>().map_err(|_| err(format!("bad measure value '{t}'"))))
            .collect::<Result<Vec<i64>>>()?;
        if dims.len() != d {
            return Err(err(format!("expected {d} dimension values, got {}", dims.len())));
        }
        if measures.len() != y {
            return Err(err(format!("expected {y} measures, got {}", measures.len())));
        }
        for (j, &v) in dims.iter().enumerate() {
            let card = schema.dims()[j].leaf_cardinality();
            if v >= card {
                return Err(err(format!(
                    "dimension {} value {v} out of range (leaf cardinality {card})",
                    schema.dims()[j].name()
                )));
            }
        }
        let rowid = out.len() as u64;
        out.push(&dims, &measures, 1, rowid);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeBuilder;
    use crate::hierarchy::Dimension;
    use crate::lattice::NodeCoder;
    use crate::reference;

    fn fresh_catalog(tag: &str) -> Catalog {
        let dir = std::env::temp_dir().join(format!("cure_delta_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Catalog::open(&dir).unwrap()
    }

    fn schema() -> CubeSchema {
        let a = Dimension::linear("A", 20, &[(0..20).map(|v| v / 5).collect()]).unwrap();
        let b = Dimension::linear("B", 12, &[(0..12).map(|v| v / 4).collect()]).unwrap();
        let c = Dimension::flat("C", 5);
        CubeSchema::new(vec![a, b, c], 2).unwrap()
    }

    fn make_tuples(schema: &CubeSchema, n: usize, seed: u64) -> Tuples {
        let d = schema.num_dims();
        let y = schema.num_measures();
        let mut t = Tuples::new(d, y);
        let mut x = seed | 1;
        let mut dims = vec![0u32; d];
        let mut aggs = vec![0i64; y];
        for i in 0..n {
            for (j, v) in dims.iter_mut().enumerate() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x % schema.dims()[j].leaf_cardinality() as u64) as u32;
            }
            for a in aggs.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *a = (x % 25) as i64;
            }
            t.push(&dims, &aggs, 1, i as u64);
        }
        t
    }

    /// Build a fresh base cube under `"cube_"` with its meta and facts.
    fn build_base(catalog: &Catalog, schema: &CubeSchema, base: &Tuples) {
        let mut heap =
            catalog.create_or_replace("facts", Tuples::fact_schema(schema.num_dims(), 2)).unwrap();
        base.store_fact(&mut heap).unwrap();
        drop(heap);
        let mut sink = DiskSink::new(catalog, "cube_", schema, false, false, None).unwrap();
        let report = CubeBuilder::new(schema, CubeConfig::default())
            .build_in_memory(base, &mut sink)
            .unwrap();
        CubeMeta {
            prefix: "cube_".into(),
            fact_rel: "facts".into(),
            n_dims: schema.num_dims(),
            n_measures: 2,
            dr: false,
            plus: false,
            cat_format: report.stats.cat_format,
            partition_level: None,
            min_support: 1,
        }
        .write(catalog)
        .unwrap();
    }

    /// Oracle comparison: the active cube equals a fresh reference cube
    /// over `facts`. cure-core cannot depend on the query crate, so the
    /// stored cube is read back via an *empty-delta* [`update_cube`] into
    /// a [`MemSink`](crate::sink::MemSink) — which reproduces the cube
    /// exactly (proven by `update::tests`) — and decoded with
    /// [`MemCubeReader`](crate::reader::MemCubeReader).
    fn assert_matches_oracle(catalog: &Catalog, schema: &CubeSchema) {
        let fact = catalog.open_relation("facts").unwrap();
        let all = Tuples::load_fact(&fact, schema.num_dims(), schema.num_measures()).unwrap();
        drop(fact);
        let prefix = active_prefix(catalog);
        let empty = Tuples::new(schema.num_dims(), schema.num_measures());
        let mut sink = crate::sink::MemSink::new(schema.num_measures());
        update_cube(catalog, schema, &prefix, &empty, &CubeConfig::default(), &mut sink).unwrap();
        let meta = CubeMeta::read(catalog, &prefix).unwrap();
        let reader =
            crate::reader::MemCubeReader::new(schema, &sink, &all, meta.partition_level).unwrap();
        let coder = NodeCoder::new(schema);
        for id in coder.all_ids() {
            let mut got = reader.node_contents(id).unwrap();
            got.sort();
            let levels = coder.decode(id).unwrap();
            let want: Vec<(Vec<u32>, Vec<i64>)> = reference::compute_node(schema, &all, &levels)
                .into_iter()
                .map(|r| (r.dims, r.aggs))
                .collect();
            assert_eq!(got, want, "node {id} differs from oracle");
        }
    }

    #[test]
    fn manifest_roundtrip_and_crc() {
        let catalog = fresh_catalog("manifest");
        let m = IngestManifest {
            phase: IngestPhase::Merging,
            old_prefix: "cube_".into(),
            new_prefix: "cubeB_".into(),
            fact_rel: "facts".into(),
            fact_rows_before: 512,
            delta_rows: 64,
            drop_old: true,
        };
        m.save(&catalog).unwrap();
        assert_eq!(IngestManifest::load(&catalog).unwrap().unwrap(), m);
        // A flipped byte must be caught by the CRC and ignored.
        let path = IngestManifest::path(&catalog);
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes.len() / 2;
        bytes[pos] = bytes[pos].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(IngestManifest::load(&catalog).unwrap().is_none());
        IngestManifest::remove(&catalog).unwrap();
        assert!(!IngestManifest::exists(&catalog));
        IngestManifest::remove(&catalog).unwrap(); // idempotent
    }

    #[test]
    fn other_prefix_toggles() {
        assert_eq!(other_prefix("cube_"), "cubeB_");
        assert_eq!(other_prefix("cubeB_"), "cube_");
        assert_eq!(other_prefix("v1_"), "v1B_");
        assert_eq!(other_prefix("v1B_"), "v1_");
    }

    #[test]
    fn ingest_swaps_and_drops_old_prefix() {
        let catalog = fresh_catalog("swap");
        let schema = schema();
        build_base(&catalog, &schema, &make_tuples(&schema, 400, 11));
        let delta = make_tuples(&schema, 60, 13);
        let report = ingest_cube(
            &catalog,
            &schema,
            &delta,
            &CubeConfig::default(),
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(report.new_prefix, "cubeB_");
        assert_eq!(active_prefix(&catalog), "cubeB_");
        assert!(report.dropped_objects > 0);
        // Satellite: the catalog holds exactly one cube's relations — no
        // old-prefix leftovers among relations or blobs.
        for name in catalog.list().unwrap() {
            assert!(name == "facts" || name.starts_with("cubeB_"), "old relation leaked: {name}");
        }
        for name in catalog.list_blobs().unwrap() {
            assert!(!name.starts_with("cube_"), "old blob leaked: {name}");
        }
        assert!(!IngestManifest::exists(&catalog));
        assert_matches_oracle(&catalog, &schema);
    }

    #[test]
    fn keep_old_leaves_both_cubes() {
        let catalog = fresh_catalog("keep");
        let schema = schema();
        build_base(&catalog, &schema, &make_tuples(&schema, 300, 21));
        let delta = make_tuples(&schema, 40, 23);
        let report = ingest_cube(
            &catalog,
            &schema,
            &delta,
            &CubeConfig::default(),
            &IngestOptions { drop_old: false },
        )
        .unwrap();
        assert_eq!(report.dropped_objects, 0);
        assert!(catalog.list().unwrap().iter().any(|n| n.starts_with("cube_")));
        assert_matches_oracle(&catalog, &schema);
    }

    #[test]
    fn chained_ingests_accumulate() {
        let catalog = fresh_catalog("chain");
        let schema = schema();
        build_base(&catalog, &schema, &make_tuples(&schema, 350, 31));
        for seed in [33, 35, 37] {
            let delta = make_tuples(&schema, 50, seed);
            ingest_cube(
                &catalog,
                &schema,
                &delta,
                &CubeConfig::default(),
                &IngestOptions::default(),
            )
            .unwrap();
        }
        assert_eq!(active_prefix(&catalog), "cubeB_");
        assert_matches_oracle(&catalog, &schema);
    }

    #[test]
    fn crash_while_appending_rolls_back() {
        let catalog = fresh_catalog("crashappend");
        let schema = schema();
        build_base(&catalog, &schema, &make_tuples(&schema, 200, 41));
        // Simulate the crash: journal Appending and append only half of
        // the journaled delta.
        let mut fact = catalog.open_relation("facts").unwrap();
        let before = fact.num_rows();
        IngestManifest {
            phase: IngestPhase::Appending,
            old_prefix: "cube_".into(),
            new_prefix: "cubeB_".into(),
            fact_rel: "facts".into(),
            fact_rows_before: before,
            delta_rows: 40,
            drop_old: true,
        }
        .save(&catalog)
        .unwrap();
        let partial = make_tuples(&schema, 20, 43);
        partial.store_fact(&mut fact).unwrap();
        fact.sync().unwrap();
        drop(fact);
        let rec = recover_ingest(&catalog, &schema, &CubeConfig::default()).unwrap().unwrap();
        assert_eq!(rec, IngestRecovery::RolledBack { discarded_rows: 20 });
        assert_eq!(catalog.open_relation("facts").unwrap().num_rows(), before);
        assert_eq!(active_prefix(&catalog), "cube_");
        assert!(!IngestManifest::exists(&catalog));
        assert_matches_oracle(&catalog, &schema);
        // The catalog is clean: a fresh ingest goes through.
        let delta = make_tuples(&schema, 30, 45);
        ingest_cube(&catalog, &schema, &delta, &CubeConfig::default(), &IngestOptions::default())
            .unwrap();
        assert_matches_oracle(&catalog, &schema);
    }

    #[test]
    fn crash_while_merging_rolls_forward() {
        let catalog = fresh_catalog("crashmerge");
        let schema = schema();
        let base = make_tuples(&schema, 250, 51);
        build_base(&catalog, &schema, &base);
        // Append a full delta durably and journal Merging, as ingest_cube
        // would have just before the crash; leave partial junk under the
        // new prefix to prove the redo clears it.
        let delta = make_tuples(&schema, 50, 53);
        let mut fact = catalog.open_relation("facts").unwrap();
        let before = fact.num_rows();
        let mut batch = Tuples::with_capacity(schema.num_dims(), 2, delta.len());
        for i in 0..delta.len() {
            batch.push(delta.dims_of(i), delta.aggs_of(i), 1, before + i as u64);
        }
        batch.store_fact(&mut fact).unwrap();
        fact.sync().unwrap();
        drop(fact);
        catalog.create_or_replace("cubeB_n0_nt", Tuples::fact_schema(1, 1)).unwrap();
        IngestManifest {
            phase: IngestPhase::Merging,
            old_prefix: "cube_".into(),
            new_prefix: "cubeB_".into(),
            fact_rel: "facts".into(),
            fact_rows_before: before,
            delta_rows: delta.len() as u64,
            drop_old: true,
        }
        .save(&catalog)
        .unwrap();
        let rec = recover_ingest(&catalog, &schema, &CubeConfig::default()).unwrap().unwrap();
        assert_eq!(rec, IngestRecovery::Completed { new_prefix: "cubeB_".into() });
        assert_eq!(active_prefix(&catalog), "cubeB_");
        assert!(!IngestManifest::exists(&catalog));
        assert_matches_oracle(&catalog, &schema);
    }

    #[test]
    fn crash_after_swap_journal_finishes_gc() {
        let catalog = fresh_catalog("crashswap");
        let schema = schema();
        build_base(&catalog, &schema, &make_tuples(&schema, 220, 61));
        // Run a full ingest but keep the old prefix, then hand-journal the
        // Swapped phase with drop_old=true — exactly the state after a
        // crash between the Swapped save and the GC.
        let delta = make_tuples(&schema, 30, 63);
        ingest_cube(
            &catalog,
            &schema,
            &delta,
            &CubeConfig::default(),
            &IngestOptions { drop_old: false },
        )
        .unwrap();
        IngestManifest {
            phase: IngestPhase::Swapped,
            old_prefix: "cube_".into(),
            new_prefix: "cubeB_".into(),
            fact_rel: "facts".into(),
            fact_rows_before: 220,
            delta_rows: 30,
            drop_old: true,
        }
        .save(&catalog)
        .unwrap();
        let rec = recover_ingest(&catalog, &schema, &CubeConfig::default()).unwrap().unwrap();
        assert_eq!(rec, IngestRecovery::Completed { new_prefix: "cubeB_".into() });
        assert!(!catalog.list().unwrap().iter().any(|n| n.starts_with("cube_")));
        assert!(!IngestManifest::exists(&catalog));
        assert_matches_oracle(&catalog, &schema);
    }

    #[test]
    fn recover_with_no_journal_is_none() {
        let catalog = fresh_catalog("nojournal");
        let schema = schema();
        assert!(recover_ingest(&catalog, &schema, &CubeConfig::default()).unwrap().is_none());
    }

    #[test]
    fn pending_journal_blocks_new_ingest() {
        let catalog = fresh_catalog("blocked");
        let schema = schema();
        build_base(&catalog, &schema, &make_tuples(&schema, 100, 71));
        IngestManifest {
            phase: IngestPhase::Appending,
            old_prefix: "cube_".into(),
            new_prefix: "cubeB_".into(),
            fact_rel: "facts".into(),
            fact_rows_before: 100,
            delta_rows: 1,
            drop_old: true,
        }
        .save(&catalog)
        .unwrap();
        let delta = make_tuples(&schema, 5, 73);
        assert!(ingest_cube(
            &catalog,
            &schema,
            &delta,
            &CubeConfig::default(),
            &IngestOptions::default()
        )
        .is_err());
    }

    #[test]
    fn iceberg_cubes_are_rejected_before_append() {
        let catalog = fresh_catalog("iceberg");
        let schema = schema();
        build_base(&catalog, &schema, &make_tuples(&schema, 120, 81));
        // Rewrite the meta as an iceberg cube.
        let mut meta = CubeMeta::read(&catalog, "cube_").unwrap();
        meta.min_support = 3;
        meta.write(&catalog).unwrap();
        let rows_before = catalog.open_relation("facts").unwrap().num_rows();
        let delta = make_tuples(&schema, 10, 83);
        assert!(ingest_cube(
            &catalog,
            &schema,
            &delta,
            &CubeConfig::default(),
            &IngestOptions::default()
        )
        .is_err());
        // Nothing was appended and no journal lingers.
        assert_eq!(catalog.open_relation("facts").unwrap().num_rows(), rows_before);
        assert!(!IngestManifest::exists(&catalog));
    }

    #[test]
    fn parse_batch_validates() {
        let schema = schema();
        let t = parse_batch(&schema, "1 2 3 | 10 20\n# comment\n\n4 5 0 | 1 2  # eol\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.dims_of(1), &[4, 5, 0]);
        assert_eq!(t.aggs_of(0), &[10, 20]);
        assert!(parse_batch(&schema, "1 2 | 10 20").is_err()); // missing dim
        assert!(parse_batch(&schema, "1 2 3 | 10").is_err()); // missing measure
        assert!(parse_batch(&schema, "99 2 3 | 10 20").is_err()); // out of range
        assert!(parse_batch(&schema, "1 2 3 10 20").is_err()); // no separator
        assert!(parse_batch(&schema, "x 2 3 | 10 20").is_err()); // not a number
    }
}
